// Streaming profiler: a TraceSink that builds ProfileData in one pass.
//
// Collected in a single sequential profiling run (the paper's dependence
// profiling + edge profiling), plus an optional second run restricted to
// value-profiling candidate instructions (the paper's SVP instrumentation,
// Section 4.4).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/module.h"
#include "profile/profile_data.h"
#include "trace/trace.h"

namespace spt::profile {

class Profiler final : public trace::TraceSink {
 public:
  /// `module` provides static operand information for dependent-slice
  /// tracking (the paper's "misspeculation computation amount").
  /// `value_candidates`: def sids whose value pattern should be profiled
  /// (empty set = no value profiling; the driver runs a second profiling
  /// pass once candidates are known).
  explicit Profiler(
      const ir::Module& module,
      std::unordered_set<ir::StaticId> value_candidates = {});

  void onRecord(const trace::Record& record) override;

  /// Takes the accumulated profile (call once, after the run).
  ProfileData take();

 private:
  struct OpenLoop {
    ir::StaticId header_sid = ir::kInvalidStaticId;
    trace::FrameId frame = 0;
    std::uint64_t iterations = 0;
    std::uint64_t instrs = 0;  // own + nested-loop + callee instructions
    std::int64_t cur_iter = 0;
    /// address -> (iteration, store sid) of the loop-relative last store.
    std::unordered_map<std::uint64_t,
                       std::pair<std::int64_t, ir::StaticId>>
        last_store;
  };

  struct ValueTracker {
    bool has_prev = false;
    std::int64_t prev = 0;
  };

  /// Tracks the *dependent* slice downstream of a violated load inside a
  /// call: registers/addresses tainted by the loaded value, and how many
  /// instructions consumed them (the re-execution amount a selective
  /// replay would pay).
  struct DepTracker {
    ir::StaticId loop_header = ir::kInvalidStaticId;
    std::pair<ir::StaticId, ir::StaticId> pair;
    std::size_t call_depth = 0;  // open_calls_ index that owns it
    std::unordered_set<std::uint64_t> tainted_regs;  // (frame<<32)|reg
    std::unordered_set<std::uint64_t> tainted_addrs;
    std::uint64_t dependent_instrs = 0;
  };

  struct OpenCall {
    ir::StaticId call_sid = ir::kInvalidStaticId;
    trace::FrameId caller_frame = 0;
    trace::FrameId callee_frame = 0;
    std::uint64_t instrs = 0;  // inclusive
  };

  static std::uint64_t regKey(trace::FrameId frame, ir::Reg reg) {
    return (static_cast<std::uint64_t>(frame) << 32) | reg.index;
  }

  void trackDependents(const trace::Record& record);

  void closeTopLoop();

  const ir::Module& module_;
  ProfileData data_;
  std::vector<OpenLoop> open_;  // innermost last; spans frames
  std::vector<OpenCall> open_calls_;
  std::vector<DepTracker> trackers_;
  std::unordered_set<ir::StaticId> value_candidates_;
  std::unordered_map<ir::StaticId, ValueTracker> value_state_;
};

}  // namespace spt::profile

#include "profile/profile_data.h"

namespace spt::profile {

std::int64_t ValueStats::bestStride() const {
  std::int64_t best = 0;
  std::uint64_t best_count = 0;
  for (const auto& [delta, count] : delta_counts) {
    if (count > best_count) {
      best = delta;
      best_count = count;
    }
  }
  return best;
}

double ValueStats::predictability() const {
  if (samples == 0) return 0.0;
  std::uint64_t best_count = 0;
  for (const auto& [delta, count] : delta_counts) {
    (void)delta;
    if (count > best_count) best_count = count;
  }
  return static_cast<double>(best_count) / static_cast<double>(samples);
}

double ProfileData::branchTakenProb(ir::StaticId sid, double fallback) const {
  const auto it = branches.find(sid);
  return it == branches.end() ? fallback : it->second.takenProb(fallback);
}

double ProfileData::memDepProb(ir::StaticId loop_header,
                               ir::StaticId store_sid,
                               ir::StaticId load_sid) const {
  const auto lit = mem_deps.find(loop_header);
  if (lit == mem_deps.end()) return 0.0;
  const auto pit = lit->second.find({store_sid, load_sid});
  if (pit == lit->second.end()) return 0.0;
  const LoopStats* stats = loopStats(loop_header);
  if (stats == nullptr || stats->iterations == 0) return 0.0;
  const double p = static_cast<double>(pit->second.count) /
                   static_cast<double>(stats->iterations);
  return p > 1.0 ? 1.0 : p;
}

const LoopStats* ProfileData::loopStats(ir::StaticId loop_header) const {
  const auto it = loops.find(loop_header);
  return it == loops.end() ? nullptr : &it->second;
}

}  // namespace spt::profile

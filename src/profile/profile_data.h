// Aggregated profile data consumed by the SPT compiler.
//
// The paper's framework annotates the CFG with reach probabilities and the
// DD graph with dependence probabilities (Section 4.1), both obtained from
// profiling runs. ProfileData is the container those annotations are
// derived from.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>

#include "ir/instr.h"

namespace spt::profile {

/// Outcome counts of one static conditional branch.
struct BranchStats {
  std::uint64_t taken = 0;
  std::uint64_t not_taken = 0;

  std::uint64_t total() const { return taken + not_taken; }
  /// Probability of following target0; `fallback` when never executed.
  double takenProb(double fallback = 0.5) const {
    return total() == 0 ? fallback
                        : static_cast<double>(taken) / total();
  }
};

/// Dynamic statistics of one static loop (keyed by header sid).
struct LoopStats {
  std::uint64_t episodes = 0;    // entry-to-exit executions
  std::uint64_t iterations = 0;  // header arrivals (kIterBegin markers)
  /// Instructions executed inside the loop, *including* nested loops and
  /// callees (the paper's notion of loop body size counts the function
  /// calls made from the body — cf. the gap discussion under Figure 6).
  std::uint64_t dyn_instrs = 0;

  double avgBodySize() const {
    return iterations == 0
               ? 0.0
               : static_cast<double>(dyn_instrs) / iterations;
  }
  double avgTripCount() const {
    return episodes == 0 ? 0.0
                         : static_cast<double>(iterations) / episodes;
  }
};

/// Dynamic statistics of one static call site.
struct CallStats {
  std::uint64_t calls = 0;
  /// Instructions executed inside the callee, inclusive of nested calls.
  std::uint64_t total_instrs = 0;

  double avgInstrs() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(total_instrs) / calls;
  }
};

/// One observed distance-1 cross-iteration memory dependence.
struct MemDepStat {
  std::uint64_t count = 0;
  /// Accumulated "misspeculation computation amount": instructions executed
  /// between the dependent load and the end of its enclosing call (0 when
  /// the load is directly in the loop body — the cost graph then models the
  /// downstream slice itself).
  std::uint64_t tail_instrs = 0;

  double avgTail() const {
    return count == 0 ? 0.0
                      : static_cast<double>(tail_instrs) / count;
  }
};

/// Distance-1 cross-iteration memory dependences of one loop:
/// (store sid, load sid) -> statistics.
using MemDepCounts =
    std::map<std::pair<ir::StaticId, ir::StaticId>, MemDepStat>;

/// Value-pattern statistics of one static value-producing instruction
/// (for software value prediction, paper Section 4.4).
struct ValueStats {
  std::uint64_t samples = 0;  // executions observed (after the first)
  /// Delta histogram between consecutive executions; small in practice.
  std::map<std::int64_t, std::uint64_t> delta_counts;

  /// The most frequent stride and its relative frequency.
  std::int64_t bestStride() const;
  double predictability() const;
};

class ProfileData {
 public:
  std::unordered_map<ir::StaticId, BranchStats> branches;
  std::unordered_map<ir::StaticId, LoopStats> loops;
  std::unordered_map<ir::StaticId, MemDepCounts> mem_deps;  // by loop header
  std::unordered_map<ir::StaticId, ValueStats> values;      // by def sid
  std::unordered_map<ir::StaticId, CallStats> calls;        // by call sid
  std::uint64_t total_instrs = 0;

  double branchTakenProb(ir::StaticId sid, double fallback = 0.5) const;

  /// Probability that, in a random iteration of the loop, `load_sid` reads
  /// a value stored by `store_sid` in the previous iteration.
  double memDepProb(ir::StaticId loop_header, ir::StaticId store_sid,
                    ir::StaticId load_sid) const;

  const LoopStats* loopStats(ir::StaticId loop_header) const;
};

}  // namespace spt::profile

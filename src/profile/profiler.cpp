#include "profile/profiler.h"

#include "support/check.h"

namespace spt::profile {

Profiler::Profiler(const ir::Module& module,
                   std::unordered_set<ir::StaticId> value_candidates)
    : module_(module), value_candidates_(std::move(value_candidates)) {}

void Profiler::closeTopLoop() {
  SPT_CHECK(!open_.empty());
  OpenLoop& top = open_.back();
  LoopStats& stats = data_.loops[top.header_sid];
  ++stats.episodes;
  stats.iterations += top.iterations;
  stats.dyn_instrs += top.instrs;
  const std::uint64_t instrs = top.instrs;
  open_.pop_back();
  if (!open_.empty()) open_.back().instrs += instrs;
}

void Profiler::trackDependents(const trace::Record& record) {
  const ir::Instr& instr = module_.instrAt(record.sid);
  for (DepTracker& tracker : trackers_) {
    bool tainted = false;
    const auto reads = [&](ir::Reg r) {
      return r.valid() &&
             tracker.tainted_regs.contains(regKey(record.frame, r));
    };
    if (reads(instr.a) || reads(instr.b)) tainted = true;
    if (!tainted) {
      for (const ir::Reg arg : instr.args) {
        if (reads(arg)) {
          tainted = true;
          break;
        }
      }
    }
    if (!tainted && instr.op == ir::Opcode::kLoad &&
        tracker.tainted_addrs.contains(record.mem_addr)) {
      tainted = true;
    }
    if (!tainted) continue;

    ++tracker.dependent_instrs;
    switch (instr.op) {
      case ir::Opcode::kStore:
        tracker.tainted_addrs.insert(record.mem_addr);
        break;
      case ir::Opcode::kCall:
        // Taint the callee parameters that received tainted arguments.
        for (std::size_t i = 0; i < instr.args.size(); ++i) {
          if (reads(instr.args[i])) {
            tracker.tainted_regs.insert(regKey(
                record.callee_frame, ir::Reg{static_cast<std::uint32_t>(i)}));
          }
        }
        break;
      case ir::Opcode::kRet:
        // Taint the caller's destination register.
        if (!open_calls_.empty() &&
            open_calls_.back().callee_frame == record.frame) {
          const OpenCall& call = open_calls_.back();
          const ir::Instr& call_instr = module_.instrAt(call.call_sid);
          if (call_instr.dst.valid()) {
            tracker.tainted_regs.insert(
                regKey(call.caller_frame, call_instr.dst));
          }
        }
        break;
      default:
        if (instr.dst.valid() && ir::producesValue(instr.op)) {
          tracker.tainted_regs.insert(regKey(record.frame, instr.dst));
        }
        break;
    }
  }
}

void Profiler::onRecord(const trace::Record& record) {
  using trace::RecordKind;
  switch (record.kind) {
    case RecordKind::kIterBegin: {
      if (!open_.empty() && open_.back().header_sid == record.sid &&
          open_.back().frame == record.frame) {
        OpenLoop& top = open_.back();
        ++top.iterations;
        top.cur_iter = record.value;
      } else {
        SPT_CHECK_MSG(record.value == 0,
                      "episode must start at iteration 0");
        OpenLoop loop;
        loop.header_sid = record.sid;
        loop.frame = record.frame;
        loop.iterations = 1;
        loop.cur_iter = 0;
        open_.push_back(std::move(loop));
      }
      return;
    }
    case RecordKind::kLoopExit: {
      SPT_CHECK_MSG(!open_.empty() &&
                        open_.back().header_sid == record.sid &&
                        open_.back().frame == record.frame,
                    "unbalanced loop exit marker");
      closeTopLoop();
      return;
    }
    case RecordKind::kInstr:
      break;
  }

  ++data_.total_instrs;
  if (!open_.empty()) ++open_.back().instrs;
  if (!open_calls_.empty()) ++open_calls_.back().instrs;
  if (!trackers_.empty()) trackDependents(record);

  switch (record.op) {
    case ir::Opcode::kCall:
      open_calls_.push_back(
          {record.sid, record.frame, record.callee_frame, 0});
      break;
    case ir::Opcode::kRet:
      if (!open_calls_.empty() &&
          open_calls_.back().callee_frame == record.frame) {
        const std::size_t depth = open_calls_.size() - 1;
        const OpenCall done = open_calls_.back();
        open_calls_.pop_back();
        CallStats& stats = data_.calls[done.call_sid];
        ++stats.calls;
        stats.total_instrs += done.instrs;
        // Finalize dependent-slice trackers owned by this call.
        std::erase_if(trackers_, [&](const DepTracker& tracker) {
          if (tracker.call_depth != depth) return false;
          data_.mem_deps[tracker.loop_header][tracker.pair].tail_instrs +=
              tracker.dependent_instrs;
          return true;
        });
        if (!open_calls_.empty()) open_calls_.back().instrs += done.instrs;
      }
      break;
    case ir::Opcode::kCondBr: {
      BranchStats& stats = data_.branches[record.sid];
      if (record.taken) {
        ++stats.taken;
      } else {
        ++stats.not_taken;
      }
      break;
    }
    case ir::Opcode::kStore: {
      for (OpenLoop& loop : open_) {
        loop.last_store[record.mem_addr] = {loop.cur_iter, record.sid};
      }
      break;
    }
    case ir::Opcode::kLoad: {
      for (OpenLoop& loop : open_) {
        const auto it = loop.last_store.find(record.mem_addr);
        if (it != loop.last_store.end() &&
            it->second.first == loop.cur_iter - 1) {
          const std::pair<ir::StaticId, ir::StaticId> pair{
              it->second.second, record.sid};
          ++data_.mem_deps[loop.header_sid][pair].count;
          if (!open_calls_.empty()) {
            // Track the dependent slice downstream of this load until the
            // enclosing call returns (the re-execution amount).
            DepTracker tracker;
            tracker.loop_header = loop.header_sid;
            tracker.pair = pair;
            tracker.call_depth = open_calls_.size() - 1;
            const ir::Instr& instr = module_.instrAt(record.sid);
            if (instr.dst.valid()) {
              tracker.tainted_regs.insert(regKey(record.frame, instr.dst));
            }
            trackers_.push_back(std::move(tracker));
          }
        }
      }
      break;
    }
    default:
      break;
  }

  if (!value_candidates_.empty() && value_candidates_.contains(record.sid)) {
    ValueTracker& tracker = value_state_[record.sid];
    if (tracker.has_prev) {
      ValueStats& stats = data_.values[record.sid];
      ++stats.samples;
      ++stats.delta_counts[record.value - tracker.prev];
    }
    tracker.has_prev = true;
    tracker.prev = record.value;
  }
}

ProfileData Profiler::take() {
  for (const DepTracker& tracker : trackers_) {
    data_.mem_deps[tracker.loop_header][tracker.pair].tail_instrs +=
        tracker.dependent_instrs;
  }
  trackers_.clear();
  while (!open_.empty()) closeTopLoop();
  return std::move(data_);
}

}  // namespace spt::profile

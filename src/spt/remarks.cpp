#include "spt/remarks.h"

#include <cctype>

#include "ir/module.h"
#include "support/json.h"
#include "support/stats.h"
#include "support/table.h"

namespace spt::compiler {
namespace {

const char* actionName(DepAction a) {
  switch (a) {
    case DepAction::kLeave:
      return "leave";
    case DepAction::kHoist:
      return "hoist";
    case DepAction::kSvp:
      return "svp";
  }
  return "?";
}

}  // namespace

std::string reasonSlug(const std::string& reason) {
  std::string slug;
  bool pending_sep = false;
  for (const char c : reason) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !slug.empty()) slug += '-';
      pending_sep = false;
      slug += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return slug;
}

std::string loopVerdict(const LoopPlanEntry& entry) {
  if (entry.transformed) return "transformed";
  if (entry.selected) return "selected-not-applied";
  if (entry.candidate) return "rejected-by-cost-model";
  return "rejected-by-filter";
}

void CompilationRemarks::setFromPlan(const SptPlan& plan,
                                     const ir::Module& module) {
  module_name = module.name();
  profiled_instrs = plan.profiled_instrs;
  loops.clear();
  regions.clear();
  for (const LoopPlanEntry& e : plan.loops) {
    LoopRemark r;
    r.name = e.name;
    r.function =
        e.func < module.functionCount() ? module.function(e.func).name : "";
    r.header_sid = e.header_sid;
    r.coverage = e.coverage;
    r.avg_body_size = e.avg_body_size;
    r.avg_trip = e.avg_trip;
    r.unroll_factor = e.unroll_factor;
    r.candidate = e.candidate;
    r.dep_count = e.dep_count;
    for (const DepAction a : e.actions) r.actions.push_back(actionName(a));
    r.cost_feasible = e.cost.feasible;
    r.misspec_cost = e.cost.misspec_cost;
    r.prefork_cost = e.cost.prefork_cost;
    r.iter_cost = e.cost.iter_cost;
    r.est_speedup = e.cost.est_speedup;
    r.partitions_evaluated = e.evaluated;
    r.selected = e.selected;
    r.transformed = e.transformed;
    r.verdict = loopVerdict(e);
    r.reason = e.reject_reason;
    r.reason_slug = reasonSlug(e.reject_reason);
    r.transform_detail = e.transform_detail;
    r.fork_mode = e.fork_mode;
    r.slice_cost = e.slice_cost;
    loops.push_back(std::move(r));
  }
  for (const RegionPlanEntry& e : plan.regions) {
    RegionRemark r;
    r.name = e.name;
    r.prefix_cost = e.prefix_cost;
    r.suffix_cost = e.suffix_cost;
    r.dependence_penalty = e.dependence_penalty;
    r.applied = e.applied;
    regions.push_back(std::move(r));
  }
}

void CompilationRemarks::writeJson(std::ostream& os) const {
  support::JsonWriter w(os);
  w.beginObject();
  w.member("module", module_name);
  w.member("profiled_instrs", profiled_instrs);
  w.member("restarts", restarts);
  w.key("deny_unroll").beginArray();
  for (const std::string& name : deny_unroll) w.value(name);
  w.endArray();

  w.key("loops").beginArray();
  for (const LoopRemark& r : loops) {
    w.beginObject();
    w.member("name", r.name);
    w.member("function", r.function);
    w.member("header_sid", r.header_sid);
    w.member("coverage", r.coverage);
    w.member("avg_body_size", r.avg_body_size);
    w.member("avg_trip", r.avg_trip);
    w.member("unroll_factor", r.unroll_factor);
    w.member("candidate", r.candidate);
    w.member("dep_count", r.dep_count);
    w.key("actions").beginArray();
    for (const std::string& a : r.actions) w.value(a);
    w.endArray();
    w.key("cost").beginObject();
    w.member("feasible", r.cost_feasible);
    w.member("misspec_cost", r.misspec_cost);
    w.member("prefork_cost", r.prefork_cost);
    w.member("iter_cost", r.iter_cost);
    w.member("est_speedup", r.est_speedup);
    w.endObject();
    w.member("partitions_evaluated", r.partitions_evaluated);
    w.member("selected", r.selected);
    w.member("transformed", r.transformed);
    w.member("verdict", r.verdict);
    w.member("reason", r.reason);
    w.member("reason_slug", r.reason_slug);
    w.member("transform_detail", r.transform_detail);
    w.member("fork_mode", r.fork_mode);
    w.member("slice_cost", static_cast<std::uint64_t>(r.slice_cost));
    w.endObject();
  }
  w.endArray();

  w.key("regions").beginArray();
  for (const RegionRemark& r : regions) {
    w.beginObject();
    w.member("name", r.name);
    w.member("prefix_cost", r.prefix_cost);
    w.member("suffix_cost", r.suffix_cost);
    w.member("dependence_penalty", r.dependence_penalty);
    w.member("applied", r.applied);
    w.endObject();
  }
  w.endArray();

  // Wall times are intentionally absent: this document must be
  // byte-identical across machines and runs.
  w.key("passes").beginArray();
  for (const PassRemark& p : passes) {
    w.beginObject();
    w.member("name", p.name);
    w.member("invocations", p.invocations);
    w.member("mutations", p.mutations);
    w.endObject();
  }
  w.endArray();

  w.key("profile").beginObject();
  w.member("runs", profile_runs);
  w.member("cache_hits", profile_cache_hits);
  w.endObject();
  w.key("analysis_cache").beginObject();
  w.member("hits", analysis_cache_hits);
  w.member("misses", analysis_cache_misses);
  w.endObject();
  w.endObject();
  os << "\n";
}

void CompilationRemarks::printSummary(std::ostream& os) const {
  support::Table table("Compilation remarks: " + module_name);
  table.setHeader({"loop", "function", "coverage", "trip", "verdict",
                   "reason", "est.speedup"});
  for (const LoopRemark& r : loops) {
    table.addRow({r.name, r.function, support::percent(r.coverage, 1.0),
                  support::fixed(r.avg_trip, 1), r.verdict, r.reason_slug,
                  support::percent(r.est_speedup, 1.0)});
  }
  table.print(os);

  support::Table pt("Pipeline passes");
  pt.setHeader({"pass", "runs", "mutations", "wall ms"});
  for (const PassRemark& p : passes) {
    pt.addRow({p.name, std::to_string(p.invocations),
               std::to_string(p.mutations), support::fixed(p.wall_ms, 2)});
  }
  pt.print(os);

  os << "profile runs: " << profile_runs
     << "  (cache hits: " << profile_cache_hits << ")\n"
     << "analysis cache: " << analysis_cache_hits << " hits / "
     << analysis_cache_misses << " misses\n"
     << "restarts: " << restarts << "\n";
}

}  // namespace spt::compiler

#include "spt/loop_shape.h"

#include <algorithm>

#include "support/check.h"
#include "trace/trace.h"

namespace spt::compiler {

bool LoopShape::isMandatory(ir::BlockId b) const {
  return std::binary_search(mandatory_blocks.begin(), mandatory_blocks.end(),
                            b);
}

LoopShape recognizeLoop(const ir::Module& module, const ir::Function& func,
                        const analysis::Cfg& cfg,
                        const analysis::LoopForest& forest,
                        analysis::LoopId loop_id) {
  const analysis::Loop& loop = forest.loop(loop_id);
  LoopShape shape;
  shape.func = func.id;
  shape.header = loop.header;
  shape.header_sid = func.blocks[loop.header].instrs.front().static_id;
  shape.name = trace::loopNameOf(module, shape.header_sid);

  const auto reject = [&](std::string reason) {
    shape.transformable = false;
    shape.reject_reason = std::move(reason);
    return shape;
  };

  // Innermost only.
  for (const analysis::Loop& other : forest.loops()) {
    if (other.id != loop_id && other.parent == loop_id) {
      return reject("contains inner loop");
    }
  }

  // Header must end in a conditional branch with exactly one exit.
  const ir::Instr& hterm = func.blocks[loop.header].terminator();
  if (hterm.op != ir::Opcode::kCondBr) {
    return reject("header does not end in a conditional exit test");
  }
  const bool t0_in = loop.contains(hterm.target0);
  const bool t1_in = loop.contains(hterm.target1);
  if (t0_in == t1_in) {
    return reject(t0_in ? "header branch never exits"
                        : "header branch always exits");
  }
  shape.exit_on_taken = !t0_in;
  shape.body_entry = t0_in ? hterm.target0 : hterm.target1;
  shape.exit_block = t0_in ? hterm.target1 : hterm.target0;

  // All exits must come from the header; all body terminators stay inside.
  for (const auto& [from, to] : loop.exit_edges) {
    (void)to;
    if (from != loop.header) return reject("side exit from loop body");
  }

  // No rets or pre-existing SPT instructions inside; collect statements.
  for (const ir::BlockId b : loop.blocks) {
    for (const ir::Instr& instr : func.blocks[b].instrs) {
      if (instr.op == ir::Opcode::kRet) return reject("ret inside loop");
      if (instr.op == ir::Opcode::kSptFork ||
          instr.op == ir::Opcode::kSptKill) {
        return reject("already SPT-transformed");
      }
    }
  }

  // Topological order of loop blocks (header first, ignoring back edges).
  // Loop blocks form a DAG once back edges to the header are dropped.
  std::vector<ir::BlockId> order;
  {
    std::vector<ir::BlockId> in_loop_sorted = loop.blocks;
    std::sort(in_loop_sorted.begin(), in_loop_sorted.end());
    const auto inLoop = [&](ir::BlockId b) {
      return std::binary_search(in_loop_sorted.begin(), in_loop_sorted.end(),
                                b);
    };
    // Kahn's algorithm over in-loop forward edges.
    std::vector<std::uint32_t> indegree(func.blocks.size(), 0);
    for (const ir::BlockId b : loop.blocks) {
      for (const ir::BlockId s : cfg.succs(b)) {
        if (inLoop(s) && s != loop.header) ++indegree[s];
      }
    }
    std::vector<ir::BlockId> ready{loop.header};
    while (!ready.empty()) {
      const ir::BlockId b = ready.back();
      ready.pop_back();
      order.push_back(b);
      for (const ir::BlockId s : cfg.succs(b)) {
        if (inLoop(s) && s != loop.header && --indegree[s] == 0) {
          ready.push_back(s);
        }
      }
    }
    if (order.size() != loop.blocks.size()) {
      return reject("irreducible body (unexpected cycle without header)");
    }
  }
  shape.blocks = order;

  // Mandatory blocks: on every body-entry-to-header path. Block b is
  // mandatory iff the header is unreachable from the body entry when b is
  // removed (header and body entry are trivially mandatory).
  {
    std::vector<ir::BlockId> sorted = loop.blocks;
    std::sort(sorted.begin(), sorted.end());
    const auto inLoop = [&](ir::BlockId b) {
      return std::binary_search(sorted.begin(), sorted.end(), b);
    };
    for (const ir::BlockId b : sorted) {
      if (b == loop.header || b == shape.body_entry) {
        shape.mandatory_blocks.push_back(b);
        continue;
      }
      // DFS from the body entry avoiding b; mandatory iff the header is
      // not reached.
      std::vector<ir::BlockId> work{shape.body_entry};
      std::vector<bool> seen(func.blocks.size(), false);
      seen[shape.body_entry] = true;
      bool header_reached = false;
      while (!work.empty() && !header_reached) {
        const ir::BlockId cur = work.back();
        work.pop_back();
        for (const ir::BlockId s : cfg.succs(cur)) {
          if (s == loop.header) {
            header_reached = true;
            break;
          }
          if (s == b || !inLoop(s) || seen[s]) continue;
          seen[s] = true;
          work.push_back(s);
        }
      }
      if (!header_reached) shape.mandatory_blocks.push_back(b);
    }
  }

  // Statements: header first, then body blocks in topological order.
  const auto addBlockStmts = [&](ir::BlockId b) {
    const auto& instrs = func.blocks[b].instrs;
    for (std::uint32_t i = 0; i + 1 < instrs.size() + 1; ++i) {
      if (ir::isTerminator(instrs[i].op)) continue;
      shape.stmts.push_back({b, i});
    }
  };
  addBlockStmts(loop.header);
  shape.header_stmt_count = shape.stmts.size();
  for (const ir::BlockId b : order) {
    if (b != loop.header) addBlockStmts(b);
  }

  shape.transformable = true;
  return shape;
}

}  // namespace spt::compiler

#include "spt/analysis_manager.h"

#include "support/check.h"

namespace spt::compiler {

AnalysisManager::AnalysisManager(const ir::Module& module)
    : module_(module), funcs_(module.functionCount()) {}

AnalysisManager::FunctionAnalyses& AnalysisManager::slot(ir::FuncId f) {
  // Functions are append-only on a Module; grow the table if a pass added
  // one since construction.
  if (f >= funcs_.size()) funcs_.resize(module_.functionCount());
  SPT_CHECK(f < funcs_.size());
  return funcs_[f];
}

const analysis::Cfg& AnalysisManager::cfg(ir::FuncId f) {
  FunctionAnalyses& s = slot(f);
  if (!s.cfg) {
    ++misses_;
    s.cfg = std::make_unique<analysis::Cfg>(module_.function(f));
  } else {
    ++hits_;
  }
  return *s.cfg;
}

const analysis::DomTree& AnalysisManager::dominators(ir::FuncId f) {
  const analysis::Cfg& c = cfg(f);
  FunctionAnalyses& s = slot(f);
  if (!s.dom) {
    ++misses_;
    s.dom = std::make_unique<analysis::DomTree>(c);
  } else {
    ++hits_;
  }
  return *s.dom;
}

const analysis::LoopForest& AnalysisManager::loopForest(ir::FuncId f) {
  const analysis::Cfg& c = cfg(f);
  const analysis::DomTree& d = dominators(f);
  FunctionAnalyses& s = slot(f);
  if (!s.loops) {
    ++misses_;
    s.loops = std::make_unique<analysis::LoopForest>(c, d);
  } else {
    ++hits_;
  }
  return *s.loops;
}

const analysis::DefUse& AnalysisManager::defUse(ir::FuncId f) {
  const analysis::Cfg& c = cfg(f);
  FunctionAnalyses& s = slot(f);
  if (!s.defuse) {
    ++misses_;
    s.defuse = std::make_unique<analysis::DefUse>(c);
  } else {
    ++hits_;
  }
  return *s.defuse;
}

const analysis::ModRefSummary& AnalysisManager::modRef() {
  if (!modref_) {
    ++misses_;
    modref_ = std::make_unique<analysis::ModRefSummary>(module_);
  } else {
    ++hits_;
  }
  return *modref_;
}

void AnalysisManager::invalidateFunction(ir::FuncId f) {
  if (f < funcs_.size()) funcs_[f] = FunctionAnalyses{};
  modref_.reset();
}

void AnalysisManager::invalidateAll() {
  for (FunctionAnalyses& s : funcs_) s = FunctionAnalyses{};
  funcs_.resize(module_.functionCount());
  modref_.reset();
}

}  // namespace spt::compiler

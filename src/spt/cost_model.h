// Misspeculation cost model (paper Section 4.1, Equation 1).
//
// Given a partition — a decision per cross-iteration dependence (leave in
// the post-fork region, hoist its source pre-fork, or software-value-
// predict it) — the model builds the cost graph over the loop's statements,
// walks it in topological order computing each node's re-execution
// probability P(c), and returns  misspeculation_cost = Σ P(c)·Cost(c)
// plus the pre-fork cost and the estimated loop speedup used for selection.
#pragma once

#include <vector>

#include "spt/loop_analysis.h"

namespace spt::compiler {

enum class DepAction : std::uint8_t {
  kLeave,  // source stays post-fork: dependence may violate
  kHoist,  // source's slice moves pre-fork: dependence satisfied
  kSvp,    // software value prediction reduces the probability
};

struct Partition {
  /// One action per LoopAnalysis::deps entry.
  std::vector<DepAction> actions;
};

struct CostResult {
  double misspec_cost = 0.0;  // Eq. 1 over the cost graph
  double prefork_cost = 0.0;  // header + hoisted slices + SVP predictors
  double iter_cost = 0.0;     // expected cycles per iteration (with SVP ovh)
  double est_speedup = 0.0;   // fractional (0.35 == +35%)
  bool feasible = false;      // pre-fork region within the Amdahl bound
};

/// Evaluates one partition. Actions must be legal (kHoist only on movable
/// deps, kSvp only on svp_applicable deps).
CostResult evaluatePartition(const LoopAnalysis& loop,
                             const Partition& partition,
                             const CompilerOptions& options);

}  // namespace spt::compiler

#include "spt/cost_model.h"

#include <algorithm>

#include "support/check.h"

namespace spt::compiler {
namespace {

constexpr double kSvpPredictorCost = 2.0;  // const + add before the fork
constexpr double kSvpCheckCost = 2.0;      // cmp + branch after the def
constexpr double kSvpFixupCost = 1.0;      // mov on misprediction

double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }

}  // namespace

CostResult evaluatePartition(const LoopAnalysis& loop,
                             const Partition& partition,
                             const CompilerOptions& options) {
  SPT_CHECK(partition.actions.size() == loop.deps.size());
  CostResult result;

  // --- Pre-fork cost: header statements run sequentially by position; the
  // hoisted slices (union — shared slice statements are counted once) and
  // SVP predictors join them.
  std::vector<bool> hoisted(loop.stmts.size(), false);
  double svp_overhead_iter = 0.0;
  double svp_prefork = 0.0;
  for (std::size_t d = 0; d < loop.deps.size(); ++d) {
    const CarriedDep& dep = loop.deps[d];
    switch (partition.actions[d]) {
      case DepAction::kLeave:
        break;
      case DepAction::kHoist:
        SPT_CHECK_MSG(dep.movable, "kHoist on an immovable dependence");
        for (const std::size_t s : dep.slice) hoisted[s] = true;
        break;
      case DepAction::kSvp:
        SPT_CHECK_MSG(dep.svp_applicable, "kSvp on a non-SVP dependence");
        svp_prefork += kSvpPredictorCost + 1.0;  // predictor + body-top mov
        svp_overhead_iter += kSvpPredictorCost + 1.0 + kSvpCheckCost +
                             dep.svp_mispredict * kSvpFixupCost;
        break;
    }
  }
  result.prefork_cost = loop.header_cost + svp_prefork;
  for (std::size_t s = 0; s < loop.stmts.size(); ++s) {
    if (hoisted[s]) result.prefork_cost += loop.stmts[s].cost;
  }

  result.iter_cost = loop.iter_cost + svp_overhead_iter;

  // --- Cost graph: direct violation seeds on consumers.
  std::vector<double> direct(loop.stmts.size(), 0.0);
  for (std::size_t d = 0; d < loop.deps.size(); ++d) {
    const CarriedDep& dep = loop.deps[d];
    double p = 0.0;
    switch (partition.actions[d]) {
      case DepAction::kLeave:
        p = dep.probability;
        break;
      case DepAction::kHoist:
        p = 0.0;  // satisfied: the source runs before the fork
        break;
      case DepAction::kSvp:
        p = dep.probability * dep.svp_mispredict;
        break;
    }
    if (p <= 0.0) continue;
    for (const std::size_t c : dep.consumers) {
      // Independent-sources combination.
      direct[c] = 1.0 - (1.0 - direct[c]) * (1.0 - clamp01(p));
    }
  }

  // --- Topological propagation (statements are already in topological
  // order): P(c) = 1 - (1-direct) * Π over producers x (1 - P(x)·p(x→c)).
  std::vector<double> reexec(loop.stmts.size(), 0.0);
  for (std::size_t i = 0; i < loop.stmts.size(); ++i) {
    reexec[i] = direct[i];
  }
  for (std::size_t x = 0; x < loop.stmts.size(); ++x) {
    if (reexec[x] <= 0.0) continue;
    for (const std::size_t y : loop.uses_of[x]) {
      const double rx = loop.stmts[x].reach;
      const double ry = loop.stmts[y].reach;
      const double edge_p = rx <= 0.0 ? 1.0 : clamp01(ry / rx);
      const double via = clamp01(reexec[x] * edge_p);
      reexec[y] = 1.0 - (1.0 - reexec[y]) * (1.0 - via);
    }
  }

  result.misspec_cost = 0.0;
  for (std::size_t i = 0; i < loop.stmts.size(); ++i) {
    result.misspec_cost += reexec[i] * loop.stmts[i].cost;
  }
  // Callee-internal consumers: profiled re-execution tails.
  for (std::size_t d = 0; d < loop.deps.size(); ++d) {
    const CarriedDep& dep = loop.deps[d];
    if (dep.tail_cost <= 0.0) continue;
    double residual = 0.0;
    switch (partition.actions[d]) {
      case DepAction::kLeave:
        residual = dep.probability;
        break;
      case DepAction::kHoist:
        residual = 0.0;
        break;
      case DepAction::kSvp:
        residual = dep.probability * dep.svp_mispredict;
        break;
    }
    result.misspec_cost += residual * dep.tail_cost;
  }

  // --- Selection model. Steady state with one speculative thread running
  // one iteration ahead: per committed pair of iterations the machine pays
  // the sequential iteration, the pre-fork region, the expected
  // re-execution, and the thread overheads.
  const double T = result.iter_cost;
  const double A = result.prefork_cost + options.fork_overhead;
  const double M = result.misspec_cost;
  const double C = options.commit_overhead;
  result.feasible =
      result.prefork_cost <= options.max_prefork_fraction * T;

  // Probability that a random speculative thread suffers at least one
  // violation: it then pays the replay walk (committed entries retire at
  // replay width) plus the re-execution M, instead of a bulk fast commit.
  double p_clean = 1.0;
  for (std::size_t d = 0; d < loop.deps.size(); ++d) {
    const CarriedDep& dep = loop.deps[d];
    double residual = 0.0;
    switch (partition.actions[d]) {
      case DepAction::kLeave:
        residual = dep.probability;
        break;
      case DepAction::kHoist:
        residual = 0.0;
        break;
      case DepAction::kSvp:
        residual = dep.probability * dep.svp_mispredict;
        break;
    }
    p_clean *= 1.0 - clamp01(residual);
  }
  const double p_violate = 1.0 - p_clean;
  const double replay_walk = T / options.replay_width;
  const double recovery = C + p_violate * (replay_walk + M);

  const double n = std::max(loop.avg_trip, 1.0);
  const double pair_time = T + A + recovery;  // two iterations
  // The sequential reference runs the *original* body: SVP instrumentation
  // only exists in the SPT version.
  const double seq_time = n * loop.iter_cost;
  const double par_time = T + (n - 1.0) * pair_time / 2.0;
  result.est_speedup = par_time <= 0.0 ? 0.0 : seq_time / par_time - 1.0;
  return result;
}

}  // namespace spt::compiler

#include "spt/region_speculation.h"

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "ir/module.h"
#include "trace/trace.h"

namespace spt::compiler {
namespace {

double instrCost(const ir::Instr& instr,
                 const profile::ProfileData& profile) {
  double cost = ir::baseLatency(instr.op);
  if (instr.op == ir::Opcode::kLoad) cost += 2.0;
  if (instr.op == ir::Opcode::kCall) {
    const auto it = profile.calls.find(instr.static_id);
    cost += it != profile.calls.end() ? it->second.avgInstrs() : 20.0;
  }
  return cost;
}

struct SplitChoice {
  std::size_t index = 0;  // suffix starts here
  double prefix_cost = 0.0;
  double suffix_cost = 0.0;
  double penalty = 0.0;
  double score = -1.0;
};

/// Scores every split point of a straight-line block; returns the best.
SplitChoice chooseSplit(const ir::BasicBlock& block,
                        const profile::ProfileData& profile,
                        const CompilerOptions& options) {
  const std::size_t n = block.instrs.size();
  std::vector<double> costs(n);
  for (std::size_t i = 0; i < n; ++i) {
    costs[i] = instrCost(block.instrs[i], profile);
  }
  std::vector<double> prefix_sum(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix_sum[i + 1] = prefix_sum[i] + costs[i];
  }
  const double total = prefix_sum[n];

  SplitChoice best;
  // Last writer of each register so far (index into the block, or none).
  std::vector<ir::Reg> uses;
  for (std::size_t s = 1; s + 1 < n; ++s) {
    const double prefix = prefix_sum[s];
    const double suffix = total - prefix;
    // Dependence penalty: suffix instructions whose register inputs were
    // last written in the prefix re-execute at replay (plus their chains —
    // approximated by doubling).
    double penalty = 0.0;
    std::vector<bool> written_in_prefix(1024, false);
    std::vector<bool> rewritten_in_suffix(1024, false);
    const auto mark = [](std::vector<bool>& v, ir::Reg r) {
      if (r.valid() && r.index < v.size()) v[r.index] = true;
    };
    const auto is = [](const std::vector<bool>& v, ir::Reg r) {
      return r.valid() && r.index < v.size() && v[r.index];
    };
    for (std::size_t i = 0; i < s; ++i) {
      // Constants are value-stable across invocations: the main thread's
      // post-fork rewrite restores the very value the speculative thread
      // read at fork time, so value-based checking never flags them.
      if (block.instrs[i].op == ir::Opcode::kConst) continue;
      mark(written_in_prefix, block.instrs[i].dst);
    }
    for (std::size_t i = s; i < n; ++i) {
      const ir::Instr& instr = block.instrs[i];
      uses.clear();
      instr.appendUses(uses);
      for (const ir::Reg r : uses) {
        if (is(written_in_prefix, r) && !is(rewritten_in_suffix, r)) {
          penalty += 2.0 * costs[i];
          break;
        }
      }
      mark(rewritten_in_suffix, instr.dst);
    }
    const double overlap = std::min(prefix, suffix);
    const double score = overlap -
                         options.region_penalty_weight * penalty -
                         options.fork_overhead - options.commit_overhead;
    if (score > best.score) {
      best = {s, prefix, suffix, penalty, score};
    }
  }
  return best;
}

}  // namespace

std::vector<RegionPlanEntry> applyRegionSpeculation(
    ir::Module& module, const profile::ProfileData& profile,
    const CompilerOptions& options) {
  std::vector<RegionPlanEntry> plan;

  for (ir::FuncId f = 0; f < module.functionCount(); ++f) {
    ir::Function& func = module.function(f);
    // Loop membership on the pristine function.
    const analysis::Cfg cfg(func);
    const analysis::DomTree dom(cfg);
    const analysis::LoopForest forest(cfg, dom);

    const std::size_t original_blocks = func.blocks.size();
    for (ir::BlockId b = 0; b < original_blocks; ++b) {
      if (forest.innermostLoopOf(b) != analysis::kInvalidLoop) continue;
      if (!cfg.reachable(b)) continue;
      const ir::BasicBlock& block = func.blocks[b];
      if (block.instrs.size() < 8) continue;
      bool has_spt = false;
      double total_cost = 0.0;
      for (const ir::Instr& instr : block.instrs) {
        has_spt |= instr.op == ir::Opcode::kSptFork ||
                   instr.op == ir::Opcode::kSptKill;
        total_cost += instrCost(instr, profile);
      }
      if (has_spt || total_cost < options.region_min_cost) continue;

      const SplitChoice split = chooseSplit(block, profile, options);
      if (split.score < options.region_min_benefit) continue;

      // Split: the suffix (including the terminator) moves to a new block;
      // the fork goes at the *top* of the prefix so the speculative thread
      // overlaps all of it.
      RegionPlanEntry entry;
      entry.func = f;
      entry.block = b;
      entry.prefix_cost = split.prefix_cost;
      entry.suffix_cost = split.suffix_cost;
      entry.dependence_penalty = split.penalty;

      ir::BasicBlock suffix;
      suffix.id = static_cast<ir::BlockId>(func.blocks.size());
      suffix.label =
          (block.label.empty() ? "B" + std::to_string(b) : block.label) +
          "_half2";
      {
        ir::BasicBlock& blk = func.blocks[b];
        suffix.instrs.assign(blk.instrs.begin() + split.index,
                             blk.instrs.end());
        blk.instrs.erase(blk.instrs.begin() + split.index,
                         blk.instrs.end());
        ir::Instr fork;
        fork.op = ir::Opcode::kSptFork;
        fork.target0 = suffix.id;
        blk.instrs.insert(blk.instrs.begin(), fork);
        ir::Instr br;
        br.op = ir::Opcode::kBr;
        br.target0 = suffix.id;
        blk.instrs.push_back(br);
      }
      func.blocks.push_back(std::move(suffix));

      entry.applied = true;
      entry.name = func.name + "." +
                   (func.blocks[b].label.empty()
                        ? "B" + std::to_string(b)
                        : func.blocks[b].label);
      plan.push_back(std::move(entry));
    }
  }
  return plan;
}

}  // namespace spt::compiler

#include "spt/loop_analysis.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/check.h"

namespace spt::compiler {
namespace {

const ir::Instr& stmtInstr(const ir::Function& func, const StmtRef& ref) {
  return func.blocks[ref.block].instrs[ref.index];
}

double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }

/// Expected executions per loop iteration of every loop block, from edge
/// profiles (the reach-probability annotation of paper Figure 4).
std::unordered_map<ir::BlockId, double> blockFrequencies(
    const ir::Function& func, const analysis::Cfg& cfg,
    const LoopShape& shape, const profile::ProfileData& profile) {
  std::unordered_map<ir::BlockId, double> freq;
  for (const ir::BlockId b : shape.blocks) freq[b] = 0.0;
  freq[shape.header] = 1.0;
  for (const ir::BlockId b : shape.blocks) {
    const double f = freq[b];
    if (f == 0.0) continue;
    const ir::Instr& term = func.blocks[b].terminator();
    if (term.op == ir::Opcode::kBr) {
      if (term.target0 != shape.header && freq.contains(term.target0)) {
        freq[term.target0] += f;
      }
    } else if (term.op == ir::Opcode::kCondBr) {
      const double p = profile.branchTakenProb(term.static_id);
      if (term.target0 != shape.header && freq.contains(term.target0)) {
        freq[term.target0] += f * p;
      }
      if (term.target1 != shape.header && freq.contains(term.target1)) {
        freq[term.target1] += f * (1.0 - p);
      }
    }
    (void)cfg;
  }
  return freq;
}

/// Per-function transitive callee sets (for attributing profiled memory
/// dependences inside callees to the loop's call statements).
std::vector<std::vector<bool>> transitiveCallees(const ir::Module& module) {
  const std::size_t n = module.functionCount();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (ir::FuncId f = 0; f < n; ++f) reach[f][f] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::FuncId f = 0; f < n; ++f) {
      for (const auto& block : module.function(f).blocks) {
        for (const auto& instr : block.instrs) {
          if (instr.op != ir::Opcode::kCall) continue;
          for (ir::FuncId g = 0; g < n; ++g) {
            if (reach[instr.callee][g] && !reach[f][g]) {
              reach[f][g] = true;
              changed = true;
            }
          }
        }
      }
    }
  }
  return reach;
}

class Analyzer {
 public:
  Analyzer(const ir::Module& module, const ir::Function& func,
           const analysis::Cfg& cfg, const analysis::DefUse& defuse,
           const analysis::ModRefSummary& modref, const LoopShape& shape,
           const profile::ProfileData& profile,
           const CompilerOptions& options)
      : module_(module),
        func_(func),
        cfg_(cfg),
        defuse_(defuse),
        modref_(modref),
        shape_(shape),
        profile_(profile),
        options_(options) {}

  LoopAnalysis run() {
    LoopAnalysis out;
    out.shape = shape_;
    buildStmts(out);
    buildDefUseEdges(out);
    buildRegisterDeps(out);
    buildMemoryDeps(out);
    for (CarriedDep& dep : out.deps) {
      computeMovability(out, dep);
      checkSvp(out, dep);
    }
    fillProfileSummary(out);
    return out;
  }

 private:
  void buildStmts(LoopAnalysis& out) {
    const auto freq = blockFrequencies(func_, cfg_, shape_, profile_);
    out.stmts.reserve(shape_.stmts.size());
    for (std::size_t i = 0; i < shape_.stmts.size(); ++i) {
      const StmtRef& ref = shape_.stmts[i];
      const ir::Instr& instr = stmtInstr(func_, ref);
      StmtInfo info;
      info.ref = ref;
      info.sid = instr.static_id;
      info.in_header = i < shape_.header_stmt_count;
      info.reach = clamp01(freq.at(ref.block));
      info.cost = ir::baseLatency(instr.op);
      if (instr.op == ir::Opcode::kLoad) {
        info.cost += 2.0;  // amortized cache latency beyond L1 hit
      } else if (instr.op == ir::Opcode::kCall) {
        const auto it = profile_.calls.find(instr.static_id);
        info.cost += it != profile_.calls.end() ? it->second.avgInstrs()
                                                : 20.0;
      }
      out.stmts.push_back(info);
      sid_to_stmt_[instr.static_id] = i;
    }
    // Iteration cost: statements plus one cycle per block terminator.
    out.iter_cost = 0.0;
    for (const StmtInfo& s : out.stmts) out.iter_cost += s.reach * s.cost;
    for (const ir::BlockId b : shape_.blocks) {
      out.iter_cost += clamp01(freq.at(b));
    }
    out.header_cost = 1.0;  // the header's exit test terminator
    for (std::size_t i = 0; i < shape_.header_stmt_count; ++i) {
      out.header_cost += out.stmts[i].cost;
    }
  }

  void buildDefUseEdges(LoopAnalysis& out) {
    out.uses_of.assign(out.stmts.size(), {});
    // defs_before_[r] tracks def stmt indices in statement order.
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> defs;
    std::vector<ir::Reg> uses;
    for (std::size_t i = 0; i < out.stmts.size(); ++i) {
      const ir::Instr& instr = stmtInstr(func_, out.stmts[i].ref);
      uses.clear();
      instr.appendUses(uses);
      for (const ir::Reg r : uses) {
        const auto it = defs.find(r.index);
        if (it != defs.end() && !it->second.empty()) {
          // Edge from the latest earlier def (the closest producer).
          out.uses_of[it->second.back()].push_back(i);
        } else {
          upward_exposed_[r.index].push_back(i);
        }
      }
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        defs[instr.dst.index].push_back(i);
      }
    }
    all_defs_ = std::move(defs);
  }

  void buildRegisterDeps(LoopAnalysis& out) {
    for (const auto& [reg_index, def_stmts] : all_defs_) {
      const ir::Reg r{reg_index};
      if (!defuse_.isLiveIn(shape_.header, r)) continue;
      // r is loop-carried. Every body def is a violation-candidate source;
      // header defs are satisfied by position.
      for (const std::size_t d : def_stmts) {
        if (out.stmts[d].in_header) continue;
        CarriedDep dep;
        dep.kind = DepKind::kRegister;
        dep.source_stmt = d;
        dep.reg = r;
        dep.probability = clamp01(out.stmts[d].reach);
        const auto it = upward_exposed_.find(reg_index);
        if (it != upward_exposed_.end()) dep.consumers = it->second;
        out.deps.push_back(std::move(dep));
      }
    }
  }

  void buildMemoryDeps(LoopAnalysis& out) {
    const auto mit = profile_.mem_deps.find(shape_.header_sid);
    if (mit == profile_.mem_deps.end()) return;
    const profile::LoopStats* stats = profile_.loopStats(shape_.header_sid);
    if (stats == nullptr || stats->iterations == 0) return;

    std::vector<std::vector<bool>> callee_reach;  // computed lazily
    const auto callStmtsReaching = [&](ir::FuncId target) {
      if (callee_reach.empty()) callee_reach = transitiveCallees(module_);
      std::vector<std::size_t> result;
      for (std::size_t i = 0; i < out.stmts.size(); ++i) {
        const ir::Instr& instr = stmtInstr(func_, out.stmts[i].ref);
        if (instr.op == ir::Opcode::kCall &&
            callee_reach[instr.callee][target]) {
          result.push_back(i);
        }
      }
      return result;
    };

    for (const auto& [pair, stat] : mit->second) {
      const auto [store_sid, load_sid] = pair;
      const double prob = clamp01(static_cast<double>(stat.count) /
                                  static_cast<double>(stats->iterations));

      // Resolve the source side.
      std::vector<std::size_t> sources;
      DepKind kind = DepKind::kMemory;
      if (const auto it = sid_to_stmt_.find(store_sid);
          it != sid_to_stmt_.end()) {
        sources.push_back(it->second);
      } else {
        kind = DepKind::kCallMemory;
        sources = callStmtsReaching(module_.locate(store_sid).func);
      }

      // Resolve the consumer side. A load inside a callee contributes its
      // profiled re-execution tail instead of seeding the cost graph with
      // the whole call statement.
      std::vector<std::size_t> consumers;
      double tail_cost = 0.0;
      if (const auto it = sid_to_stmt_.find(load_sid);
          it != sid_to_stmt_.end()) {
        consumers.push_back(it->second);
      } else {
        tail_cost = stat.avgTail();
      }

      for (const std::size_t src : sources) {
        if (out.stmts[src].in_header) continue;  // satisfied by position
        CarriedDep dep;
        dep.kind = kind;
        dep.source_stmt = src;
        dep.probability = prob;
        dep.consumers = consumers;
        dep.tail_cost = tail_cost;
        out.deps.push_back(std::move(dep));
      }
    }
  }

  bool isMemoryStmt(const ir::Instr& instr) const {
    if (ir::isMemory(instr.op)) return true;
    if (instr.op == ir::Opcode::kHalloc) return true;
    if (instr.op == ir::Opcode::kCall) {
      return !modref_.of(instr.callee).pure();
    }
    return false;
  }

  bool mayAlias(const ir::Instr& a, const ir::Instr& b) const {
    // Same base register and same constant offset: alias; same base with
    // different offsets: disjoint; anything else: unknown (assume alias).
    if (a.a == b.a) return a.imm == b.imm;
    return true;
  }

  /// Attempts to compute the hoistable backward slice of dep's source.
  void computeMovability(LoopAnalysis& out, CarriedDep& dep) {
    dep.movable = false;
    const std::size_t src = dep.source_stmt;
    const ir::Instr& src_instr = stmtInstr(func_, out.stmts[src].ref);

    // Only register-dep sources are hoisted via the temp pattern; store
    // sources could in principle hoist but require whole-prefix memory
    // motion, and call sources never move.
    if (dep.kind != DepKind::kRegister) return;
    // The temp pattern (t = next value pre-fork, r = t at body top,
    // header uses rewritten to t) requires r to have exactly one loop def.
    if (!uniqueDef(dep)) return;
    // A source in a conditional arm needs branch copying (paper Section
    // 4.3): the pre-fork region re-evaluates the guard, computes t = next
    // value on the taken side, and t = r (unchanged) on the other.
    const ir::BlockId src_block = out.stmts[dep.source_stmt].ref.block;
    if (!shape_.isMandatory(src_block)) {
      if (!resolveBranchCopy(dep, src_block)) return;
    }
    if (src_instr.op == ir::Opcode::kCall &&
        !modref_.of(src_instr.callee).pure()) {
      return;
    }
    if (src_instr.op == ir::Opcode::kStore ||
        src_instr.op == ir::Opcode::kHalloc) {
      return;
    }

    // Grow the slice: the source's transitive register inputs. With branch
    // copying, the guard condition's producers join the slice too.
    std::vector<bool> in_slice(out.stmts.size(), false);
    std::vector<std::size_t> work{src};
    if (dep.needs_branch_copy && dep.guard_cond.valid()) {
      const auto git = all_defs_.find(dep.guard_cond.index);
      if (git != all_defs_.end()) {
        std::size_t latest = SIZE_MAX;
        for (const std::size_t d : git->second) {
          // The guard is evaluated before the arm: its producer cannot be
          // inside the arm itself.
          if (d < src && out.stmts[d].ref.block != dep.arm_block) latest = d;
        }
        if (latest != SIZE_MAX) work.push_back(latest);
      }
    }
    std::vector<std::size_t> slice;
    std::vector<ir::Reg> uses;
    while (!work.empty()) {
      const std::size_t s = work.back();
      work.pop_back();
      if (in_slice[s]) continue;
      const StmtInfo& info = out.stmts[s];
      if (info.in_header) continue;  // already pre-fork by position
      // Statements must execute exactly once per iteration, except inside
      // the branch-copied arm itself.
      if (!shape_.isMandatory(info.ref.block) &&
          !(dep.needs_branch_copy && info.ref.block == dep.arm_block)) {
        return;
      }
      const ir::Instr& instr = stmtInstr(func_, info.ref);
      if (instr.op == ir::Opcode::kStore ||
          instr.op == ir::Opcode::kHalloc) {
        return;  // stores pin the memory order
      }
      if (instr.op == ir::Opcode::kCall && !modref_.of(instr.callee).pure()) {
        return;
      }
      // A moved statement's destination must not clobber a value still
      // needed at the top of the body (an earlier statement reading it).
      // The source itself is exempt: it is re-emitted into a fresh
      // temporary pre-fork, and the original becomes r = mov t in place.
      if (s != src && instr.dst.valid()) {
        // Header statements run before the pre-fork region, so only body
        // statements ahead of s can observe the clobber.
        for (std::size_t e = shape_.header_stmt_count; e < s; ++e) {
          if (stmtInstr(func_, out.stmts[e].ref).uses(instr.dst)) return;
        }
        // Code motion must not cross another def of the same register:
        // require the moved statement to be its register's only body def.
        const auto dit = all_defs_.find(instr.dst.index);
        if (dit != all_defs_.end() && dit->second.size() != 1) return;
      }
      in_slice[s] = true;
      slice.push_back(s);
      // Register inputs: latest earlier defs join the slice.
      uses.clear();
      instr.appendUses(uses);
      for (const ir::Reg r : uses) {
        const auto it = all_defs_.find(r.index);
        if (it == all_defs_.end()) continue;
        std::size_t latest = SIZE_MAX;
        for (const std::size_t d : it->second) {
          if (d < s) latest = d;
        }
        if (latest != SIZE_MAX && !in_slice[latest]) work.push_back(latest);
      }
    }

    // Memory safety: a hoisted load must not move above a body store (or
    // impure call) that stays behind, unless provably disjoint.
    for (const std::size_t s : slice) {
      const ir::Instr& instr = stmtInstr(func_, out.stmts[s].ref);
      if (instr.op != ir::Opcode::kLoad) continue;
      for (std::size_t e = 0; e < s; ++e) {
        if (in_slice[e] || out.stmts[e].in_header) continue;
        const ir::Instr& other = stmtInstr(func_, out.stmts[e].ref);
        if (!isMemoryStmt(other)) continue;
        if (other.op == ir::Opcode::kLoad) continue;  // load/load reorder ok
        if (other.op == ir::Opcode::kStore && !mayAlias(instr, other)) {
          continue;
        }
        return;  // unhoisted prior write the load would cross
      }
    }

    std::sort(slice.begin(), slice.end());
    dep.slice = std::move(slice);
    dep.slice_cost = 0.0;
    for (const std::size_t s : dep.slice) dep.slice_cost += out.stmts[s].cost;
    dep.movable = true;
  }

  /// True when dep.reg has exactly one loop def — dep's source.
  bool uniqueDef(const CarriedDep& dep) const {
    const auto it = all_defs_.find(dep.reg.index);
    if (it == all_defs_.end() || it->second.size() != 1) return false;
    return it->second.front() == dep.source_stmt;
  }

  /// True when dep.reg has exactly one loop def — dep's source — and that
  /// def sits in a mandatory block (executes every iteration).
  bool uniqueUnconditionalDef(const LoopAnalysis& out,
                              const CarriedDep& dep) const {
    if (!uniqueDef(dep)) return false;
    return shape_.isMandatory(out.stmts[dep.source_stmt].ref.block);
  }

  /// Checks whether `arm` is a simple conditional arm eligible for branch
  /// copying: a non-header loop block with exactly one in-loop
  /// predecessor, which is mandatory and ends in a condbr targeting the
  /// arm, and the arm falls through to a join with an unconditional
  /// branch. Fills the dep's guard fields on success.
  bool resolveBranchCopy(CarriedDep& dep, ir::BlockId arm) const {
    if (arm == shape_.header || arm == shape_.body_entry) return false;
    // Single in-loop predecessor.
    ir::BlockId pred = ir::kInvalidBlock;
    for (const ir::BlockId p : cfg_.preds(arm)) {
      if (!shapeContains(p)) continue;
      if (pred != ir::kInvalidBlock) return false;
      pred = p;
    }
    if (pred == ir::kInvalidBlock || !shape_.isMandatory(pred)) return false;
    const ir::Instr& term = func_.blocks[pred].terminator();
    if (term.op != ir::Opcode::kCondBr) return false;
    if (term.target0 != arm && term.target1 != arm) return false;
    if (func_.blocks[arm].terminator().op != ir::Opcode::kBr) return false;
    dep.needs_branch_copy = true;
    dep.guard_cond = term.a;
    dep.guard_taken_side = term.target0 == arm;
    dep.arm_block = arm;
    return true;
  }

  bool shapeContains(ir::BlockId b) const {
    for (const ir::BlockId blk : shape_.blocks) {
      if (blk == b) return true;
    }
    return false;
  }

  void checkSvp(LoopAnalysis& out, CarriedDep& dep) {
    dep.svp_applicable = false;
    if (dep.kind != DepKind::kRegister) return;
    if (!uniqueUnconditionalDef(out, dep)) return;
    const ir::Instr& src = stmtInstr(func_, out.stmts[dep.source_stmt].ref);
    if (!src.dst.valid()) return;
    const auto it = profile_.values.find(src.static_id);
    if (it == profile_.values.end()) return;
    const double predictability = it->second.predictability();
    if (predictability < options_.svp_min_predictability) return;
    dep.svp_applicable = true;
    dep.svp_mispredict = 1.0 - predictability;
    dep.svp_stride = it->second.bestStride();
  }

  void fillProfileSummary(LoopAnalysis& out) {
    const profile::LoopStats* stats = profile_.loopStats(shape_.header_sid);
    if (stats == nullptr) return;
    out.avg_trip = stats->avgTripCount();
    out.avg_body_size = stats->avgBodySize();
    out.coverage = profile_.total_instrs == 0
                       ? 0.0
                       : static_cast<double>(stats->dyn_instrs) /
                             static_cast<double>(profile_.total_instrs);
  }

  const ir::Module& module_;
  const ir::Function& func_;
  const analysis::Cfg& cfg_;
  const analysis::DefUse& defuse_;
  const analysis::ModRefSummary& modref_;
  const LoopShape& shape_;
  const profile::ProfileData& profile_;
  const CompilerOptions& options_;

  std::unordered_map<ir::StaticId, std::size_t> sid_to_stmt_;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> all_defs_;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>>
      upward_exposed_;
};

}  // namespace

LoopAnalysis analyzeLoop(const ir::Module& module, const ir::Function& func,
                         const analysis::Cfg& cfg,
                         const analysis::DefUse& defuse,
                         const analysis::ModRefSummary& modref,
                         const LoopShape& shape,
                         const profile::ProfileData& profile,
                         const CompilerOptions& options) {
  SPT_CHECK_MSG(shape.transformable, "analyzeLoop requires a canonical loop");
  return Analyzer(module, func, cfg, defuse, modref, shape, profile, options)
      .run();
}

}  // namespace spt::compiler

// The SPT pass pipeline: typed passes over a shared PassContext.
//
// Each pipeline attempt (the initial compile and the optional deny-unroll
// restart) runs the same fixed pass sequence the old monolithic driver
// inlined:
//
//   unroll-preprocess        profile; unroll small hot bodies; re-profile
//   loop-candidate-selection shape + profile filters, SVP candidate sids
//   value-profiling          instrumented SVP profiling run (Section 4.4)
//   partition-search         optimal hoist/leave/SVP partition per candidate
//   good-loop-selection      cost-driven pass-2 selection
//   region-speculation       Section 6 extension (off by default)
//   spt-transform            apply the SPT transformation; final verify
//
// The PassManager times every pass, tracks which passes mutate the IR
// (invalidating the AnalysisManager), and — with
// CompilerOptions::verify_between_passes — runs the IR verifier after each
// pass, failing with the full violation list. Passes communicate through
// PipelineState, which is exactly the set of locals the monolith threaded
// between its phases; the golden-plan tests pin that the decomposition
// changed nothing.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "spt/analysis_manager.h"
#include "spt/driver.h"
#include "spt/loop_analysis.h"
#include "spt/plan.h"
#include "spt/profile_cache.h"
#include "spt/remarks.h"

namespace spt::compiler {

/// Everything a pipeline attempt accumulates and hands from pass to pass.
struct PipelineState {
  /// Loops that must not be unrolled this attempt (restart deny-list).
  const std::unordered_set<std::string>* deny_unroll = nullptr;

  profile::ProfileData profile;
  std::map<std::string, int> unroll_factors;
  std::unordered_set<ir::StaticId> value_candidates;

  /// A loop that survived the pass-1 filters, by position in the plan.
  struct Candidate {
    ir::FuncId func = ir::kInvalidFunc;
    analysis::LoopId loop = 0;
    std::size_t plan_index = 0;
  };
  std::vector<Candidate> candidates;

  /// Partition-search results awaiting selection / transformation.
  std::vector<std::pair<std::size_t, LoopAnalysis>> searched;
  std::vector<std::pair<std::size_t, LoopAnalysis>> to_transform;

  SptPlan plan;
};

struct PassContext {
  ir::Module& module;
  ProfileRunner& runner;
  const CompilerOptions& options;
  AnalysisManager& analyses;
  ProfileCache& profiles;
  PipelineState& state;

  /// Cache-memoized profiling run of the current module.
  profile::ProfileData profileRun(
      const std::unordered_set<ir::StaticId>& value_candidates) {
    return profiles.run(module, value_candidates, runner);
  }
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string_view name() const = 0;
  /// Returns true iff the pass mutated the IR; the PassManager then drops
  /// every cached analysis.
  virtual bool run(PassContext& ctx) = 0;
};

class PassManager {
 public:
  /// `verify_between_passes` runs the IR verifier after every pass and
  /// aborts with the collected violation list on failure.
  explicit PassManager(bool verify_between_passes = false)
      : verify_(verify_between_passes) {}

  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  /// Runs every pass in order over `ctx`, accumulating per-pass stats
  /// (merged by name across attempts when reused).
  void run(PassContext& ctx);

  const std::vector<PassRemark>& stats() const { return stats_; }

 private:
  PassRemark& statFor(std::string_view name);

  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassRemark> stats_;
  bool verify_ = false;
};

/// Appends the standard SPT pipeline (the sequence documented above) to
/// `pm`.
void buildSptPipeline(PassManager& pm);

}  // namespace spt::compiler

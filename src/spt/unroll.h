// Loop unrolling preprocessing (paper Section 4.1).
//
// Small loop bodies cannot amortize the fork/commit overheads, so the SPT
// compiler unrolls them before partitioning. The transformation preserves
// the canonical top-test shape: each cloned body is preceded by a cloned
// exit test that jumps back to the original header (which re-tests and
// exits) when the trip count ends inside the unrolled body — exits remain
// solely at the original header, and sequential semantics are unchanged.
#pragma once

#include "spt/loop_shape.h"

namespace spt::compiler {

/// Unrolls the canonical loop by `factor` (>= 2), mutating the function.
/// Returns false (leaving the module untouched) if the shape does not
/// support it. Invalidates analyses and StaticIds: re-finalize afterwards.
bool unrollLoop(ir::Module& module, const LoopShape& shape,
                std::uint32_t factor);

}  // namespace spt::compiler

// Region-based speculation (paper Section 6, future work).
//
// "Region-based speculation is believed to be a potential approach, which
// tries to parallelize a sequential piece of code by executing its first
// half and second half in parallel."
//
// This pass implements that idea for straight-line regions: a large basic
// block outside any loop is split in two; an spt_fork at the top of the
// block starts a speculative thread at the second half while the main
// thread executes the first. The split point balances the two halves while
// minimizing the registers the second half reads from the first (each such
// read is a guaranteed violation whose dependents replay).
//
// Off by default (CompilerOptions::enable_region_speculation): like the
// paper, we treat it as an extension; bench_ext_region_speculation measures
// what it buys on the call-dominated workloads (vortex, gap's sweep).
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"
#include "profile/profile_data.h"
#include "spt/options.h"

namespace spt::compiler {

struct RegionPlanEntry {
  std::string name;  // "func.label" of the split block
  ir::FuncId func = ir::kInvalidFunc;
  ir::BlockId block = ir::kInvalidBlock;
  double prefix_cost = 0.0;
  double suffix_cost = 0.0;
  double dependence_penalty = 0.0;
  bool applied = false;
};

/// Finds and applies region speculation across the module (blocks outside
/// loops with enough straight-line work). Mutates the module; call
/// finalize() afterwards. Returns one entry per applied region.
std::vector<RegionPlanEntry> applyRegionSpeculation(
    ir::Module& module, const profile::ProfileData& profile,
    const CompilerOptions& options);

}  // namespace spt::compiler

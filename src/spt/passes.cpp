// The concrete SPT pipeline passes (see pass.h for the sequence). Each
// pass is a faithful decomposition of one phase of the former monolithic
// SptCompiler::compileOnce; the golden-plan tests pin the plans
// bit-identical to that monolith.
#include <cmath>

#include "ir/verifier.h"
#include "spt/loop_shape.h"
#include "spt/partition_search.h"
#include "spt/pass.h"
#include "spt/region_speculation.h"
#include "spt/transform.h"
#include "spt/unroll.h"
#include "support/check.h"

namespace spt::compiler {
namespace {

/// Applies the pass-1 candidate filters; returns an empty string when the
/// loop qualifies, otherwise the rejection reason.
std::string filterReason(const LoopShape& shape,
                         const profile::LoopStats* stats,
                         std::uint64_t total_instrs,
                         const CompilerOptions& options) {
  if (stats == nullptr || stats->iterations == 0) return "never executed";
  const double coverage =
      total_instrs == 0
          ? 0.0
          : static_cast<double>(stats->dyn_instrs) / total_instrs;
  if (coverage < options.min_coverage) return "coverage too small";
  if (stats->avgBodySize() < options.min_avg_body_size) {
    return "body too small";
  }
  if (stats->avgBodySize() > options.max_avg_body_size) {
    return "body too large";
  }
  if (stats->avgTripCount() < options.min_avg_trip_count) {
    return "trip count too small";
  }
  if (!shape.transformable) return shape.reject_reason;
  return "";
}

/// Takes the initial profile, unrolls small hot candidate bodies before
/// everything else (StaticIds change, so re-profiles afterwards), honoring
/// the restart deny-list.
class UnrollPreprocessPass : public Pass {
 public:
  std::string_view name() const override { return "unroll-preprocess"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    st.profile = ctx.profileRun({});
    if (!ctx.options.enable_unrolling) return false;

    bool changed = false;
    for (ir::FuncId f = 0; f < ctx.module.functionCount(); ++f) {
      const ir::Function& func = ctx.module.function(f);
      const analysis::Cfg& cfg = ctx.analyses.cfg(f);
      const analysis::LoopForest& forest = ctx.analyses.loopForest(f);
      // Recognize all shapes first: unrolling appends blocks.
      std::vector<LoopShape> shapes;
      for (analysis::LoopId l = 0; l < forest.loopCount(); ++l) {
        shapes.push_back(recognizeLoop(ctx.module, func, cfg, forest, l));
      }
      bool func_changed = false;
      for (const LoopShape& shape : shapes) {
        if (!shape.transformable) continue;
        if (st.deny_unroll != nullptr &&
            st.deny_unroll->contains(shape.name)) {
          continue;
        }
        const profile::LoopStats* stats =
            st.profile.loopStats(shape.header_sid);
        if (stats == nullptr || stats->iterations == 0) continue;
        const double body = stats->avgBodySize();
        if (body < ctx.options.min_avg_body_size ||
            body >= ctx.options.unroll_body_threshold ||
            stats->avgTripCount() < 2.0 * ctx.options.min_avg_trip_count) {
          continue;
        }
        const auto factor = static_cast<std::uint32_t>(std::min<double>(
            ctx.options.max_unroll_factor,
            std::ceil(ctx.options.unroll_body_threshold /
                      std::max(body, 1.0))));
        if (factor < 2) continue;
        if (unrollLoop(ctx.module, shape, factor)) {
          st.unroll_factors[shape.name] = static_cast<int>(factor);
          func_changed = changed = true;
        }
      }
      // The cached cfg/forest referenced above are stale once the function
      // mutates; drop them before the next function's queries.
      if (func_changed) ctx.analyses.invalidateFunction(f);
    }
    if (changed) {
      ctx.module.finalize();
      SPT_CHECK_MSG(ir::verifyModule(ctx.module).empty(),
                    "unrolling produced an invalid module");
      st.profile = ctx.profileRun({});
    }
    return changed;
  }
};

/// Pass 1: shape recognition, profile filters, dependence analysis, and
/// SVP value-candidate collection.
class LoopCandidateSelectionPass : public Pass {
 public:
  std::string_view name() const override {
    return "loop-candidate-selection";
  }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    st.plan.profiled_instrs = st.profile.total_instrs;

    for (ir::FuncId f = 0; f < ctx.module.functionCount(); ++f) {
      const ir::Function& func = ctx.module.function(f);
      const analysis::Cfg& cfg = ctx.analyses.cfg(f);
      const analysis::LoopForest& forest = ctx.analyses.loopForest(f);
      const analysis::DefUse& defuse = ctx.analyses.defUse(f);
      for (analysis::LoopId l = 0; l < forest.loopCount(); ++l) {
        const LoopShape shape =
            recognizeLoop(ctx.module, func, cfg, forest, l);
        LoopPlanEntry entry;
        entry.name = shape.name;
        entry.func = f;
        entry.header_sid = shape.header_sid;
        if (const auto it = st.unroll_factors.find(shape.name);
            it != st.unroll_factors.end()) {
          entry.unroll_factor = it->second;
        }
        if (const profile::LoopStats* stats =
                st.profile.loopStats(shape.header_sid)) {
          entry.coverage = st.profile.total_instrs == 0
                               ? 0.0
                               : static_cast<double>(stats->dyn_instrs) /
                                     st.profile.total_instrs;
          entry.avg_body_size = stats->avgBodySize();
          entry.avg_trip = stats->avgTripCount();
        }
        entry.reject_reason =
            filterReason(shape, st.profile.loopStats(shape.header_sid),
                         st.profile.total_instrs, ctx.options);
        entry.candidate = entry.reject_reason.empty();
        if (entry.candidate) {
          const LoopAnalysis analysis =
              analyzeLoop(ctx.module, func, cfg, defuse,
                          ctx.analyses.modRef(), shape, st.profile,
                          ctx.options);
          for (const CarriedDep& dep : analysis.deps) {
            if (dep.kind == DepKind::kRegister) {
              st.value_candidates.insert(analysis.stmts[dep.source_stmt].sid);
            }
          }
          st.candidates.push_back({f, l, st.plan.loops.size()});
        }
        st.plan.loops.push_back(std::move(entry));
      }
    }
    return false;
  }
};

/// SVP value-profiling pass (the paper's instrumented profiling run,
/// Section 4.4).
class ValueProfilingPass : public Pass {
 public:
  std::string_view name() const override { return "value-profiling"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    if (!st.value_candidates.empty() && ctx.options.enable_svp) {
      st.profile = ctx.profileRun(st.value_candidates);
    }
    return false;
  }
};

/// Partition search per candidate: re-analyzes each candidate loop against
/// the (possibly value-augmented) profile and records the optimal
/// partition and its cost in the plan.
class PartitionSearchPass : public Pass {
 public:
  std::string_view name() const override { return "partition-search"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    for (const PipelineState::Candidate& c : st.candidates) {
      const ir::Function& func = ctx.module.function(c.func);
      const analysis::Cfg& cfg = ctx.analyses.cfg(c.func);
      const analysis::LoopForest& forest = ctx.analyses.loopForest(c.func);
      const analysis::DefUse& defuse = ctx.analyses.defUse(c.func);
      const LoopShape shape =
          recognizeLoop(ctx.module, func, cfg, forest, c.loop);
      SPT_CHECK(shape.transformable);
      LoopAnalysis analysis =
          analyzeLoop(ctx.module, func, cfg, defuse, ctx.analyses.modRef(),
                      shape, st.profile, ctx.options);
      const SearchResult search = searchOptimalPartition(analysis,
                                                         ctx.options);

      LoopPlanEntry& entry = st.plan.loops[c.plan_index];
      entry.dep_count = analysis.deps.size();
      entry.actions = search.partition.actions;
      entry.cost = search.cost;
      entry.evaluated = search.evaluated;
      st.searched.emplace_back(c.plan_index, std::move(analysis));
    }
    return false;
  }
};

/// Pass-2 selection: keeps all good (and only good) loops by estimated
/// speedup (or every feasible candidate when cost-driven selection is
/// disabled for ablation).
class GoodLoopSelectionPass : public Pass {
 public:
  std::string_view name() const override { return "good-loop-selection"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    for (auto& [plan_index, analysis] : st.searched) {
      LoopPlanEntry& entry = st.plan.loops[plan_index];
      const bool good =
          !ctx.options.cost_driven_selection ||
          (entry.cost.feasible &&
           entry.cost.est_speedup >= ctx.options.min_estimated_speedup);
      entry.selected = good;
      if (!good) {
        entry.reject_reason =
            !entry.cost.feasible
                ? "no feasible partition (pre-fork too large)"
                : "estimated speedup below threshold";
        continue;
      }
      st.to_transform.emplace_back(plan_index, std::move(analysis));
    }
    st.searched.clear();
    return false;
  }
};

/// Region-based speculation (Section 6 extension): applied before the loop
/// transformations (both mutate disjoint blocks, and the region pass reads
/// call costs from the current profile's StaticIds).
class RegionSpeculationPass : public Pass {
 public:
  std::string_view name() const override { return "region-speculation"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    if (!ctx.options.enable_region_speculation) return false;
    st.plan.regions =
        applyRegionSpeculation(ctx.module, st.profile, ctx.options);
    return !st.plan.regions.empty();
  }
};

/// Applies the SPT transformation to every selected loop, then finalizes
/// and verifies the transformed module.
class SptTransformPass : public Pass {
 public:
  std::string_view name() const override { return "spt-transform"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    bool mutated = false;
    for (auto& [plan_index, analysis] : st.to_transform) {
      LoopPlanEntry& entry = st.plan.loops[plan_index];
      Partition partition;
      partition.actions = entry.actions;
      const TransformOutcome outcome =
          transformLoop(ctx.module, analysis, partition);
      entry.transformed = outcome.applied;
      entry.transform_detail = outcome.detail;
      if (!outcome.applied) entry.reject_reason = outcome.detail;
      mutated |= outcome.applied;
    }
    st.to_transform.clear();

    ctx.module.finalize();
    SPT_CHECK_MSG(ir::verifyModule(ctx.module).empty(),
                  "SPT transformation produced an invalid module");
    return mutated;
  }
};

}  // namespace

void buildSptPipeline(PassManager& pm) {
  pm.add(std::make_unique<UnrollPreprocessPass>());
  pm.add(std::make_unique<LoopCandidateSelectionPass>());
  pm.add(std::make_unique<ValueProfilingPass>());
  pm.add(std::make_unique<PartitionSearchPass>());
  pm.add(std::make_unique<GoodLoopSelectionPass>());
  pm.add(std::make_unique<RegionSpeculationPass>());
  pm.add(std::make_unique<SptTransformPass>());
}

}  // namespace spt::compiler

// The concrete SPT pipeline passes (see pass.h for the sequence). Each
// pass is a faithful decomposition of one phase of the former monolithic
// SptCompiler::compileOnce; the golden-plan tests pin the plans
// bit-identical to that monolith.
#include <algorithm>
#include <cmath>

#include "ir/verifier.h"
#include "spt/loop_shape.h"
#include "spt/partition_search.h"
#include "spt/pass.h"
#include "spt/region_speculation.h"
#include "spt/transform.h"
#include "spt/unroll.h"
#include "support/check.h"
#include "trace/trace.h"

namespace spt::compiler {
namespace {

/// Applies the pass-1 candidate filters; returns an empty string when the
/// loop qualifies, otherwise the rejection reason.
std::string filterReason(const LoopShape& shape,
                         const profile::LoopStats* stats,
                         std::uint64_t total_instrs,
                         const CompilerOptions& options) {
  if (stats == nullptr || stats->iterations == 0) return "never executed";
  const double coverage =
      total_instrs == 0
          ? 0.0
          : static_cast<double>(stats->dyn_instrs) / total_instrs;
  if (coverage < options.min_coverage) return "coverage too small";
  if (stats->avgBodySize() < options.min_avg_body_size) {
    return "body too small";
  }
  if (stats->avgBodySize() > options.max_avg_body_size) {
    return "body too large";
  }
  if (stats->avgTripCount() < options.min_avg_trip_count) {
    return "trip count too small";
  }
  if (!shape.transformable) return shape.reject_reason;
  return "";
}

/// Takes the initial profile, unrolls small hot candidate bodies before
/// everything else (StaticIds change, so re-profiles afterwards), honoring
/// the restart deny-list.
class UnrollPreprocessPass : public Pass {
 public:
  std::string_view name() const override { return "unroll-preprocess"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    st.profile = ctx.profileRun({});
    if (!ctx.options.enable_unrolling) return false;

    bool changed = false;
    for (ir::FuncId f = 0; f < ctx.module.functionCount(); ++f) {
      const ir::Function& func = ctx.module.function(f);
      const analysis::Cfg& cfg = ctx.analyses.cfg(f);
      const analysis::LoopForest& forest = ctx.analyses.loopForest(f);
      // Recognize all shapes first: unrolling appends blocks.
      std::vector<LoopShape> shapes;
      for (analysis::LoopId l = 0; l < forest.loopCount(); ++l) {
        shapes.push_back(recognizeLoop(ctx.module, func, cfg, forest, l));
      }
      bool func_changed = false;
      for (const LoopShape& shape : shapes) {
        if (!shape.transformable) continue;
        if (st.deny_unroll != nullptr &&
            st.deny_unroll->contains(shape.name)) {
          continue;
        }
        const profile::LoopStats* stats =
            st.profile.loopStats(shape.header_sid);
        if (stats == nullptr || stats->iterations == 0) continue;
        const double body = stats->avgBodySize();
        if (body < ctx.options.min_avg_body_size ||
            body >= ctx.options.unroll_body_threshold ||
            stats->avgTripCount() < 2.0 * ctx.options.min_avg_trip_count) {
          continue;
        }
        const auto factor = static_cast<std::uint32_t>(std::min<double>(
            ctx.options.max_unroll_factor,
            std::ceil(ctx.options.unroll_body_threshold /
                      std::max(body, 1.0))));
        if (factor < 2) continue;
        if (unrollLoop(ctx.module, shape, factor)) {
          st.unroll_factors[shape.name] = static_cast<int>(factor);
          func_changed = changed = true;
        }
      }
      // The cached cfg/forest referenced above are stale once the function
      // mutates; drop them before the next function's queries.
      if (func_changed) ctx.analyses.invalidateFunction(f);
    }
    if (changed) {
      ctx.module.finalize();
      SPT_CHECK_MSG(ir::verifyModule(ctx.module).empty(),
                    "unrolling produced an invalid module");
      st.profile = ctx.profileRun({});
    }
    return changed;
  }
};

/// Pass 1: shape recognition, profile filters, dependence analysis, and
/// SVP value-candidate collection.
class LoopCandidateSelectionPass : public Pass {
 public:
  std::string_view name() const override {
    return "loop-candidate-selection";
  }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    st.plan.profiled_instrs = st.profile.total_instrs;

    for (ir::FuncId f = 0; f < ctx.module.functionCount(); ++f) {
      const ir::Function& func = ctx.module.function(f);
      const analysis::Cfg& cfg = ctx.analyses.cfg(f);
      const analysis::LoopForest& forest = ctx.analyses.loopForest(f);
      const analysis::DefUse& defuse = ctx.analyses.defUse(f);
      for (analysis::LoopId l = 0; l < forest.loopCount(); ++l) {
        const LoopShape shape =
            recognizeLoop(ctx.module, func, cfg, forest, l);
        LoopPlanEntry entry;
        entry.name = shape.name;
        entry.func = f;
        entry.header_sid = shape.header_sid;
        if (const auto it = st.unroll_factors.find(shape.name);
            it != st.unroll_factors.end()) {
          entry.unroll_factor = it->second;
        }
        if (const profile::LoopStats* stats =
                st.profile.loopStats(shape.header_sid)) {
          entry.coverage = st.profile.total_instrs == 0
                               ? 0.0
                               : static_cast<double>(stats->dyn_instrs) /
                                     st.profile.total_instrs;
          entry.avg_body_size = stats->avgBodySize();
          entry.avg_trip = stats->avgTripCount();
        }
        entry.reject_reason =
            filterReason(shape, st.profile.loopStats(shape.header_sid),
                         st.profile.total_instrs, ctx.options);
        entry.candidate = entry.reject_reason.empty();
        if (entry.candidate) {
          const LoopAnalysis analysis =
              analyzeLoop(ctx.module, func, cfg, defuse,
                          ctx.analyses.modRef(), shape, st.profile,
                          ctx.options);
          for (const CarriedDep& dep : analysis.deps) {
            if (dep.kind == DepKind::kRegister) {
              st.value_candidates.insert(analysis.stmts[dep.source_stmt].sid);
            }
          }
          st.candidates.push_back({f, l, st.plan.loops.size()});
        }
        st.plan.loops.push_back(std::move(entry));
      }
    }
    return false;
  }
};

/// SVP value-profiling pass (the paper's instrumented profiling run,
/// Section 4.4).
class ValueProfilingPass : public Pass {
 public:
  std::string_view name() const override { return "value-profiling"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    if (!st.value_candidates.empty() && ctx.options.enable_svp) {
      st.profile = ctx.profileRun(st.value_candidates);
    }
    return false;
  }
};

/// Partition search per candidate: re-analyzes each candidate loop against
/// the (possibly value-augmented) profile and records the optimal
/// partition and its cost in the plan.
class PartitionSearchPass : public Pass {
 public:
  std::string_view name() const override { return "partition-search"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    for (const PipelineState::Candidate& c : st.candidates) {
      const ir::Function& func = ctx.module.function(c.func);
      const analysis::Cfg& cfg = ctx.analyses.cfg(c.func);
      const analysis::LoopForest& forest = ctx.analyses.loopForest(c.func);
      const analysis::DefUse& defuse = ctx.analyses.defUse(c.func);
      const LoopShape shape =
          recognizeLoop(ctx.module, func, cfg, forest, c.loop);
      SPT_CHECK(shape.transformable);
      LoopAnalysis analysis =
          analyzeLoop(ctx.module, func, cfg, defuse, ctx.analyses.modRef(),
                      shape, st.profile, ctx.options);
      const SearchResult search = searchOptimalPartition(analysis,
                                                         ctx.options);

      LoopPlanEntry& entry = st.plan.loops[c.plan_index];
      entry.dep_count = analysis.deps.size();
      entry.actions = search.partition.actions;
      entry.cost = search.cost;
      entry.evaluated = search.evaluated;
      st.searched.emplace_back(c.plan_index, std::move(analysis));
    }
    return false;
  }
};

/// Pass-2 selection: keeps all good (and only good) loops by estimated
/// speedup (or every feasible candidate when cost-driven selection is
/// disabled for ablation).
class GoodLoopSelectionPass : public Pass {
 public:
  std::string_view name() const override { return "good-loop-selection"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    for (auto& [plan_index, analysis] : st.searched) {
      LoopPlanEntry& entry = st.plan.loops[plan_index];
      const bool good =
          !ctx.options.cost_driven_selection ||
          (entry.cost.feasible &&
           entry.cost.est_speedup >= ctx.options.min_estimated_speedup);
      entry.selected = good;
      if (!good) {
        entry.reject_reason =
            !entry.cost.feasible
                ? "no feasible partition (pre-fork too large)"
                : "estimated speedup below threshold";
        continue;
      }
      st.to_transform.emplace_back(plan_index, std::move(analysis));
    }
    st.searched.clear();
    return false;
  }
};

/// Region-based speculation (Section 6 extension): applied before the loop
/// transformations (both mutate disjoint blocks, and the region pass reads
/// call costs from the current profile's StaticIds).
class RegionSpeculationPass : public Pass {
 public:
  std::string_view name() const override { return "region-speculation"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    if (!ctx.options.enable_region_speculation) return false;
    st.plan.regions =
        applyRegionSpeculation(ctx.module, st.profile, ctx.options);
    return !st.plan.regions.empty();
  }
};

/// Applies the SPT transformation to every selected loop, then finalizes
/// and verifies the transformed module.
class SptTransformPass : public Pass {
 public:
  std::string_view name() const override { return "spt-transform"; }

  bool run(PassContext& ctx) override {
    PipelineState& st = ctx.state;
    bool mutated = false;
    for (auto& [plan_index, analysis] : st.to_transform) {
      LoopPlanEntry& entry = st.plan.loops[plan_index];
      Partition partition;
      partition.actions = entry.actions;
      const TransformOutcome outcome =
          transformLoop(ctx.module, analysis, partition);
      entry.transformed = outcome.applied;
      entry.transform_detail = outcome.detail;
      if (!outcome.applied) entry.reject_reason = outcome.detail;
      mutated |= outcome.applied;
    }
    st.to_transform.clear();

    ctx.module.finalize();
    SPT_CHECK_MSG(ir::verifyModule(ctx.module).empty(),
                  "SPT transformation produced an invalid module");
    return mutated;
  }
};

/// Pre-computation slices for chained (N-way) forks. A chained fork copies
/// the parent's register context, but by the time the child's iteration
/// actually starts the parent has executed the rest of its own iteration —
/// so every loop-carried register the child reads at its header arrives one
/// update stale. The slice is the backward slice, over the post-fork
/// portion of one iteration, of the registers live-in at the loop header:
/// straight-line register-only code the machine replays on the fork-time
/// snapshot to pre-compute the child's true live-ins (paper Section 5 /
/// the Prophet-style pre-computation fork). When the slice is empty,
/// defines no live-in, or exceeds CompilerOptions::slice_max_instrs, the
/// fork keeps the plain register-copy and the plan records the fallback.
///
/// Metadata-only: runs after the final finalize()+verify so the attached
/// StaticIds are the ones the tracer and simulator see, and never mutates
/// the IR (returns false). A no-op below spec_threads == 2, which keeps
/// every single-threaded golden plan fingerprint bit-identical.
class PrecomputationSlicePass : public Pass {
 public:
  std::string_view name() const override { return "precomputation-slice"; }

  bool run(PassContext& ctx) override {
    if (ctx.options.spec_threads < 2) return false;
    PipelineState& st = ctx.state;
    for (ir::FuncId f = 0; f < ctx.module.functionCount(); ++f) {
      const ir::Function& func = ctx.module.function(f);
      for (const ir::BasicBlock& block : func.blocks) {
        for (std::uint32_t i = 0; i < block.instrs.size(); ++i) {
          const ir::Instr& fork = block.instrs[i];
          if (fork.op != ir::Opcode::kSptFork) continue;
          sliceFork(ctx, st, f, func, block.id, i, fork);
        }
      }
    }
    return false;
  }

 private:
  static bool isSliceSafe(ir::Opcode op) {
    switch (op) {
      case ir::Opcode::kConst:
      case ir::Opcode::kMov:
      case ir::Opcode::kAdd:
      case ir::Opcode::kSub:
      case ir::Opcode::kMul:
      case ir::Opcode::kAnd:
      case ir::Opcode::kOr:
      case ir::Opcode::kXor:
      case ir::Opcode::kShl:
      case ir::Opcode::kShr:
      case ir::Opcode::kCmpEq:
      case ir::Opcode::kCmpNe:
      case ir::Opcode::kCmpLt:
      case ir::Opcode::kCmpLe:
      case ir::Opcode::kCmpGt:
      case ir::Opcode::kCmpGe:
        return true;
      default:
        // Loads/stores/calls need memory, kDiv/kRem can fault mid-slice,
        // branches and fork/kill have no register value to pre-compute.
        return false;
    }
  }

  /// Blocks of the natural loop around `header`: reachable from the header
  /// without leaving its SCC (forward ∩ backward reachability over the
  /// finalized CFG — analyses caches may be stale after the transform).
  static std::vector<bool> loopBlocksOf(const ir::Function& func,
                                        ir::BlockId header) {
    const std::size_t n = func.blocks.size();
    std::vector<std::vector<ir::BlockId>> preds(n);
    for (const ir::BasicBlock& b : func.blocks) {
      for (const ir::BlockId s : b.successors()) preds[s].push_back(b.id);
    }
    const auto reach = [n](ir::BlockId from, auto&& next) {
      std::vector<bool> seen(n, false);
      std::vector<ir::BlockId> stack{from};
      seen[from] = true;
      while (!stack.empty()) {
        const ir::BlockId b = stack.back();
        stack.pop_back();
        for (const ir::BlockId s : next(b)) {
          if (!seen[s]) {
            seen[s] = true;
            stack.push_back(s);
          }
        }
      }
      return seen;
    };
    const std::vector<bool> fwd =
        reach(header, [&](ir::BlockId b) { return func.blocks[b].successors(); });
    const std::vector<bool> bwd =
        reach(header, [&](ir::BlockId b) { return preds[b]; });
    std::vector<bool> loop(n, false);
    for (std::size_t b = 0; b < n; ++b) loop[b] = fwd[b] && bwd[b];
    return loop;
  }

  void sliceFork(PassContext& ctx, PipelineState& st, ir::FuncId f,
                 const ir::Function& func, ir::BlockId fork_block,
                 std::uint32_t fork_index, const ir::Instr& fork) {
    const ir::BlockId header = fork.target0;
    if (header >= func.blocks.size() || func.blocks[header].instrs.empty()) {
      return;
    }
    // Only loop forks carry slices: the fork must sit inside the loop it
    // targets (region-speculation forks target a continuation block that
    // is not a header of a loop containing them).
    const std::vector<bool> loop = loopBlocksOf(func, header);
    if (!loop[fork_block]) return;

    // Match the plan entry by the stable loop name; only loops the
    // transform actually rewrote have a fork worth annotating.
    const std::string name = trace::loopNameOf(
        ctx.module, func.blocks[header].instrs.front().static_id);
    LoopPlanEntry* entry = nullptr;
    for (LoopPlanEntry& e : st.plan.loops) {
      if (e.func == f && e.name == name) {
        entry = &e;
        break;
      }
    }
    if (entry == nullptr || !entry->transformed) return;

    // ---- Live-in registers at the header (backward liveness restricted
    // to the loop's own blocks).
    const std::size_t regs = func.reg_count;
    const std::size_t n = func.blocks.size();
    std::vector<std::vector<bool>> gen(n), kill(n), live_in(n);
    std::vector<ir::Reg> uses;
    for (std::size_t b = 0; b < n; ++b) {
      if (!loop[b]) continue;
      gen[b].assign(regs, false);
      kill[b].assign(regs, false);
      live_in[b].assign(regs, false);
      for (const ir::Instr& in : func.blocks[b].instrs) {
        uses.clear();
        in.appendUses(uses);
        for (const ir::Reg r : uses) {
          if (r.index < regs && !kill[b][r.index]) gen[b][r.index] = true;
        }
        if (in.dst.valid() && in.dst.index < regs) kill[b][in.dst.index] = true;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t b = 0; b < n; ++b) {
        if (!loop[b]) continue;
        for (std::size_t r = 0; r < regs; ++r) {
          if (live_in[b][r]) continue;
          bool out = false;
          for (const ir::BlockId s : func.blocks[b].successors()) {
            if (loop[s] && live_in[s][r]) {
              out = true;
              break;
            }
          }
          if (gen[b][r] || (out && !kill[b][r])) {
            live_in[b][r] = true;
            changed = true;
          }
        }
      }
    }
    const std::vector<bool>& targets = live_in[header];

    // ---- Linearize the post-fork portion of one iteration: the fork
    // block's remainder, then the loop blocks reachable from it in RPO
    // with the header acting as the iteration boundary.
    std::vector<ir::BlockId> order;
    {
      std::vector<bool> seen(n, false);
      seen[fork_block] = true;
      seen[header] = true;  // never traverse into the next iteration
      std::vector<std::pair<ir::BlockId, std::size_t>> stack{{fork_block, 0}};
      std::vector<ir::BlockId> post;
      while (!stack.empty()) {
        const ir::BlockId b = stack.back().first;
        const std::vector<ir::BlockId> succs = func.blocks[b].successors();
        bool descended = false;
        while (stack.back().second < succs.size()) {
          const ir::BlockId s = succs[stack.back().second++];
          if (loop[s] && !seen[s]) {
            seen[s] = true;
            stack.push_back({s, 0});
            descended = true;
            break;
          }
        }
        if (!descended) {
          post.push_back(b);
          stack.pop_back();
        }
      }
      order.assign(post.rbegin(), post.rend());
    }

    // ---- Forward computability: keep a safe instruction only when every
    // source still holds a value derivable from the fork-time snapshot;
    // anything downstream of a load/call/unsafe op is dirty.
    std::vector<bool> dirty(regs, false);
    std::vector<ir::Instr> computable;
    for (const ir::BlockId b : order) {
      const ir::BasicBlock& blk = func.blocks[b];
      const std::uint32_t first = b == fork_block ? fork_index + 1 : 0;
      for (std::uint32_t i = first; i < blk.instrs.size(); ++i) {
        const ir::Instr& in = blk.instrs[i];
        if (!in.dst.valid() || in.dst.index >= regs) continue;
        bool ok = isSliceSafe(in.op);
        if (ok) {
          uses.clear();
          in.appendUses(uses);
          for (const ir::Reg r : uses) {
            if (r.index >= regs || dirty[r.index]) {
              ok = false;
              break;
            }
          }
        }
        dirty[in.dst.index] = !ok;
        if (ok) computable.push_back(in);
      }
    }

    // ---- Backward prune to the instructions that feed a clean live-in.
    std::vector<bool> want(regs, false);
    bool any_target = false;
    for (std::size_t r = 0; r < regs; ++r) {
      if (targets[r] && !dirty[r]) {
        want[r] = true;
        any_target = true;
      }
    }
    std::vector<ir::Instr> slice;
    if (any_target) {
      std::vector<bool> defines_target(computable.size(), false);
      for (std::size_t i = computable.size(); i-- > 0;) {
        const ir::Instr& in = computable[i];
        if (!want[in.dst.index]) continue;
        defines_target[i] = true;
        want[in.dst.index] = false;
        uses.clear();
        in.appendUses(uses);
        for (const ir::Reg r : uses) want[r.index] = true;
      }
      for (std::size_t i = 0; i < computable.size(); ++i) {
        if (defines_target[i]) slice.push_back(computable[i]);
      }
    }

    // ---- Decide, attach, and record.
    bool defines_live_in = false;
    for (const ir::Instr& in : slice) {
      if (targets[in.dst.index]) {
        defines_live_in = true;
        break;
      }
    }
    entry->slice_cost = static_cast<std::uint32_t>(slice.size());
    if (!slice.empty() && defines_live_in &&
        slice.size() <= ctx.options.slice_max_instrs) {
      entry->fork_mode = "slice";
      ctx.module.setForkSlice(fork.static_id, std::move(slice));
    } else {
      entry->fork_mode = "register-copy";
    }
  }
};

}  // namespace

void buildSptPipeline(PassManager& pm) {
  pm.add(std::make_unique<UnrollPreprocessPass>());
  pm.add(std::make_unique<LoopCandidateSelectionPass>());
  pm.add(std::make_unique<ValueProfilingPass>());
  pm.add(std::make_unique<PartitionSearchPass>());
  pm.add(std::make_unique<GoodLoopSelectionPass>());
  pm.add(std::make_unique<RegionSpeculationPass>());
  pm.add(std::make_unique<SptTransformPass>());
  // Appended after the transform's final finalize()+verify so the slice
  // metadata binds to the StaticIds the tracer and simulator will see.
  pm.add(std::make_unique<PrecomputationSlicePass>());
}

}  // namespace spt::compiler

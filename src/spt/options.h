// SPT compiler options (selection thresholds, cost-model constants).
#pragma once

#include <cstdint>

namespace spt::compiler {

struct CompilerOptions {
  // ---- Pass-1 candidate filters (paper Section 4.1 "simple selection
  // criteria like loop body size and trip count").
  double min_avg_body_size = 4.0;
  double max_avg_body_size = 1000.0;  // paper Section 5.3 (gap uses 2500)
  double min_avg_trip_count = 3.0;
  /// Loops below this fraction of total execution are not worth the
  /// threading overhead bookkeeping.
  double min_coverage = 0.001;

  // ---- Partition search.
  /// Pre-fork region must stay below this fraction of the iteration cost
  /// (Amdahl constraint, paper Section 4).
  double max_prefork_fraction = 0.5;
  /// Search effort bound: maximum violation candidates enumerated
  /// exhaustively; beyond this a greedy order is used.
  std::uint32_t max_search_candidates = 16;

  // ---- Software value prediction (paper Section 4.4).
  bool enable_svp = true;
  /// Minimum profiled predictability for a stride predictor to be emitted.
  double svp_min_predictability = 0.75;

  // ---- Loop unrolling preprocessing (paper Section 4.1).
  bool enable_unrolling = true;
  /// Bodies smaller than this (average dynamic instructions) are unrolled
  /// until they exceed it or the factor cap is hit.
  double unroll_body_threshold = 12.0;
  std::uint32_t max_unroll_factor = 4;

  // ---- Pass-2 selection.
  /// Estimated speedup a loop must exceed to be transformed.
  double min_estimated_speedup = 0.05;
  /// When false, the cost model is bypassed and every transformable
  /// candidate is selected (ablation).
  bool cost_driven_selection = true;

  // ---- Pipeline instrumentation.
  /// Run the IR verifier after every pipeline pass (pass.h), aborting with
  /// the full violation list on failure. Off by default: the pipeline
  /// already verifies at the mutation points; this catches a misbehaving
  /// pass during development.
  bool verify_between_passes = false;

  // ---- Region-based speculation (paper Section 6; an extension, off by
  // default like the paper leaves it to future work).
  bool enable_region_speculation = false;
  /// Minimum straight-line block cost worth splitting.
  double region_min_cost = 120.0;
  /// Weight of the cross-half register-dependence penalty.
  double region_penalty_weight = 2.0;
  /// Minimum estimated overlap benefit to apply a split.
  double region_min_benefit = 30.0;

  // ---- Cost-model constants (cycles, mirroring the machine config).
  double fork_overhead = 2.0;    // spt_fork + RF copy
  double commit_overhead = 5.0;  // fast commit
  double replay_width = 12.0;    // SRB entries retired per replay cycle

  // ---- N-way speculation (docs/MULTIWAY.md). spec_threads mirrors
  // MachineConfig::spec_threads into the compiler: the
  // precomputation-slice pass only emits live-in slices when compiling
  // for a chained machine (>= 2), so spec_threads == 1 modules — and
  // their plan fingerprints — are bit-identical to the pre-multiway
  // compiler.
  std::uint32_t spec_threads = 1;
  /// Cost threshold for the precomputation-slice pass: slices longer than
  /// this many instructions fall back to the plain register-copy fork.
  std::uint32_t slice_max_instrs = 12;
};

}  // namespace spt::compiler

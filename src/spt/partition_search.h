// Optimal loop partition search (paper Section 4.2).
//
// The search enumerates combinations of violation candidates (not of loop
// statements — the partition is uniquely decided by which candidates move
// pre-fork), pruned by the two monotone constraint functions the paper
// describes: the size-bounding function (adding a hoist only grows the
// pre-fork region) and the cost-bounding function (adding a hoist only
// shrinks the misspeculation cost).
#pragma once

#include "spt/cost_model.h"

namespace spt::compiler {

struct SearchResult {
  Partition partition;
  CostResult cost;
  std::uint64_t evaluated = 0;  // cost-model evaluations performed
};

/// Finds the partition with the best estimated speedup among feasible ones
/// (pre-fork region within the Amdahl bound). Deps beyond
/// options.max_search_candidates (ordered by violation weight) are fixed
/// greedily instead of enumerated.
SearchResult searchOptimalPartition(const LoopAnalysis& loop,
                                    const CompilerOptions& options);

}  // namespace spt::compiler

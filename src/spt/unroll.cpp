#include "spt/unroll.h"

#include <unordered_map>

#include "support/check.h"

namespace spt::compiler {

bool unrollLoop(ir::Module& module, const LoopShape& shape,
                std::uint32_t factor) {
  if (!shape.transformable || factor < 2) return false;
  ir::Function& func = module.function(shape.func);

  // Copies are chained: iteration-end edges (to the original header) in
  // copy j retarget to copy j+1's header; the last copy's edges form the
  // real back edges. A cloned header's exit side jumps to the original
  // header, which re-tests and leaves the loop.
  //
  // Clones must come from a snapshot of the pristine loop: chaining
  // rewrites the previous copy's terminators before the next clone round.
  std::unordered_map<ir::BlockId, std::vector<ir::Instr>> pristine;
  for (const ir::BlockId b : shape.blocks) {
    pristine[b] = func.blocks[b].instrs;
  }

  std::vector<ir::BlockId> prev_latch_blocks;  // blocks whose H-edges retarget
  // Copy 0 is the original body.
  for (const ir::BlockId b : shape.blocks) prev_latch_blocks.push_back(b);

  for (std::uint32_t copy = 1; copy < factor; ++copy) {
    std::unordered_map<ir::BlockId, ir::BlockId> clone_of;
    const std::string suffix = "_u" + std::to_string(copy);
    // Allocate clone ids first (blocks may reference each other).
    for (const ir::BlockId b : shape.blocks) {
      clone_of[b] = static_cast<ir::BlockId>(func.blocks.size() +
                                             clone_of.size());
    }
    const ir::BlockId cloned_header = clone_of[shape.header];

    std::vector<ir::BasicBlock> clones;
    clones.reserve(shape.blocks.size());
    for (const ir::BlockId b : shape.blocks) {
      ir::BasicBlock clone;
      clone.id = clone_of[b];
      clone.label = func.blocks[b].label.empty()
                        ? ""
                        : func.blocks[b].label + suffix;
      clone.instrs = pristine.at(b);
      ir::Instr& term = clone.instrs.back();
      const auto remap = [&](ir::BlockId target) -> ir::BlockId {
        if (target == shape.header) {
          // Iteration end inside a clone: fall back to the original
          // header on the next unroll round... except the cloned header's
          // own exit handled below.
          return shape.header;
        }
        const auto it = clone_of.find(target);
        return it != clone_of.end() ? it->second : target;
      };
      if (ir::isBranch(term.op)) {
        term.target0 = remap(term.target0);
        if (term.op == ir::Opcode::kCondBr) term.target1 = remap(term.target1);
      }
      if (b == shape.header) {
        // The cloned test must not exit directly; failing it returns to
        // the original header, which re-tests and exits.
        if (shape.exit_on_taken) {
          term.target0 = shape.header;
        } else {
          term.target1 = shape.header;
        }
      }
      clones.push_back(std::move(clone));
    }

    // Chain: previous copy's iteration-end edges now enter this clone's
    // header instead of the original header.
    for (const ir::BlockId b : prev_latch_blocks) {
      ir::Instr& term = func.blocks[b].instrs.back();
      if (!ir::isBranch(term.op)) continue;
      if (b == shape.header) continue;  // the loop's entry test stays
      // Do not redirect a cloned header's fail-edge (it must re-test at
      // the original header); only true iteration-end edges move.
      if (term.target0 == shape.header) term.target0 = cloned_header;
      if (term.op == ir::Opcode::kCondBr && term.target1 == shape.header) {
        term.target1 = cloned_header;
      }
    }

    // Next round rewires this copy's iteration-end edges. The cloned
    // header is excluded: its fail edge deliberately re-tests at the
    // original header and must stay.
    prev_latch_blocks.clear();
    for (auto& clone : clones) {
      if (clone.id != cloned_header) prev_latch_blocks.push_back(clone.id);
      func.blocks.push_back(std::move(clone));
    }
  }
  return true;
}

}  // namespace spt::compiler

// The two-pass SPT compilation driver (paper Section 4.1).
//
// Pass 1: profile the sequential program; select loop candidates by shape,
// body size, trip count and coverage; apply unrolling preprocessing;
// identify SVP value-profiling candidates and run the value-profiling pass;
// search each candidate's optimal partition. Pass 2: select all good (and
// only good) loops by estimated speedup and apply the SPT transformation.
#pragma once

#include <unordered_set>

#include "profile/profile_data.h"
#include "spt/options.h"
#include "spt/plan.h"

namespace spt::compiler {

/// How the driver obtains profiles: the harness runs the interpreter over
/// the workload's input; tests may stub it.
class ProfileRunner {
 public:
  virtual ~ProfileRunner() = default;
  virtual profile::ProfileData run(
      const ir::Module& module,
      const std::unordered_set<ir::StaticId>& value_candidates) = 0;
};

class SptCompiler {
 public:
  explicit SptCompiler(CompilerOptions options = {})
      : options_(options) {}

  const CompilerOptions& options() const { return options_; }

  /// Runs both passes, transforming `module` in place (the caller keeps a
  /// pristine copy as the baseline). The module is finalized and verified
  /// on return. If unrolling was applied to loops that pass 2 then
  /// rejected, compilation restarts from the pristine module with those
  /// loops on an unroll deny-list — preprocessing must not degrade loops
  /// that end up untransformed.
  SptPlan compile(ir::Module& module, ProfileRunner& runner);

 private:
  SptPlan compileOnce(ir::Module& module, ProfileRunner& runner,
                      const std::unordered_set<std::string>& deny_unroll);

  CompilerOptions options_;
};

}  // namespace spt::compiler

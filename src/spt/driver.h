// The two-pass SPT compilation driver (paper Section 4.1).
//
// The driver owns the outer control the pipeline cannot express as a pass:
// it keeps a pristine copy of the module, runs the pass pipeline (pass.h)
// once, and — when unrolling was applied to loops that pass 2 then
// rejected — restarts compilation from the pristine module with those
// loops on an unroll deny-list, since preprocessing must not degrade loops
// that end up untransformed. Profiling runs are memoized across both
// attempts through a ProfileCache, so the restart's initial profile is a
// cache hit rather than a second interpreter run.
#pragma once

#include <unordered_set>

#include "profile/profile_data.h"
#include "spt/options.h"
#include "spt/plan.h"
#include "spt/remarks.h"

namespace spt::compiler {

/// How the driver obtains profiles: the harness runs the interpreter over
/// the workload's input; tests may stub it.
class ProfileRunner {
 public:
  virtual ~ProfileRunner() = default;
  virtual profile::ProfileData run(
      const ir::Module& module,
      const std::unordered_set<ir::StaticId>& value_candidates) = 0;
};

class SptCompiler {
 public:
  explicit SptCompiler(CompilerOptions options = {})
      : options_(options) {}

  const CompilerOptions& options() const { return options_; }

  /// Runs the full pipeline (including the deny-unroll restart when
  /// needed), transforming `module` in place (the caller keeps a pristine
  /// copy as the baseline). The module is finalized and verified on
  /// return. With non-null `remarks`, fills the structured per-loop
  /// decision log (remarks.h) for the compile.
  SptPlan compile(ir::Module& module, ProfileRunner& runner,
                  CompilationRemarks* remarks = nullptr);

 private:
  CompilerOptions options_;
};

}  // namespace spt::compiler

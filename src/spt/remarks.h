// Compilation remarks: a structured, machine-readable record of every
// decision the SPT pipeline made — one remark per profiled loop (accept or
// reject with a slugged reason, trip/coverage numbers, cost-model partition
// and estimated speedup, final verdict), one per speculated region, plus
// pass and cache statistics.
//
// writeJson() is deterministic by construction: the compile path is
// single-threaded, container orders are fixed (plan order; sorted deny
// list), doubles print via JsonWriter's %.17g round-trip format, and wall
// times are deliberately excluded (they go to the human summary only). CI
// diffs remarks JSON across independent jobs to enforce this.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "spt/plan.h"

namespace spt::ir {
class Module;
}

namespace spt::compiler {

/// Mechanical slug of a human-readable reason: lowercased alphanumeric
/// runs joined by '-' ("no feasible partition (pre-fork too large)" ->
/// "no-feasible-partition-pre-fork-too-large"). Empty reason -> "".
std::string reasonSlug(const std::string& reason);

/// Final machine-readable verdict of one loop:
///   "transformed"           — selected and the transformation applied
///   "selected-not-applied"  — selected but the transform backed out
///   "rejected-by-cost-model"— candidate, but no partition was good enough
///   "rejected-by-filter"    — failed the pass-1 shape/profile filters
std::string loopVerdict(const LoopPlanEntry& entry);

struct LoopRemark {
  std::string name;
  std::string function;
  std::uint64_t header_sid = 0;

  double coverage = 0.0;
  double avg_body_size = 0.0;
  double avg_trip = 0.0;
  int unroll_factor = 1;

  bool candidate = false;
  std::uint64_t dep_count = 0;
  std::vector<std::string> actions;  // "leave" | "hoist" | "svp" per dep
  bool cost_feasible = false;
  double misspec_cost = 0.0;
  double prefork_cost = 0.0;
  double iter_cost = 0.0;
  double est_speedup = 0.0;
  std::uint64_t partitions_evaluated = 0;

  bool selected = false;
  bool transformed = false;
  std::string verdict;      // loopVerdict()
  std::string reason;       // human text; "" when transformed
  std::string reason_slug;  // reasonSlug(reason)
  std::string transform_detail;

  // Precomputation-slice decision (multiway compiles only): "" when the
  // slice pass did not run, else "slice" | "register-copy", with the
  // candidate slice length in instructions.
  std::string fork_mode;
  std::uint32_t slice_cost = 0;
};

struct RegionRemark {
  std::string name;  // "func.label" of the split block
  double prefix_cost = 0.0;
  double suffix_cost = 0.0;
  double dependence_penalty = 0.0;
  bool applied = false;
};

struct PassRemark {
  std::string name;
  std::uint64_t invocations = 0;  // once per pipeline attempt
  std::uint64_t mutations = 0;    // invocations that changed the IR
  double wall_ms = 0.0;           // summary only; never serialized
};

struct CompilationRemarks {
  std::string module_name;
  std::uint64_t profiled_instrs = 0;
  std::uint64_t restarts = 0;
  std::vector<std::string> deny_unroll;  // sorted

  std::vector<LoopRemark> loops;      // plan order
  std::vector<RegionRemark> regions;  // plan order
  std::vector<PassRemark> passes;     // pipeline order

  std::uint64_t profile_runs = 0;        // actual ProfileRunner invocations
  std::uint64_t profile_cache_hits = 0;
  std::uint64_t analysis_cache_hits = 0;
  std::uint64_t analysis_cache_misses = 0;

  /// Replaces loops/regions/profiled_instrs with the plan's contents
  /// (module resolves function names).
  void setFromPlan(const SptPlan& plan, const ir::Module& module);

  /// Deterministic JSON document (schema in docs/COMPILER.md).
  void writeJson(std::ostream& os) const;

  /// Human-readable per-loop decision table plus pass timings.
  void printSummary(std::ostream& os) const;
};

}  // namespace spt::compiler

// SPT loop transformation (paper Section 4.3 + 4.4).
//
// Rewrites a canonical loop into an SPT loop:
//  * a preheader initializes the hoist temporaries / SVP predictors;
//  * the body entry is rebuilt as
//      [r = t restores] [r = pred restores]
//      [hoisted slices] [t = <next value> copies] [pred = r + stride]
//      spt_fork H
//      [original statements, sources replaced by r = mov t]
//  * header uses of handled carried registers are rewritten to the
//    temporary/predictor, so the speculative thread's exit test reads the
//    pre-fork-produced next value rather than the stale register (this is
//    the live-range-breaking temporary of paper Section 4.3);
//  * SVP sources get check-and-recover code (paper Figure 5):
//      if (pred != r) pred = r;
//  * an spt_kill lands on the loop's exit edge.
#pragma once

#include <string>

#include "spt/cost_model.h"

namespace spt::compiler {

struct TransformOutcome {
  bool applied = false;
  std::string detail;  // human-readable summary or failure reason
  int hoisted_deps = 0;
  int svp_deps = 0;
};

/// Applies the partition to the loop, mutating the module. The analysis
/// must have been computed on this same module. Call module.finalize() and
/// re-verify afterwards.
TransformOutcome transformLoop(ir::Module& module, const LoopAnalysis& loop,
                               const Partition& partition);

}  // namespace spt::compiler

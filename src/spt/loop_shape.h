// Canonical loop-shape recognition for SPT transformation.
//
// The SPT compiler transforms innermost natural loops in top-test shape:
//
//   H (header):  <stmts> ; condbr c, BODY..., EXIT   (either polarity)
//   body blocks: a branching DAG, every path ending with br H (latches)
//
// Loops that do not fit (inner loops, side exits, rets, existing SPT
// instructions, non-condbr headers) are recognized but marked untransformable
// with a reason — they still participate in coverage statistics.
#pragma once

#include <string>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/defuse.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "ir/module.h"

namespace spt::compiler {

/// A statement position inside the loop (block + instruction index).
struct StmtRef {
  ir::BlockId block = ir::kInvalidBlock;
  std::uint32_t index = 0;

  bool operator==(const StmtRef&) const = default;
  auto operator<=>(const StmtRef&) const = default;
};

struct LoopShape {
  bool transformable = false;
  std::string reject_reason;

  ir::FuncId func = ir::kInvalidFunc;
  ir::BlockId header = ir::kInvalidBlock;
  ir::StaticId header_sid = ir::kInvalidStaticId;  // loop identity
  std::string name;  // "func.label"

  ir::BlockId body_entry = ir::kInvalidBlock;
  ir::BlockId exit_block = ir::kInvalidBlock;  // H's out-of-loop successor
  bool exit_on_taken = false;  // true when condbr's taken side leaves

  /// All loop blocks in topological order (header first).
  std::vector<ir::BlockId> blocks;
  /// Blocks executed on *every* path from the body entry back to the
  /// header (sorted). Statements here run exactly once per iteration, so
  /// they are eligible for pre-fork hoisting and SVP.
  std::vector<ir::BlockId> mandatory_blocks;
  /// Statements of the loop body in program order: header statements
  /// (always pre-fork) followed by body-block statements. Terminators are
  /// excluded.
  std::vector<StmtRef> stmts;
  /// Number of leading `stmts` that live in the header.
  std::size_t header_stmt_count = 0;

  bool isMandatory(ir::BlockId b) const;
};

/// Recognizes the shape of loop `loop_id` of `func`. Always fills identity
/// fields; `transformable` tells whether the transformation supports it.
LoopShape recognizeLoop(const ir::Module& module, const ir::Function& func,
                        const analysis::Cfg& cfg,
                        const analysis::LoopForest& forest,
                        analysis::LoopId loop_id);

}  // namespace spt::compiler

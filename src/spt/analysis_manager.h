// Shared, lazily-computed analysis cache for the SPT pass pipeline.
//
// The seed-era driver recomputed Cfg/DomTree/LoopForest/DefUse once per
// consumer (unrolling, candidate selection, partition search) — three full
// recomputations per function per compile. The AnalysisManager computes
// each analysis on first request, hands out references to the cached
// object, and requires explicit invalidation when a pass mutates the IR
// (unroll, region split, SPT transform, pristine restart). Because cached
// analyses are only ever rebuilt from the same function state the seed
// driver saw, the pipeline's results are bit-identical by construction —
// the golden-plan tests pin that.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/defuse.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "analysis/modref.h"

namespace spt::compiler {

class AnalysisManager {
 public:
  explicit AnalysisManager(const ir::Module& module);

  const ir::Module& module() const { return module_; }

  // Per-function analyses. Each getter computes its prerequisites (dom
  // needs cfg; loops need cfg+dom; defuse needs cfg) through the cache,
  // so mixed access orders share every intermediate.
  const analysis::Cfg& cfg(ir::FuncId f);
  const analysis::DomTree& dominators(ir::FuncId f);
  const analysis::LoopForest& loopForest(ir::FuncId f);
  const analysis::DefUse& defUse(ir::FuncId f);

  /// Module-level mod/ref summary (call-graph fixed point).
  const analysis::ModRefSummary& modRef();

  /// Drops every cached analysis of `f` plus the module-level summary
  /// (a function mutation can change call side effects).
  void invalidateFunction(ir::FuncId f);

  /// Drops everything. Called by the PassManager after any mutating pass
  /// and on the pristine-module restart.
  void invalidateAll();

  // Cache-effectiveness counters (served-from-cache vs computed).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct FunctionAnalyses {
    std::unique_ptr<analysis::Cfg> cfg;
    std::unique_ptr<analysis::DomTree> dom;
    std::unique_ptr<analysis::LoopForest> loops;
    std::unique_ptr<analysis::DefUse> defuse;
  };

  FunctionAnalyses& slot(ir::FuncId f);

  const ir::Module& module_;
  std::vector<FunctionAnalyses> funcs_;
  std::unique_ptr<analysis::ModRefSummary> modref_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace spt::compiler

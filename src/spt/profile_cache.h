// Memoizes ProfileRunner invocations across pipeline attempts.
//
// A profiling run is a pure function of (module structure, SVP candidate
// set): the interpreter is deterministic and the candidate set only adds
// value instrumentation. The deny-unroll restart re-compiles the pristine
// module, whose initial profile is byte-for-byte the one already taken at
// the start of the first attempt — the cache turns that re-profile into a
// lookup. Keys are (Module::structuralDigest(), sorted candidate sids), so
// finalize() churn never causes spurious misses.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "profile/profile_data.h"
#include "spt/driver.h"

namespace spt::compiler {

class ProfileCache {
 public:
  /// Returns the profile for (module, value_candidates), invoking `runner`
  /// only on a cache miss.
  profile::ProfileData run(
      const ir::Module& module,
      const std::unordered_set<ir::StaticId>& value_candidates,
      ProfileRunner& runner);

  std::uint64_t hits() const { return hits_; }
  /// Misses == actual ProfileRunner::run invocations through this cache.
  std::uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<std::uint64_t, std::vector<ir::StaticId>>;

  std::map<Key, profile::ProfileData> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace spt::compiler

#include "spt/plan.h"

#include "support/stats.h"
#include "support/table.h"

namespace spt::compiler {

std::size_t SptPlan::candidateCount() const {
  std::size_t n = 0;
  for (const auto& entry : loops) n += entry.candidate;
  return n;
}

std::size_t SptPlan::selectedCount() const {
  std::size_t n = 0;
  for (const auto& entry : loops) n += entry.selected;
  return n;
}

double SptPlan::selectedCoverage() const {
  double c = 0.0;
  for (const auto& entry : loops) {
    if (entry.selected) c += entry.coverage;
  }
  return c;
}

void SptPlan::print(std::ostream& os) const {
  support::Table table("SPT compilation plan");
  table.setHeader({"loop", "coverage", "body", "trip", "deps", "actions",
                   "misspec", "prefork", "est.speedup", "status"});
  for (const auto& entry : loops) {
    std::string actions;
    for (const DepAction a : entry.actions) {
      actions += a == DepAction::kLeave  ? 'L'
                 : a == DepAction::kHoist ? 'H'
                                          : 'S';
    }
    std::string status;
    if (entry.transformed) {
      status = "SPT " + entry.transform_detail;
      if (entry.unroll_factor > 1) {
        status += " unroll=" + std::to_string(entry.unroll_factor);
      }
    } else if (entry.selected) {
      status = "selected (not applied): " + entry.reject_reason;
    } else {
      status = entry.reject_reason.empty() ? "not selected"
                                           : entry.reject_reason;
    }
    table.addRow({entry.name, support::percent(entry.coverage, 1.0),
                  support::fixed(entry.avg_body_size, 1),
                  support::fixed(entry.avg_trip, 1),
                  std::to_string(entry.dep_count), actions,
                  support::fixed(entry.cost.misspec_cost, 2),
                  support::fixed(entry.cost.prefork_cost, 2),
                  support::percent(entry.cost.est_speedup, 1.0), status});
  }
  table.print(os);

  if (!regions.empty()) {
    support::Table rt("Region-based speculation (Section 6 extension)");
    rt.setHeader({"region", "prefix cost", "suffix cost", "dep penalty",
                  "status"});
    for (const auto& region : regions) {
      rt.addRow({region.name, support::fixed(region.prefix_cost, 1),
                 support::fixed(region.suffix_cost, 1),
                 support::fixed(region.dependence_penalty, 1),
                 region.applied ? "split" : "skipped"});
    }
    rt.print(os);
  }
}

}  // namespace spt::compiler

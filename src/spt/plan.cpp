#include "spt/plan.h"

#include <bit>

#include "support/stats.h"
#include "support/table.h"

namespace spt::compiler {
namespace {

/// Incremental FNV-1a folding helpers for SptPlan::fingerprint().
class Fnv {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }
  void add(bool v) { byte(v ? 1 : 0); }
  void add(const std::string& s) {
    add(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  std::uint64_t hash() const { return hash_; }

 private:
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ull;
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::size_t SptPlan::candidateCount() const {
  std::size_t n = 0;
  for (const auto& entry : loops) n += entry.candidate;
  return n;
}

std::size_t SptPlan::selectedCount() const {
  std::size_t n = 0;
  for (const auto& entry : loops) n += entry.selected;
  return n;
}

double SptPlan::selectedCoverage() const {
  double c = 0.0;
  for (const auto& entry : loops) {
    if (entry.selected) c += entry.coverage;
  }
  return c;
}

std::uint64_t SptPlan::fingerprint() const {
  Fnv fnv;
  fnv.add(profiled_instrs);
  fnv.add(static_cast<std::uint64_t>(loops.size()));
  for (const LoopPlanEntry& e : loops) {
    fnv.add(e.name);
    fnv.add(static_cast<std::uint64_t>(e.func));
    fnv.add(static_cast<std::uint64_t>(e.header_sid));
    fnv.add(e.coverage);
    fnv.add(e.avg_body_size);
    fnv.add(e.avg_trip);
    fnv.add(e.candidate);
    fnv.add(e.reject_reason);
    fnv.add(static_cast<std::uint64_t>(e.unroll_factor));
    fnv.add(static_cast<std::uint64_t>(e.dep_count));
    fnv.add(static_cast<std::uint64_t>(e.actions.size()));
    for (const DepAction a : e.actions) {
      fnv.add(static_cast<std::uint64_t>(a));
    }
    fnv.add(e.cost.misspec_cost);
    fnv.add(e.cost.prefork_cost);
    fnv.add(e.cost.iter_cost);
    fnv.add(e.cost.est_speedup);
    fnv.add(e.cost.feasible);
    fnv.add(e.evaluated);
    fnv.add(e.selected);
    fnv.add(e.transformed);
    fnv.add(e.transform_detail);
    // Folded only when a slice was actually attached, so every
    // pre-multiway golden fingerprint (fork_mode == "" or the
    // register-copy fallback, both byte-equivalent to the old machine)
    // is preserved bit-identically.
    if (e.fork_mode == "slice") {
      fnv.add(e.fork_mode);
      fnv.add(static_cast<std::uint64_t>(e.slice_cost));
    }
  }
  fnv.add(static_cast<std::uint64_t>(regions.size()));
  for (const RegionPlanEntry& r : regions) {
    fnv.add(r.name);
    fnv.add(static_cast<std::uint64_t>(r.func));
    fnv.add(static_cast<std::uint64_t>(r.block));
    fnv.add(r.prefix_cost);
    fnv.add(r.suffix_cost);
    fnv.add(r.dependence_penalty);
    fnv.add(r.applied);
  }
  return fnv.hash();
}

void SptPlan::print(std::ostream& os) const {
  support::Table table("SPT compilation plan");
  table.setHeader({"loop", "coverage", "body", "trip", "deps", "actions",
                   "misspec", "prefork", "est.speedup", "status"});
  for (const auto& entry : loops) {
    std::string actions;
    for (const DepAction a : entry.actions) {
      actions += a == DepAction::kLeave  ? 'L'
                 : a == DepAction::kHoist ? 'H'
                                          : 'S';
    }
    std::string status;
    if (entry.transformed) {
      status = "SPT " + entry.transform_detail;
      if (entry.unroll_factor > 1) {
        status += " unroll=" + std::to_string(entry.unroll_factor);
      }
      if (entry.fork_mode == "slice") {
        status += " fork=slice(" + std::to_string(entry.slice_cost) + ")";
      } else if (!entry.fork_mode.empty()) {
        status += " fork=" + entry.fork_mode;
      }
    } else if (entry.selected) {
      status = "selected (not applied): " + entry.reject_reason;
    } else {
      status = entry.reject_reason.empty() ? "not selected"
                                           : entry.reject_reason;
    }
    table.addRow({entry.name, support::percent(entry.coverage, 1.0),
                  support::fixed(entry.avg_body_size, 1),
                  support::fixed(entry.avg_trip, 1),
                  std::to_string(entry.dep_count), actions,
                  support::fixed(entry.cost.misspec_cost, 2),
                  support::fixed(entry.cost.prefork_cost, 2),
                  support::percent(entry.cost.est_speedup, 1.0), status});
  }
  table.print(os);

  if (!regions.empty()) {
    support::Table rt("Region-based speculation (Section 6 extension)");
    rt.setHeader({"region", "prefix cost", "suffix cost", "dep penalty",
                  "status"});
    for (const auto& region : regions) {
      rt.addRow({region.name, support::fixed(region.prefix_cost, 1),
                 support::fixed(region.suffix_cost, 1),
                 support::fixed(region.dependence_penalty, 1),
                 region.applied ? "split" : "skipped"});
    }
    rt.print(os);
  }
}

}  // namespace spt::compiler

#include "spt/transform.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/check.h"

namespace spt::compiler {
namespace {

void replaceUses(ir::Instr& instr, ir::Reg from, ir::Reg to) {
  if (instr.a == from) instr.a = to;
  if (instr.b == from) instr.b = to;
  for (ir::Reg& arg : instr.args) {
    if (arg == from) arg = to;
  }
}

struct HoistInfo {
  std::size_t dep_index = 0;
  ir::Reg reg;
  ir::Reg temp;
  StmtRef source;
  // Branch copying (conditional-arm sources).
  bool guarded = false;
  ir::Reg guard_cond;
  bool guard_taken_side = false;
  ir::BlockId arm_block = ir::kInvalidBlock;
  std::vector<StmtRef> arm_refs;  // arm-resident slice members, in order
};

struct SvpInfo {
  std::size_t dep_index = 0;
  ir::Reg reg;
  ir::Reg pred;
  std::int64_t stride = 0;
  StmtRef source;
};

ir::Instr makeMov(ir::Reg dst, ir::Reg src) {
  ir::Instr mv;
  mv.op = ir::Opcode::kMov;
  mv.dst = dst;
  mv.a = src;
  return mv;
}

ir::Instr makeBr(ir::BlockId target) {
  ir::Instr br;
  br.op = ir::Opcode::kBr;
  br.target0 = target;
  return br;
}

}  // namespace

TransformOutcome transformLoop(ir::Module& module, const LoopAnalysis& loop,
                               const Partition& partition) {
  SPT_CHECK(partition.actions.size() == loop.deps.size());
  const LoopShape& shape = loop.shape;
  TransformOutcome outcome;

  if (shape.header == 0) {
    outcome.detail = "header is the function entry block";
    return outcome;
  }

  ir::Function& func = module.function(shape.func);

  // ---- Collect the work lists, resolving conflicts: a dependence whose
  // source already moves as part of another hoisted slice needs nothing.
  std::vector<HoistInfo> hoists;
  std::vector<SvpInfo> svps;
  /// Mandatory-block hoisted positions (slice union), in statement order;
  /// conditional-arm members are emitted under the copied branch instead.
  std::vector<StmtRef> hoisted_refs;
  std::set<StmtRef> hoisted_set;  // everything removed from its home block

  std::map<ir::BlockId, std::size_t> block_order;
  for (std::size_t i = 0; i < shape.blocks.size(); ++i) {
    block_order[shape.blocks[i]] = i;
  }
  const auto refLess = [&](const StmtRef& a, const StmtRef& b) {
    if (a.block != b.block) {
      return block_order.at(a.block) < block_order.at(b.block);
    }
    return a.index < b.index;
  };

  for (std::size_t d = 0; d < loop.deps.size(); ++d) {
    if (partition.actions[d] != DepAction::kHoist) continue;
    const CarriedDep& dep = loop.deps[d];
    SPT_CHECK(dep.movable);
    HoistInfo h;
    h.dep_index = d;
    h.reg = dep.reg;
    h.temp = func.newReg();
    h.source = loop.stmts[dep.source_stmt].ref;
    h.guarded = dep.needs_branch_copy;
    h.guard_cond = dep.guard_cond;
    h.guard_taken_side = dep.guard_taken_side;
    h.arm_block = dep.arm_block;
    for (const std::size_t s : dep.slice) {
      const StmtRef& ref = loop.stmts[s].ref;
      if (h.guarded && ref.block == h.arm_block) {
        h.arm_refs.push_back(ref);
        hoisted_set.insert(ref);
        continue;
      }
      SPT_CHECK(shape.isMandatory(ref.block));
      if (hoisted_set.insert(ref).second) hoisted_refs.push_back(ref);
    }
    std::sort(h.arm_refs.begin(), h.arm_refs.end(), refLess);
    hoists.push_back(std::move(h));
  }
  std::sort(hoisted_refs.begin(), hoisted_refs.end(), refLess);

  for (std::size_t d = 0; d < loop.deps.size(); ++d) {
    if (partition.actions[d] != DepAction::kSvp) continue;
    const CarriedDep& dep = loop.deps[d];
    SPT_CHECK(dep.svp_applicable);
    const StmtRef& ref = loop.stmts[dep.source_stmt].ref;
    SPT_CHECK(shape.isMandatory(ref.block));
    if (hoisted_set.contains(ref)) continue;  // already satisfied
    SvpInfo s;
    s.dep_index = d;
    s.reg = dep.reg;
    s.pred = func.newReg();
    s.stride = dep.svp_stride;
    s.source = ref;
    svps.push_back(std::move(s));
  }

  // ---- 1. Preheader: initialize temporaries and predictors, then fall
  // into the header. All out-of-loop predecessors retarget to it.
  std::vector<ir::BlockId> loop_blocks_sorted = shape.blocks;
  std::sort(loop_blocks_sorted.begin(), loop_blocks_sorted.end());
  const auto inLoop = [&](ir::BlockId b) {
    return std::binary_search(loop_blocks_sorted.begin(),
                              loop_blocks_sorted.end(), b);
  };

  {
    ir::BasicBlock pre;
    pre.id = static_cast<ir::BlockId>(func.blocks.size());
    pre.label = "spt_pre_" + func.blocks[shape.header].label;
    for (const HoistInfo& h : hoists) {
      pre.instrs.push_back(makeMov(h.temp, h.reg));
    }
    for (const SvpInfo& s : svps) {
      pre.instrs.push_back(makeMov(s.pred, s.reg));
    }
    pre.instrs.push_back(makeBr(shape.header));
    const ir::BlockId pre_id = pre.id;
    func.blocks.push_back(std::move(pre));
    for (ir::BasicBlock& block : func.blocks) {
      if (block.id == pre_id || inLoop(block.id)) continue;
      ir::Instr& term = block.instrs.back();
      if (term.target0 == shape.header) term.target0 = pre_id;
      if (term.op == ir::Opcode::kCondBr && term.target1 == shape.header) {
        term.target1 = pre_id;
      }
    }
  }

  // ---- 2. Header rewrite: reads of each handled carried register see the
  // temporary / predictor (the next-iteration value the pre-fork region
  // produced), so the speculative thread's exit test is not stale.
  for (ir::Instr& instr : func.blocks[shape.header].instrs) {
    for (const HoistInfo& h : hoists) replaceUses(instr, h.reg, h.temp);
    for (const SvpInfo& s : svps) replaceUses(instr, s.reg, s.pred);
  }

  // ---- 3. Pre-fork pieces.
  // Head: start-point restores plus the mandatory hoisted slices.
  std::vector<ir::Instr> head_instrs;
  for (const HoistInfo& h : hoists) {
    head_instrs.push_back(makeMov(h.reg, h.temp));
  }
  for (const SvpInfo& s : svps) {
    head_instrs.push_back(makeMov(s.reg, s.pred));
  }
  for (const StmtRef& ref : hoisted_refs) {
    const HoistInfo* as_source = nullptr;
    for (const HoistInfo& h : hoists) {
      if (!h.guarded && h.source == ref) {
        as_source = &h;
        break;
      }
    }
    ir::Instr copy = func.blocks[ref.block].instrs[ref.index];
    if (as_source != nullptr) copy.dst = as_source->temp;
    head_instrs.push_back(std::move(copy));
  }
  // Guarded arm segments must be copied from the pristine blocks now —
  // the rebuild below removes the slice members from their home block.
  std::vector<std::vector<ir::Instr>> arm_copies(hoists.size());
  for (std::size_t hi = 0; hi < hoists.size(); ++hi) {
    const HoistInfo& h = hoists[hi];
    if (!h.guarded) continue;
    for (const StmtRef& ref : h.arm_refs) {
      ir::Instr copy = func.blocks[ref.block].instrs[ref.index];
      if (h.source == ref) copy.dst = h.temp;
      arm_copies[hi].push_back(std::move(copy));
    }
  }
  // Tail: SVP predictors and the fork.
  std::vector<ir::Instr> tail_instrs;
  for (const SvpInfo& s : svps) {
    ir::Instr k;
    k.op = ir::Opcode::kConst;
    k.dst = func.newReg();
    k.imm = s.stride;
    tail_instrs.push_back(k);
    ir::Instr add;
    add.op = ir::Opcode::kAdd;
    add.dst = s.pred;
    add.a = s.reg;
    add.b = k.dst;
    tail_instrs.push_back(add);
  }
  {
    ir::Instr fork;
    fork.op = ir::Opcode::kSptFork;
    fork.target0 = shape.header;
    tail_instrs.push_back(fork);
  }

  // ---- 4. Rebuild every loop block: drop moved slice statements, replace
  // hoist sources with r = mov t, track SVP source positions. The body
  // entry's own contents go into `body_rest` for assembly below.
  struct SvpPosition {
    std::size_t svp_index;
    ir::BlockId block;
    std::uint32_t position;
    bool in_body_rest;
  };
  std::vector<SvpPosition> svp_positions;
  std::vector<ir::Instr> body_rest;

  for (const ir::BlockId block_id : shape.blocks) {
    ir::BasicBlock& block = func.blocks[block_id];
    const bool is_entry = block_id == shape.body_entry;
    std::vector<ir::Instr> out;
    out.reserve(block.instrs.size());
    for (std::uint32_t i = 0; i < block.instrs.size(); ++i) {
      const StmtRef ref{block_id, i};
      const HoistInfo* as_source = nullptr;
      for (const HoistInfo& h : hoists) {
        if (h.source == ref) {
          as_source = &h;
          break;
        }
      }
      if (as_source != nullptr) {
        out.push_back(makeMov(as_source->reg, as_source->temp));
        continue;
      }
      if (hoisted_set.contains(ref)) continue;  // moved above the fork
      for (std::size_t s = 0; s < svps.size(); ++s) {
        if (svps[s].source == ref) {
          svp_positions.push_back({s, block_id,
                                   static_cast<std::uint32_t>(out.size()),
                                   is_entry});
        }
      }
      out.push_back(block.instrs[i]);
    }
    if (is_entry) {
      body_rest = std::move(out);
      block.instrs.clear();
    } else {
      block.instrs = std::move(out);
    }
  }

  // ---- 5. Assemble the body-entry chain:
  //   body_entry: [restores][mandatory hoists] (then per guarded hoist:)
  //     condbr guard -> ARM / ELSE;  ARM: arm slice copies, t = source;
  //     ELSE: t = r;  both -> CONT
  //   final block: [SVP predictors][spt_fork][original body-entry rest]
  ir::BlockId cur = shape.body_entry;
  func.blocks[cur].instrs = head_instrs;
  int guarded_count = 0;
  for (std::size_t hi = 0; hi < hoists.size(); ++hi) {
    const HoistInfo& h = hoists[hi];
    if (!h.guarded) continue;
    ++guarded_count;
    const std::string base = func.blocks[shape.body_entry].label;
    const auto next_id = [&] {
      return static_cast<ir::BlockId>(func.blocks.size());
    };
    ir::BasicBlock arm;
    arm.id = next_id();
    arm.label = base + "_bc_arm" + std::to_string(arm.id);
    ir::BasicBlock els;
    els.id = arm.id + 1;
    els.label = base + "_bc_else" + std::to_string(els.id);
    ir::BasicBlock cont;
    cont.id = arm.id + 2;
    cont.label = base + "_bc_cont" + std::to_string(cont.id);

    arm.instrs = arm_copies[hi];
    arm.instrs.push_back(makeBr(cont.id));
    els.instrs.push_back(makeMov(h.temp, h.reg));
    els.instrs.push_back(makeBr(cont.id));

    ir::Instr guard;
    guard.op = ir::Opcode::kCondBr;
    guard.a = h.guard_cond;
    guard.target0 = h.guard_taken_side ? arm.id : els.id;
    guard.target1 = h.guard_taken_side ? els.id : arm.id;
    func.blocks[cur].instrs.push_back(guard);

    const ir::BlockId cont_id = cont.id;
    func.blocks.push_back(std::move(arm));
    func.blocks.push_back(std::move(els));
    func.blocks.push_back(std::move(cont));
    cur = cont_id;
  }
  {
    ir::BasicBlock& final_block = func.blocks[cur];
    const auto tail_offset =
        static_cast<std::uint32_t>(final_block.instrs.size() +
                                   tail_instrs.size());
    final_block.instrs.insert(final_block.instrs.end(), tail_instrs.begin(),
                              tail_instrs.end());
    final_block.instrs.insert(final_block.instrs.end(), body_rest.begin(),
                              body_rest.end());
    // SVP sources recorded inside the body rest now live in `cur`.
    for (SvpPosition& pos : svp_positions) {
      if (pos.in_body_rest) {
        pos.block = cur;
        pos.position += tail_offset;
      }
    }
  }

  // ---- 6. SVP check-and-recover: split after each source (within each
  // block, last first so earlier positions stay valid):
  //   if (pred != r) pred = r;
  std::sort(svp_positions.begin(), svp_positions.end(),
            [](const SvpPosition& a, const SvpPosition& b) {
              if (a.block != b.block) return a.block < b.block;
              return a.position > b.position;
            });
  for (const SvpPosition& pos : svp_positions) {
    const SvpInfo& s = svps[pos.svp_index];
    ir::BasicBlock& blk = func.blocks[pos.block];

    ir::BasicBlock cont;
    cont.id = static_cast<ir::BlockId>(func.blocks.size());
    cont.label = blk.label + "_svp_cont" + std::to_string(cont.id);
    cont.instrs.assign(blk.instrs.begin() + pos.position + 1,
                       blk.instrs.end());
    blk.instrs.erase(blk.instrs.begin() + pos.position + 1,
                     blk.instrs.end());

    ir::BasicBlock fix;
    fix.id = cont.id + 1;
    fix.label = blk.label + "_svp_fix" + std::to_string(fix.id);
    fix.instrs.push_back(makeMov(s.pred, s.reg));
    fix.instrs.push_back(makeBr(cont.id));

    ir::Instr cmp;
    cmp.op = ir::Opcode::kCmpNe;
    cmp.dst = func.newReg();
    cmp.a = s.pred;
    cmp.b = s.reg;
    ir::Instr br;
    br.op = ir::Opcode::kCondBr;
    br.a = cmp.dst;
    br.target0 = fix.id;
    br.target1 = cont.id;

    // Re-acquire the block reference: push_back may reallocate.
    func.blocks.push_back(std::move(cont));
    func.blocks.push_back(std::move(fix));
    ir::BasicBlock& blk2 = func.blocks[pos.block];
    blk2.instrs.push_back(cmp);
    blk2.instrs.push_back(br);
  }

  // ---- 7. spt_kill on the exit edge. The exit target is read from the
  // live terminator (another loop's transform may have retargeted it to a
  // preheader since the shape was computed).
  {
    const ir::Instr& live_hterm = func.blocks[shape.header].instrs.back();
    const ir::BlockId live_exit =
        shape.exit_on_taken ? live_hterm.target0 : live_hterm.target1;
    ir::BasicBlock kill;
    kill.id = static_cast<ir::BlockId>(func.blocks.size());
    kill.label = "spt_kill_" + func.blocks[shape.header].label;
    ir::Instr k;
    k.op = ir::Opcode::kSptKill;
    kill.instrs.push_back(k);
    kill.instrs.push_back(makeBr(live_exit));
    const ir::BlockId kill_id = kill.id;
    func.blocks.push_back(std::move(kill));
    ir::Instr& hterm = func.blocks[shape.header].instrs.back();
    if (shape.exit_on_taken) {
      hterm.target0 = kill_id;
    } else {
      hterm.target1 = kill_id;
    }
  }

  outcome.applied = true;
  outcome.hoisted_deps = static_cast<int>(hoists.size());
  outcome.svp_deps = static_cast<int>(svps.size());
  outcome.detail = "hoisted=" + std::to_string(outcome.hoisted_deps) +
                   " svp=" + std::to_string(outcome.svp_deps);
  if (guarded_count > 0) {
    outcome.detail += " branch_copied=" + std::to_string(guarded_count);
  }
  return outcome;
}

}  // namespace compiler

// Per-loop dependence and cost analysis.
//
// Builds the SPT compiler's view of one candidate loop: statement costs and
// reach probabilities (the annotated CFG of paper Figure 4), cross-iteration
// dependences with probabilities (the annotated DD graph), per-source
// movability (backward slice subject to memory-order and liveness
// constraints), and SVP applicability.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/defuse.h"
#include "analysis/modref.h"
#include "profile/profile_data.h"
#include "spt/loop_shape.h"
#include "spt/options.h"

namespace spt::compiler {

struct StmtInfo {
  StmtRef ref;
  ir::StaticId sid = ir::kInvalidStaticId;
  double cost = 1.0;   // expected cycles (calls include callee cost)
  double reach = 1.0;  // expected executions per iteration
  bool in_header = false;
};

enum class DepKind : std::uint8_t {
  kRegister,  // loop-carried scalar (def in iter i, live into iter i+1)
  kMemory,    // store in iter i -> load in iter i+1 (profiled)
  kCallMemory,  // memory dependence through a call's side effects
};

struct CarriedDep {
  DepKind kind = DepKind::kRegister;
  std::size_t source_stmt = 0;  // index into LoopAnalysis::stmts
  ir::Reg reg;                  // kRegister only
  /// Statements seeded with the violation (upward-exposed consumers).
  std::vector<std::size_t> consumers;
  double probability = 0.0;  // dependence occurs in a random iteration
  /// For dependences whose consumer load lives inside a callee: the
  /// profiled average re-execution tail (instructions from the load to the
  /// end of the call). Added to the misspeculation cost directly instead of
  /// seeding the cost graph with the whole call node.
  double tail_cost = 0.0;

  bool movable = false;
  /// Statements that must hoist together (source's backward slice,
  /// including the source), as indices into stmts. Only meaningful when
  /// movable.
  std::vector<std::size_t> slice;
  double slice_cost = 0.0;  // body-resident cost the hoist adds pre-fork

  /// Branch copying (paper Section 4.3, second complication): the source
  /// sits in a conditional arm; hoisting duplicates its guard branch into
  /// the pre-fork region. Slice members in `slice` whose block is the
  /// conditional arm are emitted under the copied branch.
  bool needs_branch_copy = false;
  ir::Reg guard_cond;             // the guarding branch's condition register
  bool guard_taken_side = false;  // true when the arm is the taken target
  ir::BlockId arm_block = ir::kInvalidBlock;

  bool svp_applicable = false;
  double svp_mispredict = 1.0;
  std::int64_t svp_stride = 0;
};

struct LoopAnalysis {
  LoopShape shape;
  std::vector<StmtInfo> stmts;   // parallel to shape.stmts
  std::vector<CarriedDep> deps;  // sources in the post-fork (body) region
  /// Intra-iteration def->use edges over stmt indices (cost-graph edges).
  std::vector<std::vector<std::size_t>> uses_of;
  double iter_cost = 0.0;   // sum of reach*cost over all statements
  double header_cost = 0.0;  // statements that are pre-fork by position

  // Profile summary.
  double avg_trip = 0.0;
  double avg_body_size = 0.0;
  double coverage = 0.0;  // of total program instructions
};

/// Analyzes one recognized loop. `shape.transformable` must be true.
LoopAnalysis analyzeLoop(const ir::Module& module, const ir::Function& func,
                         const analysis::Cfg& cfg,
                         const analysis::DefUse& defuse,
                         const analysis::ModRefSummary& modref,
                         const LoopShape& shape,
                         const profile::ProfileData& profile,
                         const CompilerOptions& options);

}  // namespace spt::compiler

// The SPT compilation plan: one entry per loop, mirroring the output of
// the paper's first compilation pass (Section 4.1) that the second pass
// reads back to select and transform the good loops.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "spt/cost_model.h"
#include "spt/region_speculation.h"

namespace spt::compiler {

struct LoopPlanEntry {
  std::string name;
  ir::FuncId func = ir::kInvalidFunc;
  ir::StaticId header_sid = ir::kInvalidStaticId;

  // Profile summary (pass 1 filters).
  double coverage = 0.0;
  double avg_body_size = 0.0;
  double avg_trip = 0.0;

  bool candidate = false;        // passed the pass-1 filters & shape check
  std::string reject_reason;     // set when !candidate / !transformed
  int unroll_factor = 1;

  // Partition search outcome.
  std::size_t dep_count = 0;
  std::vector<DepAction> actions;
  CostResult cost;
  std::uint64_t evaluated = 0;

  bool selected = false;     // pass-2 decision
  bool transformed = false;  // transformation applied successfully
  std::string transform_detail;

  // Fork strategy chosen by the precomputation-slice pass (multiway
  // compiles only): "" when the pass did not run (spec_threads == 1),
  // "slice" when a live-in pre-computation slice was attached to the
  // loop's fork, "register-copy" when the candidate slice was rejected
  // (empty, defines no live-in, or over CompilerOptions::slice_max_instrs)
  // and the fork falls back to the plain register-context copy.
  std::string fork_mode;
  std::uint32_t slice_cost = 0;  // candidate slice length in instructions
};

struct SptPlan {
  std::vector<LoopPlanEntry> loops;
  /// Region-based speculation splits (only with
  /// CompilerOptions::enable_region_speculation).
  std::vector<RegionPlanEntry> regions;
  std::uint64_t profiled_instrs = 0;

  std::size_t candidateCount() const;
  std::size_t selectedCount() const;
  /// Fraction of profiled execution covered by the selected loops.
  double selectedCoverage() const;

  /// Order-sensitive FNV-1a digest over every plan field (doubles folded
  /// bit-exactly). Two plans are equal iff their fingerprints match; the
  /// golden-plan tests pin the refactored pipeline to the pre-refactor
  /// compiler with it.
  std::uint64_t fingerprint() const;

  void print(std::ostream& os) const;
};

}  // namespace spt::compiler

#include "spt/pass.h"

#include <chrono>

#include "ir/verifier.h"
#include "support/check.h"

namespace spt::compiler {

PassRemark& PassManager::statFor(std::string_view name) {
  for (PassRemark& s : stats_) {
    if (s.name == name) return s;
  }
  stats_.push_back(PassRemark{std::string(name), 0, 0, 0.0});
  return stats_.back();
}

void PassManager::run(PassContext& ctx) {
  for (const auto& pass : passes_) {
    const auto start = std::chrono::steady_clock::now();
    const bool mutated = pass->run(ctx);
    const auto end = std::chrono::steady_clock::now();

    PassRemark& stat = statFor(pass->name());
    ++stat.invocations;
    stat.mutations += mutated ? 1 : 0;
    stat.wall_ms +=
        std::chrono::duration<double, std::milli>(end - start).count();

    if (mutated) ctx.analyses.invalidateAll();
    if (verify_) {
      const std::vector<ir::Violation> violations =
          ir::verifyModuleDetailed(ctx.module);
      if (!violations.empty()) {
        const std::string msg = "IR verification failed after pass '" +
                                std::string(pass->name()) + "':\n" +
                                ir::formatViolations(violations);
        SPT_CHECK_MSG(violations.empty(), msg.c_str());
      }
    }
  }
}

}  // namespace spt::compiler

#include "spt/profile_cache.h"

#include <algorithm>

namespace spt::compiler {

profile::ProfileData ProfileCache::run(
    const ir::Module& module,
    const std::unordered_set<ir::StaticId>& value_candidates,
    ProfileRunner& runner) {
  Key key;
  key.first = module.structuralDigest();
  key.second.assign(value_candidates.begin(), value_candidates.end());
  std::sort(key.second.begin(), key.second.end());

  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  profile::ProfileData prof = runner.run(module, value_candidates);
  entries_.emplace(std::move(key), prof);
  return prof;
}

}  // namespace spt::compiler

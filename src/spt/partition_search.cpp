#include "spt/partition_search.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"

namespace spt::compiler {
namespace {

std::vector<DepAction> legalActions(const CarriedDep& dep,
                                    const CompilerOptions& options) {
  std::vector<DepAction> actions{DepAction::kLeave};
  if (dep.movable) actions.push_back(DepAction::kHoist);
  if (dep.svp_applicable && options.enable_svp) {
    actions.push_back(DepAction::kSvp);
  }
  return actions;
}

/// Violation weight: how much re-execution the dependence is likely to
/// cause if left in the post-fork region (used to order the search).
double depWeight(const LoopAnalysis& loop, const CarriedDep& dep) {
  double consumer_cost = 0.0;
  for (const std::size_t c : dep.consumers) {
    consumer_cost += loop.stmts[c].cost;
  }
  return dep.probability * (1.0 + consumer_cost);
}

class Searcher {
 public:
  Searcher(const LoopAnalysis& loop, const CompilerOptions& options)
      : loop_(loop), options_(options) {}

  SearchResult run() {
    const std::size_t n = loop_.deps.size();
    choices_.resize(n);
    std::uint64_t combos = 1;
    for (std::size_t d = 0; d < n; ++d) {
      choices_[d] = legalActions(loop_.deps[d], options_);
      combos = std::min<std::uint64_t>(combos * choices_[d].size(), 1u << 20);
    }

    best_.partition.actions.assign(n, DepAction::kLeave);
    best_.cost = evaluatePartition(loop_, best_.partition, options_);
    ++best_.evaluated;

    if (combos <= kExhaustiveLimit && n <= options_.max_search_candidates) {
      Partition current;
      current.actions.assign(n, DepAction::kLeave);
      enumerate(current, 0, /*prefork_so_far=*/loop_.header_cost);
    } else {
      greedy();
    }
    return best_;
  }

 private:
  static constexpr std::uint64_t kExhaustiveLimit = 4096;

  bool better(const CostResult& a, const CostResult& b) const {
    // Feasible beats infeasible; then higher estimated speedup; then lower
    // misspeculation cost (the paper's primary objective) as tiebreak.
    if (a.feasible != b.feasible) return a.feasible;
    if (a.est_speedup != b.est_speedup) return a.est_speedup > b.est_speedup;
    return a.misspec_cost < b.misspec_cost;
  }

  void consider(const Partition& partition) {
    const CostResult cost = evaluatePartition(loop_, partition, options_);
    ++best_.evaluated;
    if (better(cost, best_.cost)) {
      best_.partition = partition;
      best_.cost = cost;
    }
  }

  void enumerate(Partition& current, std::size_t d, double prefork_so_far) {
    if (d == loop_.deps.size()) {
      consider(current);
      return;
    }
    for (const DepAction action : choices_[d]) {
      double next_prefork = prefork_so_far;
      if (action == DepAction::kHoist) {
        // Size-bounding function: hoisting only grows the pre-fork region,
        // so once past the Amdahl bound the whole subtree is infeasible.
        next_prefork += loop_.deps[d].slice_cost;
        if (next_prefork > options_.max_prefork_fraction * loop_.iter_cost) {
          continue;
        }
      }
      current.actions[d] = action;
      enumerate(current, d + 1, next_prefork);
    }
    current.actions[d] = DepAction::kLeave;
  }

  void greedy() {
    // Deps in decreasing violation weight; take the best local action for
    // each, keeping earlier decisions fixed.
    std::vector<std::size_t> order(loop_.deps.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return depWeight(loop_, loop_.deps[a]) >
             depWeight(loop_, loop_.deps[b]);
    });
    Partition current = best_.partition;
    for (const std::size_t d : order) {
      Partition trial = current;
      CostResult best_local = evaluatePartition(loop_, current, options_);
      ++best_.evaluated;
      DepAction best_action = current.actions[d];
      for (const DepAction action : choices_[d]) {
        trial.actions[d] = action;
        const CostResult cost = evaluatePartition(loop_, trial, options_);
        ++best_.evaluated;
        if (better(cost, best_local)) {
          best_local = cost;
          best_action = action;
        }
      }
      current.actions[d] = best_action;
    }
    consider(current);
  }

  const LoopAnalysis& loop_;
  const CompilerOptions& options_;
  std::vector<std::vector<DepAction>> choices_;
  SearchResult best_;
};

}  // namespace

SearchResult searchOptimalPartition(const LoopAnalysis& loop,
                                    const CompilerOptions& options) {
  return Searcher(loop, options).run();
}

}  // namespace spt::compiler

#include "spt/driver.h"

#include <cmath>
#include <map>

#include "analysis/modref.h"
#include "ir/verifier.h"
#include "spt/loop_analysis.h"
#include "spt/loop_shape.h"
#include "spt/partition_search.h"
#include "spt/region_speculation.h"
#include "spt/transform.h"
#include "spt/unroll.h"
#include "support/check.h"

namespace spt::compiler {
namespace {

/// Applies the pass-1 candidate filters; returns an empty string when the
/// loop qualifies, otherwise the rejection reason.
std::string filterReason(const LoopShape& shape,
                         const profile::LoopStats* stats,
                         std::uint64_t total_instrs,
                         const CompilerOptions& options) {
  if (stats == nullptr || stats->iterations == 0) return "never executed";
  const double coverage =
      total_instrs == 0
          ? 0.0
          : static_cast<double>(stats->dyn_instrs) / total_instrs;
  if (coverage < options.min_coverage) return "coverage too small";
  if (stats->avgBodySize() < options.min_avg_body_size) {
    return "body too small";
  }
  if (stats->avgBodySize() > options.max_avg_body_size) {
    return "body too large";
  }
  if (stats->avgTripCount() < options.min_avg_trip_count) {
    return "trip count too small";
  }
  if (!shape.transformable) return shape.reject_reason;
  return "";
}

}  // namespace

SptPlan SptCompiler::compile(ir::Module& module, ProfileRunner& runner) {
  ir::Module pristine = module;
  SptPlan plan = compileOnce(module, runner, {});

  std::unordered_set<std::string> deny_unroll;
  for (const LoopPlanEntry& entry : plan.loops) {
    if (entry.unroll_factor > 1 && !entry.transformed) {
      deny_unroll.insert(entry.name);
    }
  }
  if (deny_unroll.empty()) return plan;

  module = std::move(pristine);
  return compileOnce(module, runner, deny_unroll);
}

SptPlan SptCompiler::compileOnce(
    ir::Module& module, ProfileRunner& runner,
    const std::unordered_set<std::string>& deny_unroll) {
  module.finalize();
  SPT_CHECK_MSG(ir::verifyModule(module).empty(),
                "input module fails verification");
  profile::ProfileData prof = runner.run(module, {});

  // ---- Unrolling preprocessing: small hot candidate bodies are unrolled
  // before everything else (StaticIds change, so re-profile afterwards).
  std::map<std::string, int> unroll_factors;
  if (options_.enable_unrolling) {
    bool changed = false;
    for (ir::FuncId f = 0; f < module.functionCount(); ++f) {
      const ir::Function& func = module.function(f);
      const analysis::Cfg cfg(func);
      const analysis::DomTree dom(cfg);
      const analysis::LoopForest forest(cfg, dom);
      // Recognize all shapes first: unrolling appends blocks.
      std::vector<LoopShape> shapes;
      for (analysis::LoopId l = 0; l < forest.loopCount(); ++l) {
        shapes.push_back(recognizeLoop(module, func, cfg, forest, l));
      }
      for (const LoopShape& shape : shapes) {
        if (!shape.transformable) continue;
        if (deny_unroll.contains(shape.name)) continue;
        const profile::LoopStats* stats = prof.loopStats(shape.header_sid);
        if (stats == nullptr || stats->iterations == 0) continue;
        const double body = stats->avgBodySize();
        if (body < options_.min_avg_body_size ||
            body >= options_.unroll_body_threshold ||
            stats->avgTripCount() < 2.0 * options_.min_avg_trip_count) {
          continue;
        }
        const auto factor = static_cast<std::uint32_t>(std::min<double>(
            options_.max_unroll_factor,
            std::ceil(options_.unroll_body_threshold / std::max(body, 1.0))));
        if (factor < 2) continue;
        if (unrollLoop(module, shape, factor)) {
          unroll_factors[shape.name] = static_cast<int>(factor);
          changed = true;
        }
      }
    }
    if (changed) {
      module.finalize();
      SPT_CHECK_MSG(ir::verifyModule(module).empty(),
                    "unrolling produced an invalid module");
      prof = runner.run(module, {});
    }
  }

  // ---- Pass 1: shape recognition, filters, dependence analysis, and SVP
  // value-candidate collection.
  SptPlan plan;
  plan.profiled_instrs = prof.total_instrs;
  const analysis::ModRefSummary modref(module);
  std::unordered_set<ir::StaticId> value_candidates;

  struct Candidate {
    ir::FuncId func;
    analysis::LoopId loop;
    std::size_t plan_index;
  };
  std::vector<Candidate> candidates;

  for (ir::FuncId f = 0; f < module.functionCount(); ++f) {
    const ir::Function& func = module.function(f);
    const analysis::Cfg cfg(func);
    const analysis::DomTree dom(cfg);
    const analysis::LoopForest forest(cfg, dom);
    const analysis::DefUse defuse(cfg);
    for (analysis::LoopId l = 0; l < forest.loopCount(); ++l) {
      const LoopShape shape = recognizeLoop(module, func, cfg, forest, l);
      LoopPlanEntry entry;
      entry.name = shape.name;
      entry.func = f;
      entry.header_sid = shape.header_sid;
      if (const auto it = unroll_factors.find(shape.name);
          it != unroll_factors.end()) {
        entry.unroll_factor = it->second;
      }
      if (const profile::LoopStats* stats =
              prof.loopStats(shape.header_sid)) {
        entry.coverage = prof.total_instrs == 0
                             ? 0.0
                             : static_cast<double>(stats->dyn_instrs) /
                                   prof.total_instrs;
        entry.avg_body_size = stats->avgBodySize();
        entry.avg_trip = stats->avgTripCount();
      }
      entry.reject_reason =
          filterReason(shape, prof.loopStats(shape.header_sid),
                       prof.total_instrs, options_);
      entry.candidate = entry.reject_reason.empty();
      if (entry.candidate) {
        const LoopAnalysis analysis = analyzeLoop(
            module, func, cfg, defuse, modref, shape, prof, options_);
        for (const CarriedDep& dep : analysis.deps) {
          if (dep.kind == DepKind::kRegister) {
            value_candidates.insert(analysis.stmts[dep.source_stmt].sid);
          }
        }
        candidates.push_back({f, l, plan.loops.size()});
      }
      plan.loops.push_back(std::move(entry));
    }
  }

  // ---- SVP value-profiling pass (the paper's instrumented profiling run,
  // Section 4.4).
  if (!value_candidates.empty() && options_.enable_svp) {
    profile::ProfileData with_values = runner.run(module, value_candidates);
    prof = std::move(with_values);
  }

  // ---- Partition search per candidate, then pass-2 selection and
  // transformation.
  std::vector<std::pair<std::size_t, LoopAnalysis>> to_transform;
  for (const Candidate& c : candidates) {
    const ir::Function& func = module.function(c.func);
    const analysis::Cfg cfg(func);
    const analysis::DomTree dom(cfg);
    const analysis::LoopForest forest(cfg, dom);
    const analysis::DefUse defuse(cfg);
    const LoopShape shape = recognizeLoop(module, func, cfg, forest, c.loop);
    SPT_CHECK(shape.transformable);
    LoopAnalysis analysis = analyzeLoop(module, func, cfg, defuse, modref,
                                        shape, prof, options_);
    const SearchResult search = searchOptimalPartition(analysis, options_);

    LoopPlanEntry& entry = plan.loops[c.plan_index];
    entry.dep_count = analysis.deps.size();
    entry.actions = search.partition.actions;
    entry.cost = search.cost;
    entry.evaluated = search.evaluated;

    const bool good =
        !options_.cost_driven_selection ||
        (search.cost.feasible &&
         search.cost.est_speedup >= options_.min_estimated_speedup);
    entry.selected = good;
    if (!good) {
      entry.reject_reason = !search.cost.feasible
                                ? "no feasible partition (pre-fork too large)"
                                : "estimated speedup below threshold";
      continue;
    }
    to_transform.emplace_back(c.plan_index, std::move(analysis));
  }

  // ---- Region-based speculation (Section 6 extension): applied before
  // the loop transformations (both mutate disjoint blocks, and the region
  // pass reads call costs from the current profile's StaticIds).
  if (options_.enable_region_speculation) {
    plan.regions = applyRegionSpeculation(module, prof, options_);
  }

  for (auto& [plan_index, analysis] : to_transform) {
    LoopPlanEntry& entry = plan.loops[plan_index];
    Partition partition;
    partition.actions = entry.actions;
    const TransformOutcome outcome =
        transformLoop(module, analysis, partition);
    entry.transformed = outcome.applied;
    entry.transform_detail = outcome.detail;
    if (!outcome.applied) entry.reject_reason = outcome.detail;
  }

  module.finalize();
  SPT_CHECK_MSG(ir::verifyModule(module).empty(),
                "SPT transformation produced an invalid module");
  return plan;
}

}  // namespace spt::compiler

#include "spt/driver.h"

#include <algorithm>

#include "ir/verifier.h"
#include "spt/pass.h"
#include "spt/profile_cache.h"
#include "support/check.h"

namespace spt::compiler {
namespace {

/// One pipeline attempt: finalize + verify the input, then run the
/// standard pass sequence over a fresh PipelineState.
SptPlan runPipelineOnce(ir::Module& module, ProfileRunner& runner,
                        const CompilerOptions& options, ProfileCache& cache,
                        PassManager& pm,
                        const std::unordered_set<std::string>& deny_unroll,
                        std::uint64_t* analysis_hits,
                        std::uint64_t* analysis_misses) {
  module.finalize();
  SPT_CHECK_MSG(ir::verifyModule(module).empty(),
                "input module fails verification");

  AnalysisManager analyses(module);
  PipelineState state;
  state.deny_unroll = &deny_unroll;
  PassContext ctx{module, runner, options, analyses, cache, state};
  pm.run(ctx);

  *analysis_hits += analyses.hits();
  *analysis_misses += analyses.misses();
  return std::move(state.plan);
}

}  // namespace

SptPlan SptCompiler::compile(ir::Module& module, ProfileRunner& runner,
                             CompilationRemarks* remarks) {
  ProfileCache cache;
  PassManager pm(options_.verify_between_passes);
  buildSptPipeline(pm);
  std::uint64_t analysis_hits = 0;
  std::uint64_t analysis_misses = 0;

  ir::Module pristine = module;
  SptPlan plan = runPipelineOnce(module, runner, options_, cache, pm, {},
                                 &analysis_hits, &analysis_misses);

  std::unordered_set<std::string> deny_unroll;
  for (const LoopPlanEntry& entry : plan.loops) {
    if (entry.unroll_factor > 1 && !entry.transformed) {
      deny_unroll.insert(entry.name);
    }
  }
  std::uint64_t restarts = 0;
  if (!deny_unroll.empty()) {
    module = std::move(pristine);
    plan = runPipelineOnce(module, runner, options_, cache, pm, deny_unroll,
                           &analysis_hits, &analysis_misses);
    restarts = 1;
  }

  if (remarks != nullptr) {
    remarks->setFromPlan(plan, module);
    remarks->restarts = restarts;
    remarks->deny_unroll.assign(deny_unroll.begin(), deny_unroll.end());
    std::sort(remarks->deny_unroll.begin(), remarks->deny_unroll.end());
    remarks->passes = pm.stats();
    remarks->profile_runs = cache.misses();
    remarks->profile_cache_hits = cache.hits();
    remarks->analysis_cache_hits = analysis_hits;
    remarks->analysis_cache_misses = analysis_misses;
  }
  return plan;
}

}  // namespace spt::compiler

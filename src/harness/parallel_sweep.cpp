#include "harness/parallel_sweep.h"

#include <fstream>

#include "support/json.h"

namespace spt::harness {

std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases) {
  return sweep.run(cases.size(), [&](std::size_t i) {
    const SweepCase& c = cases[i];
    SweepRow row;
    row.benchmark = c.benchmark;
    row.config = c.config;
    row.result = runSuiteEntry(c.entry, c.machine, c.scale);
    return row;
  });
}

bool writeSweepJson(const std::string& path,
                    const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  support::JsonWriter w(out);
  w.beginObject();
  w.key("rows").beginArray();
  for (const SweepRow& r : rows) {
    const sim::MachineResult& base = r.result.baseline;
    const sim::MachineResult& spt = r.result.spt;
    w.beginObject();
    w.member("benchmark", r.benchmark);
    w.member("config", r.config);
    w.member("baseline_cycles", base.cycles);
    w.member("spt_cycles", spt.cycles);
    w.member("baseline_instrs", base.instrs);
    w.member("spt_instrs", spt.instrs);
    w.member("speedup", r.result.programSpeedup());
    w.key("baseline_breakdown").beginObject();
    w.member("execution", base.breakdown.execution);
    w.member("pipeline_stall", base.breakdown.pipeline_stall);
    w.member("dcache_stall", base.breakdown.dcache_stall);
    w.endObject();
    w.key("spt_breakdown").beginObject();
    w.member("execution", spt.breakdown.execution);
    w.member("pipeline_stall", spt.breakdown.pipeline_stall);
    w.member("dcache_stall", spt.breakdown.dcache_stall);
    w.endObject();
    w.key("threads").beginObject();
    w.member("spawned", spt.threads.spawned);
    w.member("fast_commits", spt.threads.fast_commits);
    w.member("replays", spt.threads.replays);
    w.member("squashes", spt.threads.squashes);
    w.member("killed", spt.threads.killed);
    w.member("spec_instrs", spt.threads.spec_instrs);
    w.member("misspec_instrs", spt.threads.misspec_instrs);
    w.member("committed_instrs", spt.threads.committed_instrs);
    w.member("fast_commit_ratio", spt.threads.fastCommitRatio());
    w.member("misspeculation_ratio", spt.threads.misspeculationRatio());
    w.endObject();
    if (!r.extra.empty()) {
      w.key("extra").beginObject();
      for (const auto& [k, v] : r.extra) w.member(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace spt::harness

#include "harness/parallel_sweep.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "support/check.h"
#include "support/error.h"
#include "support/json.h"

namespace spt::harness {

std::string toString(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kBudgetExceeded:
      return "budget_exceeded";
    case CellStatus::kInternalError:
      return "internal_error";
  }
  return "unknown";
}

std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases) {
  return sweep.run(cases.size(), [&](std::size_t i) {
    const SweepCase& c = cases[i];
    SweepRow row;
    row.benchmark = c.benchmark;
    row.config = c.config;
    row.result = runSuiteEntry(c.entry, c.machine, c.scale);
    return row;
  });
}

namespace {

// Checkpoint side-file format: one tab-separated line per finished cell,
// `spt-sweep-v1 <status> <benchmark> <config> <20 metrics> <diagnostic>`.
// Append-only; on resume the last line per (benchmark, config) wins. Only
// the metrics writeSweepJson emits are stored, so a resumed ok row carries
// the summary numbers but not the full plan/run payloads.
constexpr const char* kCheckpointTag = "spt-sweep-v1";
constexpr std::size_t kCheckpointMetrics = 20;

std::string sanitizeField(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string cellKey(const std::string& benchmark, const std::string& config) {
  return sanitizeField(benchmark) + '\t' + sanitizeField(config);
}

bool statusFromString(const std::string& s, CellStatus& out) {
  if (s == "ok") {
    out = CellStatus::kOk;
  } else if (s == "budget_exceeded") {
    out = CellStatus::kBudgetExceeded;
  } else if (s == "internal_error") {
    out = CellStatus::kInternalError;
  } else {
    return false;
  }
  return true;
}

std::string checkpointLine(const SweepRow& r) {
  const sim::MachineResult& base = r.result.baseline;
  const sim::MachineResult& spt = r.result.spt;
  std::ostringstream os;
  os << kCheckpointTag << '\t' << toString(r.status) << '\t'
     << sanitizeField(r.benchmark) << '\t' << sanitizeField(r.config);
  const std::uint64_t metrics[kCheckpointMetrics] = {
      base.cycles,
      spt.cycles,
      base.instrs,
      spt.instrs,
      base.breakdown.execution,
      base.breakdown.pipeline_stall,
      base.breakdown.dcache_stall,
      spt.breakdown.execution,
      spt.breakdown.pipeline_stall,
      spt.breakdown.dcache_stall,
      spt.threads.spawned,
      spt.threads.fast_commits,
      spt.threads.replays,
      spt.threads.squashes,
      spt.threads.killed,
      spt.threads.spec_instrs,
      spt.threads.misspec_instrs,
      spt.threads.committed_instrs,
      spt.threads.forks_ignored,
      spt.threads.wrong_path,
  };
  for (const std::uint64_t m : metrics) os << '\t' << m;
  os << '\t' << sanitizeField(r.diagnostic);
  return os.str();
}

bool parseCheckpointLine(const std::string& line, SweepRow& out) {
  std::istringstream is(line);
  std::string field;
  const auto next = [&](std::string& dst) {
    return static_cast<bool>(std::getline(is, dst, '\t'));
  };
  if (!next(field) || field != kCheckpointTag) return false;
  if (!next(field) || !statusFromString(field, out.status)) return false;
  if (!next(out.benchmark) || !next(out.config)) return false;
  std::uint64_t metrics[kCheckpointMetrics] = {};
  for (std::uint64_t& m : metrics) {
    if (!next(field)) return false;
    try {
      m = std::stoull(field);
    } catch (...) {
      return false;
    }
  }
  // The diagnostic is the (possibly empty) remainder of the line.
  std::getline(is, out.diagnostic);
  sim::MachineResult& base = out.result.baseline;
  sim::MachineResult& spt = out.result.spt;
  base.cycles = metrics[0];
  spt.cycles = metrics[1];
  base.instrs = metrics[2];
  spt.instrs = metrics[3];
  base.breakdown.execution = metrics[4];
  base.breakdown.pipeline_stall = metrics[5];
  base.breakdown.dcache_stall = metrics[6];
  spt.breakdown.execution = metrics[7];
  spt.breakdown.pipeline_stall = metrics[8];
  spt.breakdown.dcache_stall = metrics[9];
  spt.threads.spawned = metrics[10];
  spt.threads.fast_commits = metrics[11];
  spt.threads.replays = metrics[12];
  spt.threads.squashes = metrics[13];
  spt.threads.killed = metrics[14];
  spt.threads.spec_instrs = metrics[15];
  spt.threads.misspec_instrs = metrics[16];
  spt.threads.committed_instrs = metrics[17];
  spt.threads.forks_ignored = metrics[18];
  spt.threads.wrong_path = metrics[19];
  return true;
}

}  // namespace

std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases,
                               const SweepOptions& opts) {
  std::map<std::string, SweepRow> resumed;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    std::ifstream in(opts.checkpoint_path);
    std::string line;
    while (std::getline(in, line)) {
      SweepRow row;
      if (parseCheckpointLine(line, row)) {
        resumed[cellKey(row.benchmark, row.config)] = std::move(row);
      }
    }
  }

  // Quarantine runs the whole sweep with SPT_CHECK in throwing mode so a
  // poisoned cell surfaces as SptInternalError on its own worker instead
  // of aborting the process. The flag is process-global, so it brackets
  // the sweep, not each cell.
  std::optional<support::ScopedCheckThrowMode> throw_mode;
  if (opts.quarantine) throw_mode.emplace(true);

  std::ofstream checkpoint;
  std::mutex checkpoint_mu;
  if (!opts.checkpoint_path.empty()) {
    checkpoint.open(opts.checkpoint_path, opts.resume
                                              ? std::ios::out | std::ios::app
                                              : std::ios::out | std::ios::trunc);
  }

  return sweep.run(cases.size(), [&](std::size_t i) {
    const SweepCase& c = cases[i];
    if (opts.resume) {
      const auto it = resumed.find(cellKey(c.benchmark, c.config));
      if (it != resumed.end() && it->second.ok()) return it->second;
    }
    SweepRow row;
    row.benchmark = c.benchmark;
    row.config = c.config;
    if (opts.quarantine) {
      try {
        row.result = runSuiteEntry(c.entry, c.machine, c.scale);
      } catch (const support::SptBudgetExceeded& e) {
        row.status = CellStatus::kBudgetExceeded;
        row.diagnostic = e.what();
      } catch (const std::exception& e) {
        row.status = CellStatus::kInternalError;
        row.diagnostic = e.what();
      }
    } else {
      row.result = runSuiteEntry(c.entry, c.machine, c.scale);
    }
    if (checkpoint.is_open()) {
      const std::lock_guard<std::mutex> lock(checkpoint_mu);
      checkpoint << checkpointLine(row) << '\n' << std::flush;
    }
    return row;
  });
}

bool writeSweepJson(const std::string& path,
                    const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  support::JsonWriter w(out);
  w.beginObject();
  w.key("rows").beginArray();
  for (const SweepRow& r : rows) {
    const sim::MachineResult& base = r.result.baseline;
    const sim::MachineResult& spt = r.result.spt;
    w.beginObject();
    w.member("benchmark", r.benchmark);
    w.member("config", r.config);
    w.member("status", toString(r.status));
    if (!r.diagnostic.empty()) w.member("diagnostic", r.diagnostic);
    w.member("baseline_cycles", base.cycles);
    w.member("spt_cycles", spt.cycles);
    w.member("baseline_instrs", base.instrs);
    w.member("spt_instrs", spt.instrs);
    w.member("speedup", r.result.programSpeedup());
    w.key("baseline_breakdown").beginObject();
    w.member("execution", base.breakdown.execution);
    w.member("pipeline_stall", base.breakdown.pipeline_stall);
    w.member("dcache_stall", base.breakdown.dcache_stall);
    w.endObject();
    w.key("spt_breakdown").beginObject();
    w.member("execution", spt.breakdown.execution);
    w.member("pipeline_stall", spt.breakdown.pipeline_stall);
    w.member("dcache_stall", spt.breakdown.dcache_stall);
    w.endObject();
    w.key("threads").beginObject();
    w.member("spawned", spt.threads.spawned);
    w.member("fast_commits", spt.threads.fast_commits);
    w.member("replays", spt.threads.replays);
    w.member("squashes", spt.threads.squashes);
    w.member("killed", spt.threads.killed);
    w.member("spec_instrs", spt.threads.spec_instrs);
    w.member("misspec_instrs", spt.threads.misspec_instrs);
    w.member("committed_instrs", spt.threads.committed_instrs);
    w.member("fast_commit_ratio", spt.threads.fastCommitRatio());
    w.member("misspeculation_ratio", spt.threads.misspeculationRatio());
    w.endObject();
    if (spt.faults.injected != 0) {
      w.key("faults").beginObject();
      w.member("injected", spt.faults.injected);
      w.member("detected_by_net", spt.faults.detected_by_net);
      w.member("detected_by_oracle", spt.faults.detected_by_oracle);
      w.member("benign", spt.faults.benign);
      w.member("escaped", spt.faults.escaped);
      w.endObject();
    }
    if (!r.extra.empty()) {
      w.key("extra").beginObject();
      for (const auto& [k, v] : r.extra) w.member(k, v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace spt::harness

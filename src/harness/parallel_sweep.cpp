#include "harness/parallel_sweep.h"

#include <cstdio>
#include <fstream>
#include <mutex>

#include "harness/cell_codec.h"
#include "harness/checkpoint.h"
#include "support/check.h"
#include "support/error.h"
#include "support/json.h"

namespace spt::harness {

std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases) {
  return sweep.run(cases.size(), [&](std::size_t i) {
    const SweepCase& c = cases[i];
    SweepRow row;
    row.benchmark = c.benchmark;
    row.config = c.config;
    row.result = runSuiteEntry(c.entry, c.machine, c.scale);
    return row;
  });
}

// The sweep stores the 20 summary metrics writeSweepJson emits in its
// checkpoint lines (harness/checkpoint.h owns the shared line format), so
// a resumed ok row carries the summary numbers but not the full plan/run
// payloads.
CheckpointLine sweepCheckpointLine(const SweepRow& r) {
  const sim::MachineResult& base = r.result.baseline;
  const sim::MachineResult& spt = r.result.spt;
  CheckpointLine line;
  line.status = r.status;
  line.benchmark = r.benchmark;
  line.config = r.config;
  line.metrics = {
      base.cycles,
      spt.cycles,
      base.instrs,
      spt.instrs,
      base.breakdown.execution,
      base.breakdown.pipeline_stall,
      base.breakdown.dcache_stall,
      spt.breakdown.execution,
      spt.breakdown.pipeline_stall,
      spt.breakdown.dcache_stall,
      spt.threads.spawned,
      spt.threads.fast_commits,
      spt.threads.replays,
      spt.threads.squashes,
      spt.threads.killed,
      spt.threads.spec_instrs,
      spt.threads.misspec_instrs,
      spt.threads.committed_instrs,
      spt.threads.forks_ignored,
      spt.threads.wrong_path,
  };
  line.diagnostic = r.diagnostic;
  return line;
}

std::vector<SweepCase> buildSuiteSweepCases(
    const support::MachineConfig& machine,
    const compiler::CompilerOptions& copts, std::uint64_t scale,
    const std::vector<std::string>& benchmarks,
    const std::vector<std::uint32_t>& spec_threads) {
  std::vector<SweepCase> cases;
  for (auto& entry : defaultSuite()) {
    if (!benchmarks.empty()) {
      bool wanted = false;
      for (const std::string& b : benchmarks) {
        if (b == entry.workload.name) wanted = true;
      }
      if (!wanted) continue;
    }
    SweepCase c;
    c.benchmark = entry.workload.name;
    c.entry = std::move(entry);
    // Suite-level per-benchmark overrides (gap's 2500 body-size limit)
    // survive; every other knob comes from the caller.
    const double per_benchmark_limit = c.entry.copts.max_avg_body_size;
    c.entry.copts = copts;
    if (per_benchmark_limit > c.entry.copts.max_avg_body_size) {
      c.entry.copts.max_avg_body_size = per_benchmark_limit;
    }
    c.machine = machine;
    c.scale = scale;
    if (spec_threads.empty()) {
      cases.push_back(std::move(c));
      continue;
    }
    // Thread-count grid axis: one case per N, tagged "default" for N == 1
    // (so single-threaded grids stay byte-identical to the historical
    // sweep, checkpoints included) and "n<N>" otherwise. Both the machine
    // and the compiler see N — the simulator sizes its chain and the
    // precomputation-slice pass only arms itself at N >= 2.
    for (const std::uint32_t n : spec_threads) {
      SPT_CHECK_MSG(n >= 1 && n <= support::kMaxSpecThreads,
                    "spec_threads out of range");
      SweepCase g = c;
      g.config = n == 1 ? "default" : "n" + std::to_string(n);
      g.machine.spec_threads = n;
      g.entry.copts.spec_threads = n;
      cases.push_back(std::move(g));
    }
  }
  return cases;
}

SweepRow sweepRowFromCheckpointLine(const CheckpointLine& l) {
  SweepRow out;
  out.status = l.status;
  out.benchmark = l.benchmark;
  out.config = l.config;
  out.diagnostic = l.diagnostic;
  sim::MachineResult& base = out.result.baseline;
  sim::MachineResult& spt = out.result.spt;
  base.cycles = l.metrics[0];
  spt.cycles = l.metrics[1];
  base.instrs = l.metrics[2];
  spt.instrs = l.metrics[3];
  base.breakdown.execution = l.metrics[4];
  base.breakdown.pipeline_stall = l.metrics[5];
  base.breakdown.dcache_stall = l.metrics[6];
  spt.breakdown.execution = l.metrics[7];
  spt.breakdown.pipeline_stall = l.metrics[8];
  spt.breakdown.dcache_stall = l.metrics[9];
  spt.threads.spawned = l.metrics[10];
  spt.threads.fast_commits = l.metrics[11];
  spt.threads.replays = l.metrics[12];
  spt.threads.squashes = l.metrics[13];
  spt.threads.killed = l.metrics[14];
  spt.threads.spec_instrs = l.metrics[15];
  spt.threads.misspec_instrs = l.metrics[16];
  spt.threads.committed_instrs = l.metrics[17];
  spt.threads.forks_ignored = l.metrics[18];
  spt.threads.wrong_path = l.metrics[19];
  return out;
}

namespace {

/// Runs one cell in-cell (either path): quarantine-catches per `catch_all`.
SweepRow runCell(const SweepCase& c, bool catch_all, TraceCache* cache) {
  SweepRow row;
  row.benchmark = c.benchmark;
  row.config = c.config;
  if (catch_all) {
    try {
      row.result = runSuiteEntry(c.entry, c.machine, c.scale,
                                 /*remarks=*/nullptr, cache);
    } catch (const support::SptBudgetExceeded& e) {
      row.status = CellStatus::kBudgetExceeded;
      row.diagnostic = e.what();
    } catch (const std::exception& e) {
      row.status = CellStatus::kInternalError;
      row.diagnostic = e.what();
    }
  } else {
    row.result = runSuiteEntry(c.entry, c.machine, c.scale,
                               /*remarks=*/nullptr, cache);
  }
  return row;
}

/// The supervised sweep path (fork-per-cell, or the warm worker pool when
/// SupervisorOptions::pool is set). `resumed` holds ok rows reused from
/// the checkpoint; only the remaining cells go to workers.
std::vector<SweepRow> runSweepSupervised(
    const ParallelSweep& sweep, const std::vector<SweepCase>& cases,
    const SweepOptions& opts, std::map<std::string, SweepRow>& resumed,
    TraceCache* cache) {
  std::vector<SweepRow> rows(cases.size());
  std::vector<std::size_t> to_run;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto it =
        resumed.find(checkpointKey(cases[i].benchmark, cases[i].config));
    if (opts.resume && it != resumed.end() && it->second.ok()) {
      rows[i] = it->second;
    } else {
      to_run.push_back(i);
    }
  }

  // Checkpoints go through the durable fd writer (O_APPEND + fsync per
  // record): the old ofstream flush() only reached the page cache, so a
  // power loss — or the SIGKILLs the service crash campaign throws — could
  // lose records the process believed were safe.
  DurableAppendFile checkpoint;
  if (!opts.checkpoint_path.empty()) {
    checkpoint.open(opts.checkpoint_path, /*truncate=*/!opts.resume);
  }

  SupervisorOptions sopts = opts.supervisor;
  if (sopts.jobs == 0) sopts.jobs = sweep.jobs();
  const Supervisor supervisor(sopts);

  // The producer runs in the forked worker. Supervision implies
  // quarantine semantics: a cell exception becomes a non-ok row in the
  // payload either way (the alternative — letting it escape — would just
  // downgrade a structured status into a generic worker error). With a
  // trace cache, workers rendezvous on the cache *files*: whichever
  // worker first needs a workload's trace writes it, every other worker
  // (pooled or fork-per-cell) mmaps the same file, so the page cache
  // holds one physical copy per workload across the whole worker fleet.
  const auto produce = [&](std::size_t k) {
    return produceSweepCellPayload(cases[to_run[k]], cache);
  };

  // The settle hook runs in the parent, single-threaded, as each cell's
  // retries resolve — checkpoint appends need no lock here.
  const auto on_settled = [&](std::size_t k, const Supervisor::Outcome& oc) {
    const std::size_t i = to_run[k];
    SweepRow row =
        sweepRowFromOutcome(cases[i].benchmark, cases[i].config, oc);
    if (checkpoint.isOpen()) {
      checkpoint.appendLine(formatCheckpointLine(sweepCheckpointLine(row)));
      checkpoint.sync();
    }
    rows[i] = std::move(row);
  };

  supervisor.run(to_run.size(), produce, on_settled);
  return rows;
}

}  // namespace

std::string produceSweepCellPayload(const SweepCase& c, TraceCache* cache) {
  return encodeSweepRow(runCell(c, /*catch_all=*/true, cache));
}

SweepRow sweepRowFromOutcome(const std::string& benchmark,
                             const std::string& config,
                             const Supervisor::Outcome& oc) {
  SweepRow row;
  if (oc.status == CellStatus::kOk) {
    if (!decodeSweepRow(oc.payload, &row)) {
      row.benchmark = benchmark;
      row.config = config;
      row.status = CellStatus::kProtocolError;
      row.diagnostic =
          "worker payload passed frame validation but failed to decode "
          "as a sweep row";
    }
  } else {
    // Transport failure or structured worker error: synthesize the row
    // from the case tags and the supervisor's diagnostic.
    row.benchmark = benchmark;
    row.config = config;
    row.status = oc.status;
    row.diagnostic = oc.diagnostic;
  }
  row.worker = oc.worker;
  return row;
}

std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases,
                               const SweepOptions& opts) {
  std::map<std::string, SweepRow> resumed;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    std::string torn_warning;
    for (auto& [key, line] : loadCheckpoint(
             opts.checkpoint_path, kSweepCheckpointMetrics, &torn_warning)) {
      resumed[key] = sweepRowFromCheckpointLine(line);
    }
    if (!torn_warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", torn_warning.c_str());
    }
  }

  // Quarantine runs the whole sweep with SPT_CHECK in throwing mode so a
  // poisoned cell surfaces as SptInternalError on its own worker instead
  // of aborting the process. The flag is process-global, so it brackets
  // the sweep, not each cell; forked workers inherit it.
  std::optional<support::ScopedCheckThrowMode> throw_mode;
  if (opts.quarantine) throw_mode.emplace(true);

  // The cache lives for the whole sweep (in the supervised case: in the
  // parent, from which workers inherit the directory; each process maps
  // the shared files on demand).
  std::optional<TraceCache> cache;
  if (!opts.trace_cache_dir.empty()) cache.emplace(opts.trace_cache_dir);
  TraceCache* cache_ptr = cache ? &*cache : nullptr;

  if (opts.supervisor.isolate && Supervisor::isolationSupported()) {
    return runSweepSupervised(sweep, cases, opts, resumed, cache_ptr);
  }

  DurableAppendFile checkpoint;
  std::mutex checkpoint_mu;
  if (!opts.checkpoint_path.empty()) {
    checkpoint.open(opts.checkpoint_path, /*truncate=*/!opts.resume);
  }

  return sweep.run(cases.size(), [&](std::size_t i) {
    const SweepCase& c = cases[i];
    if (opts.resume) {
      const auto it = resumed.find(checkpointKey(c.benchmark, c.config));
      if (it != resumed.end() && it->second.ok()) return it->second;
    }
    SweepRow row = runCell(c, /*catch_all=*/opts.quarantine, cache_ptr);
    if (checkpoint.isOpen()) {
      const std::lock_guard<std::mutex> lock(checkpoint_mu);
      checkpoint.appendLine(formatCheckpointLine(sweepCheckpointLine(row)));
      checkpoint.sync();
    }
    return row;
  });
}

bool writeSweepJson(const std::string& path,
                    const std::vector<SweepRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  support::JsonWriter w(out);
  w.beginObject();
  w.key("rows").beginArray();
  for (const SweepRow& r : rows) {
    const sim::MachineResult& base = r.result.baseline;
    const sim::MachineResult& spt = r.result.spt;
    w.beginObject();
    w.member("benchmark", r.benchmark);
    w.member("config", r.config);
    w.member("status", toString(r.status));
    if (!r.diagnostic.empty()) w.member("diagnostic", r.diagnostic);
    w.member("baseline_cycles", base.cycles);
    w.member("spt_cycles", spt.cycles);
    w.member("baseline_instrs", base.instrs);
    w.member("spt_instrs", spt.instrs);
    w.member("speedup", r.result.programSpeedup());
    w.key("baseline_breakdown").beginObject();
    w.member("execution", base.breakdown.execution);
    w.member("pipeline_stall", base.breakdown.pipeline_stall);
    w.member("dcache_stall", base.breakdown.dcache_stall);
    w.endObject();
    w.key("spt_breakdown").beginObject();
    w.member("execution", spt.breakdown.execution);
    w.member("pipeline_stall", spt.breakdown.pipeline_stall);
    w.member("dcache_stall", spt.breakdown.dcache_stall);
    w.endObject();
    w.key("threads").beginObject();
    w.member("spawned", spt.threads.spawned);
    w.member("fast_commits", spt.threads.fast_commits);
    w.member("replays", spt.threads.replays);
    w.member("squashes", spt.threads.squashes);
    w.member("killed", spt.threads.killed);
    w.member("spec_instrs", spt.threads.spec_instrs);
    w.member("misspec_instrs", spt.threads.misspec_instrs);
    w.member("committed_instrs", spt.threads.committed_instrs);
    w.member("fast_commit_ratio", spt.threads.fastCommitRatio());
    w.member("misspeculation_ratio", spt.threads.misspeculationRatio());
    w.endObject();
    if (spt.faults.injected != 0) {
      w.key("faults").beginObject();
      w.member("injected", spt.faults.injected);
      w.member("detected_by_net", spt.faults.detected_by_net);
      w.member("detected_by_oracle", spt.faults.detected_by_oracle);
      w.member("benign", spt.faults.benign);
      w.member("escaped", spt.faults.escaped);
      w.endObject();
    }
    if (!r.extra.empty()) {
      w.key("extra").beginObject();
      for (const auto& [k, v] : r.extra) w.member(k, v);
      w.endObject();
    }
    // Supervisor containment data, only for cells that went through a
    // worker — the in-process path's output is byte-identical to before.
    // host_-prefixed members are host-dependent (CI filters them out of
    // determinism diffs with `grep -v '"host_'`).
    if (r.worker.attempts > 0) {
      w.key("worker").beginObject();
      w.member("attempts", static_cast<std::uint64_t>(r.worker.attempts));
      w.member("exit_code", r.worker.exit_code);
      w.member("term_signal", r.worker.term_signal);
      w.member("timed_out", r.worker.timed_out);
      w.member("host_user_seconds", r.worker.host_user_seconds);
      w.member("host_sys_seconds", r.worker.host_sys_seconds);
      w.member("host_max_rss_kb",
               static_cast<std::int64_t>(r.worker.host_max_rss_kb));
      if (!r.worker.partial_reply.empty()) {
        w.member("partial_reply", r.worker.partial_reply);
      }
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  // Sweep-level rusage aggregate; present only when at least one cell ran
  // under the supervisor, so in-process output stays byte-identical to
  // before. Cell/attempt counts are deterministic across worker models;
  // the host_ members are filtered from CI diffs like the per-row ones.
  ResourceReport resource;
  for (const SweepRow& r : rows) resource.add(r.worker);
  if (resource.supervised_cells > 0) {
    w.key("resource").beginObject();
    w.member("supervised_cells",
             static_cast<std::uint64_t>(resource.supervised_cells));
    w.member("attempts", resource.attempts);
    w.member("host_user_seconds", resource.host_user_seconds);
    w.member("host_sys_seconds", resource.host_sys_seconds);
    w.member("host_max_rss_kb", resource.host_max_rss_kb);
    w.endObject();
  }
  w.endObject();
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace spt::harness

#include "harness/experiment.h"

#include "ir/verifier.h"
#include "support/check.h"

namespace spt::harness {

profile::ProfileData InterpProfileRunner::run(
    const ir::Module& module,
    const std::unordered_set<ir::StaticId>& value_candidates) {
  interp::ProgramContext ctx(module);
  interp::Memory memory;
  profile::Profiler profiler(module, value_candidates);
  interp::Interpreter interp(ctx, memory, profiler);
  interp.runMain(args_);
  return profiler.take();
}

TracedRun traceProgram(ir::Module& module, std::vector<std::int64_t> args,
                       std::uint64_t max_records) {
  if (!module.finalized()) module.finalize();
  TracedRun out;
  interp::ProgramContext ctx(module);
  interp::Memory memory;
  interp::Interpreter interp(ctx, memory, out.trace);
  interp::RunLimits limits;
  if (max_records != 0) limits.max_instrs = max_records;
  out.result = interp.runMain(args, limits);
  return out;
}

ExperimentResult runSptExperiment(ir::Module module,
                                  const compiler::CompilerOptions& copts,
                                  const support::MachineConfig& mconfig,
                                  std::vector<std::int64_t> args,
                                  compiler::CompilationRemarks* remarks) {
  ExperimentResult result;

  // Baseline: the unmodified module.
  ir::Module baseline = module;
  baseline.finalize();

  // SPT: two-pass cost-driven compilation in place.
  compiler::SptCompiler cc(copts);
  InterpProfileRunner runner(args);
  result.plan = cc.compile(module, runner, remarks);

  // Sequential semantics must be preserved by the transformation.
  TracedRun base_run = traceProgram(baseline, args, mconfig.max_trace_records);
  TracedRun spt_run = traceProgram(module, args, mconfig.max_trace_records);
  result.baseline_run = base_run.result;
  result.spt_run = spt_run.result;
  SPT_CHECK_MSG(
      base_run.result.return_value == spt_run.result.return_value,
      "SPT transformation changed the program result");
  SPT_CHECK_MSG(base_run.result.memory_hash == spt_run.result.memory_hash,
                "SPT transformation changed the memory image");

  // Simulate.
  sim::BaselineMachine base_machine(baseline, base_run.trace, mconfig);
  result.baseline = base_machine.run();
  const trace::LoopIndex index(module, spt_run.trace);
  sim::SptMachine spt_machine(module, spt_run.trace, index, mconfig);
  result.spt = spt_machine.run();
  return result;
}

}  // namespace spt::harness

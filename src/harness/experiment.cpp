#include "harness/experiment.h"

#include "ir/verifier.h"
#include "support/check.h"

namespace spt::harness {

namespace {

std::uint64_t foldWord(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (i * 8)) & 0xff)) * 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::uint64_t instrCountOf(trace::TraceView view) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    n += view[i].kind == trace::RecordKind::kInstr ? 1 : 0;
  }
  return n;
}

}  // namespace

profile::ProfileData InterpProfileRunner::run(
    const ir::Module& module,
    const std::unordered_set<ir::StaticId>& value_candidates) {
  interp::ProgramContext ctx(module);
  interp::Memory memory;
  profile::Profiler profiler(module, value_candidates);
  interp::Interpreter interp(ctx, memory, profiler);
  interp.runMain(args_);
  return profiler.take();
}

TracedRun traceProgram(ir::Module& module, std::vector<std::int64_t> args,
                       std::uint64_t max_records) {
  if (!module.finalized()) module.finalize();
  TracedRun out;
  interp::ProgramContext ctx(module);
  interp::Memory memory;
  interp::Interpreter interp(ctx, memory, out.trace);
  interp::RunLimits limits;
  if (max_records != 0) limits.max_instrs = max_records;
  out.result = interp.runMain(args, limits);
  return out;
}

ExperimentResult runSptExperiment(ir::Module module,
                                  const compiler::CompilerOptions& copts,
                                  const support::MachineConfig& mconfig,
                                  std::vector<std::int64_t> args,
                                  compiler::CompilationRemarks* remarks) {
  ExperimentResult result;

  // Baseline: the unmodified module.
  ir::Module baseline = module;
  baseline.finalize();

  // SPT: two-pass cost-driven compilation in place.
  compiler::SptCompiler cc(copts);
  InterpProfileRunner runner(args);
  result.plan = cc.compile(module, runner, remarks);

  // Sequential semantics must be preserved by the transformation.
  TracedRun base_run = traceProgram(baseline, args, mconfig.max_trace_records);
  TracedRun spt_run = traceProgram(module, args, mconfig.max_trace_records);
  result.baseline_run = base_run.result;
  result.spt_run = spt_run.result;
  SPT_CHECK_MSG(
      base_run.result.return_value == spt_run.result.return_value,
      "SPT transformation changed the program result");
  SPT_CHECK_MSG(base_run.result.memory_hash == spt_run.result.memory_hash,
                "SPT transformation changed the memory image");

  // Simulate.
  sim::BaselineMachine base_machine(baseline, base_run.trace, mconfig);
  result.baseline = base_machine.run();
  const trace::LoopIndex index(module, spt_run.trace);
  sim::SptMachine spt_machine(module, spt_run.trace, index, mconfig);
  result.spt = spt_machine.run();
  return result;
}

ExperimentResult runSptExperiment(ir::Module module, TraceCache& cache,
                                  const std::string& key_prefix,
                                  const compiler::CompilerOptions& copts,
                                  const support::MachineConfig& mconfig,
                                  std::vector<std::int64_t> args,
                                  compiler::CompilationRemarks* remarks) {
  ExperimentResult result;

  ir::Module baseline = module;
  baseline.finalize();

  compiler::SptCompiler cc(copts);
  InterpProfileRunner runner(args);
  result.plan = cc.compile(module, runner, remarks);
  if (!module.finalized()) module.finalize();

  // Everything beyond the program identity that shapes the trace: run
  // arguments and the trace budget. The SPT key also folds the plan
  // fingerprint — the transformed program *is* the plan, so two option
  // sets that compile to the same plan legitimately share a trace.
  std::uint64_t salt = 1469598103934665603ull;
  for (const std::int64_t a : args) {
    salt = foldWord(salt, static_cast<std::uint64_t>(a));
  }
  salt = foldWord(salt, mconfig.max_trace_records);

  const auto entryFor = [&](const std::string& tag,
                            ir::Module& m) -> const TraceCache::Entry& {
    return cache.get(
        key_prefix + tag + "-" + hex64(salt),
        [&](trace::TraceFileMeta* meta) {
          TracedRun run = traceProgram(m, args, mconfig.max_trace_records);
          meta->word0 = static_cast<std::uint64_t>(run.result.return_value);
          meta->word1 = run.result.memory_hash;
          return std::move(run.trace);
        });
  };
  const TraceCache::Entry& base_entry = entryFor(".base", baseline);
  const TraceCache::Entry& spt_entry =
      entryFor(".spt-" + hex64(result.plan.fingerprint()), module);

  result.baseline_run.return_value =
      static_cast<std::int64_t>(base_entry.meta.word0);
  result.baseline_run.memory_hash = base_entry.meta.word1;
  result.baseline_run.dynamic_instrs = instrCountOf(base_entry.view);
  result.spt_run.return_value =
      static_cast<std::int64_t>(spt_entry.meta.word0);
  result.spt_run.memory_hash = spt_entry.meta.word1;
  result.spt_run.dynamic_instrs = instrCountOf(spt_entry.view);
  SPT_CHECK_MSG(
      result.baseline_run.return_value == result.spt_run.return_value,
      "SPT transformation changed the program result");
  SPT_CHECK_MSG(result.baseline_run.memory_hash == result.spt_run.memory_hash,
                "SPT transformation changed the memory image");

  // Simulate straight off the mapped files; the machines only need the
  // views to stay valid until they are destroyed below.
  sim::BaselineMachine base_machine(baseline, base_entry.view, mconfig);
  result.baseline = base_machine.run();
  const trace::LoopIndex index(module, spt_entry.view);
  sim::SptMachine spt_machine(module, spt_entry.view, index, mconfig);
  result.spt = spt_machine.run();
  return result;
}

}  // namespace spt::harness

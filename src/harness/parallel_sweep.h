// Parallel experiment engine (the evaluation loop behind every bench).
//
// The paper's evaluation (Section 5) is a cross-product of workloads ×
// machine configurations × compiler options; each cell is one
// runSptExperiment call, which is fully self-contained (it takes the
// ir::Module by value and owns its traces and simulators, and no layer
// below it has mutable global state). ParallelSweep fans those cells
// across a support::ThreadPool with three guarantees:
//
//  * **ordered aggregation** — results land in submission order
//    regardless of completion order (slot-per-task, no reordering);
//  * **deterministic seeding** — tasks that want randomness receive an
//    Rng seeded by support::deriveSeed(base, task_index), a pure function
//    of the submission index, so the numbers are bit-for-bit identical at
//    any --jobs value;
//  * **error transparency** — a task that throws re-throws from run(), in
//    submission order, after every other task has finished.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "harness/cell_status.h"
#include "harness/checkpoint.h"
#include "harness/suite.h"
#include "harness/supervisor.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace spt::harness {

class ParallelSweep {
 public:
  /// `jobs` == 0 selects support::ThreadPool::defaultWorkerCount()
  /// (the SPT_JOBS environment variable, else hardware concurrency).
  explicit ParallelSweep(std::size_t jobs = 0)
      : jobs_(jobs == 0 ? support::ThreadPool::defaultWorkerCount() : jobs) {}

  std::size_t jobs() const { return jobs_; }

  /// Runs fn(0..n-1) across the pool; out[i] is fn(i)'s result. jobs()==1
  /// runs inline on the calling thread (no pool, same results).
  template <typename Fn>
  auto run(std::size_t n, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using T = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::optional<T>> slots(n);
    std::vector<std::exception_ptr> errors(n);
    if (jobs_ <= 1 || n <= 1) {
      // The inline path honors the same error contract as the pool path:
      // every task runs to completion and the first (submission-order)
      // exception is rethrown afterwards — not mid-sweep.
      for (std::size_t i = 0; i < n; ++i) {
        try {
          slots[i].emplace(fn(i));
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    } else {
      support::ThreadPool pool(std::min(jobs_, n));
      for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&, i] {
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait();
    }
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    std::vector<T> out;
    out.reserve(n);
    for (std::optional<T>& s : slots) out.push_back(std::move(*s));
    return out;
  }

  /// run() variant for randomized tasks: fn(i, rng) receives an Rng seeded
  /// by deriveSeed(base_seed, i) — deterministic at any worker count.
  template <typename Fn>
  auto runSeeded(std::size_t n, std::uint64_t base_seed, Fn&& fn) const {
    return run(n, [&](std::size_t i) {
      support::Rng rng(support::deriveSeed(base_seed, i));
      return fn(i, rng);
    });
  }

 private:
  std::size_t jobs_;
};

/// One cell of an evaluation cross-product: a suite entry under a machine
/// configuration, tagged for tables and JSON output.
struct SweepCase {
  std::string benchmark;          // workload name (table row)
  std::string config = "default"; // configuration tag (table column)
  SuiteEntry entry;
  support::MachineConfig machine;
  std::uint64_t scale = 1;
};

/// A finished cell: the case tags plus the full experiment result and any
/// bench-specific extra metrics (coverage fractions, ratios, ...). When
/// `status` is not kOk, `result` is default-constructed and `diagnostic`
/// holds the failure message (file/line/context for internal errors, or
/// the supervisor's containment diagnostic for crashed/timed-out/corrupt
/// workers). CellStatus and WorkerDiagnostics live in
/// harness/cell_status.h, shared with the fault campaign and supervisor.
struct SweepRow {
  std::string benchmark;
  std::string config;
  CellStatus status = CellStatus::kOk;
  std::string diagnostic;
  ExperimentResult result;
  std::map<std::string, double> extra;
  /// Supervisor containment data; worker.attempts == 0 on the in-process
  /// path (and for resumed rows), so JSON output is unchanged there.
  WorkerDiagnostics worker;

  bool ok() const { return status == CellStatus::kOk; }
};

/// Hardening knobs for runSweep (all off by default — the plain overload
/// keeps the historical throw-on-first-error behavior).
struct SweepOptions {
  /// Quarantine poisoned cells: run the whole sweep with SPT_CHECK in
  /// throwing mode, catch per-cell failures, and report them as non-ok
  /// rows instead of propagating.
  bool quarantine = false;
  /// When non-empty, every finished cell is appended (and flushed) to this
  /// side file as it completes, so a killed sweep loses at most the cells
  /// in flight.
  std::string checkpoint_path;
  /// Reuse ok rows found in `checkpoint_path` instead of re-running their
  /// cells; failed (non-ok) and missing cells re-run. Keyed by
  /// (benchmark, config); the last checkpoint line per key wins.
  bool resume = false;
  /// Process isolation (supervisor.h). With supervisor.isolate set, every
  /// non-resumed cell runs in a forked worker under the watchdog/retry
  /// policy; crashes and hangs become non-ok rows instead of taking the
  /// sweep down. Quarantine semantics are implied in the worker (a cell
  /// exception becomes a non-ok row either way). Checkpoint files written
  /// by either path resume under the other.
  SupervisorOptions supervisor;
  /// When non-empty, cells share one mmap-backed v3 trace per
  /// (workload, scale, plan) through a TraceCache rooted here
  /// (harness/trace_cache.h): the first cell to need a trace interprets
  /// and writes it, every other cell — including supervised workers in
  /// other processes — maps the same file. Results are identical with or
  /// without the cache.
  std::string trace_cache_dir;
};

/// Builds the standard suite sweep grid under one machine/compiler
/// configuration: one case per defaultSuite() entry (in figure order),
/// keeping suite-level per-benchmark overrides — gap's raised body-size
/// limit survives unless the caller's own limit is higher. A non-empty
/// `benchmarks` list filters the grid by workload name (unknown names are
/// silently absent — callers that must reject them validate against
/// defaultSuite() first). `sptc sweep`, the sweep service, and its
/// pooled workers all build cases through this one function, which is
/// what makes their grids — and therefore their JSON — identical.
///
/// A non-empty `spec_threads` list adds a thread-count grid axis: each
/// benchmark expands to one case per N (in list order), with the machine's
/// chain depth and the compiler's slice pass both set to N. N == 1 keeps
/// the "default" config tag so plain grids — and their checkpoint rows —
/// stay byte-identical to the single-threaded sweep; other values are
/// tagged "n<N>".
std::vector<SweepCase> buildSuiteSweepCases(
    const support::MachineConfig& machine,
    const compiler::CompilerOptions& copts, std::uint64_t scale,
    const std::vector<std::string>& benchmarks = {},
    const std::vector<std::uint32_t>& spec_threads = {});

/// Worker-side body of one supervised sweep cell: runs the case with
/// quarantine semantics and returns the encoded reply payload
/// (cell_codec). Shared by the pooled/forked sweep workers and the sweep
/// service's spec-mode workers.
std::string produceSweepCellPayload(const SweepCase& c,
                                    TraceCache* cache = nullptr);

/// Parent-side settle of one supervised sweep cell: decodes a kOk
/// outcome's payload (or synthesizes a row from the case tags and the
/// transport diagnostic) and attaches the worker diagnostics. Shared by
/// runSweep's supervised path and the sweep service.
SweepRow sweepRowFromOutcome(const std::string& benchmark,
                             const std::string& config,
                             const Supervisor::Outcome& outcome);

/// The checkpoint line for one finished sweep row (the 20 summary
/// metrics; harness/checkpoint.h line format, kSweepCheckpointMetrics
/// columns), exposed so the sweep service can append to the same
/// checkpoint files the one-shot sweep writes.
inline constexpr std::size_t kSweepCheckpointMetrics = 20;
CheckpointLine sweepCheckpointLine(const SweepRow& row);

/// Inverse of sweepCheckpointLine: reconstructs a resumed row from a
/// parsed checkpoint line (`line.metrics.size()` must be
/// kSweepCheckpointMetrics). The 20 metrics cover every deterministic
/// field writeSweepJson emits (speedups and ratios are derived), so a
/// resumed row renders byte-identically; the full plan/run payloads and
/// worker diagnostics are not part of the line. Shared by `--resume` and
/// the sweep service's journal recovery.
SweepRow sweepRowFromCheckpointLine(const CheckpointLine& line);

/// Runs every case through runSptExperiment on `sweep`'s pool; rows come
/// back in `cases` order.
std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases);

/// Hardened variant: per-cell quarantine and checkpoint/resume per `opts`.
std::vector<SweepRow> runSweep(const ParallelSweep& sweep,
                               const std::vector<SweepCase>& cases,
                               const SweepOptions& opts);

/// Writes rows as a machine-readable JSON document:
/// {"rows":[{benchmark, config, baseline_cycles, spt_cycles, speedup,
///           breakdown, thread stats, extra...}, ...]}.
/// Returns false on I/O failure.
bool writeSweepJson(const std::string& path,
                    const std::vector<SweepRow>& rows);

}  // namespace spt::harness

#include "harness/perf.h"

#include <chrono>
#include <fstream>
#include <map>

#include "harness/cell_codec.h"
#include "harness/experiment.h"
#include "spt/remarks.h"
#include "support/check.h"
#include "support/json.h"
#include "support/stats.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace spt::harness {
namespace {

/// Everything a timed run needs, built once per workload up front.
struct PreparedWorkload {
  std::string name;
  ir::Module baseline_module{"empty"};
  ir::Module spt_module{"empty"};
  trace::TraceBuffer baseline_trace;
  trace::TraceBuffer spt_trace;
  std::vector<compiler::PassRemark> passes;  // this compile's pass timings
};

PreparedWorkload prepare(const std::string& name, const PerfOptions& options) {
  PreparedWorkload p;
  p.name = name;
  ir::Module module = workloads::findWorkload(name).build(options.scale);

  p.baseline_module = module;
  p.baseline_module.finalize();

  compiler::SptCompiler cc(options.copts);
  InterpProfileRunner runner;
  compiler::CompilationRemarks remarks;
  cc.compile(module, runner, &remarks);
  p.passes = std::move(remarks.passes);
  p.spt_module = std::move(module);

  p.baseline_trace = traceProgram(p.baseline_module).trace;
  p.spt_trace = traceProgram(p.spt_module).trace;
  return p;
}

double seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Times `run()` `repetitions` times and returns the fastest wall time.
template <typename Fn>
double fastestRun(int repetitions, Fn&& run) {
  double best = 0.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    run();
    const double t = seconds(std::chrono::steady_clock::now() - start);
    if (rep == 0 || t < best) best = t;
  }
  return best;
}

double mips(std::uint64_t instrs, double host_seconds) {
  if (host_seconds <= 0.0) return 0.0;
  return static_cast<double>(instrs) / host_seconds / 1e6;
}

/// The timed phase for one prepared workload (strictly serial — callers
/// must not overlap measurements).
PerfRow measure(PreparedWorkload& p, const PerfOptions& options) {
  PerfRow row;
  row.workload = p.name;
  row.trace_records = p.spt_trace.size();

  sim::MachineResult base_result;
  row.host_baseline_seconds = fastestRun(options.repetitions, [&] {
    sim::BaselineMachine machine(p.baseline_module, p.baseline_trace,
                                 options.machine);
    base_result = machine.run();
  });
  const trace::LoopIndex index(p.spt_module, p.spt_trace);
  sim::MachineResult spt_result;
  row.host_spt_seconds = fastestRun(options.repetitions, [&] {
    sim::SptMachine machine(p.spt_module, p.spt_trace, index,
                            options.machine);
    spt_result = machine.run();
  });

  row.baseline_cycles = base_result.cycles;
  row.spt_cycles = spt_result.cycles;
  row.baseline_sim_instrs = base_result.instrs;
  row.spt_sim_instrs = spt_result.instrs;
  row.baseline_dispatch_fast = base_result.hotpath.dispatch_fast;
  row.baseline_dispatch_fallback = base_result.hotpath.dispatch_fallback;
  row.spt_dispatch_fast = spt_result.hotpath.dispatch_fast;
  row.spt_dispatch_fallback = spt_result.hotpath.dispatch_fallback;
  row.spt_arena_frame_allocs = spt_result.hotpath.arena_frame_allocs;
  row.spt_arena_frame_reuses = spt_result.hotpath.arena_frame_reuses;
  row.spt_records_per_alloc = spt_result.hotpath.recordsPerAlloc();
  row.host_baseline_mips =
      mips(row.baseline_sim_instrs, row.host_baseline_seconds);
  row.host_spt_mips = mips(row.spt_sim_instrs, row.host_spt_seconds);
  return row;
}

/// `sptc perf --isolate`: one forked worker per workload, strictly one at
/// a time (timing must never contend), each doing its own setup + timed
/// measurement in a fresh address space. A worker that crashes, hangs, or
/// garbles its reply surfaces as an SptInternalError naming the workload
/// instead of killing the bench process.
std::vector<PerfRow> runIsolated(const std::vector<std::string>& names,
                                 const PerfOptions& options) {
  SupervisorOptions sopts = options.supervisor;
  sopts.jobs = 1;
  const Supervisor supervisor(sopts);
  const auto produce = [&](std::size_t k) {
    PreparedWorkload p = prepare(names[k], options);
    return encodePerfRow(measure(p, options));
  };
  const std::vector<Supervisor::Outcome> outcomes =
      supervisor.run(names.size(), produce);
  std::vector<PerfRow> rows(names.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Supervisor::Outcome& oc = outcomes[i];
    SPT_CHECK_MSG(oc.status == CellStatus::kOk,
                  ("perf worker for " + names[i] + " failed (" +
                   std::string(toString(oc.status)) + "): " + oc.diagnostic)
                      .c_str());
    SPT_CHECK_MSG(decodePerfRow(oc.payload, &rows[i]),
                  ("perf worker for " + names[i] +
                   " replied with an undecodable row")
                      .c_str());
  }
  return rows;
}

}  // namespace

std::vector<PerfRow> runSimThroughput(const PerfOptions& options,
                                      std::vector<PerfPassRow>* passes) {
  std::vector<std::string> names = options.workloads;
  if (names.empty()) {
    names.push_back("micro.parser_free");
    for (const auto& entry : defaultSuite()) {
      names.push_back(entry.workload.name);
    }
  }

  if (options.supervisor.isolate && Supervisor::isolationSupported()) {
    // Each measurement runs in its own worker; the compiles happen there
    // too, so pass-time aggregation has nothing to report.
    if (passes != nullptr) passes->clear();
    return runIsolated(names, options);
  }

  // Setup (compile + interpret + trace) fans out; timing must not, so the
  // measurement loop below is strictly serial on the calling thread.
  const ParallelSweep sweep(options.setup_jobs);
  std::vector<PreparedWorkload> prepared = sweep.run(
      names.size(),
      [&](std::size_t i) { return prepare(names[i], options); });

  // Aggregate per-pass compile times across workloads, preserving
  // pipeline order (order of first appearance — identical per workload).
  // `prepared` is in submission order, so the aggregation is independent
  // of --jobs.
  if (passes != nullptr) {
    passes->clear();
    std::map<std::string, std::size_t> index;
    for (const PreparedWorkload& p : prepared) {
      for (const compiler::PassRemark& pr : p.passes) {
        const auto [it, fresh] = index.emplace(pr.name, passes->size());
        if (fresh) passes->push_back({pr.name, 0, 0, 0.0});
        PerfPassRow& row = (*passes)[it->second];
        row.invocations += pr.invocations;
        row.mutations += pr.mutations;
        row.host_wall_ms += pr.wall_ms;
      }
    }
  }

  std::vector<PerfRow> rows;
  rows.reserve(prepared.size());
  for (PreparedWorkload& p : prepared) {
    rows.push_back(measure(p, options));
  }
  return rows;
}

void printSimThroughputTable(std::ostream& os,
                             const std::vector<PerfRow>& rows) {
  support::Table t("simulator host throughput (simulated MIPS)");
  t.setHeader({"workload", "trace records", "baseline MIPS", "SPT MIPS",
               "baseline ms", "SPT ms"});
  double base_mips_sum = 0.0;
  double spt_mips_sum = 0.0;
  for (const PerfRow& r : rows) {
    t.addRow({r.workload, std::to_string(r.trace_records),
              support::fixed(r.host_baseline_mips, 2),
              support::fixed(r.host_spt_mips, 2),
              support::fixed(r.host_baseline_seconds * 1e3, 2),
              support::fixed(r.host_spt_seconds * 1e3, 2)});
    base_mips_sum += r.host_baseline_mips;
    spt_mips_sum += r.host_spt_mips;
  }
  if (!rows.empty()) {
    const double n = static_cast<double>(rows.size());
    t.addRow({"Average", "-", support::fixed(base_mips_sum / n, 2),
              support::fixed(spt_mips_sum / n, 2), "-", "-"});
  }
  t.print(os);
}

void printPassTimeTable(std::ostream& os,
                        const std::vector<PerfPassRow>& passes) {
  support::Table t("compile time by pass (setup phase, all workloads)");
  t.setHeader({"pass", "invocations", "mutations", "wall ms"});
  double total_ms = 0.0;
  for (const PerfPassRow& p : passes) {
    t.addRow({p.name, std::to_string(p.invocations),
              std::to_string(p.mutations),
              support::fixed(p.host_wall_ms, 2)});
    total_ms += p.host_wall_ms;
  }
  if (!passes.empty()) {
    t.addRow({"Total", "-", "-", support::fixed(total_ms, 2)});
  }
  t.print(os);
}

bool writeSimThroughputJson(const std::string& path,
                            const std::vector<PerfRow>& rows,
                            const std::vector<PerfPassRow>* passes) {
  std::ofstream out(path);
  if (!out) return false;
  support::JsonWriter w(out);
  w.beginObject();
  w.key("rows").beginArray();
  for (const PerfRow& r : rows) {
    w.beginObject();
    w.member("workload", r.workload);
    w.member("trace_records", r.trace_records);
    w.member("baseline_cycles", r.baseline_cycles);
    w.member("spt_cycles", r.spt_cycles);
    w.member("baseline_sim_instrs", r.baseline_sim_instrs);
    w.member("spt_sim_instrs", r.spt_sim_instrs);
    // Hot-path health: specialized vs generic dispatch, and frame-arena
    // recycling (deterministic — covered by CI determinism diffs).
    w.member("baseline_dispatch_fast", r.baseline_dispatch_fast);
    w.member("baseline_dispatch_fallback", r.baseline_dispatch_fallback);
    w.member("spt_dispatch_fast", r.spt_dispatch_fast);
    w.member("spt_dispatch_fallback", r.spt_dispatch_fallback);
    w.member("spt_arena_frame_allocs", r.spt_arena_frame_allocs);
    w.member("spt_arena_frame_reuses", r.spt_arena_frame_reuses);
    w.member("spt_records_per_alloc", r.spt_records_per_alloc);
    w.member("host_baseline_seconds", r.host_baseline_seconds);
    w.member("host_spt_seconds", r.host_spt_seconds);
    w.member("host_baseline_mips", r.host_baseline_mips);
    w.member("host_spt_mips", r.host_spt_mips);
    w.endObject();
  }
  w.endArray();
  // Keyed host_pass_times so line-based determinism filters drop the
  // array opener; the per-pass host_wall_ms members are also host_-
  // prefixed, while name/invocations/mutations stay diffable.
  if (passes != nullptr) {
    w.key("host_pass_times").beginArray();
    for (const PerfPassRow& p : *passes) {
      w.beginObject();
      w.member("name", p.name);
      w.member("invocations", p.invocations);
      w.member("mutations", p.mutations);
      w.member("host_wall_ms", p.host_wall_ms);
      w.endObject();
    }
    w.endArray();
  }
  w.endObject();
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace spt::harness

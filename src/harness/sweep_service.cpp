#include "harness/sweep_service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "harness/cell_codec.h"
#include "harness/checkpoint.h"
#include "harness/journal.h"
#include "harness/suite.h"
#include "harness/trace_cache.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "support/wire.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define SPT_SERVICE_POSIX 1
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace spt::harness {

namespace wire = support::wire;

// ---- ServiceRequest codec -------------------------------------------------

namespace {

void encodeCache(ByteWriter& w, const support::CacheConfig& c) {
  w.u32(c.size_bytes);
  w.u32(c.associativity);
  w.u32(c.block_bytes);
  w.u32(c.latency_cycles);
}

bool decodeCache(ByteReader& r, support::CacheConfig* c) {
  return r.u32(&c->size_bytes) && r.u32(&c->associativity) &&
         r.u32(&c->block_bytes) && r.u32(&c->latency_cycles);
}

void encodeMachine(ByteWriter& w, const support::MachineConfig& m) {
  encodeCache(w, m.l1i);
  encodeCache(w, m.l1d);
  encodeCache(w, m.l2);
  encodeCache(w, m.l3);
  w.u32(m.memory_latency_cycles);
  w.u32(m.fetch_width);
  w.u32(m.issue_width);
  w.u32(m.replay_fetch_width);
  w.u32(m.replay_issue_width);
  w.u32(m.rf_ports);
  w.u32(m.branch_predictor_entries);
  w.u32(m.branch_mispredict_penalty);
  w.u32(m.rf_copy_overhead);
  w.u32(m.fast_commit_overhead);
  w.u32(m.speculation_result_buffer_entries);
  w.u32(m.speculative_store_buffer_entries);
  w.u32(m.load_address_buffer_entries);
  w.u8(static_cast<std::uint8_t>(m.recovery));
  w.u8(static_cast<std::uint8_t>(m.register_check));
  w.u64(m.max_trace_records);
  w.u64(m.max_simulated_records);
  w.u64(m.max_simulated_cycles);
  w.u8(static_cast<std::uint8_t>(m.oracle));
  w.boolean(m.fault_plan.enabled);
  w.u64(m.fault_plan.seed);
  w.u32(m.fault_plan.period);
  w.boolean(m.fault_plan.ssb_value_flip);
  w.boolean(m.fault_plan.lab_drop);
  w.boolean(m.fault_plan.fork_reg_flip);
  w.boolean(m.fault_plan.srb_payload_flip);
  w.boolean(m.fault_plan.cache_meta_flip);
  w.boolean(m.fault_plan.bp_meta_flip);
  w.u32(m.spec_threads);
}

bool decodeMachine(ByteReader& r, support::MachineConfig* m) {
  std::uint8_t recovery = 0, register_check = 0, oracle = 0;
  if (!(decodeCache(r, &m->l1i) && decodeCache(r, &m->l1d) &&
        decodeCache(r, &m->l2) && decodeCache(r, &m->l3) &&
        r.u32(&m->memory_latency_cycles) && r.u32(&m->fetch_width) &&
        r.u32(&m->issue_width) && r.u32(&m->replay_fetch_width) &&
        r.u32(&m->replay_issue_width) && r.u32(&m->rf_ports) &&
        r.u32(&m->branch_predictor_entries) &&
        r.u32(&m->branch_mispredict_penalty) && r.u32(&m->rf_copy_overhead) &&
        r.u32(&m->fast_commit_overhead) &&
        r.u32(&m->speculation_result_buffer_entries) &&
        r.u32(&m->speculative_store_buffer_entries) &&
        r.u32(&m->load_address_buffer_entries) && r.u8(&recovery) &&
        r.u8(&register_check) && r.u64(&m->max_trace_records) &&
        r.u64(&m->max_simulated_records) && r.u64(&m->max_simulated_cycles) &&
        r.u8(&oracle))) {
    return false;
  }
  if (recovery > 2 || register_check > 1 || oracle > 2) return false;
  m->recovery = static_cast<support::RecoveryMechanism>(recovery);
  m->register_check = static_cast<support::RegisterCheckMode>(register_check);
  m->oracle = static_cast<support::OracleMode>(oracle);
  support::FaultPlan& fp = m->fault_plan;
  return r.boolean(&fp.enabled) && r.u64(&fp.seed) && r.u32(&fp.period) &&
         r.boolean(&fp.ssb_value_flip) && r.boolean(&fp.lab_drop) &&
         r.boolean(&fp.fork_reg_flip) && r.boolean(&fp.srb_payload_flip) &&
         r.boolean(&fp.cache_meta_flip) && r.boolean(&fp.bp_meta_flip) &&
         r.u32(&m->spec_threads) && m->spec_threads >= 1 &&
         m->spec_threads <= support::kMaxSpecThreads;
}

void encodeCompilerOptions(ByteWriter& w, const compiler::CompilerOptions& o) {
  w.f64(o.min_avg_body_size);
  w.f64(o.max_avg_body_size);
  w.f64(o.min_avg_trip_count);
  w.f64(o.min_coverage);
  w.f64(o.max_prefork_fraction);
  w.u32(o.max_search_candidates);
  w.boolean(o.enable_svp);
  w.f64(o.svp_min_predictability);
  w.boolean(o.enable_unrolling);
  w.f64(o.unroll_body_threshold);
  w.u32(o.max_unroll_factor);
  w.f64(o.min_estimated_speedup);
  w.boolean(o.cost_driven_selection);
  w.boolean(o.verify_between_passes);
  w.boolean(o.enable_region_speculation);
  w.f64(o.region_min_cost);
  w.f64(o.region_penalty_weight);
  w.f64(o.region_min_benefit);
  w.f64(o.fork_overhead);
  w.f64(o.commit_overhead);
  w.f64(o.replay_width);
  w.u32(o.spec_threads);
  w.u32(o.slice_max_instrs);
}

bool decodeCompilerOptions(ByteReader& r, compiler::CompilerOptions* o) {
  return r.f64(&o->min_avg_body_size) && r.f64(&o->max_avg_body_size) &&
         r.f64(&o->min_avg_trip_count) && r.f64(&o->min_coverage) &&
         r.f64(&o->max_prefork_fraction) && r.u32(&o->max_search_candidates) &&
         r.boolean(&o->enable_svp) && r.f64(&o->svp_min_predictability) &&
         r.boolean(&o->enable_unrolling) && r.f64(&o->unroll_body_threshold) &&
         r.u32(&o->max_unroll_factor) && r.f64(&o->min_estimated_speedup) &&
         r.boolean(&o->cost_driven_selection) &&
         r.boolean(&o->verify_between_passes) &&
         r.boolean(&o->enable_region_speculation) &&
         r.f64(&o->region_min_cost) && r.f64(&o->region_penalty_weight) &&
         r.f64(&o->region_min_benefit) && r.f64(&o->fork_overhead) &&
         r.f64(&o->commit_overhead) && r.f64(&o->replay_width) &&
         r.u32(&o->spec_threads) && r.u32(&o->slice_max_instrs);
}

}  // namespace

std::string encodeServiceRequest(const ServiceRequest& req) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(req.kind));
  w.u64(req.scale);
  encodeMachine(w, req.machine);
  encodeCompilerOptions(w, req.copts);
  w.u64(req.benchmarks.size());
  for (const std::string& b : req.benchmarks) w.str(b);
  w.u64(req.seeds);
  w.u64(req.base_seed);
  w.u32(req.period);
  w.u8(static_cast<std::uint8_t>(req.oracle));
  w.u64(req.echo_cells);
  w.str(req.echo_payload);
  w.f64(req.deadline_seconds);
  w.str(req.chaos.toSpec());
  w.u64(req.spec_threads.size());
  for (const std::uint32_t n : req.spec_threads) w.u32(n);
  return w.take();
}

bool decodeServiceRequest(const std::string& payload, ServiceRequest* req) {
  ByteReader r(payload);
  ServiceRequest out;
  std::uint8_t kind = 0, oracle = 0;
  if (!(r.u8(&kind) && r.u64(&out.scale))) return false;
  if (kind > 2) return false;
  out.kind = static_cast<ServiceRequest::Kind>(kind);
  if (!decodeMachine(r, &out.machine)) return false;
  if (!decodeCompilerOptions(r, &out.copts)) return false;
  std::uint64_t nbench = 0;
  if (!r.u64(&nbench) || nbench > 4096) return false;
  out.benchmarks.resize(static_cast<std::size_t>(nbench));
  for (std::string& b : out.benchmarks) {
    if (!r.str(&b)) return false;
  }
  std::string chaos_spec;
  if (!(r.u64(&out.seeds) && r.u64(&out.base_seed) && r.u32(&out.period) &&
        r.u8(&oracle) && r.u64(&out.echo_cells) && r.str(&out.echo_payload) &&
        r.f64(&out.deadline_seconds) && r.str(&chaos_spec))) {
    return false;
  }
  std::uint64_t nthreads = 0;
  if (!r.u64(&nthreads) || nthreads > support::kMaxSpecThreads) return false;
  out.spec_threads.resize(static_cast<std::size_t>(nthreads));
  for (std::uint32_t& n : out.spec_threads) {
    if (!r.u32(&n) || n < 1 || n > support::kMaxSpecThreads) return false;
  }
  if (oracle > 2 || !r.ok() || !r.atEnd()) return false;
  out.oracle = static_cast<support::OracleMode>(oracle);
  if (!chaos_spec.empty()) {
    std::optional<support::ChaosPlan> plan = support::ChaosPlan::parse(chaos_spec);
    if (!plan) return false;
    out.chaos = *plan;
  }
  *req = std::move(out);
  return true;
}

std::string encodeServiceRequestWithToken(const ServiceRequest& req,
                                          const std::string& token) {
  // The v1 request bytes ride as one nested string so the journal and the
  // request-equality check reuse them verbatim, token excluded.
  ByteWriter w;
  w.str(encodeServiceRequest(req));
  w.str(token);
  return w.take();
}

bool decodeServiceRequestWithToken(const std::string& payload,
                                   ServiceRequest* req, std::string* token) {
  ByteReader r(payload);
  std::string request_bytes;
  if (!(r.str(&request_bytes) && r.str(token) && r.atEnd())) return false;
  return decodeServiceRequest(request_bytes, req);
}

// ---- Internal frame payloads ----------------------------------------------

namespace {

std::string encodeServiceFrame(std::uint8_t kind, const std::string& payload) {
  return wire::encodeFrame(kServiceFrameMagic, kServiceFrameV1, kind, payload);
}

/// v2 frames carry only what v1 cannot express (the token request payload
/// and kAttached); everything else stays v1 so v1 peers keep decoding.
std::string encodeServiceFrameV2(std::uint8_t kind,
                                 const std::string& payload) {
  return wire::encodeFrame(kServiceFrameMagic, kServiceFrameV2, kind, payload);
}

std::string encodeProgressPayload(std::uint64_t done, std::uint64_t total) {
  ByteWriter w;
  w.u64(done);
  w.u64(total);
  return w.take();
}

bool decodeProgressPayload(const std::string& payload, std::uint64_t* done,
                           std::uint64_t* total) {
  ByteReader r(payload);
  return r.u64(done) && r.u64(total) && r.atEnd();
}

std::string encodeBusyPayload(double retry_after, const std::string& reason) {
  ByteWriter w;
  w.f64(retry_after);
  w.str(reason);
  return w.take();
}

bool decodeBusyPayload(const std::string& payload, double* retry_after,
                       std::string* reason) {
  ByteReader r(payload);
  return r.f64(retry_after) && r.str(reason) && r.atEnd();
}

std::string encodeTextPayload(const std::string& text) {
  ByteWriter w;
  w.str(text);
  return w.take();
}

bool decodeTextPayload(const std::string& payload, std::string* text) {
  ByteReader r(payload);
  return r.str(text) && r.atEnd();
}

std::string encodeDonePayload(std::uint64_t total) {
  ByteWriter w;
  w.u64(total);
  return w.take();
}

bool decodeDonePayload(const std::string& payload, std::uint64_t* total) {
  ByteReader r(payload);
  return r.u64(total) && r.atEnd();
}

/// One finished cell crossing the socket: position, result-kind tag ('W'
/// sweep row / 'C' campaign cell / 'E' echo bytes), the inner cell-codec
/// payload, and the parent-side worker diagnostics (which never ride
/// inside the inner payload — same split as the JSON writers).
struct ResultFramePayload {
  std::uint64_t cell = 0;
  std::uint64_t total = 0;
  std::uint8_t tag = 'E';
  std::string inner;
  WorkerDiagnostics worker;
};

std::string encodeResultPayload(const ResultFramePayload& p) {
  ByteWriter w;
  w.u64(p.cell);
  w.u64(p.total);
  w.u8(p.tag);
  w.str(p.inner);
  w.u32(p.worker.attempts);
  w.u32(static_cast<std::uint32_t>(p.worker.exit_code));
  w.u32(static_cast<std::uint32_t>(p.worker.term_signal));
  w.boolean(p.worker.timed_out);
  w.f64(p.worker.host_user_seconds);
  w.f64(p.worker.host_sys_seconds);
  w.u64(static_cast<std::uint64_t>(p.worker.host_max_rss_kb));
  w.str(p.worker.partial_reply);
  return w.take();
}

bool decodeResultPayload(const std::string& payload, ResultFramePayload* p) {
  ByteReader r(payload);
  std::uint32_t exit_code = 0, term_signal = 0;
  std::uint64_t rss = 0;
  if (!(r.u64(&p->cell) && r.u64(&p->total) && r.u8(&p->tag) &&
        r.str(&p->inner) && r.u32(&p->worker.attempts) && r.u32(&exit_code) &&
        r.u32(&term_signal) && r.boolean(&p->worker.timed_out) &&
        r.f64(&p->worker.host_user_seconds) &&
        r.f64(&p->worker.host_sys_seconds) && r.u64(&rss) &&
        r.str(&p->worker.partial_reply) && r.atEnd())) {
    return false;
  }
  p->worker.exit_code = static_cast<std::int32_t>(exit_code);
  p->worker.term_signal = static_cast<std::int32_t>(term_signal);
  p->worker.host_max_rss_kb =
      static_cast<std::int64_t>(rss);
  return true;
}

// ---- Worker-side spec ------------------------------------------------------

/// The spec bytes a pooled worker receives per cell: the (normalized)
/// request, the grid-local cell index, and the shared trace-cache root.
std::string encodeWorkerSpec(const std::string& request_bytes,
                             std::uint64_t cell,
                             const std::string& trace_cache_dir) {
  ByteWriter w;
  w.str(request_bytes);
  w.u64(cell);
  w.str(trace_cache_dir);
  return w.take();
}

bool decodeWorkerSpec(const std::string& spec, ServiceRequest* req,
                      std::uint64_t* cell, std::string* trace_cache_dir) {
  ByteReader r(spec);
  std::string request_bytes;
  if (!(r.str(&request_bytes) && r.u64(cell) && r.str(trace_cache_dir) &&
        r.atEnd())) {
    return false;
  }
  return decodeServiceRequest(request_bytes, req);
}

/// The service's suite-order benchmark resolution: the campaign grid is
/// names × seeds in this order on the parent and in every worker.
std::vector<std::string> resolveSuiteNames(
    const std::vector<std::string>& filter) {
  std::vector<std::string> names;
  for (const SuiteEntry& entry : defaultSuite()) {
    if (!filter.empty()) {
      bool wanted = false;
      for (const std::string& b : filter) {
        if (b == entry.workload.name) wanted = true;
      }
      if (!wanted) continue;
    }
    names.push_back(entry.workload.name);
  }
  return names;
}

FaultCampaignOptions campaignOptionsFromRequest(const ServiceRequest& req) {
  FaultCampaignOptions fopts;
  fopts.seeds = req.seeds;
  fopts.base_seed = req.base_seed;
  fopts.scale = req.scale;
  fopts.period = req.period;
  fopts.oracle = req.oracle;
  fopts.machine = req.machine;
  return fopts;
}

/// Runs in a pooled service worker: spec bytes in, cell-codec payload out.
/// Throwing reports a structured kInternalError to the parent, exactly as
/// the batch producers do.
std::string serviceSpecProduce(const std::string& spec) {
  ServiceRequest req;
  std::uint64_t cell = 0;
  std::string cache_dir;
  if (!decodeWorkerSpec(spec, &req, &cell, &cache_dir)) {
    throw std::runtime_error("service worker received an undecodable spec");
  }
  switch (req.kind) {
    case ServiceRequest::Kind::kEcho:
      return req.echo_payload + ":" + std::to_string(cell);
    case ServiceRequest::Kind::kSweep: {
      std::vector<SweepCase> cases =
          buildSuiteSweepCases(req.machine, req.copts, req.scale,
                               req.benchmarks, req.spec_threads);
      if (cell >= cases.size()) {
        throw std::runtime_error("sweep cell index out of range");
      }
      // One cache handle per worker process, rebuilt only if a later
      // request names a different root.
      static std::unique_ptr<TraceCache> cache;
      TraceCache* cache_ptr = nullptr;
      if (!cache_dir.empty()) {
        if (!cache || cache->dir() != cache_dir) {
          cache = std::make_unique<TraceCache>(cache_dir);
        }
        cache_ptr = cache.get();
      }
      return produceSweepCellPayload(cases[cell], cache_ptr);
    }
    case ServiceRequest::Kind::kCampaign: {
      std::vector<std::string> names = resolveSuiteNames(req.benchmarks);
      if (req.seeds == 0 || cell / req.seeds >= names.size()) {
        throw std::runtime_error("campaign cell index out of range");
      }
      const std::string& benchmark = names[cell / req.seeds];
      return encodeCampaignCell(runFaultCampaignCellStandalone(
          benchmark, static_cast<std::size_t>(cell),
          campaignOptionsFromRequest(req)));
    }
  }
  throw std::runtime_error("service worker received an unknown request kind");
}

#if defined(SPT_SERVICE_POSIX)

/// Scoped SIG_IGN for SIGPIPE, mirroring the supervisor's: both the
/// service (writing to clients that may vanish) and the submit client
/// (writing to a service that may have exited) need EPIPE, not death.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    ok_ = sigaction(SIGPIPE, &ignore, &saved_) == 0;
  }
  ~ScopedIgnoreSigpipe() {
    if (ok_) sigaction(SIGPIPE, &saved_, nullptr);
  }

 private:
  struct sigaction saved_ {};
  bool ok_ = false;
};

#endif  // SPT_SERVICE_POSIX

}  // namespace

// ---- The service ----------------------------------------------------------

#if defined(SPT_SERVICE_POSIX)

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxClientOutbufBytes = 256ull << 20;
constexpr const char* kDrainDiagnostic =
    "interrupted: service draining on signal before dispatch; finished "
    "cells are checkpointed, resubmit for the rest";
constexpr const char* kDeadlineDiagnostic =
    "request deadline exceeded before dispatch; cell never ran";

}  // namespace

struct SweepService::Impl {
  explicit Impl(SweepServiceOptions opts) : options(std::move(opts)) {}

  SweepServiceOptions options;

  struct PendingCell {
    std::uint64_t cell = 0;
    std::uint32_t attempt = 1;
    Clock::time_point not_before{};
  };

  struct Client {
    int fd = -1;
    std::uint64_t id = 0;
    std::string inbuf;
    std::string outbuf;
    std::size_t out_pos = 0;
    bool admitted = false;
    bool done_sent = false;
    bool close_after_flush = false;
    ServiceRequest request;
    std::string request_bytes;  // normalized, pre-encoded for worker specs
    std::uint8_t tag = 'E';
    std::uint64_t total = 0;
    std::uint64_t done = 0;
    std::uint64_t dispatched = 0;  // fairness counter (dispatch events)
    std::size_t running = 0;
    std::deque<PendingCell> ready;
    std::vector<PendingCell> waiting;  // retry backoff, not yet due
    bool has_deadline = false;
    Clock::time_point deadline{};
    // Campaign metadata for parent-side settles.
    std::vector<std::string> campaign_names;
    // Sweep metadata: benchmark/config per cell.
    std::vector<std::pair<std::string, std::string>> sweep_keys;
    // ---- Journal / idempotency state ----
    /// Client-supplied idempotency token ("" = v1 semantics: a disconnect
    /// cancels the request).
    std::string token;
    /// Journal id (0 = unjournaled request).
    std::uint64_t request_id = 0;
    /// Re-admitted from the journal at startup (starts with fd == -1).
    bool recovered = false;
    /// A settle record was written for this request.
    bool settled_logged = false;
    /// The per-request deadline fired (journal outcome "deadline").
    bool deadline_expired = false;
    /// kDone was fully flushed to a live client — the tokened request no
    /// longer needs retention for a future attach.
    bool delivered = false;
    /// Encoded kResult payloads in settle order, retained while the token
    /// is attachable so a reconnecting client can replay the request.
    std::vector<std::string> result_frames;

    /// Keep serving after a disconnect? Tokened and journal-recovered
    /// requests survive their client; plain v1 requests are cancelled.
    bool survivesDisconnect() const { return !token.empty() || recovered; }
  };

  std::unique_ptr<WorkerPool> pool;
  std::unique_ptr<Supervisor> backoff;  // retry-delay policy only
  int listen_fd = -1;
  std::size_t jobs = 1;
  std::uint64_t next_client_id = 1;
  std::uint64_t next_job_id = 1;
  std::uint64_t last_rr = 0;  // round-robin cursor (client id)
  std::map<std::uint64_t, Client> clients;
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      jobs_in_flight;  // job id -> (client id, cell)
  std::size_t queued_cells = 0;
  bool draining = false;
  bool drain_flush_armed = false;
  Clock::time_point drain_flush_deadline{};
  DurableAppendFile checkpoint;
  DurableAppendFile journal;
  /// Next journal request id; seeded from the replay so ids stay unique
  /// across restarts of the same journal file.
  std::uint64_t next_request_id = 1;
  /// token -> client id of the live/orphaned/recovered request bound to it.
  std::map<std::string, std::uint64_t> tokens;
  std::uint64_t crash_events = 0;  // occurrences of the armed crash point
  // Status counters.
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_refused = 0;
  std::uint64_t cells_settled = 0;
  std::uint64_t clients_connected = 0;
  std::uint64_t clients_disconnected = 0;
  std::uint64_t journal_records_replayed = 0;
  std::uint64_t journal_records_skipped = 0;
  std::uint64_t journal_requests_recovered = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t requests_attached = 0;
  bool journal_torn_tail = false;
  ResourceReport resources;

  void note(const std::string& msg) {
    if (options.log) options.log(msg);
  }

  // ---- Scripted crash points (kill/restart chaos campaign) ----

  /// SIGKILL self: no destructors, no flushes beyond what already hit the
  /// fd — exactly what a real crash leaves behind.
  [[noreturn]] void crashNow() {
    note("service: scripted crash (" + options.crash.toSpec() + ")");
    ::kill(::getpid(), SIGKILL);
    ::_exit(137);  // unreachable; SIGKILL cannot be handled
  }

  /// True when `point` is the armed crash point and this is its `at`-th
  /// occurrence. Call exactly once per event.
  bool crashDue(support::ServiceCrashPoint point) {
    return options.crash.point == point && ++crash_events == options.crash.at;
  }

  // ---- Journal writes ----

  /// Appends one record; the kMidAppend crash point tears the write here.
  void journalAppend(const JournalRecord& rec) {
    if (!journal.isOpen()) return;
    const std::string line = formatJournalRecord(rec);
    if (crashDue(support::ServiceCrashPoint::kMidAppend)) {
      journal.appendTorn(line, static_cast<std::size_t>(options.crash.bytes));
      crashNow();
    }
    journal.appendLine(line);
    ++journal_appends;
  }

  void journalSettleId(std::uint64_t request_id, const char* outcome) {
    if (!journal.isOpen() || request_id == 0) return;
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::kSettle;
    rec.id = request_id;
    rec.outcome = outcome;
    journalAppend(rec);
    journal.sync();
  }

  void journalSettle(Client& c, const char* outcome) {
    if (c.settled_logged) return;
    journalSettleId(c.request_id, outcome);
    c.settled_logged = true;
  }

  void queueFrame(Client& c, std::uint8_t kind, const std::string& payload) {
    if (c.fd < 0) return;
    c.outbuf.append(encodeServiceFrame(kind, payload));
  }

  void disconnectClient(Client& c) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
      ++clients_disconnected;
    }
    c.inbuf.clear();
    c.outbuf.clear();
    c.out_pos = 0;
    if (c.admitted && !c.done_sent && c.survivesDisconnect()) {
      // Tokened / journal-recovered requests outlive their client: the
      // remaining cells keep running as an orphan and the results are
      // retained for a later attach (or the next service incarnation).
      note("service: client " + std::to_string(c.id) +
           " disconnected; continuing its request as an orphan (" +
           std::to_string(c.done) + "/" + std::to_string(c.total) + " done)");
      return;
    }
    // Only this client's queued cells are cancelled; its in-flight cells
    // finish on their workers and are dropped at settle time.
    queued_cells -= c.ready.size() + c.waiting.size();
    c.ready.clear();
    c.waiting.clear();
    if (c.admitted && !c.settled_logged) {
      // Tokenless, so nobody can ever attach: settle now. A request cut
      // down mid-run is cancelled; one whose work finished but whose
      // delivery flush failed is done — the results are in the
      // checkpoint, only the reply was lost.
      journalSettle(c, c.done_sent
                           ? (c.deadline_expired ? "deadline" : "done")
                           : "cancelled");
    }
  }

  /// A client entry may be erased once nothing references it: no live fd,
  /// no worker about to settle into it, no queued cells still being
  /// served for an orphan, and no token retention awaiting an attach.
  bool reapable(const Client& c) const {
    if (c.fd >= 0 || c.running > 0) return false;
    if (!c.ready.empty() || !c.waiting.empty()) return false;
    if (c.admitted && !c.token.empty() && !c.delivered && !draining) {
      return false;  // finished orphan: hold for a same-token attach
    }
    return true;
  }

  void reapClients() {
    for (auto it = clients.begin(); it != clients.end();) {
      if (reapable(it->second)) {
        Client& c = it->second;
        if (c.admitted && c.done_sent && c.token.empty() &&
            !c.settled_logged) {
          // A tokenless request that finished with no one to deliver to
          // (e.g. a journal-recovered v1 orphan): settle it at reap time,
          // or every future incarnation would pointlessly re-admit it.
          journalSettle(c, c.deadline_expired ? "deadline" : "done");
        }
        if (!c.token.empty()) {
          auto tit = tokens.find(c.token);
          if (tit != tokens.end() && tit->second == it->first) {
            tokens.erase(tit);
          }
        }
        it = clients.erase(it);
      } else {
        ++it;
      }
    }
  }

  void flushClient(Client& c) {
    // An orphan has no connection to flush — and must NOT fall into the
    // completion branch below: its empty outbuf would read as "fully
    // flushed" and a finished orphan would be marked delivered (settling
    // the journal and freeing the token) when nobody received anything.
    if (c.fd < 0) return;
    // Scripted mid-flush crash: push only the first `bytes` bytes of the
    // pending reply onto the wire, then die — the client sees a torn
    // stream, the journal still holds the request. Counts only flushes
    // toward admitted clients so status probes can't trip it.
    if (options.crash.point == support::ServiceCrashPoint::kMidFlush &&
        c.fd >= 0 && c.admitted && c.out_pos < c.outbuf.size() &&
        crashDue(support::ServiceCrashPoint::kMidFlush)) {
      const std::size_t n = std::min(static_cast<std::size_t>(
                                         options.crash.bytes),
                                     c.outbuf.size() - c.out_pos);
      if (n > 0) {
        [[maybe_unused]] const ssize_t rc =
            ::write(c.fd, c.outbuf.data() + c.out_pos, n);
      }
      crashNow();
    }
    while (c.fd >= 0 && c.out_pos < c.outbuf.size()) {
      const ssize_t n = ::write(c.fd, c.outbuf.data() + c.out_pos,
                                c.outbuf.size() - c.out_pos);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      disconnectClient(c);
      return;
    }
    if (c.out_pos >= c.outbuf.size()) {
      c.outbuf.clear();
      c.out_pos = 0;
      if (c.done_sent || c.close_after_flush) {
        if (c.done_sent) {
          // Delivery is the settle point (see settleCell): only now is
          // the request beyond recovery's and a token-attach's reach.
          journalSettle(c, c.deadline_expired ? "deadline" : "done");
          c.delivered = true;
        }
        disconnectClient(c);
      }
    } else if (c.outbuf.size() - c.out_pos > kMaxClientOutbufBytes) {
      // A reader this slow is indistinguishable from a stuck one; cutting
      // it off bounds service memory and cannot affect other clients.
      note("service: client " + std::to_string(c.id) +
           " write buffer exceeded cap; disconnecting");
      disconnectClient(c);
    }
  }

  void refuse(Client& c, std::uint8_t kind, const std::string& payload) {
    ++requests_refused;
    queueFrame(c, kind, payload);
    c.close_after_flush = true;
    flushClient(c);
  }

  /// Validation + normalization shared by live admission and journal
  /// recovery: fills the request-derived fields of `c` (request,
  /// request_bytes, total, tag, per-cell keys). Returns a non-empty
  /// rejection reason for a request the service must not run.
  std::string prepareRequest(Client& c, ServiceRequest req) {
    if (req.chaos.enabled() && !options.allow_chaos) {
      return "request carries a chaos plan but the service was not started "
             "with --allow-chaos";
    }
    // Validate the benchmark filter against the suite (buildSuiteSweepCases
    // silently drops unknown names; the service must not).
    std::vector<std::string> suite_names = resolveSuiteNames({});
    for (const std::string& b : req.benchmarks) {
      if (std::find(suite_names.begin(), suite_names.end(), b) ==
          suite_names.end()) {
        return "unknown benchmark '" + b + "'";
      }
    }
    std::uint64_t total = 0;
    switch (req.kind) {
      case ServiceRequest::Kind::kSweep: {
        std::vector<SweepCase> cases =
            buildSuiteSweepCases(req.machine, req.copts, req.scale,
                                 req.benchmarks, req.spec_threads);
        total = cases.size();
        c.sweep_keys.clear();
        c.sweep_keys.reserve(cases.size());
        for (const SweepCase& sc : cases) {
          c.sweep_keys.emplace_back(sc.benchmark, sc.config);
        }
        c.tag = 'W';
        break;
      }
      case ServiceRequest::Kind::kCampaign: {
        c.campaign_names = resolveSuiteNames(req.benchmarks);
        total = c.campaign_names.size() * req.seeds;
        c.tag = 'C';
        break;
      }
      case ServiceRequest::Kind::kEcho:
        total = req.echo_cells;
        c.tag = 'E';
        break;
    }
    if (total == 0) return "request resolves to zero cells";
    // Normalize the benchmark filter to suite order so every worker
    // rebuilds the exact grid the parent admitted.
    req.benchmarks = resolveSuiteNames(req.benchmarks);
    c.request = std::move(req);
    c.request_bytes = encodeServiceRequest(c.request);
    c.total = total;
    return std::string();
  }

  void armDeadline(Client& c) {
    if (c.request.deadline_seconds <= 0) return;
    c.has_deadline = true;
    c.deadline = Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(c.request.deadline_seconds));
  }

  /// Write-ahead admit record: durable before any cell of the request can
  /// dispatch or any reply reach the client.
  void journalAdmit(Client& c) {
    if (!journal.isOpen()) return;
    c.request_id = next_request_id++;
    JournalRecord rec;
    rec.kind = JournalRecord::Kind::kAdmit;
    rec.id = c.request_id;
    rec.token = c.token;
    rec.checkpoint_path = options.checkpoint_path;
    rec.request_bytes = c.request_bytes;
    journalAppend(rec);
    journal.sync();
  }

  /// Admission: validates, normalizes, and either queues every cell of
  /// the request or answers busy/error and closes.
  void admit(Client& c, ServiceRequest req, std::string token) {
    if (draining) {
      refuse(c, kServiceFrameError,
             encodeTextPayload("service is draining; resubmit later"));
      return;
    }
    const std::string why = prepareRequest(c, std::move(req));
    if (!why.empty()) {
      refuse(c, kServiceFrameError, encodeTextPayload(why));
      return;
    }
    if (queued_cells + c.total > options.max_queue) {
      // Backpressure with an explicit hint: roughly the time for the
      // backlog ahead of this request to drain one pool pass.
      const double per_cell =
          options.supervisor.cell_timeout_seconds > 0
              ? options.supervisor.cell_timeout_seconds
              : 0.25;
      const double retry_after = std::min(
          60.0, std::max(0.25, per_cell *
                                   static_cast<double>(queued_cells + 1) /
                                   static_cast<double>(jobs)));
      refuse(c, kServiceFrameBusy,
             encodeBusyPayload(
                 retry_after,
                 "admission queue full (" + std::to_string(queued_cells) +
                     " queued, max " + std::to_string(options.max_queue) +
                     ")"));
      return;
    }
    c.token = std::move(token);
    c.admitted = true;
    armDeadline(c);
    for (std::uint64_t i = 0; i < c.total; ++i) {
      c.ready.push_back(PendingCell{i, 1, Clock::time_point{}});
    }
    queued_cells += c.total;
    ++requests_admitted;
    if (!c.token.empty()) tokens[c.token] = c.id;
    journalAdmit(c);
    note("service: client " + std::to_string(c.id) + " admitted (" +
         std::to_string(c.total) + " cells)");
    if (crashDue(support::ServiceCrashPoint::kAfterAdmit)) crashNow();
  }

  /// Same-token resubmission: adopt request `r` — live, orphaned, or
  /// journal-recovered — onto connection `conn`, replay every settled
  /// result, and continue the stream live from there.
  void attachClient(Client& conn, Client& r, const ServiceRequest& req) {
    ServiceRequest normalized = req;
    normalized.benchmarks = resolveSuiteNames(normalized.benchmarks);
    if (encodeServiceRequest(normalized) != r.request_bytes) {
      refuse(conn, kServiceFrameError,
             encodeTextPayload(
                 "idempotency token is already bound to a different request"));
      return;
    }
    if (r.fd >= 0) {
      // The token owner reconnected while its old connection half-lives;
      // the newest connection wins.
      ::close(r.fd);
      r.fd = -1;
      ++clients_disconnected;
    }
    // Transfer the socket, not a disconnect: the connection lives on in
    // `r`, and `conn` becomes an empty husk for the reaper.
    r.fd = conn.fd;
    conn.fd = -1;
    conn.inbuf.clear();
    r.outbuf.clear();
    r.out_pos = 0;
    r.close_after_flush = false;
    ++requests_attached;
    r.outbuf.append(encodeServiceFrameV2(
        kServiceFrameAttached, encodeProgressPayload(r.done, r.total)));
    for (const std::string& payload : r.result_frames) {
      queueFrame(r, kServiceFrameResult, payload);
    }
    queueFrame(r, kServiceFrameProgress, encodeProgressPayload(r.done, r.total));
    if (r.done_sent) queueFrame(r, kServiceFrameDone, encodeDonePayload(r.total));
    note("service: client " + std::to_string(conn.id) + " attached to request " +
         std::to_string(r.id) + " by token (" + std::to_string(r.done) + "/" +
         std::to_string(r.total) + " replayed)");
    flushClient(r);
  }

  /// Startup recovery of one unsettled journal record: the request is
  /// re-admitted as an orphan (no client fd) in its original admission
  /// order; every cell already settled ok in the bound checkpoint replays
  /// from its checkpoint line with synthesized single-attempt worker
  /// diagnostics, and only the remaining cells queue to run.
  void recoverRequest(const JournalRecord& rec,
                      const std::map<std::string, CheckpointLine>& sweep_ck,
                      const std::map<std::string, CheckpointLine>& campaign_ck) {
    ServiceRequest req;
    if (!decodeServiceRequest(rec.request_bytes, &req)) {
      note("service: journal request " + std::to_string(rec.id) +
           " has undecodable request bytes; settling as cancelled");
      journalSettleId(rec.id, "cancelled");
      return;
    }
    Client c;
    c.id = next_client_id++;
    c.recovered = true;
    c.token = rec.token;
    c.request_id = rec.id;
    const std::string why = prepareRequest(c, std::move(req));
    if (!why.empty()) {
      note("service: journal request " + std::to_string(rec.id) +
           " is no longer admissible (" + why + "); settling as cancelled");
      journalSettleId(rec.id, "cancelled");
      return;
    }
    c.admitted = true;
    armDeadline(c);  // the deadline clock restarts at recovery
    const std::uint64_t cid = c.id;
    Client& r = clients.emplace(cid, std::move(c)).first->second;
    if (!r.token.empty()) tokens[r.token] = r.id;
    ++requests_admitted;
    ++journal_requests_recovered;
    std::vector<std::pair<std::uint64_t, const CheckpointLine*>> replay;
    for (std::uint64_t i = 0; i < r.total; ++i) {
      const CheckpointLine* line = nullptr;
      if (r.tag == 'W') {
        const auto& key = r.sweep_keys[static_cast<std::size_t>(i)];
        auto cit = sweep_ck.find(checkpointKey(key.first, key.second));
        if (cit != sweep_ck.end() && cit->second.status == CellStatus::kOk) {
          line = &cit->second;
        }
      } else if (r.tag == 'C') {
        const std::string& benchmark =
            r.campaign_names[static_cast<std::size_t>(i / r.request.seeds)];
        auto cit = campaign_ck.find(checkpointKey(
            benchmark,
            campaignCellConfigKey(
                static_cast<std::size_t>(i),
                support::deriveSeed(r.request.base_seed, i))));
        if (cit != campaign_ck.end() &&
            cit->second.status == CellStatus::kOk) {
          line = &cit->second;
        }
      }
      if (line != nullptr) {
        replay.emplace_back(i, line);
      } else {
        r.ready.push_back(PendingCell{i, 1, Clock::time_point{}});
      }
    }
    queued_cells += r.ready.size();
    note("service: recovered request " + std::to_string(rec.id) +
         " from the journal (" + std::to_string(replay.size()) +
         " cells from the checkpoint, " + std::to_string(r.ready.size()) +
         " to run)");
    for (const auto& [i, line] : replay) {
      Supervisor::Outcome oc;
      oc.status = CellStatus::kOk;
      // Synthesized diagnostics: the cell ran once, cleanly, in a prior
      // incarnation. attempts == 1 and exit_code == 0 keep the client-side
      // worker/resource JSON blocks byte-identical to an uninterrupted
      // pooled run — a checkpointed kOk cell necessarily exited 0 (the
      // host_ members differ and are filtered, as always).
      oc.worker.attempts = 1;
      oc.worker.exit_code = 0;
      if (r.tag == 'W') {
        oc.payload = encodeSweepRow(sweepRowFromCheckpointLine(*line));
      } else {
        const std::string& benchmark =
            r.campaign_names[static_cast<std::size_t>(i / r.request.seeds)];
        oc.payload = encodeCampaignCell(campaignCellFromCheckpointLine(
            *line, benchmark, support::deriveSeed(r.request.base_seed, i)));
      }
      settleCell(r, i, oc, /*record=*/false);
    }
  }

  std::string statusJson() const {
    std::ostringstream out;
    support::JsonWriter w(out, 0);
    w.beginObject();
    w.key("service").beginObject();
    w.member("draining", draining);
    w.member("max_queue", static_cast<std::uint64_t>(options.max_queue));
    w.member("jobs", static_cast<std::uint64_t>(jobs));
    w.endObject();
    w.key("workers").beginObject();
    w.member("count", static_cast<std::uint64_t>(pool->workerCount()));
    w.member("idle", static_cast<std::uint64_t>(pool->idleWorkers()));
    w.member("busy", static_cast<std::uint64_t>(pool->busyWorkers()));
    w.member("spawned", static_cast<std::uint64_t>(pool->workersSpawned()));
    w.member("respawned",
             static_cast<std::uint64_t>(pool->workersRespawned()));
    w.endObject();
    w.key("queue").beginObject();
    w.member("queued", static_cast<std::uint64_t>(queued_cells));
    w.member("running", static_cast<std::uint64_t>(jobs_in_flight.size()));
    w.endObject();
    w.key("counters").beginObject();
    w.member("requests_admitted", requests_admitted);
    w.member("requests_refused", requests_refused);
    w.member("cells_settled", cells_settled);
    w.member("clients_connected", clients_connected);
    w.member("clients_disconnected", clients_disconnected);
    w.endObject();
    std::uint64_t orphaned = 0;
    for (const auto& [id, c] : clients) {
      if (c.admitted && c.fd < 0 && !c.done_sent) ++orphaned;
    }
    w.key("journal").beginObject();
    w.member("enabled", journal.isOpen());
    w.member("records_replayed", journal_records_replayed);
    w.member("records_skipped", journal_records_skipped);
    w.member("requests_recovered", journal_requests_recovered);
    w.member("requests_attached", requests_attached);
    w.member("records_appended", journal_appends);
    w.member("orphaned_serving", orphaned);
    w.member("torn_tail_dropped", journal_torn_tail);
    w.endObject();
    w.key("clients").beginArray();
    for (const auto& [id, c] : clients) {
      if (!c.admitted) continue;
      w.beginObject();
      w.member("id", id);
      w.member("kind", static_cast<std::uint64_t>(c.request.kind));
      w.member("total", c.total);
      w.member("done", c.done);
      w.member("queued",
               static_cast<std::uint64_t>(c.ready.size() + c.waiting.size()));
      w.member("running", static_cast<std::uint64_t>(c.running));
      w.member("dispatched", c.dispatched);
      w.member("orphaned", c.fd < 0);
      w.member("recovered", c.recovered);
      w.endObject();
    }
    w.endArray();
    w.key("resource").beginObject();
    w.member("supervised_cells",
             static_cast<std::uint64_t>(resources.supervised_cells));
    w.member("attempts", resources.attempts);
    w.member("host_user_seconds", resources.host_user_seconds);
    w.member("host_sys_seconds", resources.host_sys_seconds);
    w.member("host_max_rss_kb", resources.host_max_rss_kb);
    w.endObject();
    w.endObject();
    return out.str();
  }

  /// Handles one decoded frame from a client. Returns false when the
  /// connection can no longer be trusted.
  bool handleFrame(Client& c, std::uint32_t version, std::uint8_t kind,
                   const std::string& payload) {
    switch (kind) {
      case kServiceFrameRequest: {
        if (c.admitted || c.close_after_flush) return false;
        ServiceRequest req;
        std::string token;
        const bool decoded =
            version >= kServiceFrameV2
                ? decodeServiceRequestWithToken(payload, &req, &token)
                : decodeServiceRequest(payload, &req);
        if (!decoded) {
          refuse(c, kServiceFrameError,
                 encodeTextPayload("undecodable request payload"));
          return true;
        }
        if (!token.empty() && !draining) {
          auto tit = tokens.find(token);
          if (tit != tokens.end()) {
            auto rit = clients.find(tit->second);
            if (rit != clients.end() && rit->first != c.id) {
              attachClient(c, rit->second, req);
              return true;
            }
          }
        }
        admit(c, std::move(req), std::move(token));
        return true;
      }
      case kServiceFrameStatusRequest:
        queueFrame(c, kServiceFrameStatus, encodeTextPayload(statusJson()));
        c.close_after_flush = true;
        flushClient(c);
        return true;
      default:
        return false;  // clients only send requests
    }
  }

  void readClient(Client& c) {
    // Drain the socket first and only note the close; the buffered bytes
    // are parsed before the disconnect is honoured. A client that writes
    // a request and immediately closes (crash, `--client-chaos
    // disconnect@0`) delivers its frame and its EOF in the same pass —
    // disconnecting first would throw the request away unparsed, and a
    // tokened request must be admitted so the retry can attach to it.
    bool closed = false;
    for (;;) {
      const int n = wire::readSomeFd(c.fd, &c.inbuf, 1 << 20);
      if (n == -1) break;  // EAGAIN: drained the socket for now
      if (n == 0 || n == -2) {
        closed = true;
        break;
      }
    }
    while (c.fd >= 0) {
      std::size_t frame_bytes = 0;
      std::string error;
      const wire::FrameScan scan =
          wire::scanFrame(kServiceFrameMagic, c.inbuf, &frame_bytes, &error);
      if (scan == wire::FrameScan::kNeedMore) break;
      if (scan == wire::FrameScan::kCorrupt) {
        note("service: client " + std::to_string(c.id) +
             " sent corrupt bytes (" + error + "); disconnecting");
        disconnectClient(c);
        return;
      }
      std::string frame = c.inbuf.substr(0, frame_bytes);
      c.inbuf.erase(0, frame_bytes);
      std::uint32_t version = 0;
      std::uint8_t kind = 0;
      std::string payload;
      if (!wire::decodeFrame(kServiceFrameMagic, frame, kServiceFrameV1,
                             kServiceFrameV2, kServiceFrameMaxKindV2, &version,
                             &kind, &payload, &error)) {
        note("service: client " + std::to_string(c.id) +
             " sent an invalid frame (" + error + "); disconnecting");
        disconnectClient(c);
        return;
      }
      if (version == kServiceFrameV1 && kind > kServiceFrameMaxKind) {
        note("service: client " + std::to_string(c.id) +
             " sent a v1 frame with a v2-only kind; disconnecting");
        disconnectClient(c);
        return;
      }
      if (!handleFrame(c, version, kind, payload)) {
        disconnectClient(c);
        return;
      }
    }
    if (closed && c.fd >= 0) disconnectClient(c);
  }

  /// Converts a settled outcome into the client-facing result frame (and
  /// the checkpoint line), using the same decode helpers as the batch
  /// paths — which is what keeps serve output field-identical to them.
  /// `record` is false when replaying an already-checkpointed cell during
  /// journal recovery: no checkpoint re-append, no crash point.
  void settleCell(Client& c, std::uint64_t cell, const Supervisor::Outcome& oc,
                  bool record = true) {
    ++cells_settled;
    resources.add(oc.worker);
    ResultFramePayload p;
    p.cell = cell;
    p.total = c.total;
    p.tag = c.tag;
    p.worker = oc.worker;
    switch (c.request.kind) {
      case ServiceRequest::Kind::kSweep: {
        const auto& key = c.sweep_keys[static_cast<std::size_t>(cell)];
        SweepRow row = sweepRowFromOutcome(key.first, key.second, oc);
        p.inner = encodeSweepRow(row);
        if (record && checkpoint.isOpen()) {
          checkpoint.appendLine(formatCheckpointLine(sweepCheckpointLine(row)));
          checkpoint.sync();
        }
        break;
      }
      case ServiceRequest::Kind::kCampaign: {
        const std::string& benchmark =
            c.campaign_names[static_cast<std::size_t>(cell / c.request.seeds)];
        FaultCampaignCell fc = campaignCellFromOutcome(
            benchmark, support::deriveSeed(c.request.base_seed, cell), oc);
        p.inner = encodeCampaignCell(fc);
        if (record && checkpoint.isOpen()) {
          checkpoint.appendLine(formatCheckpointLine(
              campaignCheckpointLine(fc, static_cast<std::size_t>(cell))));
          checkpoint.sync();
        }
        break;
      }
      case ServiceRequest::Kind::kEcho:
        p.inner = oc.status == CellStatus::kOk
                      ? oc.payload
                      : "error:" + toString(oc.status);
        break;
    }
    // The settle crash point fires with the cell checkpointed but the
    // request still unsettled in the journal: recovery must re-admit and
    // replay this cell from the checkpoint, never re-run it.
    if (record && crashDue(support::ServiceCrashPoint::kAfterSettle)) {
      crashNow();
    }
    const std::string result_payload = encodeResultPayload(p);
    if (!c.token.empty()) c.result_frames.push_back(result_payload);
    ++c.done;
    queueFrame(c, kServiceFrameResult, result_payload);
    queueFrame(c, kServiceFrameProgress,
               encodeProgressPayload(c.done, c.total));
    if (c.done == c.total) {
      queueFrame(c, kServiceFrameDone, encodeDonePayload(c.total));
      c.done_sent = true;
      // Deliberately NOT journal-settled here: the settle record is
      // written at *delivery* (the done frame fully flushed to a client),
      // so a crash in the completion-to-delivery window leaves the
      // request recoverable — the next incarnation replays every cell
      // from the checkpoint and a same-token resubmission still attaches
      // instead of re-running the grid as a fresh request.
    }
    flushClient(c);
  }

  /// Settles every still-queued cell of `c` with a synthetic outcome
  /// (deadline expiry or drain) — in-flight cells are left to finish.
  void settleQueuedAs(Client& c, CellStatus status, const char* diagnostic) {
    std::deque<PendingCell> cells = std::move(c.ready);
    for (const PendingCell& pc : c.waiting) cells.push_back(pc);
    c.ready.clear();
    c.waiting.clear();
    queued_cells -= cells.size();
    Supervisor::Outcome oc;
    oc.status = status;
    oc.diagnostic = diagnostic;
    std::sort(cells.begin(), cells.end(),
              [](const PendingCell& a, const PendingCell& b) {
                return a.cell < b.cell;
              });
    for (const PendingCell& pc : cells) {
      // A mid-loop disconnect cancels a plain client's remaining settles;
      // an orphaned tokened/recovered request settles regardless.
      if (c.fd < 0 && !c.survivesDisconnect()) break;
      settleCell(c, pc.cell, oc);
    }
  }

  void moveDueRetries(Client& c, Clock::time_point now) {
    for (auto it = c.waiting.begin(); it != c.waiting.end();) {
      if (it->not_before <= now) {
        // Retries re-enter at the front: the cell already waited its
        // backoff and should not queue behind the whole remaining grid.
        c.ready.push_front(*it);
        it = c.waiting.erase(it);
      } else {
        ++it;
      }
    }
  }

  bool dispatchCell(std::uint64_t client_id, Client& c) {
    PendingCell pc = c.ready.front();
    WorkerPool::Job job;
    job.id = next_job_id++;
    job.attempt = pc.attempt;
    job.has_spec = true;
    job.spec = encodeWorkerSpec(c.request_bytes, pc.cell,
                                options.trace_cache_dir);
    if (options.allow_chaos) {
      job.chaos = c.request.chaos.actionFor(
          static_cast<std::size_t>(pc.cell), pc.attempt);
    }
    if (!pool->dispatch(job)) return false;
    c.ready.pop_front();
    --queued_cells;
    ++c.running;
    ++c.dispatched;
    jobs_in_flight[job.id] = {client_id, pc.cell};
    return true;
  }

  /// One fair scheduling sweep: repeatedly rotate over clients, taking at
  /// most one ready cell per client per rotation, while idle workers last.
  void schedule() {
    const Clock::time_point now = Clock::now();
    bool progress = true;
    while (progress && pool->idleWorkers() > 0 && !clients.empty()) {
      progress = false;
      auto it = clients.upper_bound(last_rr);
      for (std::size_t n = 0; n < clients.size() && pool->idleWorkers() > 0;
           ++n) {
        if (it == clients.end()) it = clients.begin();
        const std::uint64_t id = it->first;
        Client& c = it->second;
        ++it;
        // Orphans (fd < 0 with a token or recovered from the journal)
        // keep dispatching; their queues are cleared at disconnect
        // otherwise, so ready.empty() skips plain disconnected clients.
        if (!c.admitted || c.done_sent) continue;
        moveDueRetries(c, now);
        if (c.ready.empty()) continue;
        if (dispatchCell(id, c)) {
          last_rr = id;
          progress = true;
        } else {
          return;  // no idle worker could take the job
        }
      }
    }
  }

  void handleSettled(std::vector<WorkerPool::Settled>& settled) {
    for (WorkerPool::Settled& s : settled) {
      auto jit = jobs_in_flight.find(s.id);
      if (jit == jobs_in_flight.end()) continue;
      const auto [client_id, cell] = jit->second;
      jobs_in_flight.erase(jit);
      auto cit = clients.find(client_id);
      if (cit == clients.end()) continue;
      Client& c = cit->second;
      --c.running;
      if (c.fd < 0 && !c.survivesDisconnect()) {
        continue;  // disconnected mid-flight: result dropped
      }
      if (!draining && isTransportFailure(s.outcome.status) &&
          s.attempt <= options.supervisor.retries) {
        const double delay = backoff->backoffSeconds(
            static_cast<std::size_t>(cell), s.attempt + 1);
        c.waiting.push_back(PendingCell{
            cell, s.attempt + 1,
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(delay))});
        ++queued_cells;
        continue;
      }
      settleCell(c, cell, s.outcome);
    }
    settled.clear();
  }

  void checkDeadlines() {
    const Clock::time_point now = Clock::now();
    for (auto& [id, c] : clients) {
      if (!c.admitted || c.done_sent || !c.has_deadline) continue;
      if (c.fd < 0 && !c.survivesDisconnect()) continue;
      if (now < c.deadline) continue;
      if (c.ready.empty() && c.waiting.empty()) continue;
      note("service: client " + std::to_string(id) +
           " deadline expired; failing its queued cells");
      c.deadline_expired = true;
      settleQueuedAs(c, CellStatus::kTimeout, kDeadlineDiagnostic);
    }
  }

  void beginDrain() {
    draining = true;
    note("service: draining (stop requested)");
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    pool->setRespawnPolicy([] { return false; });
    std::uint64_t orphans_preserved = 0;
    for (auto& [id, c] : clients) {
      if (c.fd < 0 || !c.admitted || c.done_sent) {
        if (c.fd >= 0 && !c.admitted) {
          refuse(c, kServiceFrameError,
                 encodeTextPayload("service is draining; resubmit later"));
        }
        // An orphaned journaled request is left unsettled on purpose: the
        // journal carries it to the next incarnation, which resumes it
        // from the checkpoint instead of failing its cells here.
        if (c.fd < 0 && c.admitted && !c.done_sent && c.request_id != 0) {
          ++orphans_preserved;
        }
        continue;
      }
      settleQueuedAs(c, CellStatus::kInternalError, kDrainDiagnostic);
    }
    if (orphans_preserved > 0) {
      note("service: drain preserves " + std::to_string(orphans_preserved) +
           " orphaned journaled request(s) for the next start");
    }
    checkpoint.sync();
    journal.sync();
  }

  int run() {
    if (!SweepService::supported()) {
      note("service: sockets/fork unsupported on this platform");
      return 1;
    }
    ScopedIgnoreSigpipe sigpipe_guard;
    std::string error;
    listen_fd = wire::listenUnix(options.socket_path, 64, &error);
    if (listen_fd < 0) {
      note("service: cannot listen on " + options.socket_path + ": " + error);
      return 1;
    }
    wire::setNonBlocking(listen_fd, true);
    if (!options.checkpoint_path.empty()) {
      if (!checkpoint.open(options.checkpoint_path, /*truncate=*/false)) {
        note("service: cannot open checkpoint " + options.checkpoint_path);
        ::close(listen_fd);
        return 1;
      }
    }
    JournalReplay replay;
    if (!options.journal_path.empty()) {
      replay = replayJournal(options.journal_path);
      journal_records_replayed = replay.records_replayed;
      journal_records_skipped = replay.records_skipped;
      journal_torn_tail = replay.torn_tail;
      next_request_id = replay.next_id;
      for (const std::string& w : replay.warnings) note("service: " + w);
      if (replay.torn_tail) {
        // Drop the torn fragment before reopening for append: O_APPEND
        // would otherwise glue the next record onto the fragment's line
        // and the merged line would fail its checksum on every later
        // replay.
        if (::truncate(options.journal_path.c_str(),
                       static_cast<off_t>(replay.valid_bytes)) != 0) {
          note("service: cannot truncate torn journal tail in " +
               options.journal_path);
          checkpoint.close();
          ::close(listen_fd);
          return 1;
        }
      }
      if (!journal.open(options.journal_path, /*truncate=*/false)) {
        note("service: cannot open journal " + options.journal_path);
        checkpoint.close();
        ::close(listen_fd);
        return 1;
      }
    }
    SupervisorOptions sup = options.supervisor;
    sup.isolate = true;
    sup.pool = true;
    sup.chaos = support::ChaosPlan{};  // chaos arrives per request
    jobs = sup.jobs == 0 ? support::ThreadPool::defaultWorkerCount()
                         : sup.jobs;
    backoff = std::make_unique<Supervisor>(sup);
    pool = std::make_unique<WorkerPool>(
        sup, [](std::size_t) { return std::string(); }, serviceSpecProduce);
    pool->setChildSetup([this] {
      // Workers must never hold the service's sockets open: a forked
      // worker outliving the service would otherwise keep clients (and
      // the listening socket) half-alive. The checkpoint/journal fds are
      // closed for the same hygiene — only the parent settles cells.
      if (listen_fd >= 0) ::close(listen_fd);
      for (auto& [id, c] : clients) {
        if (c.fd >= 0) ::close(c.fd);
      }
      if (checkpoint.fd() >= 0) ::close(checkpoint.fd());
      if (journal.fd() >= 0) ::close(journal.fd());
    });
    if (!pool->ensure(jobs) && pool->workerCount() == 0) {
      note("service: could not fork any pooled worker");
      ::close(listen_fd);
      return 1;
    }
    // Crash recovery: re-admit every unsettled journaled request, oldest
    // first, before accepting new connections' traffic. Cells already ok
    // in the bound checkpoint replay from it; the rest queue behind the
    // ordinary scheduler.
    if (!replay.unsettled.empty()) {
      std::map<std::string,
               std::pair<std::map<std::string, CheckpointLine>,
                         std::map<std::string, CheckpointLine>>>
          by_path;  // checkpoint path -> (sweep-shape map, campaign-shape map)
      for (const JournalRecord& rec : replay.unsettled) {
        if (rec.checkpoint_path.empty()) continue;
        if (by_path.count(rec.checkpoint_path)) continue;
        std::string warning;
        auto& maps = by_path[rec.checkpoint_path];
        maps.first = loadCheckpoint(rec.checkpoint_path,
                                    kSweepCheckpointMetrics, &warning);
        if (!warning.empty()) note("service: " + warning);
        warning.clear();
        maps.second = loadCheckpoint(rec.checkpoint_path,
                                     kCampaignCheckpointMetrics, &warning);
        if (!warning.empty()) note("service: " + warning);
      }
      const std::map<std::string, CheckpointLine> empty;
      for (const JournalRecord& rec : replay.unsettled) {
        auto pit = by_path.find(rec.checkpoint_path);
        recoverRequest(rec, pit == by_path.end() ? empty : pit->second.first,
                       pit == by_path.end() ? empty : pit->second.second);
      }
    }
    note("service: listening on " + options.socket_path + " (" +
         std::to_string(pool->workerCount()) + " workers)");

    std::vector<WorkerPool::Settled> settled;
    for (;;) {
      if (!draining && options.stop && *options.stop) beginDrain();

      pool->service(settled);
      handleSettled(settled);
      checkDeadlines();
      if (!draining) schedule();

      if (draining) {
        const bool work_done = jobs_in_flight.empty();
        bool flushed = true;
        for (auto& [id, c] : clients) {
          if (c.fd >= 0 && c.out_pos < c.outbuf.size()) flushed = false;
        }
        if (work_done && flushed) break;
        if (work_done && !drain_flush_armed) {
          drain_flush_armed = true;
          drain_flush_deadline = Clock::now() + std::chrono::seconds(10);
        }
        if (drain_flush_armed && Clock::now() >= drain_flush_deadline) {
          note("service: drain flush grace expired; closing slow clients");
          for (auto& [id, c] : clients) {
            if (c.fd >= 0) disconnectClient(c);
          }
          break;
        }
      }
      reapClients();

      // Poll set: listener, clients, busy workers' reply pipes.
      std::vector<pollfd> fds;
      std::vector<std::uint64_t> owner;  // client id per pollfd; 0 = other
      if (listen_fd >= 0) {
        fds.push_back(pollfd{listen_fd, POLLIN, 0});
        owner.push_back(0);
      }
      for (auto& [id, c] : clients) {
        if (c.fd < 0) continue;
        short events = POLLIN;
        if (c.out_pos < c.outbuf.size()) events |= POLLOUT;
        fds.push_back(pollfd{c.fd, events, 0});
        owner.push_back(id);
      }
      for (int fd : pool->busyReplyFds()) {
        fds.push_back(pollfd{fd, POLLIN, 0});
        owner.push_back(0);
      }

      int timeout_ms = 200;
      const Clock::time_point now = Clock::now();
      auto consider = [&](Clock::time_point t) {
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(t - now)
                .count();
        timeout_ms = std::max(
            0, std::min(timeout_ms, static_cast<int>(std::max<long long>(
                                        0, static_cast<long long>(ms)))));
      };
      Clock::time_point pool_deadline;
      if (pool->nextDeadline(&pool_deadline)) consider(pool_deadline);
      for (auto& [id, c] : clients) {
        if (c.has_deadline && c.admitted && !c.done_sent) consider(c.deadline);
        for (const PendingCell& pc : c.waiting) consider(pc.not_before);
      }
      if (drain_flush_armed) consider(drain_flush_deadline);

      const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                            static_cast<nfds_t>(fds.size()), timeout_ms);
      if (rc < 0 && errno != EINTR && errno != EAGAIN) {
        note("service: poll failed: " + std::string(std::strerror(errno)));
        break;
      }
      if (rc <= 0) continue;

      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        if (listen_fd >= 0 && fds[i].fd == listen_fd) {
          for (;;) {
            const int cfd = ::accept(listen_fd, nullptr, nullptr);
            if (cfd < 0) break;
            wire::setNonBlocking(cfd, true);
            Client c;
            c.fd = cfd;
            c.id = next_client_id++;
            ++clients_connected;
            clients.emplace(c.id, std::move(c));
          }
          continue;
        }
        if (owner[i] == 0) continue;  // worker pipe: handled by service()
        auto cit = clients.find(owner[i]);
        if (cit == clients.end() || cit->second.fd != fds[i].fd) continue;
        Client& c = cit->second;
        if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          // Half-closed peers may still have unread frames; try reading
          // first so a request + immediate shutdown(WR) still admits.
          if (fds[i].revents & POLLIN) readClient(c);
          if (c.fd >= 0 && c.outbuf.empty()) disconnectClient(c);
          if (c.fd >= 0) flushClient(c);
          continue;
        }
        if (fds[i].revents & POLLIN) readClient(c);
        if (c.fd >= 0 && (fds[i].revents & POLLOUT)) flushClient(c);
      }
    }

    for (auto& [id, c] : clients) {
      if (c.fd >= 0) disconnectClient(c);
    }
    pool->shutdown();
    checkpoint.close();
    journal.close();
    if (listen_fd >= 0) ::close(listen_fd);
    ::unlink(options.socket_path.c_str());
    note("service: drained cleanly");
    return 0;
  }
};

SweepService::SweepService(SweepServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SweepService::~SweepService() = default;

bool SweepService::supported() {
  return wire::socketsSupported() && Supervisor::isolationSupported();
}

int SweepService::run() { return impl_->run(); }

#else  // !SPT_SERVICE_POSIX

struct SweepService::Impl {
  explicit Impl(SweepServiceOptions opts) : options(std::move(opts)) {}
  SweepServiceOptions options;
};

SweepService::SweepService(SweepServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SweepService::~SweepService() = default;

bool SweepService::supported() { return false; }

int SweepService::run() {
  if (impl_->options.log) {
    impl_->options.log("service: sockets/fork unsupported on this platform");
  }
  return 1;
}

#endif  // SPT_SERVICE_POSIX

// ---- The client -----------------------------------------------------------

#if defined(SPT_SERVICE_POSIX)

namespace {

/// Reads frames from a connected service socket until `handle` says stop.
/// `handle` returns true to keep reading. Fills `transport_error` on EOF /
/// read error / corrupt stream / timeout.
bool readServiceFrames(
    int fd, double timeout_seconds, const support::ClientChaosPlan& chaos,
    std::string* transport_error,
    const std::function<bool(std::uint8_t, const std::string&)>& handle) {
  std::string inbuf;
  const Clock::time_point deadline =
      timeout_seconds > 0
          ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(timeout_seconds))
          : Clock::time_point::max();
  for (;;) {
    if (chaos.action == support::ClientChaosAction::kSlowReader) {
      std::this_thread::sleep_for(std::chrono::milliseconds(chaos.delay_ms));
    }
    int timeout_ms = -1;
    if (timeout_seconds > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        *transport_error = "timed out waiting for the service";
        return false;
      }
      timeout_ms = static_cast<int>(
          std::min<long long>(left.count(), 1000ll * 3600));
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      *transport_error = std::string("poll failed: ") + std::strerror(errno);
      return false;
    }
    if (rc == 0) continue;  // re-check the deadline
    const int n = wire::readSomeFd(fd, &inbuf, 1 << 20);
    if (n == 0) {
      *transport_error = "connection closed by the service";
      return false;
    }
    if (n == -2) {
      *transport_error = "read failed";
      return false;
    }
    if (n == -1) continue;
    for (;;) {
      std::size_t frame_bytes = 0;
      std::string error;
      const wire::FrameScan scan =
          wire::scanFrame(kServiceFrameMagic, inbuf, &frame_bytes, &error);
      if (scan == wire::FrameScan::kNeedMore) break;
      if (scan == wire::FrameScan::kCorrupt) {
        *transport_error = "corrupt frame from the service: " + error;
        return false;
      }
      std::string frame = inbuf.substr(0, frame_bytes);
      inbuf.erase(0, frame_bytes);
      std::uint32_t version = 0;
      std::uint8_t kind = 0;
      std::string payload;
      if (!wire::decodeFrame(kServiceFrameMagic, frame, kServiceFrameV1,
                             kServiceFrameV2, kServiceFrameMaxKindV2, &version,
                             &kind, &payload, &error)) {
        *transport_error = "invalid frame from the service: " + error;
        return false;
      }
      if (!handle(kind, payload)) return true;
    }
  }
}

}  // namespace

SubmitOutcome submitToService(const std::string& socket_path,
                              const ServiceRequest& request,
                              const SubmitOptions& options) {
  SubmitOutcome outcome;
  ScopedIgnoreSigpipe sigpipe_guard;
  std::string error;
  const int fd = wire::connectUnix(socket_path, &error);
  if (fd < 0) {
    outcome.error = error;
    outcome.transport = true;
    return outcome;
  }
  // A token selects v2 framing; tokenless requests stay v1 so a new
  // client keeps working against an old service.
  const std::string frame =
      options.token.empty()
          ? encodeServiceFrame(kServiceFrameRequest,
                               encodeServiceRequest(request))
          : encodeServiceFrameV2(
                kServiceFrameRequest,
                encodeServiceRequestWithToken(request, options.token));
  if (!wire::writeAllFd(fd, frame.data(), frame.size())) {
    outcome.error = "failed to send the request";
    outcome.transport = true;
    ::close(fd);
    return outcome;
  }

  // Client-side sabotage (CI soak / resilience tests): a saboteur with
  // after_results == 0 acts immediately after sending the request.
  std::uint64_t results_seen = 0;
  auto chaosDue = [&] {
    return (options.chaos.action == support::ClientChaosAction::kDisconnect ||
            options.chaos.action == support::ClientChaosAction::kGarbage) &&
           results_seen >= options.chaos.after_results;
  };
  auto actChaos = [&] {
    if (options.chaos.action == support::ClientChaosAction::kGarbage) {
      const std::string junk(512, '\xa5');
      wire::writeAllFd(fd, junk.data(), junk.size());
    }
    ::close(fd);
    outcome.error = "client chaos: " + options.chaos.toSpec();
  };
  if (chaosDue()) {
    actChaos();
    return outcome;
  }

  std::vector<std::optional<SweepRow>> rows;
  std::vector<std::optional<FaultCampaignCell>> cells;
  std::vector<std::optional<std::string>> echoes;
  bool finished = false;
  bool protocol_error = false;
  std::string perror;
  bool chaos_fired = false;

  const bool read_ok = readServiceFrames(
      fd, options.timeout_seconds, options.chaos, &error,
      [&](std::uint8_t kind, const std::string& payload) -> bool {
        switch (kind) {
          case kServiceFrameProgress: {
            std::uint64_t done = 0, total = 0;
            if (decodeProgressPayload(payload, &done, &total) &&
                options.on_progress) {
              options.on_progress(done, total);
            }
            return true;
          }
          case kServiceFrameBusy: {
            outcome.busy = true;
            std::string reason;
            decodeBusyPayload(payload, &outcome.retry_after_seconds, &reason);
            outcome.error = reason;
            return false;
          }
          case kServiceFrameError: {
            std::string text;
            decodeTextPayload(payload, &text);
            outcome.error = text.empty() ? "service error" : text;
            return false;
          }
          case kServiceFrameResult: {
            ResultFramePayload p;
            if (!decodeResultPayload(payload, &p)) {
              protocol_error = true;
              perror = "undecodable result payload";
              return false;
            }
            const auto idx = static_cast<std::size_t>(p.cell);
            const auto total = static_cast<std::size_t>(p.total);
            if (idx >= total || total > (1u << 22)) {
              protocol_error = true;
              perror = "result cell index out of range";
              return false;
            }
            if (p.tag == 'W') {
              if (rows.size() < total) rows.resize(total);
              SweepRow row;
              if (!decodeSweepRow(p.inner, &row)) {
                protocol_error = true;
                perror = "undecodable sweep row";
                return false;
              }
              row.worker = p.worker;
              rows[idx] = std::move(row);
            } else if (p.tag == 'C') {
              if (cells.size() < total) cells.resize(total);
              FaultCampaignCell cell;
              if (!decodeCampaignCell(p.inner, &cell)) {
                protocol_error = true;
                perror = "undecodable campaign cell";
                return false;
              }
              cell.worker = p.worker;
              cells[idx] = std::move(cell);
            } else if (p.tag == 'E') {
              if (echoes.size() < total) echoes.resize(total);
              echoes[idx] = p.inner;
            } else {
              protocol_error = true;
              perror = "unknown result tag";
              return false;
            }
            ++results_seen;
            if (chaosDue()) {
              chaos_fired = true;
              return false;
            }
            return true;
          }
          case kServiceFrameDone: {
            std::uint64_t total = 0;
            if (!decodeDonePayload(payload, &total) ||
                total != results_seen) {
              protocol_error = true;
              perror = "done frame total does not match delivered results";
              return false;
            }
            finished = true;
            return false;
          }
          case kServiceFrameAttached: {
            // This connection adopted an existing request (same token);
            // its settled results replay as ordinary kResult frames next.
            outcome.attached = true;
            return true;
          }
          default:
            return true;  // progress/status noise is ignorable
        }
      });

  if (chaos_fired) {
    actChaos();
    return outcome;
  }
  ::close(fd);
  if (outcome.busy || !outcome.error.empty()) return outcome;
  if (protocol_error) {
    outcome.error = perror;
    return outcome;
  }
  if (!read_ok) {
    outcome.error = error;
    outcome.transport = true;
    return outcome;
  }
  if (!finished) {
    outcome.error = "service stream ended without a done frame";
    outcome.transport = true;
    return outcome;
  }
  for (const auto& r : rows) {
    if (!r) {
      outcome.error = "done frame arrived with missing sweep rows";
      return outcome;
    }
  }
  for (const auto& c : cells) {
    if (!c) {
      outcome.error = "done frame arrived with missing campaign cells";
      return outcome;
    }
  }
  for (const auto& e : echoes) {
    if (!e) {
      outcome.error = "done frame arrived with missing echo cells";
      return outcome;
    }
  }
  outcome.rows.reserve(rows.size());
  for (auto& r : rows) outcome.rows.push_back(std::move(*r));
  outcome.campaign.cells.reserve(cells.size());
  for (auto& c : cells) outcome.campaign.cells.push_back(std::move(*c));
  for (const FaultCampaignCell& c : outcome.campaign.cells) {
    if (c.ok()) outcome.campaign.totals.accumulate(c.faults);
  }
  outcome.echoes.reserve(echoes.size());
  for (auto& e : echoes) outcome.echoes.push_back(std::move(*e));
  outcome.ok = true;
  return outcome;
}

SubmitOutcome submitToServiceWithRetry(const std::string& socket_path,
                                       const ServiceRequest& request,
                                       const SubmitOptions& options) {
  SubmitOutcome outcome = submitToService(socket_path, request, options);
  if (options.retry_for_seconds <= 0) return outcome;
  const Clock::time_point give_up =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options.retry_for_seconds));
  // The supervisor's deterministic seeded backoff, capped at 2 s per
  // attempt: a service restart window is seconds, not minutes, and a
  // tokened retry that reconnects attaches instead of re-running, so
  // probing often is cheap.
  const Supervisor backoff{SupervisorOptions{}};
  std::uint32_t attempt = 1;
  for (;;) {
    if (outcome.ok) return outcome;
    if (options.stop && *options.stop) return outcome;
    double delay = 0.0;
    std::string why;
    if (outcome.busy) {
      // Honor the service's own backpressure hint.
      delay = outcome.retry_after_seconds > 0 ? outcome.retry_after_seconds
                                              : 0.25;
      why = "service busy";
    } else if (outcome.transport && !options.token.empty()) {
      delay = std::min(2.0, backoff.backoffSeconds(0, attempt + 1));
      why = "transport failure (" + outcome.error + ")";
    } else {
      // Structured service errors (bad request, chaos refusal, token
      // conflict) never resolve by retrying; tokenless transport failures
      // cannot safely retry (a re-run could duplicate work).
      return outcome;
    }
    const Clock::time_point now = Clock::now();
    const Clock::time_point wake =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(delay));
    if (wake >= give_up) return outcome;
    if (options.log) {
      std::ostringstream msg;
      msg << "submit: " << why << "; retrying in " << delay << "s";
      options.log(msg.str());
    }
    while (Clock::now() < wake) {
      if (options.stop && *options.stop) return outcome;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ++attempt;
    outcome = submitToService(socket_path, request, options);
  }
}

std::optional<std::string> queryServiceStatus(const std::string& socket_path,
                                              std::string* error) {
  std::string local_error;
  std::string* err = error ? error : &local_error;
  ScopedIgnoreSigpipe sigpipe_guard;
  const int fd = wire::connectUnix(socket_path, err);
  if (fd < 0) return std::nullopt;
  const std::string frame =
      encodeServiceFrame(kServiceFrameStatusRequest, std::string());
  if (!wire::writeAllFd(fd, frame.data(), frame.size())) {
    *err = "failed to send the status request";
    ::close(fd);
    return std::nullopt;
  }
  std::optional<std::string> status;
  const bool read_ok = readServiceFrames(
      fd, 30.0, support::ClientChaosPlan{}, err,
      [&](std::uint8_t kind, const std::string& payload) -> bool {
        if (kind != kServiceFrameStatus) return true;
        std::string text;
        if (decodeTextPayload(payload, &text)) status = std::move(text);
        return false;
      });
  ::close(fd);
  if (!status && read_ok) *err = "service closed without a status frame";
  return status;
}

#else  // !SPT_SERVICE_POSIX

SubmitOutcome submitToService(const std::string&, const ServiceRequest&,
                              const SubmitOptions&) {
  SubmitOutcome outcome;
  outcome.error = "sockets are unsupported on this platform";
  return outcome;
}

SubmitOutcome submitToServiceWithRetry(const std::string& socket_path,
                                       const ServiceRequest& request,
                                       const SubmitOptions& options) {
  return submitToService(socket_path, request, options);
}

std::optional<std::string> queryServiceStatus(const std::string&,
                                              std::string* error) {
  if (error) *error = "sockets are unsupported on this platform";
  return std::nullopt;
}

#endif  // SPT_SERVICE_POSIX

}  // namespace spt::harness

// Binary payload codec for supervised workers.
//
// A supervised worker reports its finished cell to the parent as one
// supervisor frame (supervisor.h); the frame payload is this codec's
// output. A one-shot fork-per-cell worker sends it as the whole v1 frame
// payload; a warm-pool worker nests the same bytes inside a v2 pooled
// reply after the cell/rusage header (supervisor.h's PoolReplyHeader —
// kept there, with the frame codec, because this header already depends
// on parallel_sweep.h which depends on supervisor.h). Either way the
// encoding is a flat tagged field list — every JSON-visible field of a
// SweepRow / FaultCampaignCell crosses the pipe, so an isolated run's
// output is field-for-field identical to the in-process path's in both
// worker models. The codec is deliberately strict: decode fails (rather
// than zero-fills) on a truncated or wrong-tag payload, and the
// supervisor reports that as CellStatus::kProtocolError.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "harness/fault_campaign.h"
#include "harness/parallel_sweep.h"
#include "harness/perf.h"

namespace spt::harness {

/// Little helper pair used by the codecs (exposed for tests).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    out_.append(s);
  }
  const std::string& bytes() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  std::string out_;
};

/// Strict reader: every accessor returns false once the payload runs out
/// (and `ok()` latches false); decoders check ok() + fully-consumed.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* v) { return raw(v, sizeof *v); }
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool f64(double* v) { return raw(v, sizeof *v); }
  bool boolean(bool* v) {
    std::uint8_t b = 0;
    if (!u8(&b)) return false;
    *v = b != 0;
    return true;
  }
  bool str(std::string* s) {
    std::uint64_t n = 0;
    if (!u64(&n)) return false;
    if (n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    s->assign(bytes_, pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return true;
  }
  bool ok() const { return ok_; }
  bool atEnd() const { return pos_ == bytes_.size(); }

 private:
  bool raw(void* dst, std::size_t n) {
    if (!ok_ || n > bytes_.size() - pos_) {
      ok_ = false;
      return false;
    }
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::string& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// SweepRow <-> payload (tag 'S'). Covers benchmark, config, status,
/// diagnostic, both machines' cycles/instrs/breakdown, the SPT machine's
/// thread and fault stats, digests, and the extra-metric map — everything
/// writeSweepJson and the checkpoint line consume. Worker diagnostics are
/// parent-side and never cross the pipe.
std::string encodeSweepRow(const SweepRow& row);
bool decodeSweepRow(const std::string& payload, SweepRow* row);

/// FaultCampaignCell <-> payload (tag 'F').
std::string encodeCampaignCell(const FaultCampaignCell& cell);
bool decodeCampaignCell(const std::string& payload, FaultCampaignCell* cell);

/// PerfRow <-> payload (tag 'P'), for `sptc perf --isolate` workers:
/// every JSON-visible field of the throughput row crosses the pipe,
/// deterministic counters and host_ timings alike.
std::string encodePerfRow(const PerfRow& row);
bool decodePerfRow(const std::string& payload, PerfRow* row);

}  // namespace spt::harness

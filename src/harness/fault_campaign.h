// Fault-injection campaign driver (the robustness evaluation).
//
// Sweeps the ten-workload suite under seeded fault injection with the
// architectural oracle armed, and aggregates the classification of every
// injected fault. The campaign's claims, asserted by tests and CI:
//
//  * every injected fault is detected (by the dependence-checking net or
//    by the commit-time validation walk) or provably benign — the
//    `escaped` counter stays zero;
//  * whatever was injected, the SPT machine's committed architectural
//    state equals the sequential replay of the same trace (the oracle
//    stream digest matches sim::Oracle::sequentialDigest);
//  * the whole campaign is bit-reproducible for a fixed base seed at any
//    --jobs value: cell c's fault seed is support::deriveSeed(base, c), a
//    pure function of the cell index.
//
// Each workload is compiled and traced once (phase 1, parallel); the
// workloads × seeds grid then shares those immutable traces (phase 2), so
// a 10×64 campaign costs ten compilations, not 640.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/parallel_sweep.h"
#include "sim/result.h"
#include "support/machine_config.h"

namespace spt::harness {

struct FaultCampaignOptions {
  std::uint64_t seeds = 8;       // fault seeds per workload
  std::uint64_t base_seed = 0x5eed;
  std::size_t jobs = 0;          // 0 = ThreadPool default
  std::uint64_t scale = 1;
  std::uint32_t period = 32;     // injector firing period (1/period per site)
  support::OracleMode oracle = support::OracleMode::kDigest;
  support::MachineConfig machine;
  /// Checkpoint/resume, sharing the sweep's `spt-sweep-v1` side-file
  /// format (harness/checkpoint.h): every finished cell is appended and
  /// flushed; on resume the last ok line per cell is reused and failed or
  /// missing cells re-run. A cell's key is its workload name plus
  /// "cell:<index>/seed:<fault_seed>", so a resumed file silently ignores
  /// lines from a different grid shape or base seed.
  std::string checkpoint_path;
  bool resume = false;
  /// Process isolation (supervisor.h): with supervisor.isolate set, phase
  /// 2 cells run in forked workers (sharing phase 1's traces via
  /// copy-on-write); crashes/hangs/corrupt replies become non-ok cells.
  SupervisorOptions supervisor;
};

/// One (workload, fault seed) cell. `status` is kOk when the cell's
/// machine run completed; a cell that threw (oracle divergence, budget,
/// internal error) or whose worker process failed under isolation is
/// reported with the corresponding status and diagnostic while the rest
/// of the campaign continues.
struct FaultCampaignCell {
  std::string benchmark;
  std::uint64_t fault_seed = 0;
  CellStatus status = CellStatus::kOk;
  std::string diagnostic;
  sim::FaultStats faults;
  std::uint64_t arch_digest = 0;        // machine's oracle stream digest
  std::uint64_t sequential_digest = 0;  // ground truth for the same trace
  std::uint64_t oracle_checks = 0;
  bool digest_match = false;
  /// First-divergence report from the architectural oracle
  /// (support::SptOracleDivergence): the trace position of the failed
  /// boundary check plus the register/memory diff of the first mismatched
  /// entries. Only meaningful when `diverged` is true.
  bool diverged = false;
  std::uint64_t divergence_pos = 0;
  std::string divergence_boundary;
  std::string divergence_diff;
  /// Supervisor containment data; attempts == 0 on the in-process path.
  WorkerDiagnostics worker;

  bool ok() const { return status == CellStatus::kOk; }
};

struct FaultCampaignResult {
  std::vector<FaultCampaignCell> cells;  // workload-major, seed-minor
  sim::FaultStats totals;               // ok cells only

  bool allDetectedOrBenign() const {
    return totals.escaped == 0 &&
           totals.detectedOrBenign() == totals.injected;
  }
  bool allDigestsMatch() const {
    for (const FaultCampaignCell& c : cells) {
      if (!c.digest_match) return false;
    }
    return true;
  }
  bool allCellsOk() const {
    for (const FaultCampaignCell& c : cells) {
      if (!c.ok()) return false;
    }
    return true;
  }
};

/// Runs the campaign over harness::defaultSuite().
FaultCampaignResult runFaultCampaign(const FaultCampaignOptions& opts = {});

/// Campaign checkpoint metric columns (harness/checkpoint.h line format):
/// injected, detected_by_net, detected_by_oracle, benign, escaped,
/// oracle_checks, arch_digest, sequential_digest, digest_match, diverged,
/// divergence_pos.
inline constexpr std::size_t kCampaignCheckpointMetrics = 11;

/// The campaign cell's checkpoint config key,
/// "cell:<index>/seed:<fault_seed>".
std::string campaignCellConfigKey(std::size_t cell_index,
                                  std::uint64_t fault_seed);

/// The checkpoint line for one finished campaign cell, exposed so the
/// sweep service appends to the same side files `sptc inject` writes.
CheckpointLine campaignCheckpointLine(const FaultCampaignCell& cell,
                                      std::size_t cell_index);

/// Inverse of campaignCheckpointLine: reconstructs a resumed cell from a
/// parsed checkpoint line (`line.metrics.size()` must be
/// kCampaignCheckpointMetrics) plus the benchmark/fault-seed identity the
/// caller derives from the cell index. The 11 metrics cover every
/// deterministic per-cell field writeFaultCampaignJson emits for a clean
/// cell (the divergence boundary/diff excerpt only exists for diverged
/// cells, matching `--resume`, which also re-runs those). Shared by
/// resume and the sweep service's journal recovery.
FaultCampaignCell campaignCellFromCheckpointLine(const CheckpointLine& line,
                                                 const std::string& benchmark,
                                                 std::uint64_t fault_seed);

/// Worker-side body of one campaign cell that owns its whole pipeline:
/// compiles and traces `benchmark` (a defaultSuite() workload name) in the
/// calling process, then runs the seeded fault cell exactly as
/// runFaultCampaign's phase 2 would. The sweep service's pooled workers
/// use this — they are forked before any request exists, so they cannot
/// share a parent's prepared traces; re-deriving them is deterministic,
/// and every JSON-visible field matches the batch campaign's. `cell_index`
/// positions the cell in the grid (fault_seed =
/// deriveSeed(opts.base_seed, cell_index)). An unknown benchmark or a
/// failed compile/trace becomes a kInternalError cell, not a throw.
FaultCampaignCell runFaultCampaignCellStandalone(
    const std::string& benchmark, std::size_t cell_index,
    const FaultCampaignOptions& opts);

/// Parent-side settle of one supervised campaign cell: decodes a kOk
/// outcome's payload (or synthesizes a failed cell from the tags and the
/// transport diagnostic) and attaches the worker diagnostics. Mirrors
/// sweepRowFromOutcome for the campaign path.
FaultCampaignCell campaignCellFromOutcome(const std::string& benchmark,
                                          std::uint64_t fault_seed,
                                          const Supervisor::Outcome& outcome);

/// {"totals":{...}, "all_detected_or_benign":b, "all_digests_match":b,
///  "all_cells_ok":b,
///  "cells":[{benchmark, fault_seed, status, injected, ..., digest_match,
///            divergence?{pos, boundary, diff}, worker?{...}}, ...]}.
/// Returns false on I/O failure.
bool writeFaultCampaignJson(const std::string& path,
                            const FaultCampaignResult& result);

}  // namespace spt::harness

// Process-isolated execution supervisor (fork-per-cell worker layer).
//
// PR 3's hardened sweep quarantines cells that *throw*; this layer
// contains cells that take the whole process down. Each cell runs in a
// forked worker; the worker serializes its result and writes it to a pipe
// as one versioned, length-prefixed, FNV-1a-checksummed frame (the
// trace_io v2 approach), then _exit()s. The parent is a single-threaded
// event loop — fork() never races other threads — that:
//
//  * keeps up to `jobs` workers in flight, placing results by submission
//    index so ordering guarantees match ParallelSweep;
//  * runs a watchdog enforcing a per-cell **wall-clock** deadline
//    (complementary to the simulated record/cycle budgets, which cannot
//    catch a hang in the host code itself) and SIGKILLs overdue workers;
//  * optionally applies RLIMIT_AS / RLIMIT_CPU to workers, so a runaway
//    allocation or CPU spin is bounded by the kernel even if the watchdog
//    is off;
//  * reaps every worker with wait4(), recording exit code, terminating
//    signal, and rusage; a worker that segfaults, aborts, OOMs, hangs, or
//    replies with bytes that fail frame validation lands in
//    CellStatus::kCrashed / kTimeout / kProtocolError with diagnostics
//    (including a hex dump of a corrupt reply's first bytes) while every
//    other cell keeps running;
//  * retries transport failures (crash/timeout/protocol) up to `retries`
//    extra attempts with exponential backoff and deterministic seeded
//    jitter — a pure function of (backoff_seed, cell, attempt), so test
//    and CI runs are reproducible;
//  * honors support::ChaosPlan, the deterministic sabotage hook that makes
//    designated workers crash/hang/garble on demand so every containment
//    path above is testable.
//
// On platforms without fork() the supervisor reports
// isolationSupported() == false and callers degrade to the existing
// in-process path (also selectable with --no-isolate).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/cell_status.h"
#include "support/chaos.h"

namespace spt::harness {

struct SupervisorOptions {
  /// Master switch consumed by runSweep / runFaultCampaign: false keeps
  /// the historical in-process path.
  bool isolate = false;
  /// Wall-clock deadline per worker *attempt*, enforced by the parent
  /// watchdog (SIGKILL past it). 0 = no deadline.
  double cell_timeout_seconds = 0.0;
  /// Extra attempts for transport failures (crashed / timeout / protocol
  /// error). Cell-level outcomes (ok, budget_exceeded, internal_error)
  /// are deterministic and never retried.
  std::uint32_t retries = 0;
  /// Retry backoff: base * 2^(attempt-2) * (1 + jitter), jitter in [0,1)
  /// drawn from Rng(deriveSeed(backoff_seed, cell * 64 + attempt)).
  double backoff_base_seconds = 0.25;
  std::uint64_t backoff_seed = 0xb0ff;
  /// Worker resource limits (0 = inherit). RLIMIT_AS bounds address space
  /// (an OOM becomes a contained bad_alloc or crash); RLIMIT_CPU bounds
  /// CPU seconds (SIGXCPU, reported as kTimeout).
  std::uint64_t rlimit_as_bytes = 0;
  std::uint64_t rlimit_cpu_seconds = 0;
  /// Max workers in flight. 0 = support::ThreadPool::defaultWorkerCount().
  std::size_t jobs = 0;
  /// Deterministic sabotage for testing the containment paths.
  support::ChaosPlan chaos;
};

class Supervisor {
 public:
  /// Transport-level outcome of one cell after retries resolved. kOk means
  /// a valid frame arrived and `payload` holds the worker's bytes (the
  /// cell's own status, possibly non-ok, is inside the payload);
  /// kInternalError means the worker itself reported a structured failure;
  /// other statuses are containment outcomes with empty payload.
  struct Outcome {
    CellStatus status = CellStatus::kOk;
    std::string diagnostic;  // transport diagnostic; empty when kOk
    WorkerDiagnostics worker;
    std::string payload;
  };

  /// Runs in the *worker* (after fork): produces the cell's serialized
  /// result. Exceptions escaping the producer are caught in the worker and
  /// reported as a structured kInternalError outcome.
  using Producer = std::function<std::string(std::size_t)>;

  /// Runs in the *parent* as each cell settles (after retries), in
  /// completion order — checkpoint appending hooks in here.
  using OnSettled = std::function<void(std::size_t, const Outcome&)>;

  explicit Supervisor(SupervisorOptions options);

  /// True when this platform can fork worker processes.
  static bool isolationSupported();

  /// Runs cells 0..n-1; outcomes land by cell index. Must only be called
  /// when isolationSupported().
  std::vector<Outcome> run(std::size_t n, const Producer& produce,
                           const OnSettled& on_settled = nullptr) const;

  const SupervisorOptions& options() const { return options_; }

  /// The deterministic backoff delay before retry `attempt` (2-based: the
  /// delay preceding the second attempt is backoffSeconds(cell, 2)).
  double backoffSeconds(std::size_t cell, std::uint32_t attempt) const;

 private:
  SupervisorOptions options_;
};

/// Frame codec, exposed for tests and for the worker side. A frame is:
///   magic "SPTW" | u32 version=1 | u8 kind (0 payload, 1 worker error)
///   | u64 length | bytes | u64 FNV-1a(kind, length, bytes)
std::string encodeSupervisorFrame(std::uint8_t kind,
                                  const std::string& payload);
/// Decodes a complete frame; returns false (with a reason) on a short,
/// corrupt, or version-mismatched reply.
bool decodeSupervisorFrame(const std::string& bytes, std::uint8_t* kind,
                           std::string* payload, std::string* error);

}  // namespace spt::harness

// Process-isolated execution supervisor (fork-per-cell and warm-pool
// worker layers).
//
// PR 3's hardened sweep quarantines cells that *throw*; this layer
// contains cells that take the whole process down. Two worker models
// share one frame protocol and one containment policy:
//
//  * **fork-per-cell** (SPTW v1): each cell runs in a freshly forked
//    worker; the worker serializes its result and writes it to a pipe as
//    one versioned, length-prefixed, FNV-1a-checksummed frame (the
//    trace_io v2 approach), then _exit()s.
//  * **warm pool** (SPTW v2, `SupervisorOptions::pool`): `jobs` workers
//    are forked once per run and live for the whole sweep. The parent
//    dispatches cell indices to idle workers as request frames over the
//    same checksummed pipes; each worker loops `recv request → produce →
//    reply`, re-arming its per-cell RLIMIT_CPU window before every cell.
//    This removes the fork + pipeline re-setup cost per cell — the
//    dominant overhead on small cells (bench_supervisor_overhead) — and
//    is the substrate for an `sptc serve` daemon.
//
// In both models the parent is a single-threaded poll() event loop —
// fork() never races other threads — that:
//
//  * keeps up to `jobs` workers in flight, placing results by submission
//    index so ordering guarantees match ParallelSweep;
//  * runs a watchdog enforcing a per-cell **wall-clock** deadline
//    (complementary to the simulated record/cycle budgets, which cannot
//    catch a hang in the host code itself) and SIGKILLs overdue workers;
//  * optionally applies RLIMIT_AS / RLIMIT_CPU to workers, so a runaway
//    allocation or CPU spin is bounded by the kernel even if the watchdog
//    is off (pooled workers re-arm RLIMIT_CPU per cell, since the limit
//    is cumulative over the process);
//  * reaps every dead worker with wait4(), recording exit code,
//    terminating signal, and rusage; a worker that segfaults, aborts,
//    OOMs, hangs, or replies with bytes that fail frame validation lands
//    in CellStatus::kCrashed / kTimeout / kProtocolError with diagnostics
//    (including a hex dump of a corrupt reply's first bytes) while every
//    other cell keeps running — under the pool, only the dead worker is
//    respawned and the rest of the pool keeps draining the queue;
//  * retries transport failures (crash/timeout/protocol) up to `retries`
//    extra attempts with exponential backoff and deterministic seeded
//    jitter — a pure function of (backoff_seed, cell, attempt), so test
//    and CI runs are reproducible;
//  * honors support::ChaosPlan, the deterministic sabotage hook that makes
//    designated (cell, attempt) pairs crash/hang/garble on demand —
//    pooled workers consult the plan per dispatched request, so chaos
//    semantics are identical across both worker models.
//
// On platforms without fork() the supervisor reports
// isolationSupported() == false and callers degrade to the existing
// in-process path (also selectable with --no-isolate).
#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/cell_status.h"
#include "support/chaos.h"

namespace spt::harness {

struct SupervisorOptions {
  /// Master switch consumed by runSweep / runFaultCampaign: false keeps
  /// the historical in-process path.
  bool isolate = false;
  /// Warm worker pool: fork `jobs` long-lived workers once and dispatch
  /// cells to them over SPTW v2 request frames instead of forking one
  /// worker per cell. Containment, retry, chaos, checkpoint, and JSON
  /// output semantics are identical to fork-per-cell (CI diffs the
  /// filtered documents byte-for-byte); only host_ timings differ.
  bool pool = false;
  /// Wall-clock deadline per worker *attempt*, enforced by the parent
  /// watchdog (SIGKILL past it). 0 = no deadline.
  double cell_timeout_seconds = 0.0;
  /// Extra attempts for transport failures (crashed / timeout / protocol
  /// error). Cell-level outcomes (ok, budget_exceeded, internal_error)
  /// are deterministic and never retried.
  std::uint32_t retries = 0;
  /// Retry backoff: base * 2^min(attempt-2, 62) * (1 + jitter), jitter in
  /// [0,1) drawn from Rng(deriveSeed(deriveSeed(backoff_seed, cell),
  /// attempt)) — cell and attempt are mixed as separate words, so no two
  /// (cell, attempt) pairs share a jitter stream.
  double backoff_base_seconds = 0.25;
  std::uint64_t backoff_seed = 0xb0ff;
  /// Worker resource limits (0 = inherit). RLIMIT_AS bounds address space
  /// (an OOM becomes a contained bad_alloc or crash); RLIMIT_CPU bounds
  /// CPU seconds per cell (SIGXCPU, reported as kTimeout) — pooled
  /// workers re-arm it before each cell relative to CPU already spent.
  std::uint64_t rlimit_as_bytes = 0;
  std::uint64_t rlimit_cpu_seconds = 0;
  /// Max workers in flight. 0 = support::ThreadPool::defaultWorkerCount().
  std::size_t jobs = 0;
  /// Deterministic sabotage for testing the containment paths.
  support::ChaosPlan chaos;
  /// Cooperative graceful-interrupt flag, set from a SIGINT/SIGTERM
  /// handler. When non-null and nonzero the supervisor stops dispatching:
  /// in-flight workers finish (and checkpoint) normally, every
  /// undispatched cell settles as kInternalError with an "interrupted"
  /// diagnostic, and run() returns — so an operator ^C never tears a
  /// checkpoint line and `--resume` re-runs exactly the unfinished cells.
  const volatile std::sig_atomic_t* stop = nullptr;
};

class Supervisor {
 public:
  /// Transport-level outcome of one cell after retries resolved. kOk means
  /// a valid frame arrived and `payload` holds the worker's bytes (the
  /// cell's own status, possibly non-ok, is inside the payload);
  /// kInternalError means the worker itself reported a structured failure;
  /// other statuses are containment outcomes with empty payload.
  struct Outcome {
    CellStatus status = CellStatus::kOk;
    std::string diagnostic;  // transport diagnostic; empty when kOk
    WorkerDiagnostics worker;
    std::string payload;
  };

  /// Worker-process accounting for one run. Under fork-per-cell,
  /// `workers_spawned` counts every fork (one per attempt);
  /// `workers_respawned` stays zero. Under the pool, `workers_spawned`
  /// counts the initial pool fill plus respawns and `workers_respawned`
  /// counts replacements of dead workers — the pooled chaos tests assert
  /// exactly one respawn per sabotaged worker.
  struct PoolStats {
    std::size_t workers_spawned = 0;
    std::size_t workers_respawned = 0;
  };

  /// Runs in the *worker* (after fork): produces the cell's serialized
  /// result. Exceptions escaping the producer are caught in the worker and
  /// reported as a structured kInternalError outcome. Under the pool the
  /// same worker process calls this for many cells in sequence.
  using Producer = std::function<std::string(std::size_t)>;

  /// Runs in the *parent* as each cell settles (after retries), in
  /// completion order — checkpoint appending hooks in here.
  using OnSettled = std::function<void(std::size_t, const Outcome&)>;

  explicit Supervisor(SupervisorOptions options);

  /// True when this platform can fork worker processes.
  static bool isolationSupported();

  /// Runs cells 0..n-1; outcomes land by cell index. Must only be called
  /// when isolationSupported(). `stats`, when non-null, receives the
  /// worker-process accounting for this run.
  std::vector<Outcome> run(std::size_t n, const Producer& produce,
                           const OnSettled& on_settled = nullptr,
                           PoolStats* stats = nullptr) const;

  const SupervisorOptions& options() const { return options_; }

  /// The deterministic backoff delay before retry `attempt` (2-based: the
  /// delay preceding the second attempt is backoffSeconds(cell, 2)).
  double backoffSeconds(std::size_t cell, std::uint32_t attempt) const;

 private:
  SupervisorOptions options_;

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
  std::vector<Outcome> runForked(std::size_t n, const Producer& produce,
                                 const OnSettled& on_settled,
                                 PoolStats* stats) const;
  std::vector<Outcome> runPooled(std::size_t n, const Producer& produce,
                                 const OnSettled& on_settled,
                                 PoolStats* stats) const;
#endif
};

/// Parent-side handle on the warm worker pool, factored out of the
/// original batch-only runPooled loop so a long-lived event loop — the
/// `sptc serve` sweep service — can drive dispatch itself. The pool owns
/// worker processes, pipes, watchdog deadlines, death classification, and
/// respawn; it deliberately does NOT own retry policy or result
/// aggregation, which stay with the caller (Supervisor::runPooled is
/// reimplemented on top, so the batch path and the service share one
/// containment implementation and the byte-determinism tests cover both).
///
/// Two dispatch modes share the worker body:
///  * **index mode** (SPTW v2 request frames): `Job::id` is a cell index
///    fed to the pool's index producer — the pre-existing batch
///    discipline, where every worker can already see the whole grid.
///  * **spec mode** (SPTW v3 spec-request frames, `Job::has_spec`): the
///    work itself crosses the pipe as opaque spec bytes handed to the
///    spec producer; `id` is an opaque token echoed back on the reply.
///    This is what a service needs — its workers are forked before any
///    client request exists, so cells cannot be indices into parent
///    state. The chaos action is resolved by the *caller* per job and
///    carried in the frame (the worker cannot consult a plan keyed by
///    request-local cell indices it never sees).
///
/// Only meaningful where Supervisor::isolationSupported(); construction
/// throws elsewhere. Callers should hold a ScopedIgnoreSigpipe (or ignore
/// SIGPIPE themselves) around dispatch, as runPooled does.
class WorkerPool {
 public:
  struct Job {
    std::uint64_t id = 0;
    std::uint32_t attempt = 1;
    bool has_spec = false;
    std::string spec;
    /// Spec mode only: sabotage the worker performs for this job.
    support::ChaosAction chaos = support::ChaosAction::kNone;
  };

  /// One finished attempt — a reply, a death, or a watchdog timeout —
  /// with the same transport classification runPooled applies. Whether to
  /// retry is the caller's decision.
  struct Settled {
    std::uint64_t id = 0;
    std::uint32_t attempt = 1;
    Supervisor::Outcome outcome;
  };

  /// Runs in a pooled worker on a v3 spec request: spec bytes in,
  /// serialized result out.
  using SpecProducer = std::function<std::string(const std::string&)>;

  WorkerPool(SupervisorOptions options, Supervisor::Producer produce,
             SpecProducer produce_spec = nullptr);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Consulted when a worker dies: a replacement is forked only while the
  /// policy returns true (default: always). Batch callers turn it off
  /// once every cell settled; a draining service turns it off on SIGTERM.
  void setRespawnPolicy(std::function<bool()> policy);

  /// Runs in a freshly forked worker child (after the pool closed sibling
  /// pipe ends, before the request loop): a service closes its listening
  /// and client sockets here so workers never hold them open.
  void setChildSetup(std::function<void()> setup);

  /// Tops the pool up to `workers` processes; false if a spawn failed
  /// (the pool keeps whatever it managed to fork).
  bool ensure(std::size_t workers);

  std::size_t workerCount() const;
  std::size_t idleWorkers() const;
  std::size_t busyWorkers() const;
  std::size_t workersSpawned() const;
  std::size_t workersRespawned() const;
  /// errno of the most recent failed pipe()/fork() inside a spawn.
  int lastSpawnErrno() const;

  /// Writes the job's request frame to an idle worker. A dead request
  /// pipe replaces that worker and tries the next idle one; false means
  /// no idle worker could take the job (none existed, or every candidate
  /// died and respawn is off/failing) — the job was not sent and no
  /// attempt was burned.
  bool dispatch(const Job& job);

  /// Reply fds of busy workers, for the caller's poll set. Idle workers
  /// have no fd here — a dead idle worker surfaces at the next dispatch.
  std::vector<int> busyReplyFds() const;
  /// Nearest watchdog deadline among busy workers; false when none.
  bool nextDeadline(std::chrono::steady_clock::time_point* out) const;

  /// Drains every busy worker's reply stream (non-blocking) and runs the
  /// watchdog; each finished attempt is appended to `settled`.
  void service(std::vector<Settled>& settled);

  /// EOFs the request pipes (idle workers _exit(0) on their own) and
  /// reaps every worker. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- SPTW frame protocol (exposed for tests and the worker side) ----------
//
// A frame is:
//   magic "SPTW" | u32 version | u8 kind | u64 length | bytes
//   | u64 FNV-1a(kind, length, bytes)
//
// Version 1 (fork-per-cell, one frame per worker lifetime) carries only
// reply kinds 0-1. Version 2 (warm pool) adds the request and cell-tagged
// reply kinds. Version 3 (external dispatch / sweep service) adds the
// spec-request kind, whose payload carries the work itself instead of a
// cell index. The decoder accepts all versions and validates the kind
// against the version, so one-shot v1 workers keep decoding unchanged and
// a v1/v2 frame can never smuggle a spec request.

inline constexpr std::uint32_t kSupervisorFrameV1 = 1;
inline constexpr std::uint32_t kSupervisorFrameV2 = 2;
inline constexpr std::uint32_t kSupervisorFrameV3 = 3;

inline constexpr std::uint8_t kFrameKindPayload = 0;      // worker reply (v1+)
inline constexpr std::uint8_t kFrameKindWorkerError = 1;  // worker reply (v1+)
inline constexpr std::uint8_t kFrameKindRequest = 2;      // parent->worker (v2)
inline constexpr std::uint8_t kFrameKindPooledReply = 3;  // worker reply (v2)
inline constexpr std::uint8_t kFrameKindPooledError = 4;  // worker reply (v2)
inline constexpr std::uint8_t kFrameKindSpecRequest = 5;  // parent->worker (v3)

/// Encodes one frame. `kind` must be valid for `version` (v1 carries only
/// kinds 0-1).
std::string encodeSupervisorFrame(std::uint8_t kind,
                                  const std::string& payload,
                                  std::uint32_t version = kSupervisorFrameV1);
/// Decodes a complete frame of either protocol version; returns false
/// (with a reason) on a short, corrupt, version-mismatched, or
/// kind-invalid-for-version reply.
bool decodeSupervisorFrame(const std::string& bytes, std::uint8_t* kind,
                           std::string* payload, std::string* error);

/// Incremental framing over a pooled worker's byte stream.
enum class FrameScan {
  kNeedMore,  // the buffer holds a valid but incomplete frame prefix
  kFrame,     // buffer[0..*frame_bytes) is one complete frame
  kCorrupt,   // the buffer can never become a valid frame (bad magic,
              // unsupported version, or oversized length)
};

/// Scans the front of `buf` for one complete frame without copying.
/// Corruption inside the payload (checksum) is only detectable by
/// decodeSupervisorFrame on the completed slice.
FrameScan scanSupervisorFrame(const std::string& buf,
                              std::size_t* frame_bytes, std::string* error);

/// Request-frame payload: which cell a pooled worker should produce, and
/// the (1-based) attempt number — the worker needs the attempt to consult
/// the chaos plan exactly as a one-shot worker would.
std::string encodePoolRequest(std::uint64_t cell, std::uint32_t attempt);
bool decodePoolRequest(const std::string& payload, std::uint64_t* cell,
                       std::uint32_t* attempt);

/// Pooled-reply payload prefix: the cell being answered (echoed back so
/// the parent can detect a desynchronized stream) plus the worker's
/// self-reported per-cell rusage (getrusage deltas; max RSS normalized to
/// KB). The producer's bytes follow as `inner`.
struct PoolReplyHeader {
  std::uint64_t cell = 0;
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  std::int64_t max_rss_kb = 0;
};
std::string encodePoolReply(const PoolReplyHeader& header,
                            const std::string& inner);
bool decodePoolReply(const std::string& payload, PoolReplyHeader* header,
                     std::string* inner);

/// Spec-request payload (SPTW v3, WorkerPool spec mode): an opaque token
/// echoed back in the reply's PoolReplyHeader.cell, the (1-based) attempt,
/// the chaos action the worker must perform (resolved by the dispatcher —
/// a service worker never sees the request-local cell index a ChaosPlan is
/// keyed by), and the spec bytes the worker's SpecProducer consumes.
/// decodePoolSpecRequest rejects an out-of-range action byte.
std::string encodePoolSpecRequest(std::uint64_t id, std::uint32_t attempt,
                                  support::ChaosAction chaos,
                                  const std::string& spec);
bool decodePoolSpecRequest(const std::string& payload, std::uint64_t* id,
                           std::uint32_t* attempt,
                           support::ChaosAction* chaos, std::string* spec);

}  // namespace spt::harness

// Suite-level experiment driver: the ten SPECint2000-analog workloads with
// their per-benchmark compiler options (notably gap's raised body-size
// limit of 2500 instructions — paper Section 5.3).
#pragma once

#include "harness/experiment.h"
#include "workloads/workloads.h"

namespace spt::harness {

struct SuiteEntry {
  workloads::Workload workload;
  compiler::CompilerOptions copts;
};

/// The ten benchmarks in figure order with their default compiler options.
std::vector<SuiteEntry> defaultSuite();

/// Runs the full pipeline for one entry. With non-null `remarks`, fills
/// the compiler's structured per-loop decision log (spt/remarks.h). With
/// non-null `trace_cache`, the baseline and SPT traces come from the
/// shared mmap-backed store (harness/trace_cache.h) keyed by workload
/// name and scale — results are identical either way.
ExperimentResult runSuiteEntry(const SuiteEntry& entry,
                               const support::MachineConfig& mconfig = {},
                               std::uint64_t scale = 1,
                               compiler::CompilationRemarks* remarks = nullptr,
                               TraceCache* trace_cache = nullptr);

}  // namespace spt::harness

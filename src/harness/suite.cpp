#include "harness/suite.h"

namespace spt::harness {

std::vector<SuiteEntry> defaultSuite() {
  std::vector<SuiteEntry> suite;
  for (workloads::Workload& w : workloads::specSuite()) {
    SuiteEntry entry;
    if (w.name == "gap") {
      // Paper Section 5.3: "For gap, because of one hot loop mentioned
      // above, we considered loops with average loop body size less than
      // 2500 instructions."
      entry.copts.max_avg_body_size = 2500.0;
    }
    entry.workload = std::move(w);
    suite.push_back(std::move(entry));
  }
  return suite;
}

ExperimentResult runSuiteEntry(const SuiteEntry& entry,
                               const support::MachineConfig& mconfig,
                               std::uint64_t scale,
                               compiler::CompilationRemarks* remarks,
                               TraceCache* trace_cache) {
  if (trace_cache != nullptr) {
    return runSptExperiment(entry.workload.build(scale), *trace_cache,
                            entry.workload.name + ".x" +
                                std::to_string(scale),
                            entry.copts, mconfig, {}, remarks);
  }
  return runSptExperiment(entry.workload.build(scale), entry.copts, mconfig,
                          {}, remarks);
}

}  // namespace spt::harness

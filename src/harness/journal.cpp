#include "harness/journal.h"

#include <fstream>
#include <map>
#include <sstream>

#include "harness/checkpoint.h"

namespace spt::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h;
}

constexpr char kHexDigits[] = "0123456789abcdef";

std::string toHex(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool fromHex(const std::string& hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  out->clear();
  out->reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hexNibble(hex[i]);
    const int lo = hexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string checksumHex(const std::string& body) {
  const std::uint64_t h = fnv1a(body);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHexDigits[(h >> (4 * i)) & 0xf];
  }
  return out;
}

bool parseU64(const std::string& field, std::uint64_t* out) {
  if (field.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : field) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

std::string formatJournalRecord(const JournalRecord& record) {
  std::ostringstream os;
  os << kJournalTag << '\t'
     << (record.kind == JournalRecord::Kind::kAdmit ? "admit" : "settle")
     << '\t' << record.id;
  if (record.kind == JournalRecord::Kind::kAdmit) {
    os << '\t' << escapeCheckpointField(record.token) << '\t'
       << escapeCheckpointField(record.checkpoint_path) << '\t'
       << toHex(record.request_bytes);
  } else {
    os << '\t' << record.outcome;
  }
  const std::string body = os.str();
  return body + '\t' + checksumHex(body);
}

bool parseJournalLine(const std::string& line, JournalRecord* out,
                      std::string* error) {
  const std::size_t tab = line.rfind('\t');
  if (tab == std::string::npos) return fail(error, "no checksum column");
  const std::string body = line.substr(0, tab);
  const std::string checksum = line.substr(tab + 1);
  if (checksum != checksumHex(body)) {
    return fail(error, "checksum mismatch (expected " + checksumHex(body) +
                           ", found " + checksum + ")");
  }
  std::istringstream is(body);
  std::string field;
  const auto next = [&](std::string& dst) {
    return static_cast<bool>(std::getline(is, dst, '\t'));
  };
  if (!next(field)) return fail(error, "empty record");
  if (field != kJournalTag) {
    return fail(error, "unknown journal version tag '" + field + "'");
  }
  if (!next(field)) return fail(error, "missing record kind");
  if (field == "admit") {
    out->kind = JournalRecord::Kind::kAdmit;
  } else if (field == "settle") {
    out->kind = JournalRecord::Kind::kSettle;
  } else {
    return fail(error, "unknown record kind '" + field + "'");
  }
  if (!next(field) || !parseU64(field, &out->id)) {
    return fail(error, "bad request id");
  }
  if (out->kind == JournalRecord::Kind::kAdmit) {
    if (!next(field)) return fail(error, "missing token");
    out->token = unescapeCheckpointField(field);
    if (!next(field)) return fail(error, "missing checkpoint binding");
    out->checkpoint_path = unescapeCheckpointField(field);
    if (!next(field) || !fromHex(field, &out->request_bytes)) {
      return fail(error, "bad request-bytes hex");
    }
    out->outcome.clear();
  } else {
    if (!next(field) ||
        (field != "done" && field != "cancelled" && field != "deadline")) {
      return fail(error, "bad settle outcome");
    }
    out->outcome = field;
    out->token.clear();
    out->checkpoint_path.clear();
    out->request_bytes.clear();
  }
  if (next(field)) return fail(error, "trailing fields after record");
  return true;
}

JournalReplay replayJournal(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) return replay;
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  // Same torn-tail rule as loadCheckpoint: only '\n'-terminated records
  // are trusted. A truncated hex column can still decode to a (shorter)
  // valid request, so the fragment is dropped even when it would parse.
  std::size_t complete = text.size();
  while (complete > 0 && text[complete - 1] != '\n') --complete;
  replay.valid_bytes = complete;
  if (complete != text.size()) {
    replay.torn_tail = true;
    replay.warnings.push_back(
        "journal " + path + ": dropped torn trailing record at byte offset " +
        std::to_string(complete) + " (" +
        std::to_string(text.size() - complete) +
        " bytes without a terminating newline)");
  }
  // Admission order is file order; a settle erases its admit.
  std::vector<JournalRecord> admits;
  std::map<std::uint64_t, std::size_t> admit_index;  // id -> slot in admits
  std::size_t pos = 0;
  while (pos < complete) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol >= complete) eol = complete;
    const std::size_t offset = pos;
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    JournalRecord record;
    std::string why;
    if (!parseJournalLine(line, &record, &why)) {
      ++replay.records_skipped;
      replay.warnings.push_back("journal " + path + ": skipped record at " +
                                "byte offset " + std::to_string(offset) +
                                ": " + why);
      continue;
    }
    ++replay.records_replayed;
    if (record.id >= replay.next_id) replay.next_id = record.id + 1;
    if (record.kind == JournalRecord::Kind::kAdmit) {
      // Last admit wins for a duplicated id (should not happen; tolerate).
      const auto it = admit_index.find(record.id);
      if (it != admit_index.end()) {
        admits[it->second] = std::move(record);
      } else {
        admit_index[record.id] = admits.size();
        admits.push_back(std::move(record));
      }
    } else {
      const auto it = admit_index.find(record.id);
      if (it == admit_index.end()) {
        replay.warnings.push_back(
            "journal " + path + ": settle for unknown request id " +
            std::to_string(record.id) + " at byte offset " +
            std::to_string(offset));
        continue;
      }
      // Mark settled: clear the slot; order of survivors is preserved.
      admits[it->second].request_bytes.clear();
      admits[it->second].token.clear();
      admits[it->second].id = 0;
      admits[it->second].outcome = "settled";
      admit_index.erase(it);
      ++replay.requests_settled;
    }
  }
  for (auto& admit : admits) {
    if (admit.outcome == "settled") continue;
    replay.unsettled.push_back(std::move(admit));
  }
  return replay;
}

}  // namespace spt::harness

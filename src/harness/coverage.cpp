#include "harness/coverage.h"

#include <algorithm>
#include <limits>

#include "interp/interpreter.h"
#include "profile/profiler.h"
#include "support/check.h"

namespace spt::harness {

namespace {
constexpr std::int64_t kNotInLoop = -1;
}

CoverageSink::CoverageSink(
    const std::unordered_map<ir::StaticId, profile::LoopStats>& loop_stats)
    : loop_stats_(loop_stats) {}

void CoverageSink::onRecord(const trace::Record& record) {
  switch (record.kind) {
    case trace::RecordKind::kIterBegin: {
      if (!open_.empty() && open_.back().header_sid == record.sid &&
          open_.back().frame == record.frame) {
        return;  // subsequent iteration of the already-open loop
      }
      const auto it = loop_stats_.find(record.sid);
      const auto size =
          it == loop_stats_.end()
              ? std::numeric_limits<std::int64_t>::max()
              : static_cast<std::int64_t>(it->second.avgBodySize() + 0.5);
      const std::int64_t outer_min =
          open_.empty() ? std::numeric_limits<std::int64_t>::max()
                        : open_.back().min_size;
      open_.push_back({record.sid, record.frame, std::min(size, outer_min)});
      return;
    }
    case trace::RecordKind::kLoopExit:
      SPT_CHECK_MSG(!open_.empty() && open_.back().header_sid == record.sid,
                    "unbalanced loop exit in coverage sink");
      open_.pop_back();
      return;
    case trace::RecordKind::kInstr:
      ++total_;
      hist_.add(open_.empty() ? kNotInLoop : open_.back().min_size);
      return;
  }
}

double CoverageSink::coverageUpTo(std::int64_t limit) const {
  if (total_ == 0) return 0.0;
  // kNotInLoop (-1) sorts below any real size; exclude it by subtracting.
  const std::uint64_t not_in_loop = hist_.weightOf(kNotInLoop);
  const std::uint64_t upto = hist_.cumulativeWeightUpTo(limit);
  return static_cast<double>(upto - std::min(upto, not_in_loop)) /
         static_cast<double>(total_);
}

CoverageResult measureLoopCoverage(ir::Module& module) {
  if (!module.finalized()) module.finalize();

  // Pass 1: loop statistics (average body sizes).
  interp::ProgramContext ctx(module);
  profile::ProfileData stats;
  {
    interp::Memory memory;
    profile::Profiler profiler(module);
    interp::Interpreter interp(ctx, memory, profiler);
    interp.runMain();
    stats = profiler.take();
  }

  // Pass 2: per-instruction binning by min enclosing avg body size.
  CoverageSink sink(stats.loops);
  {
    interp::Memory memory;
    interp::Interpreter interp(ctx, memory, sink);
    interp.runMain();
  }

  CoverageResult result;
  // Strip the not-in-loop bin into the total only.
  result.total_instrs = sink.totalInstrs();
  for (const auto& [key, weight] : sink.histogram().bins()) {
    if (key >= 0) result.histogram.add(key, weight);
  }
  return result;
}

}  // namespace spt::harness

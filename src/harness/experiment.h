// End-to-end experiment harness.
//
// Wires the full pipeline the paper's evaluation uses (Section 5.1):
// compile a source module two ways (baseline = untouched; SPT = two-pass
// cost-driven speculative parallelization), trace both sequential
// executions through the interpreter, and simulate the baseline trace on
// one core and the SPT trace on the two-pipeline SPT machine.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/trace_cache.h"
#include "interp/interpreter.h"
#include "profile/profiler.h"
#include "sim/baseline.h"
#include "sim/spt_machine.h"
#include "spt/driver.h"

namespace spt::harness {

/// ProfileRunner that interprets the module's main function.
class InterpProfileRunner final : public compiler::ProfileRunner {
 public:
  explicit InterpProfileRunner(std::vector<std::int64_t> args = {})
      : args_(std::move(args)) {}

  profile::ProfileData run(
      const ir::Module& module,
      const std::unordered_set<ir::StaticId>& value_candidates) override;

 private:
  std::vector<std::int64_t> args_;
};

struct TracedRun {
  trace::TraceBuffer trace;
  interp::RunResult result;
};

/// Interprets `module`'s main function, collecting the full trace.
/// Finalizes the module first if needed. A non-zero `max_records` caps the
/// interpreted instruction count (support::SptBudgetExceeded past it).
TracedRun traceProgram(ir::Module& module,
                       std::vector<std::int64_t> args = {},
                       std::uint64_t max_records = 0);

struct ExperimentResult {
  compiler::SptPlan plan;
  interp::RunResult baseline_run;
  interp::RunResult spt_run;
  sim::MachineResult baseline;
  sim::MachineResult spt;

  double programSpeedup() const {
    return sim::speedupOf(baseline.cycles, spt.cycles);
  }
};

/// Runs the whole pipeline on `module` (taken by value: the experiment
/// compiles a copy and leaves the caller's module untouched). With
/// non-null `remarks`, fills the compiler's structured per-loop decision
/// log (spt/remarks.h) — the experiment consumes the same plan, so
/// results are unchanged by construction.
ExperimentResult runSptExperiment(
    ir::Module module, const compiler::CompilerOptions& copts = {},
    const support::MachineConfig& mconfig = {},
    std::vector<std::int64_t> args = {},
    compiler::CompilationRemarks* remarks = nullptr);

/// Shared-trace variant: identical results, but the baseline and SPT
/// traces come from `cache` as mmap-backed v3 files instead of being
/// re-interpreted per call. `key_prefix` must identify the program and
/// its scale (e.g. "gzip.x2"); the cache key additionally folds in the
/// run arguments, the trace budget, and — for the SPT trace — the
/// compilation plan's fingerprint, so distinct compiler options never
/// collide. On a cache hit the interpreter never runs: the traced run's
/// return value and memory hash are recovered from the v3 meta words
/// (baseline_run/spt_run.dynamic_instrs is recomputed from the trace).
/// `cache` must outlive nothing here — machines are torn down before
/// return — but the usual rule applies to callers holding views.
ExperimentResult runSptExperiment(
    ir::Module module, TraceCache& cache, const std::string& key_prefix,
    const compiler::CompilerOptions& copts = {},
    const support::MachineConfig& mconfig = {},
    std::vector<std::int64_t> args = {},
    compiler::CompilationRemarks* remarks = nullptr);

}  // namespace spt::harness

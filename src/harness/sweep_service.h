// The resident sweep service behind `sptc serve` (docs/ROBUSTNESS.md
// "Sweep service").
//
// A single SweepService process listens on a Unix-domain socket and
// multiplexes a stream of sweep / campaign requests from many concurrent
// clients over one warm worker pool (harness::WorkerPool in spec-dispatch
// mode). The wire protocol, "SPTS" v1, reuses the SPTW frame discipline —
// length-prefixed, versioned, FNV-1a-checksummed frames (support/wire.h)
// — with a request/progress/result/done/error/status vocabulary:
//
//   client -> service   kRequest        one sweep/campaign/echo request
//                       kStatusRequest  service introspection
//   service -> client   kProgress       {done, total} after each cell
//                       kBusy           admission refused; retry_after hint
//                       kResult         one finished cell (full row bytes)
//                       kDone           request complete
//                       kError          request rejected (bad spec, ...)
//                       kStatus         JSON status document
//                       kAttached       (v2) token matched an existing
//                                       request; settled results replayed
//
// Scheduling and robustness properties (exercised by sweep_service_test
// and the CI soak):
//
//  * **fair round-robin**: one cell per ready client per scheduling pass,
//    so a 640-cell campaign cannot starve a 10-cell sweep that arrived
//    later;
//  * **bounded admission**: a request whose cells would push the total
//    queued work over `max_queue` is refused with a kBusy frame carrying
//    a retry_after hint — the service never buffers unboundedly;
//  * **per-request deadlines** layered on the per-cell watchdog: when a
//    request's deadline passes, its still-queued cells settle as timeout
//    rows immediately; cells already on workers run on under the cell
//    watchdog and still deliver;
//  * **graceful degradation**: a dying pooled worker fails only its
//    in-flight cell (the pool respawns a replacement); a disconnecting
//    client cancels only its own queued cells; client-side sabotage
//    (support::ClientChaosPlan: disconnect / garbage / slow-reader) never
//    affects other clients' results — which CI proves by diffing the
//    surviving clients' JSON against a non-serve baseline;
//  * **drain on SIGTERM/SIGINT** (`SweepServiceOptions::stop`): stop
//    accepting, fail still-queued cells as interrupted, let in-flight
//    cells finish and deliver, flush the checkpoint, reap every worker,
//    unlink the socket, exit 0.
//
// Byte-determinism contract: a sweep/campaign submitted through the
// service produces rows/cells field-for-field identical to
// `sptc sweep --pool` / `sptc inject --pool` for the same grid (the
// filtered JSON documents are byte-identical; only host_ fields and
// worker diagnostics differ), because workers on both paths run the same
// cell bodies (produceSweepCellPayload / runFaultCampaignCellStandalone)
// and parents settle through the same decode helpers.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/fault_campaign.h"
#include "harness/parallel_sweep.h"
#include "support/chaos.h"

namespace spt::harness {

// ---- SPTS v1 frames -------------------------------------------------------

inline constexpr char kServiceFrameMagic[4] = {'S', 'P', 'T', 'S'};
inline constexpr std::uint32_t kServiceFrameV1 = 1;
/// SPTS v2 adds the idempotency-token request payload and the kAttached
/// reply. v1 negotiation is preserved: a v1 client's frames decode and are
/// answered with v1 frames; a v2 frame with a v1-only kind is invalid.
inline constexpr std::uint32_t kServiceFrameV2 = 2;

inline constexpr std::uint8_t kServiceFrameRequest = 0;
inline constexpr std::uint8_t kServiceFrameProgress = 1;
inline constexpr std::uint8_t kServiceFrameBusy = 2;
inline constexpr std::uint8_t kServiceFrameResult = 3;
inline constexpr std::uint8_t kServiceFrameDone = 4;
inline constexpr std::uint8_t kServiceFrameError = 5;
inline constexpr std::uint8_t kServiceFrameStatusRequest = 6;
inline constexpr std::uint8_t kServiceFrameStatus = 7;
/// v2 only, service -> client: the request's idempotency token matched a
/// live or journal-recovered request; every already-settled result is
/// replayed on this connection, then the stream continues live.
inline constexpr std::uint8_t kServiceFrameAttached = 8;
inline constexpr std::uint8_t kServiceFrameMaxKind = kServiceFrameStatus;
inline constexpr std::uint8_t kServiceFrameMaxKindV2 = kServiceFrameAttached;

/// One client request. The grid is described, not enumerated: the service
/// and its workers rebuild the cases through buildSuiteSweepCases /
/// defaultSuite(), which is what keeps a submitted grid identical to the
/// one-shot CLI's.
struct ServiceRequest {
  enum class Kind : std::uint8_t {
    kSweep = 0,     // suite sweep rows under machine/copts/scale
    kCampaign = 1,  // fault campaign over the (filtered) suite
    kEcho = 2,      // echo_cells trivial cells (bench / protocol tests)
  };
  Kind kind = Kind::kSweep;
  std::uint64_t scale = 1;
  support::MachineConfig machine;
  compiler::CompilerOptions copts;
  /// Workload-name filter; empty = the whole suite. Unknown names are
  /// rejected with a kError frame.
  std::vector<std::string> benchmarks;
  /// Thread-count grid axis for kSweep (buildSuiteSweepCases): empty keeps
  /// the plain single-config grid; out-of-range values (0 or >
  /// support::kMaxSpecThreads) are rejected with a kError frame.
  std::vector<std::uint32_t> spec_threads;
  // Campaign knobs (kCampaign only).
  std::uint64_t seeds = 8;
  std::uint64_t base_seed = 0x5eed;
  std::uint32_t period = 32;
  support::OracleMode oracle = support::OracleMode::kDigest;
  // Echo knobs (kEcho only).
  std::uint64_t echo_cells = 0;
  std::string echo_payload;
  /// Whole-request wall-clock deadline in seconds (0 = none), measured
  /// from admission.
  double deadline_seconds = 0.0;
  /// Worker sabotage for this request's cells, keyed by request-local
  /// cell index. Refused unless the service runs with `allow_chaos`.
  support::ChaosPlan chaos;
};

std::string encodeServiceRequest(const ServiceRequest& req);
bool decodeServiceRequest(const std::string& payload, ServiceRequest* req);

/// SPTS v2 request payload: the v1 request bytes followed by a
/// client-supplied idempotency token. The token is *not* part of the v1
/// request encoding (journal records and request-equality checks use the
/// tokenless bytes), so a v2 resubmission with the same token and grid
/// attaches to the original request instead of re-running it.
std::string encodeServiceRequestWithToken(const ServiceRequest& req,
                                          const std::string& token);
bool decodeServiceRequestWithToken(const std::string& payload,
                                   ServiceRequest* req, std::string* token);

// ---- The service ----------------------------------------------------------

struct SweepServiceOptions {
  std::string socket_path;
  /// Worker-pool knobs: jobs, cell timeout, retries, rlimits. `isolate` /
  /// `pool` are implied. The embedded chaos plan is ignored — chaos
  /// arrives per request.
  SupervisorOptions supervisor;
  /// Admission bound: maximum queued-but-undispatched cells across all
  /// clients. A request that would exceed it gets a kBusy reply.
  std::size_t max_queue = 1024;
  /// Accept request-embedded chaos plans (tests / CI soak only).
  bool allow_chaos = false;
  /// When non-empty, every finished cell is appended (and flushed) to
  /// this checkpoint file, sweep and campaign lines alike — the same
  /// `spt-sweep-v1` format the one-shot runs write.
  std::string checkpoint_path;
  /// Shared mmap trace cache for sweep cells (sweep --trace-cache).
  std::string trace_cache_dir;
  /// Write-ahead request journal (docs/ROBUSTNESS.md "Request journal").
  /// When non-empty, every admitted request appends a durable
  /// `spt-journal-v1` admit record (idempotency token, full request bytes,
  /// checkpoint binding) before any of its cells dispatch, and a settle
  /// record (done/cancelled/deadline) when its results are *delivered* —
  /// the done frame fully flushed to a client — not merely computed, so a
  /// crash between completion and delivery still recovers (the cells
  /// replay from the checkpoint; nothing re-runs). On startup the journal
  /// is replayed: unsettled requests are re-admitted in their original
  /// admission order as orphans (no client fd), cells already settled ok
  /// in the bound checkpoint are replayed from it instead of re-running,
  /// and the rest run to completion whether or not the original client
  /// ever returns.
  std::string journal_path;
  /// Scripted crash for the kill/restart chaos campaign (tests / CI soak):
  /// SIGKILL self at the Nth occurrence of the chosen point. Inert by
  /// default.
  support::ServiceCrashPlan crash;
  /// Graceful-drain flag, set from a SIGTERM/SIGINT handler.
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Progress note sink (stderr in sptc; capturable in tests). Null = quiet.
  std::function<void(const std::string&)> log;
};

class SweepService {
 public:
  explicit SweepService(SweepServiceOptions options);
  ~SweepService();
  SweepService(const SweepService&) = delete;
  SweepService& operator=(const SweepService&) = delete;

  /// True when this platform can run the service (fork + AF_UNIX).
  static bool supported();

  /// Binds the socket, fills the worker pool, and serves until `*stop` is
  /// set (drain) or the socket cannot be created. Returns a process exit
  /// code: 0 after a clean drain, 1 on a startup failure.
  int run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- The client -----------------------------------------------------------

struct SubmitOptions {
  /// Client-side sabotage (tests / CI soak): disconnect or garbage after
  /// N results, or stall before every read.
  support::ClientChaosPlan chaos;
  /// Overall client-side wait bound in seconds (0 = wait forever).
  double timeout_seconds = 0.0;
  /// Idempotency token (non-empty selects SPTS v2 framing). A
  /// resubmission with the same token and grid attaches to the original
  /// request — live, orphaned, or journal-recovered — and replays its
  /// already-settled results instead of re-running any cell.
  std::string token;
  /// submitToServiceWithRetry only: keep retrying for this many seconds.
  /// kBusy replies honor the service's retry_after hint; transport
  /// failures (refused connect, mid-stream disconnect) reconnect and
  /// re-attach by token after a deterministic seeded backoff. 0 disables
  /// retries.
  double retry_for_seconds = 0.0;
  /// Abort flag for the retry loop's sleeps (SIGINT handler).
  const volatile std::sig_atomic_t* stop = nullptr;
  /// Called after every result frame (done, total).
  std::function<void(std::uint64_t, std::uint64_t)> on_progress;
  /// Retry-loop note sink (stderr in sptc). Null = quiet.
  std::function<void(const std::string&)> log;
};

struct SubmitOutcome {
  /// True when the request ran to kDone and every cell arrived.
  bool ok = false;
  /// Admission refused; `retry_after_seconds` holds the service's hint.
  bool busy = false;
  double retry_after_seconds = 0.0;
  std::string error;  // transport/protocol/service error when !ok && !busy
  /// The failure was transport-level (connect refused, send failure,
  /// stream cut before kDone) rather than a structured service reply —
  /// the class of failure a tokened client retries.
  bool transport = false;
  /// The service replied kAttached: this connection adopted an existing
  /// request (after a client reconnect or a service restart) and replayed
  /// its settled results.
  bool attached = false;
  /// kSweep: rows in grid order, exactly as runSweep would return them.
  std::vector<SweepRow> rows;
  /// kCampaign: cells + totals, exactly as runFaultCampaign would.
  FaultCampaignResult campaign;
  /// kEcho: the echoed payloads.
  std::vector<std::string> echoes;
};

/// Submits one request over the socket and blocks until done/failed.
SubmitOutcome submitToService(const std::string& socket_path,
                              const ServiceRequest& request,
                              const SubmitOptions& options = {});

/// submitToService wrapped in the `--retry-for` loop: retries kBusy
/// refusals after the service's retry_after hint and — when
/// `options.token` is non-empty — transport failures after a
/// deterministic seeded backoff (Supervisor::backoffSeconds, capped at
/// 2 s per attempt), until the request succeeds, a structured service
/// error arrives, or `options.retry_for_seconds` of wall clock elapse.
SubmitOutcome submitToServiceWithRetry(const std::string& socket_path,
                                       const ServiceRequest& request,
                                       const SubmitOptions& options = {});

/// Fetches the service's status JSON (queue depths, per-client fairness
/// counters, worker health, aggregated resource report).
std::optional<std::string> queryServiceStatus(const std::string& socket_path,
                                              std::string* error = nullptr);

}  // namespace spt::harness

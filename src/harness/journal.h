// The `spt-journal-v1` write-ahead request journal for the sweep service.
//
// The spt-sweep-v1 checkpoint preserves *cell* results across a crash, but
// nothing recorded *which requests* were in flight: a killed service lost
// every accepted-but-unfinished grid, clients hung, and resubmission risked
// duplicate work. The journal closes that gap. The service appends one
// durable record at request admission (before any cell is dispatched or
// any reply sent — classic WAL discipline) and one at settlement — when
// the results are delivered to a client, cancelled, or past their
// deadline, not merely computed, so a crash between the last cell and the
// reply flush keeps the request recoverable; on restart the service
// replays the file and re-admits every unsettled request in the original
// admission order.
//
// One tab-separated line per record, each ending in a FNV-1a checksum of
// everything before the checksum column:
//
//   spt-journal-v1 <tab> admit <tab> <id> <tab> <token> <tab> <checkpoint>
//                  <tab> <hex(request-bytes)> <tab> <checksum>
//   spt-journal-v1 <tab> settle <tab> <id> <tab> <outcome> <tab> <checksum>
//
// - `id` is a service-assigned decimal request id, unique for the life of
//   the journal file (the replayer hands back max+1 as the next id).
// - `token` is the client-supplied idempotency token, backslash-escaped
//   with the checkpoint escaping (it is client-controlled text).
// - `checkpoint` is the escaped path of the checkpoint file the request is
//   bound to ("" when the service runs without one).
// - `hex(request-bytes)` is the lowercase-hex encoding of the SPTS v1
//   `encodeServiceRequest` payload — the full grid description (machine,
//   copts, benchmarks, seeds, spec-threads, deadline, chaos). Replaying a
//   journal therefore needs no side channel: the admit record alone
//   reconstructs the request.
// - `outcome` is one of `done`, `cancelled`, `deadline`.
// - `checksum` is 16 lowercase hex digits of FNV-1a over the preceding
//   bytes of the line (tag through the tab before the checksum).
//
// Torn-tail tolerance matches the checkpoint loader: the writer appends
// `line + '\n'` through the shared DurableAppendFile (O_APPEND + fsync),
// so a record missing its terminating newline can only be a write torn by
// a crash and is dropped. Interior lines that fail the checksum or don't
// parse are skipped and reported with their byte offset — a journal is
// evidence; corruption must be loud, not fatal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spt::harness {

inline constexpr const char* kJournalTag = "spt-journal-v1";

struct JournalRecord {
  enum class Kind { kAdmit, kSettle };

  Kind kind = Kind::kAdmit;
  std::uint64_t id = 0;
  // kAdmit only.
  std::string token;
  std::string checkpoint_path;
  std::string request_bytes;  // raw SPTS request payload (decoded from hex)
  // kSettle only: "done", "cancelled", or "deadline".
  std::string outcome;
};

/// One formatted journal line including the trailing checksum column (no
/// terminating newline).
std::string formatJournalRecord(const JournalRecord& record);

/// Parses one line (without its newline). Returns false — with a
/// human-readable reason in `error` when non-null — on a wrong tag,
/// unknown record kind, bad field, or checksum mismatch.
bool parseJournalLine(const std::string& line, JournalRecord* out,
                      std::string* error = nullptr);

struct JournalReplay {
  /// Admit records with no matching settle, in original admission order.
  std::vector<JournalRecord> unsettled;
  /// One larger than the largest id seen (1 for an empty journal), so the
  /// service can keep assigning unique ids.
  std::uint64_t next_id = 1;
  std::uint64_t records_replayed = 0;  // valid records (admit + settle)
  std::uint64_t records_skipped = 0;   // malformed / checksum-failed lines
  std::uint64_t requests_settled = 0;  // admits matched by a settle
  bool torn_tail = false;
  /// Byte offset of the end of the last '\n'-terminated record (== file
  /// size when the tail is clean). A restarting writer MUST truncate the
  /// file here before appending: O_APPEND would otherwise glue the next
  /// record onto the torn fragment's line, and that merged line fails its
  /// checksum on every later replay — a durable admit record would be lost
  /// to an earlier crash's debris.
  std::uint64_t valid_bytes = 0;
  /// One sentence per anomaly (skipped line with byte offset, torn tail,
  /// settle without a matching admit).
  std::vector<std::string> warnings;
};

/// Replays a journal file. A missing file yields an empty replay (not an
/// error): a service starting with a fresh `--journal` path has simply
/// never crashed.
JournalReplay replayJournal(const std::string& path);

}  // namespace spt::harness

#include "harness/checkpoint.h"

#include <fstream>
#include <sstream>

namespace spt::harness {

std::string sanitizeCheckpointField(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string escapeCheckpointField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string unescapeCheckpointField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        // Unknown escape: keep both bytes (also how pre-escaping rows,
        // which never contain backslash-letter pairs we emit, stay
        // readable).
        out.push_back('\\');
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string checkpointKey(const std::string& benchmark,
                          const std::string& config) {
  return escapeCheckpointField(benchmark) + '\t' +
         escapeCheckpointField(config);
}

std::string formatCheckpointLine(const CheckpointLine& line) {
  std::ostringstream os;
  os << kCheckpointTag << '\t' << toString(line.status) << '\t'
     << escapeCheckpointField(line.benchmark) << '\t'
     << escapeCheckpointField(line.config);
  for (const std::uint64_t m : line.metrics) os << '\t' << m;
  os << '\t' << escapeCheckpointField(line.diagnostic);
  return os.str();
}

bool parseCheckpointLine(const std::string& text,
                         std::size_t expected_metrics, CheckpointLine* out) {
  std::istringstream is(text);
  std::string field;
  const auto next = [&](std::string& dst) {
    return static_cast<bool>(std::getline(is, dst, '\t'));
  };
  if (!next(field) || field != kCheckpointTag) return false;
  if (!next(field) || !cellStatusFromString(field, out->status)) return false;
  if (!next(field)) return false;
  out->benchmark = unescapeCheckpointField(field);
  if (!next(field)) return false;
  out->config = unescapeCheckpointField(field);
  out->metrics.assign(expected_metrics, 0);
  for (std::uint64_t& m : out->metrics) {
    if (!next(field)) return false;
    try {
      m = std::stoull(field);
    } catch (...) {
      return false;
    }
  }
  // The diagnostic is the (possibly empty) remainder of the line.
  std::getline(is, field);
  out->diagnostic = unescapeCheckpointField(field);
  return true;
}

std::map<std::string, CheckpointLine> loadCheckpoint(
    const std::string& path, std::size_t expected_metrics) {
  std::map<std::string, CheckpointLine> map;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    CheckpointLine parsed;
    if (parseCheckpointLine(line, expected_metrics, &parsed)) {
      map[checkpointKey(parsed.benchmark, parsed.config)] = std::move(parsed);
    }
  }
  return map;
}

}  // namespace spt::harness

#include "harness/checkpoint.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define SPT_CHECKPOINT_POSIX 1
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#else
#define SPT_CHECKPOINT_POSIX 0
#endif

namespace spt::harness {

std::string sanitizeCheckpointField(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string escapeCheckpointField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string unescapeCheckpointField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        // Unknown escape: keep both bytes (also how pre-escaping rows,
        // which never contain backslash-letter pairs we emit, stay
        // readable).
        out.push_back('\\');
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string checkpointKey(const std::string& benchmark,
                          const std::string& config) {
  return escapeCheckpointField(benchmark) + '\t' +
         escapeCheckpointField(config);
}

std::string formatCheckpointLine(const CheckpointLine& line) {
  std::ostringstream os;
  os << kCheckpointTag << '\t' << toString(line.status) << '\t'
     << escapeCheckpointField(line.benchmark) << '\t'
     << escapeCheckpointField(line.config);
  for (const std::uint64_t m : line.metrics) os << '\t' << m;
  os << '\t' << escapeCheckpointField(line.diagnostic);
  return os.str();
}

bool parseCheckpointLine(const std::string& text,
                         std::size_t expected_metrics, CheckpointLine* out) {
  std::istringstream is(text);
  std::string field;
  const auto next = [&](std::string& dst) {
    return static_cast<bool>(std::getline(is, dst, '\t'));
  };
  if (!next(field) || field != kCheckpointTag) return false;
  if (!next(field) || !cellStatusFromString(field, out->status)) return false;
  if (!next(field)) return false;
  out->benchmark = unescapeCheckpointField(field);
  if (!next(field)) return false;
  out->config = unescapeCheckpointField(field);
  out->metrics.assign(expected_metrics, 0);
  for (std::uint64_t& m : out->metrics) {
    if (!next(field)) return false;
    try {
      m = std::stoull(field);
    } catch (...) {
      return false;
    }
  }
  // The diagnostic is the (possibly empty) final field. Escaping
  // guarantees a real diagnostic contains no raw tab, so a remainder with
  // more columns is a line written with a different metric count — a
  // campaign line read under the sweep's expectation, or vice versa, now
  // that the sweep service appends both shapes to one file. Reject it
  // rather than gluing foreign metric columns into the diagnostic.
  std::getline(is, field);
  if (field.find('\t') != std::string::npos) return false;
  out->diagnostic = unescapeCheckpointField(field);
  return true;
}

std::map<std::string, CheckpointLine> loadCheckpoint(
    const std::string& path, std::size_t expected_metrics,
    std::string* warning) {
  std::map<std::string, CheckpointLine> map;
  std::ifstream in(path, std::ios::binary);
  if (!in) return map;
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  // Only '\n'-terminated records are trusted: the writer emits
  // line + '\n' in one flush, so an unterminated tail is a torn write.
  // A torn metric column can still parse as a (smaller) valid integer,
  // so the fragment must be dropped even when parseCheckpointLine would
  // accept it.
  std::size_t complete = text.size();
  while (complete > 0 && text[complete - 1] != '\n') --complete;
  if (complete != text.size() && warning != nullptr) {
    *warning = "checkpoint " + path + ": dropped torn trailing record (" +
               std::to_string(text.size() - complete) +
               " bytes without a terminating newline); the cell will be "
               "re-run";
  }
  std::size_t pos = 0;
  while (pos < complete) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol >= complete) eol = complete;
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    CheckpointLine parsed;
    if (parseCheckpointLine(line, expected_metrics, &parsed)) {
      map[checkpointKey(parsed.benchmark, parsed.config)] = std::move(parsed);
    }
  }
  return map;
}

#if SPT_CHECKPOINT_POSIX

namespace {

bool writeAllDurable(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

DurableAppendFile::~DurableAppendFile() { close(); }

bool DurableAppendFile::open(const std::string& path, bool truncate) {
  close();
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  int fd = -1;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  fd_ = fd;
  dirty_ = false;
  return true;
}

bool DurableAppendFile::isOpen() const { return fd_ >= 0; }

bool DurableAppendFile::appendLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string record = line;
  record.push_back('\n');
  if (!writeAllDurable(fd_, record.data(), record.size())) return false;
  dirty_ = true;
  return true;
}

bool DurableAppendFile::appendTorn(const std::string& line,
                                   std::size_t bytes) {
  if (fd_ < 0) return false;
  const std::size_t n = std::min(bytes, line.size());
  if (!writeAllDurable(fd_, line.data(), n)) return false;
  dirty_ = true;
  return sync();
}

bool DurableAppendFile::sync() {
  if (fd_ < 0 || !dirty_) return fd_ >= 0;
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return false;
  dirty_ = false;
  return true;
}

void DurableAppendFile::close() {
  if (fd_ >= 0) {
    sync();
    ::close(fd_);
    fd_ = -1;
  }
  dirty_ = false;
}

int DurableAppendFile::fd() const { return fd_; }

#else  // !SPT_CHECKPOINT_POSIX

DurableAppendFile::~DurableAppendFile() { close(); }

bool DurableAppendFile::open(const std::string& path, bool truncate) {
  close();
  auto* out = new std::ofstream(
      path, std::ios::binary | std::ios::out |
                (truncate ? std::ios::trunc : std::ios::app));
  if (!*out) {
    delete out;
    return false;
  }
  stream_ = out;
  return true;
}

bool DurableAppendFile::isOpen() const { return stream_ != nullptr; }

bool DurableAppendFile::appendLine(const std::string& line) {
  if (stream_ == nullptr) return false;
  auto* out = static_cast<std::ofstream*>(stream_);
  (*out) << line << '\n';
  return static_cast<bool>(*out);
}

bool DurableAppendFile::appendTorn(const std::string& line,
                                   std::size_t bytes) {
  if (stream_ == nullptr) return false;
  auto* out = static_cast<std::ofstream*>(stream_);
  out->write(line.data(),
             static_cast<std::streamsize>(std::min(bytes, line.size())));
  out->flush();
  return static_cast<bool>(*out);
}

bool DurableAppendFile::sync() {
  if (stream_ == nullptr) return false;
  auto* out = static_cast<std::ofstream*>(stream_);
  out->flush();
  return static_cast<bool>(*out);
}

void DurableAppendFile::close() {
  if (stream_ != nullptr) {
    auto* out = static_cast<std::ofstream*>(stream_);
    out->flush();
    delete out;
    stream_ = nullptr;
  }
}

int DurableAppendFile::fd() const { return -1; }

#endif  // SPT_CHECKPOINT_POSIX

}  // namespace spt::harness

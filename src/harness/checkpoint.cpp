#include "harness/checkpoint.h"

#include <fstream>
#include <sstream>

namespace spt::harness {

std::string sanitizeCheckpointField(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string escapeCheckpointField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string unescapeCheckpointField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out.push_back(s[i]);
      continue;
    }
    switch (s[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        // Unknown escape: keep both bytes (also how pre-escaping rows,
        // which never contain backslash-letter pairs we emit, stay
        // readable).
        out.push_back('\\');
        out.push_back(s[i]);
    }
  }
  return out;
}

std::string checkpointKey(const std::string& benchmark,
                          const std::string& config) {
  return escapeCheckpointField(benchmark) + '\t' +
         escapeCheckpointField(config);
}

std::string formatCheckpointLine(const CheckpointLine& line) {
  std::ostringstream os;
  os << kCheckpointTag << '\t' << toString(line.status) << '\t'
     << escapeCheckpointField(line.benchmark) << '\t'
     << escapeCheckpointField(line.config);
  for (const std::uint64_t m : line.metrics) os << '\t' << m;
  os << '\t' << escapeCheckpointField(line.diagnostic);
  return os.str();
}

bool parseCheckpointLine(const std::string& text,
                         std::size_t expected_metrics, CheckpointLine* out) {
  std::istringstream is(text);
  std::string field;
  const auto next = [&](std::string& dst) {
    return static_cast<bool>(std::getline(is, dst, '\t'));
  };
  if (!next(field) || field != kCheckpointTag) return false;
  if (!next(field) || !cellStatusFromString(field, out->status)) return false;
  if (!next(field)) return false;
  out->benchmark = unescapeCheckpointField(field);
  if (!next(field)) return false;
  out->config = unescapeCheckpointField(field);
  out->metrics.assign(expected_metrics, 0);
  for (std::uint64_t& m : out->metrics) {
    if (!next(field)) return false;
    try {
      m = std::stoull(field);
    } catch (...) {
      return false;
    }
  }
  // The diagnostic is the (possibly empty) final field. Escaping
  // guarantees a real diagnostic contains no raw tab, so a remainder with
  // more columns is a line written with a different metric count — a
  // campaign line read under the sweep's expectation, or vice versa, now
  // that the sweep service appends both shapes to one file. Reject it
  // rather than gluing foreign metric columns into the diagnostic.
  std::getline(is, field);
  if (field.find('\t') != std::string::npos) return false;
  out->diagnostic = unescapeCheckpointField(field);
  return true;
}

std::map<std::string, CheckpointLine> loadCheckpoint(
    const std::string& path, std::size_t expected_metrics,
    std::string* warning) {
  std::map<std::string, CheckpointLine> map;
  std::ifstream in(path, std::ios::binary);
  if (!in) return map;
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string text = contents.str();
  // Only '\n'-terminated records are trusted: the writer emits
  // line + '\n' in one flush, so an unterminated tail is a torn write.
  // A torn metric column can still parse as a (smaller) valid integer,
  // so the fragment must be dropped even when parseCheckpointLine would
  // accept it.
  std::size_t complete = text.size();
  while (complete > 0 && text[complete - 1] != '\n') --complete;
  if (complete != text.size() && warning != nullptr) {
    *warning = "checkpoint " + path + ": dropped torn trailing record (" +
               std::to_string(text.size() - complete) +
               " bytes without a terminating newline); the cell will be "
               "re-run";
  }
  std::size_t pos = 0;
  while (pos < complete) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol >= complete) eol = complete;
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    CheckpointLine parsed;
    if (parseCheckpointLine(line, expected_metrics, &parsed)) {
      map[checkpointKey(parsed.benchmark, parsed.config)] = std::move(parsed);
    }
  }
  return map;
}

}  // namespace spt::harness

#include "harness/checkpoint.h"

#include <fstream>
#include <sstream>

namespace spt::harness {

std::string sanitizeCheckpointField(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string checkpointKey(const std::string& benchmark,
                          const std::string& config) {
  return sanitizeCheckpointField(benchmark) + '\t' +
         sanitizeCheckpointField(config);
}

std::string formatCheckpointLine(const CheckpointLine& line) {
  std::ostringstream os;
  os << kCheckpointTag << '\t' << toString(line.status) << '\t'
     << sanitizeCheckpointField(line.benchmark) << '\t'
     << sanitizeCheckpointField(line.config);
  for (const std::uint64_t m : line.metrics) os << '\t' << m;
  os << '\t' << sanitizeCheckpointField(line.diagnostic);
  return os.str();
}

bool parseCheckpointLine(const std::string& text,
                         std::size_t expected_metrics, CheckpointLine* out) {
  std::istringstream is(text);
  std::string field;
  const auto next = [&](std::string& dst) {
    return static_cast<bool>(std::getline(is, dst, '\t'));
  };
  if (!next(field) || field != kCheckpointTag) return false;
  if (!next(field) || !cellStatusFromString(field, out->status)) return false;
  if (!next(out->benchmark) || !next(out->config)) return false;
  out->metrics.assign(expected_metrics, 0);
  for (std::uint64_t& m : out->metrics) {
    if (!next(field)) return false;
    try {
      m = std::stoull(field);
    } catch (...) {
      return false;
    }
  }
  // The diagnostic is the (possibly empty) remainder of the line.
  std::getline(is, out->diagnostic);
  return true;
}

std::map<std::string, CheckpointLine> loadCheckpoint(
    const std::string& path, std::size_t expected_metrics) {
  std::map<std::string, CheckpointLine> map;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    CheckpointLine parsed;
    if (parseCheckpointLine(line, expected_metrics, &parsed)) {
      map[checkpointKey(parsed.benchmark, parsed.config)] = std::move(parsed);
    }
  }
  return map;
}

}  // namespace spt::harness

// Host-throughput measurement of the trace-driven co-simulation.
//
// Every figure the suite reproduces is bottlenecked by how many trace
// records per host second SptMachine/BaselineMachine can replay, so the
// simulator's own speed is tracked as a first-class metric: simulated
// instructions per host second (simulated MIPS), per workload, measured on
// pre-built traces so compile/interpret time never pollutes the number.
//
// The measurement phase is strictly serial (parallel timing runs would
// contend for cores and memory bandwidth); only the setup phase — compile,
// trace, index — fans out across a ParallelSweep. Simulation *results*
// (cycles, instruction counts, record counts) are deterministic and are
// diffed by CI; host-time metrics are prefixed `host_` in the JSON so
// determinism checks can filter them (`grep -v '"host_'`).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.h"
#include "spt/options.h"
#include "support/machine_config.h"

namespace spt::harness {

struct PerfOptions {
  /// Workloads to measure; empty selects the default set (the ten
  /// SPECint2000 analogs plus the parser-free microkernel).
  std::vector<std::string> workloads;
  std::uint64_t scale = 1;
  /// Timed repetitions per machine; the fastest run is reported (minimum
  /// rejects scheduler noise, which is strictly additive).
  int repetitions = 3;
  std::size_t setup_jobs = 0;  // 0 = ParallelSweep default
  support::MachineConfig machine;
  compiler::CompilerOptions copts;
  /// With supervisor.isolate set (`sptc perf --isolate`), each workload's
  /// setup + timed measurement runs in its own forked worker under the
  /// execution supervisor, one at a time — a fresh address space per
  /// measurement (no allocator or cache pollution from earlier
  /// workloads), and a crashed or hung measurement becomes a reported
  /// failure instead of taking the bench down. Deterministic row fields
  /// are identical to the in-process path; host timings differ by the
  /// fork. Pass-time aggregation is unavailable in this mode (the
  /// compiles happen in throwaway workers).
  SupervisorOptions supervisor;
};

struct PerfRow {
  std::string workload;
  // Deterministic simulation results (covered by CI determinism diffs).
  std::uint64_t trace_records = 0;     // SPT trace length in records
  std::uint64_t baseline_cycles = 0;
  std::uint64_t spt_cycles = 0;
  std::uint64_t baseline_sim_instrs = 0;  // instructions issued in one run
  std::uint64_t spt_sim_instrs = 0;       // both pipelines
  // Hot-path health counters (sim/result.h HotPathStats; deterministic).
  // dispatch_fallback counts instructions that took the generic execute
  // path instead of a class-specialized handler; records_per_alloc is
  // trace records retired per arena frame allocation (higher = the frame
  // arena is recycling instead of allocating).
  std::uint64_t baseline_dispatch_fast = 0;
  std::uint64_t baseline_dispatch_fallback = 0;
  std::uint64_t spt_dispatch_fast = 0;
  std::uint64_t spt_dispatch_fallback = 0;
  std::uint64_t spt_arena_frame_allocs = 0;
  std::uint64_t spt_arena_frame_reuses = 0;
  double spt_records_per_alloc = 0.0;
  // Host-dependent metrics (excluded from determinism diffs).
  double host_baseline_seconds = 0.0;  // fastest single run
  double host_spt_seconds = 0.0;
  double host_baseline_mips = 0.0;     // sim instrs / host second / 1e6
  double host_spt_mips = 0.0;
};

/// Wall time of one compiler pass aggregated across every workload's
/// compile in the setup phase, from the pass pipeline's instrumentation
/// (spt/remarks.h). name/invocations/mutations are deterministic;
/// host_wall_ms is host time (excluded from determinism diffs).
struct PerfPassRow {
  std::string name;  // pipeline order of first appearance
  std::uint64_t invocations = 0;
  std::uint64_t mutations = 0;
  double host_wall_ms = 0.0;
};

/// Builds, compiles and traces each workload (parallel), then times
/// BaselineMachine and SptMachine runs over the pre-built traces (serial).
/// With non-null `passes`, also reports the setup phase's per-pass
/// compile wall times.
std::vector<PerfRow> runSimThroughput(const PerfOptions& options,
                                      std::vector<PerfPassRow>* passes =
                                          nullptr);

/// Renders the ASCII table the `sptc perf` subcommand and the
/// bench_sim_throughput binary print.
void printSimThroughputTable(std::ostream& os,
                             const std::vector<PerfRow>& rows);

/// Renders the per-pass compile-time table (`sptc perf`).
void printPassTimeTable(std::ostream& os,
                        const std::vector<PerfPassRow>& passes);

/// Writes {"rows":[...], "host_pass_times":[...]} ("host_pass_times" only
/// with non-null `passes`); `host_` members carry host-time metrics.
/// Returns false on I/O failure.
bool writeSimThroughputJson(const std::string& path,
                            const std::vector<PerfRow>& rows,
                            const std::vector<PerfPassRow>* passes = nullptr);

}  // namespace spt::harness

// Per-cell outcome taxonomy shared by the hardened sweep, the fault
// campaign, and the process-isolation supervisor.
//
// The first three statuses are produced *inside* a cell (in-process or in
// a worker): the cell ran and reported a structured outcome. The last
// three exist only under the supervisor: the worker process itself failed
// — died on a signal, blew its wall-clock deadline, or replied with bytes
// that do not decode as a protocol frame — and the parent reaped it and
// recorded the containment diagnostics here instead of dying with it.
#pragma once

#include <cstdint>
#include <string>

namespace spt::harness {

/// Outcome of one sweep/campaign cell. A non-ok cell is reported, not
/// fatal: the rest of the run still completes.
enum class CellStatus {
  kOk,
  kBudgetExceeded,  // support::SptBudgetExceeded (per-cell budgets)
  kInternalError,   // support::SptInternalError / any other exception
  kCrashed,         // worker died on a signal (SIGSEGV, SIGABRT, ...)
  kTimeout,         // worker exceeded the wall-clock deadline or RLIMIT_CPU
  kProtocolError,   // worker reply was missing, truncated, or corrupt
};

inline std::string toString(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kBudgetExceeded:
      return "budget_exceeded";
    case CellStatus::kInternalError:
      return "internal_error";
    case CellStatus::kCrashed:
      return "crashed";
    case CellStatus::kTimeout:
      return "timeout";
    case CellStatus::kProtocolError:
      return "protocol_error";
  }
  return "unknown";
}

inline bool cellStatusFromString(const std::string& s, CellStatus& out) {
  if (s == "ok") {
    out = CellStatus::kOk;
  } else if (s == "budget_exceeded") {
    out = CellStatus::kBudgetExceeded;
  } else if (s == "internal_error") {
    out = CellStatus::kInternalError;
  } else if (s == "crashed") {
    out = CellStatus::kCrashed;
  } else if (s == "timeout") {
    out = CellStatus::kTimeout;
  } else if (s == "protocol_error") {
    out = CellStatus::kProtocolError;
  } else {
    return false;
  }
  return true;
}

/// Whether a status is a *transport* failure (the worker process failed,
/// not the cell's computation) — the statuses the supervisor's retry
/// policy treats as transient.
inline bool isTransportFailure(CellStatus status) {
  return status == CellStatus::kCrashed || status == CellStatus::kTimeout ||
         status == CellStatus::kProtocolError;
}

/// Containment diagnostics for one supervised cell, filled by the parent
/// from the final attempt's reaping. `attempts == 0` means the cell never
/// went through the supervisor (in-process path); host_-prefixed fields
/// are host-dependent and excluded from CI determinism diffs.
struct WorkerDiagnostics {
  std::uint32_t attempts = 0;  // total worker attempts (retries + 1)
  int exit_code = -1;          // valid when >= 0 (worker exited normally)
  int term_signal = 0;         // nonzero when the worker died on a signal
  bool timed_out = false;      // killed by the parent watchdog
  double host_user_seconds = 0.0;  // rusage of the final attempt
  double host_sys_seconds = 0.0;
  /// Peak resident set of the final attempt, always in **kilobytes**: the
  /// supervisor normalizes macOS's bytes-valued ru_maxrss before storing.
  std::int64_t host_max_rss_kb = 0;
  /// Hex dump (truncated) of an undecodable reply's first bytes, so a
  /// protocol error's post-mortem starts from what actually arrived.
  std::string partial_reply;
};

/// Sweep-level aggregate of the per-cell worker rusage, emitted as the
/// `resource` object in supervised sweep/campaign JSON. Cell counts and
/// attempts are deterministic across worker models; the host_-prefixed
/// fields are host-dependent and filtered from CI determinism diffs like
/// their per-cell counterparts.
struct ResourceReport {
  std::size_t supervised_cells = 0;  // cells that ran under the supervisor
  std::uint64_t attempts = 0;        // total worker attempts across them
  double host_user_seconds = 0.0;    // summed final-attempt user CPU
  double host_sys_seconds = 0.0;     // summed final-attempt system CPU
  std::int64_t host_max_rss_kb = 0;  // max over per-cell peak RSS (KB)

  void add(const WorkerDiagnostics& w) {
    if (w.attempts == 0) return;  // in-process cell: nothing to aggregate
    ++supervised_cells;
    attempts += w.attempts;
    host_user_seconds += w.host_user_seconds;
    host_sys_seconds += w.host_sys_seconds;
    if (w.host_max_rss_kb > host_max_rss_kb) {
      host_max_rss_kb = w.host_max_rss_kb;
    }
  }
};

}  // namespace spt::harness

// Loop-coverage accounting for paper Figure 6.
//
// Figure 6 plots, per benchmark, the cumulative fraction of dynamic
// execution covered by loops whose average body size is within a limit.
// An instruction is covered at limit S when at least one of its dynamically
// enclosing loops (across call frames) has average body size <= S; the
// instruction is therefore binned at the *minimum* enclosing average body
// size, and the curve is the cumulative histogram. This avoids double
// counting nested loops.
#pragma once

#include <unordered_map>
#include <vector>

#include "profile/profile_data.h"
#include "support/stats.h"
#include "trace/trace.h"

namespace spt::harness {

class CoverageSink final : public trace::TraceSink {
 public:
  /// `loop_stats` comes from a prior profiling run of the same module
  /// (average body sizes must be known before binning).
  explicit CoverageSink(
      const std::unordered_map<ir::StaticId, profile::LoopStats>& loop_stats);

  void onRecord(const trace::Record& record) override;

  const support::Histogram& histogram() const { return hist_; }
  std::uint64_t totalInstrs() const { return total_; }

  /// Fraction of instructions covered by loops of avg body size <= limit.
  double coverageUpTo(std::int64_t limit) const;

 private:
  struct OpenLoop {
    ir::StaticId header_sid;
    trace::FrameId frame;
    /// Minimum avg body size from this loop outward (monotone stack).
    std::int64_t min_size;
  };

  const std::unordered_map<ir::StaticId, profile::LoopStats>& loop_stats_;
  std::vector<OpenLoop> open_;
  support::Histogram hist_;  // key: min enclosing avg body size
  std::uint64_t total_ = 0;
};

/// Convenience: profiles the module once for loop stats, then streams a
/// second run through a CoverageSink. Returns the filled sink data.
struct CoverageResult {
  support::Histogram histogram;
  std::uint64_t total_instrs = 0;

  double coverageUpTo(std::int64_t limit) const {
    return total_instrs == 0
               ? 0.0
               : static_cast<double>(
                     histogram.cumulativeWeightUpTo(limit)) /
                     static_cast<double>(total_instrs);
  }
};

CoverageResult measureLoopCoverage(ir::Module& module);

}  // namespace spt::harness

// Shared mmap-backed trace store for sweeps (trace format v3).
//
// A suite sweep re-runs the same workload under many machine configs, and
// a supervised sweep re-runs it across many worker processes; before this
// cache every cell re-interpreted the program just to rebuild a trace that
// is a pure function of (workload, scale, compiler plan). TraceCache
// makes the trace a file: the first producer interprets once and writes a
// v3 container (trace_io.h), every later consumer — same process, another
// pool thread, or another forked worker — mmaps that file and simulates
// over a zero-copy TraceView. Because v3 mappings are read-only and
// MAP_SHARED, the page cache keeps **one** physical copy of each
// workload's trace no matter how many supervised workers are replaying it.
//
// The traced run's return value and memory hash ride in the v3 header's
// meta words, so cached experiments re-assert baseline-vs-SPT execution
// equivalence without re-interpreting.
//
// Concurrency: get() is thread-safe; production is serialized per key
// (std::call_once). Across *processes* the file itself is the lock-free
// rendezvous — writers produce into a pid-suffixed temp file and rename(2)
// it into place, so concurrent producers race benignly (the trace is
// deterministic, both files are byte-identical, last rename wins) and
// readers only ever see complete, checksummed files. A file that fails
// validation (truncated leftover, version skew) is silently re-produced.
//
// Lifetime: entries (and the mappings behind their views) live until the
// cache is destroyed; every machine/LoopIndex built over an entry's view
// must be gone by then (docs/PERF.md "Trace v3").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "trace/trace.h"
#include "trace/trace_io.h"

namespace spt::harness {

class TraceCache {
 public:
  struct Entry {
    trace::TraceView view;
    trace::TraceFileMeta meta;  // word0 = return value, word1 = memory hash
    std::string path;           // the backing v3 file
  };

  /// Fills `meta` and returns the freshly produced trace on a miss.
  using Producer =
      std::function<trace::TraceBuffer(trace::TraceFileMeta* meta)>;

  /// `dir` is created if missing; trace files land there as <key>.spt3.
  explicit TraceCache(std::string dir);

  /// Returns the entry for `key`, producing and writing the v3 file on
  /// first use in this process (or adopting a valid file another process
  /// already wrote). The reference is stable for the cache's lifetime.
  const Entry& get(const std::string& key, const Producer& produce);

  const std::string& dir() const { return dir_; }

  /// Observability for tests: how many get() calls found an in-memory
  /// entry, adopted an existing file, or had to run the producer.
  std::uint64_t memoryHits() const;
  std::uint64_t fileReuses() const;
  std::uint64_t produced() const;

 private:
  struct Slot {
    std::once_flag once;
    std::optional<trace::MappedTrace> map;
    Entry entry;
  };

  void populate(Slot& slot, const std::string& key, const Producer& produce);

  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Slot>> slots_;
  std::uint64_t memory_hits_ = 0;
  std::uint64_t file_reuses_ = 0;
  std::uint64_t produced_ = 0;
};

}  // namespace spt::harness

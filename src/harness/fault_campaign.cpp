#include "harness/fault_campaign.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "harness/cell_codec.h"
#include "harness/checkpoint.h"
#include "harness/suite.h"
#include "sim/oracle.h"
#include "sim/spt_machine.h"
#include "support/error.h"
#include "support/json.h"
#include "support/rng.h"

namespace spt::harness {
namespace {

/// A workload compiled and traced once, shared (immutably) by every fault
/// seed's cell. The module lives behind a unique_ptr because LoopIndex
/// keeps a reference to it and Prepared objects are moved into place.
/// Under isolation, forked workers inherit these via copy-on-write, so a
/// 10x64 supervised campaign still costs ten compilations.
struct Prepared {
  std::string name;
  std::unique_ptr<ir::Module> module;
  trace::TraceBuffer trace;
  std::unique_ptr<trace::LoopIndex> index;
  std::uint64_t sequential_digest = 0;
};

}  // namespace

std::string campaignCellConfigKey(std::size_t cell_index,
                                  std::uint64_t fault_seed) {
  return "cell:" + std::to_string(cell_index) +
         "/seed:" + std::to_string(fault_seed);
}

CheckpointLine campaignCheckpointLine(const FaultCampaignCell& cell,
                                      std::size_t c) {
  CheckpointLine line;
  line.status = cell.status;
  line.benchmark = cell.benchmark;
  line.config = campaignCellConfigKey(c, cell.fault_seed);
  line.metrics = {
      cell.faults.injected,
      cell.faults.detected_by_net,
      cell.faults.detected_by_oracle,
      cell.faults.benign,
      cell.faults.escaped,
      cell.oracle_checks,
      cell.arch_digest,
      cell.sequential_digest,
      cell.digest_match ? 1ull : 0ull,
      cell.diverged ? 1ull : 0ull,
      cell.divergence_pos,
  };
  line.diagnostic = cell.diagnostic;
  return line;
}

namespace {

void applyCheckpointLine(const CheckpointLine& l, FaultCampaignCell& cell) {
  cell.status = l.status;
  cell.diagnostic = l.diagnostic;
  cell.faults.injected = l.metrics[0];
  cell.faults.detected_by_net = l.metrics[1];
  cell.faults.detected_by_oracle = l.metrics[2];
  cell.faults.benign = l.metrics[3];
  cell.faults.escaped = l.metrics[4];
  cell.oracle_checks = l.metrics[5];
  cell.arch_digest = l.metrics[6];
  cell.sequential_digest = l.metrics[7];
  cell.digest_match = l.metrics[8] != 0;
  cell.diverged = l.metrics[9] != 0;
  cell.divergence_pos = l.metrics[10];
}

}  // namespace

FaultCampaignCell campaignCellFromCheckpointLine(const CheckpointLine& line,
                                                 const std::string& benchmark,
                                                 std::uint64_t fault_seed) {
  FaultCampaignCell cell;
  cell.benchmark = benchmark;
  cell.fault_seed = fault_seed;
  applyCheckpointLine(line, cell);
  return cell;
}

namespace {

/// Runs one (workload, seed) cell, catching every cell-level failure into
/// the cell's status — an oracle divergence, budget blowout, or internal
/// error is reported, not fatal, on both execution paths.
FaultCampaignCell runCampaignCell(const Prepared& p, std::size_t c,
                                  const FaultCampaignOptions& opts) {
  FaultCampaignCell cell;
  cell.benchmark = p.name;
  cell.fault_seed = support::deriveSeed(opts.base_seed, c);
  cell.sequential_digest = p.sequential_digest;

  support::MachineConfig mc = opts.machine;
  // The campaign's claims need the digest even if the caller asked for
  // no oracle; deep mode is honored as requested.
  mc.oracle = opts.oracle == support::OracleMode::kOff
                  ? support::OracleMode::kDigest
                  : opts.oracle;
  mc.fault_plan.enabled = true;
  mc.fault_plan.seed = cell.fault_seed;
  mc.fault_plan.period = opts.period;

  try {
    sim::SptMachine machine(*p.module, p.trace, *p.index, mc);
    const sim::MachineResult r = machine.run();
    cell.faults = r.faults;
    cell.arch_digest = r.arch_digest;
    cell.oracle_checks = r.oracle_checks;
    cell.digest_match = r.arch_digest == p.sequential_digest;
  } catch (const support::SptOracleDivergence& e) {
    cell.status = CellStatus::kInternalError;
    cell.diagnostic = e.what();
    cell.diverged = true;
    cell.divergence_pos = e.tracePos();
    cell.divergence_boundary = e.boundary();
    cell.divergence_diff = e.diff();
  } catch (const support::SptBudgetExceeded& e) {
    cell.status = CellStatus::kBudgetExceeded;
    cell.diagnostic = e.what();
  } catch (const std::exception& e) {
    cell.status = CellStatus::kInternalError;
    cell.diagnostic = e.what();
  }
  return cell;
}

}  // namespace

FaultCampaignResult runFaultCampaign(const FaultCampaignOptions& opts) {
  const std::vector<SuiteEntry> suite = defaultSuite();
  const ParallelSweep sweep(opts.jobs);

  // Phase 1: compile + trace each workload once, in parallel. The pool is
  // torn down before phase 2, so supervised forks never race pool threads.
  std::vector<Prepared> prepared =
      sweep.run(suite.size(), [&](std::size_t i) {
        const SuiteEntry& entry = suite[i];
        Prepared p;
        p.name = entry.workload.name;
        p.module =
            std::make_unique<ir::Module>(entry.workload.build(opts.scale));
        // The compiler follows the machine's chain depth so chained
        // campaigns exercise slice-equipped forks too.
        compiler::CompilerOptions copts = entry.copts;
        copts.spec_threads = opts.machine.spec_threads;
        compiler::SptCompiler cc(copts);
        InterpProfileRunner runner;
        cc.compile(*p.module, runner);
        TracedRun run = traceProgram(*p.module, {},
                                     opts.machine.max_trace_records);
        p.trace = std::move(run.trace);
        p.index = std::make_unique<trace::LoopIndex>(*p.module, p.trace);
        p.sequential_digest =
            sim::Oracle::sequentialDigest(*p.module, p.trace);
        return p;
      });

  // Phase 2: the workloads × seeds grid over the shared traces. Cell c's
  // fault seed depends only on c, so the grid is bit-reproducible at any
  // worker count (and across the isolated / in-process paths).
  const std::size_t n_cells = prepared.size() * opts.seeds;
  FaultCampaignResult result;

  std::map<std::string, CheckpointLine> resumed;
  if (opts.resume && !opts.checkpoint_path.empty()) {
    std::string torn_warning;
    resumed = loadCheckpoint(opts.checkpoint_path, kCampaignCheckpointMetrics,
                             &torn_warning);
    if (!torn_warning.empty()) {
      std::fprintf(stderr, "warning: %s\n", torn_warning.c_str());
    }
  }
  // Reuses an ok checkpoint line for cell c, if one matches its key.
  const auto resumedCell =
      [&](std::size_t c) -> std::optional<FaultCampaignCell> {
    if (resumed.empty()) return std::nullopt;
    FaultCampaignCell cell;
    cell.benchmark = prepared[c / opts.seeds].name;
    cell.fault_seed = support::deriveSeed(opts.base_seed, c);
    const auto it = resumed.find(checkpointKey(
        cell.benchmark, campaignCellConfigKey(c, cell.fault_seed)));
    if (it == resumed.end() || it->second.status != CellStatus::kOk) {
      return std::nullopt;
    }
    applyCheckpointLine(it->second, cell);
    return cell;
  };

  DurableAppendFile checkpoint;
  std::mutex checkpoint_mu;
  if (!opts.checkpoint_path.empty()) {
    checkpoint.open(opts.checkpoint_path, /*truncate=*/!opts.resume);
  }

  if (opts.supervisor.isolate && Supervisor::isolationSupported()) {
    result.cells.resize(n_cells);
    std::vector<std::size_t> to_run;
    for (std::size_t c = 0; c < n_cells; ++c) {
      if (std::optional<FaultCampaignCell> cell = resumedCell(c)) {
        result.cells[c] = std::move(*cell);
      } else {
        to_run.push_back(c);
      }
    }

    SupervisorOptions sopts = opts.supervisor;
    if (sopts.jobs == 0) sopts.jobs = sweep.jobs();
    const Supervisor supervisor(sopts);

    const auto produce = [&](std::size_t k) {
      const std::size_t c = to_run[k];
      return encodeCampaignCell(
          runCampaignCell(prepared[c / opts.seeds], c, opts));
    };
    // Parent-side settle hook: single-threaded, no checkpoint lock needed.
    const auto on_settled = [&](std::size_t k,
                                const Supervisor::Outcome& oc) {
      const std::size_t c = to_run[k];
      FaultCampaignCell cell = campaignCellFromOutcome(
          prepared[c / opts.seeds].name,
          support::deriveSeed(opts.base_seed, c), oc);
      // A failed cell never carried the worker's digest; fill the ground
      // truth from phase 1 so its checkpoint line matches the historical
      // format (an ok cell's payload already carries it).
      if (!cell.ok() && cell.sequential_digest == 0) {
        cell.sequential_digest = prepared[c / opts.seeds].sequential_digest;
      }
      if (checkpoint.isOpen()) {
        checkpoint.appendLine(
            formatCheckpointLine(campaignCheckpointLine(cell, c)));
        checkpoint.sync();
      }
      result.cells[c] = std::move(cell);
    };

    supervisor.run(to_run.size(), produce, on_settled);
  } else {
    result.cells = sweep.run(n_cells, [&](std::size_t c) {
      if (std::optional<FaultCampaignCell> cell = resumedCell(c)) {
        return std::move(*cell);
      }
      FaultCampaignCell cell =
          runCampaignCell(prepared[c / opts.seeds], c, opts);
      if (checkpoint.isOpen()) {
        const std::lock_guard<std::mutex> lock(checkpoint_mu);
        checkpoint.appendLine(
            formatCheckpointLine(campaignCheckpointLine(cell, c)));
        checkpoint.sync();
      }
      return cell;
    });
  }

  // Totals aggregate ok cells; a failed cell contributes its status (and
  // fails allCellsOk / allDigestsMatch), not half-counted fault numbers.
  for (const FaultCampaignCell& c : result.cells) {
    if (c.ok()) result.totals.accumulate(c.faults);
  }
  return result;
}

FaultCampaignCell runFaultCampaignCellStandalone(
    const std::string& benchmark, std::size_t cell_index,
    const FaultCampaignOptions& opts) {
  FaultCampaignCell cell;
  cell.benchmark = benchmark;
  cell.fault_seed = support::deriveSeed(opts.base_seed, cell_index);
  try {
    for (const SuiteEntry& entry : defaultSuite()) {
      if (entry.workload.name != benchmark) continue;
      // The same prepare steps as runFaultCampaign's phase 1, scoped to
      // one workload. Compilation and tracing are deterministic, so the
      // cell's JSON-visible fields equal the batch campaign's.
      Prepared p;
      p.name = entry.workload.name;
      p.module =
          std::make_unique<ir::Module>(entry.workload.build(opts.scale));
      compiler::CompilerOptions copts = entry.copts;
      copts.spec_threads = opts.machine.spec_threads;
      compiler::SptCompiler cc(copts);
      InterpProfileRunner runner;
      cc.compile(*p.module, runner);
      TracedRun run =
          traceProgram(*p.module, {}, opts.machine.max_trace_records);
      p.trace = std::move(run.trace);
      p.index = std::make_unique<trace::LoopIndex>(*p.module, p.trace);
      p.sequential_digest = sim::Oracle::sequentialDigest(*p.module, p.trace);
      return runCampaignCell(p, cell_index, opts);
    }
    cell.status = CellStatus::kInternalError;
    cell.diagnostic = "unknown workload '" + benchmark + "'";
  } catch (const support::SptBudgetExceeded& e) {
    cell.status = CellStatus::kBudgetExceeded;
    cell.diagnostic = e.what();
  } catch (const std::exception& e) {
    cell.status = CellStatus::kInternalError;
    cell.diagnostic = e.what();
  }
  return cell;
}

FaultCampaignCell campaignCellFromOutcome(const std::string& benchmark,
                                          std::uint64_t fault_seed,
                                          const Supervisor::Outcome& oc) {
  FaultCampaignCell cell;
  cell.benchmark = benchmark;
  cell.fault_seed = fault_seed;
  if (oc.status == CellStatus::kOk) {
    if (!decodeCampaignCell(oc.payload, &cell)) {
      cell.status = CellStatus::kProtocolError;
      cell.diagnostic =
          "worker payload passed frame validation but failed to decode "
          "as a campaign cell";
    }
  } else {
    cell.status = oc.status;
    cell.diagnostic = oc.diagnostic;
  }
  cell.worker = oc.worker;
  return cell;
}

bool writeFaultCampaignJson(const std::string& path,
                            const FaultCampaignResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  support::JsonWriter w(out);
  w.beginObject();
  w.key("totals").beginObject();
  w.member("injected", result.totals.injected);
  w.member("detected_by_net", result.totals.detected_by_net);
  w.member("detected_by_oracle", result.totals.detected_by_oracle);
  w.member("benign", result.totals.benign);
  w.member("escaped", result.totals.escaped);
  w.endObject();
  w.member("all_detected_or_benign", result.allDetectedOrBenign());
  w.member("all_digests_match", result.allDigestsMatch());
  w.member("all_cells_ok", result.allCellsOk());
  w.key("cells").beginArray();
  for (const FaultCampaignCell& c : result.cells) {
    w.beginObject();
    w.member("benchmark", c.benchmark);
    w.member("fault_seed", c.fault_seed);
    w.member("status", toString(c.status));
    if (!c.diagnostic.empty()) w.member("diagnostic", c.diagnostic);
    w.member("injected", c.faults.injected);
    w.member("detected_by_net", c.faults.detected_by_net);
    w.member("detected_by_oracle", c.faults.detected_by_oracle);
    w.member("benign", c.faults.benign);
    w.member("escaped", c.faults.escaped);
    w.member("oracle_checks", c.oracle_checks);
    w.member("arch_digest", c.arch_digest);
    w.member("digest_match", c.digest_match);
    // First-divergence report from the deep oracle, for failed cells.
    if (c.diverged) {
      w.key("divergence").beginObject();
      w.member("pos", c.divergence_pos);
      w.member("boundary", c.divergence_boundary);
      w.member("diff", c.divergence_diff);
      w.endObject();
    }
    if (c.worker.attempts > 0) {
      w.key("worker").beginObject();
      w.member("attempts", static_cast<std::uint64_t>(c.worker.attempts));
      w.member("exit_code", c.worker.exit_code);
      w.member("term_signal", c.worker.term_signal);
      w.member("timed_out", c.worker.timed_out);
      w.member("host_user_seconds", c.worker.host_user_seconds);
      w.member("host_sys_seconds", c.worker.host_sys_seconds);
      w.member("host_max_rss_kb",
               static_cast<std::int64_t>(c.worker.host_max_rss_kb));
      if (!c.worker.partial_reply.empty()) {
        w.member("partial_reply", c.worker.partial_reply);
      }
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  // Campaign-level rusage aggregate, mirroring writeSweepJson: present
  // only for supervised runs so in-process output is unchanged.
  ResourceReport resource;
  for (const FaultCampaignCell& c : result.cells) resource.add(c.worker);
  if (resource.supervised_cells > 0) {
    w.key("resource").beginObject();
    w.member("supervised_cells",
             static_cast<std::uint64_t>(resource.supervised_cells));
    w.member("attempts", resource.attempts);
    w.member("host_user_seconds", resource.host_user_seconds);
    w.member("host_sys_seconds", resource.host_sys_seconds);
    w.member("host_max_rss_kb", resource.host_max_rss_kb);
    w.endObject();
  }
  w.endObject();
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace spt::harness

#include "harness/fault_campaign.h"

#include <fstream>
#include <memory>
#include <utility>

#include "harness/suite.h"
#include "sim/oracle.h"
#include "sim/spt_machine.h"
#include "support/json.h"
#include "support/rng.h"

namespace spt::harness {
namespace {

/// A workload compiled and traced once, shared (immutably) by every fault
/// seed's cell. The module lives behind a unique_ptr because LoopIndex
/// keeps a reference to it and Prepared objects are moved into place.
struct Prepared {
  std::string name;
  std::unique_ptr<ir::Module> module;
  trace::TraceBuffer trace;
  std::unique_ptr<trace::LoopIndex> index;
  std::uint64_t sequential_digest = 0;
};

}  // namespace

FaultCampaignResult runFaultCampaign(const FaultCampaignOptions& opts) {
  const std::vector<SuiteEntry> suite = defaultSuite();
  const ParallelSweep sweep(opts.jobs);

  // Phase 1: compile + trace each workload once, in parallel.
  std::vector<Prepared> prepared =
      sweep.run(suite.size(), [&](std::size_t i) {
        const SuiteEntry& entry = suite[i];
        Prepared p;
        p.name = entry.workload.name;
        p.module =
            std::make_unique<ir::Module>(entry.workload.build(opts.scale));
        compiler::SptCompiler cc(entry.copts);
        InterpProfileRunner runner;
        cc.compile(*p.module, runner);
        TracedRun run = traceProgram(*p.module, {},
                                     opts.machine.max_trace_records);
        p.trace = std::move(run.trace);
        p.index = std::make_unique<trace::LoopIndex>(*p.module, p.trace);
        p.sequential_digest =
            sim::Oracle::sequentialDigest(*p.module, p.trace);
        return p;
      });

  // Phase 2: the workloads × seeds grid over the shared traces. Cell c's
  // fault seed depends only on c, so the grid is bit-reproducible at any
  // worker count.
  const std::size_t n_cells = prepared.size() * opts.seeds;
  FaultCampaignResult result;
  result.cells = sweep.run(n_cells, [&](std::size_t c) {
    const Prepared& p = prepared[c / opts.seeds];
    FaultCampaignCell cell;
    cell.benchmark = p.name;
    cell.fault_seed = support::deriveSeed(opts.base_seed, c);
    cell.sequential_digest = p.sequential_digest;

    support::MachineConfig mc = opts.machine;
    // The campaign's claims need the digest even if the caller asked for
    // no oracle; deep mode is honored as requested.
    mc.oracle = opts.oracle == support::OracleMode::kOff
                    ? support::OracleMode::kDigest
                    : opts.oracle;
    mc.fault_plan.enabled = true;
    mc.fault_plan.seed = cell.fault_seed;
    mc.fault_plan.period = opts.period;

    sim::SptMachine machine(*p.module, p.trace, *p.index, mc);
    const sim::MachineResult r = machine.run();
    cell.faults = r.faults;
    cell.arch_digest = r.arch_digest;
    cell.oracle_checks = r.oracle_checks;
    cell.digest_match = r.arch_digest == p.sequential_digest;
    return cell;
  });

  for (const FaultCampaignCell& c : result.cells) {
    result.totals.accumulate(c.faults);
  }
  return result;
}

bool writeFaultCampaignJson(const std::string& path,
                            const FaultCampaignResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  support::JsonWriter w(out);
  w.beginObject();
  w.key("totals").beginObject();
  w.member("injected", result.totals.injected);
  w.member("detected_by_net", result.totals.detected_by_net);
  w.member("detected_by_oracle", result.totals.detected_by_oracle);
  w.member("benign", result.totals.benign);
  w.member("escaped", result.totals.escaped);
  w.endObject();
  w.member("all_detected_or_benign", result.allDetectedOrBenign());
  w.member("all_digests_match", result.allDigestsMatch());
  w.key("cells").beginArray();
  for (const FaultCampaignCell& c : result.cells) {
    w.beginObject();
    w.member("benchmark", c.benchmark);
    w.member("fault_seed", c.fault_seed);
    w.member("injected", c.faults.injected);
    w.member("detected_by_net", c.faults.detected_by_net);
    w.member("detected_by_oracle", c.faults.detected_by_oracle);
    w.member("benign", c.faults.benign);
    w.member("escaped", c.faults.escaped);
    w.member("oracle_checks", c.oracle_checks);
    w.member("arch_digest", c.arch_digest);
    w.member("digest_match", c.digest_match);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace spt::harness

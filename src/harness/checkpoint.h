// The `spt-sweep-v1` checkpoint side-file format, shared by the hardened
// sweep and the fault campaign.
//
// One tab-separated line per finished cell:
//
//   spt-sweep-v1 <status> <benchmark> <config> <metric>... <diagnostic>
//
// Append-only, flushed per line, last line per (benchmark, config) wins on
// resume. The metric columns are caller-defined (the sweep stores the 20
// summary metrics writeSweepJson emits; the campaign stores its fault
// classification and digest fields) — the tag, key columns, status
// vocabulary, escaping, and last-line-wins semantics are identical, so
// `sptc sweep --resume` and `sptc inject --resume` share one format and
// one parser.
//
// String fields are backslash-escaped on write (`\\`, `\t`, `\n`, `\r`)
// and unescaped on read: diagnostics routinely carry tabs and newlines
// (multi-line oracle first-divergence text, worker stderr excerpts), and
// the old sanitize-to-spaces scheme silently corrupted them — a resumed
// run then re-keyed such cells differently than the run that wrote them.
// Rows written before escaping existed contain no `\` + t/n/r/backslash
// sequences in practice and parse unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/cell_status.h"

namespace spt::harness {

inline constexpr const char* kCheckpointTag = "spt-sweep-v1";

struct CheckpointLine {
  CellStatus status = CellStatus::kOk;
  std::string benchmark;
  std::string config;
  std::vector<std::uint64_t> metrics;
  std::string diagnostic;
};

/// Replaces tab/newline bytes with spaces. Kept for display contexts that
/// want flat one-line text; the checkpoint format itself now escapes
/// losslessly instead.
std::string sanitizeCheckpointField(std::string s);

/// Lossless escaping of the format's separator bytes: `\` -> `\\`,
/// tab -> `\t`, newline -> `\n`, CR -> `\r`.
std::string escapeCheckpointField(const std::string& s);

/// Inverse of escapeCheckpointField. Unknown escape pairs and a trailing
/// lone backslash pass through verbatim, so pre-escaping rows parse
/// unchanged.
std::string unescapeCheckpointField(const std::string& s);

/// The resume-map key for a cell: escaped benchmark + '\t' + config.
std::string checkpointKey(const std::string& benchmark,
                          const std::string& config);

/// One formatted line (no trailing newline).
std::string formatCheckpointLine(const CheckpointLine& line);

/// Parses one line; requires exactly `expected_metrics` metric columns.
/// Returns false on any malformed line (wrong tag, unknown status, bad
/// metric) — resume skips such lines rather than failing.
bool parseCheckpointLine(const std::string& text,
                         std::size_t expected_metrics, CheckpointLine* out);

/// Loads a checkpoint file into a last-line-wins map keyed by
/// checkpointKey(benchmark, config). A missing file yields an empty map.
///
/// Torn-tail tolerance: the writer appends each record as one line ending
/// in '\n' and flushes it, so a record missing its terminating newline can
/// only be the torn tail of a write killed mid-flush (power loss, SIGKILL
/// between write and newline). Such a trailing fragment is dropped — even
/// when its prefix happens to parse, a truncated metric column would
/// otherwise resume with a silently corrupted value — and reported via
/// `warning` (one human-readable sentence; untouched when the file is
/// clean). Interior malformed lines are skipped as before.
std::map<std::string, CheckpointLine> loadCheckpoint(
    const std::string& path, std::size_t expected_metrics,
    std::string* warning = nullptr);

/// Durable append-only line writer shared by checkpoints and the sweep
/// service's request journal.
///
/// On POSIX this is an `open(O_WRONLY|O_CREAT|O_APPEND)` fd: each
/// appendLine() issues one `write(2)` of `line + '\n'` (O_APPEND makes the
/// seek+write atomic with respect to other appenders), and sync() calls
/// `fsync(2)` so the record survives power loss — the old
/// `std::ofstream` + `flush()` path only pushed bytes into the page cache.
/// sync() is batched: it is a no-op unless an append happened since the
/// last sync, so callers can call it eagerly per record (checkpoints) or
/// once per event-loop pass (journal) without paying for empty fsyncs.
/// File contents are byte-identical to the former ofstream writers.
///
/// On non-POSIX builds it degrades to a buffered stream with flush()
/// (no durability guarantee; the service that needs one is POSIX-only).
class DurableAppendFile {
 public:
  DurableAppendFile() = default;
  ~DurableAppendFile();
  DurableAppendFile(const DurableAppendFile&) = delete;
  DurableAppendFile& operator=(const DurableAppendFile&) = delete;

  /// Opens (creating if needed) for appending; truncates first when
  /// `truncate` is set. Returns false on failure (isOpen() stays false).
  bool open(const std::string& path, bool truncate);
  bool isOpen() const;

  /// Appends `line + '\n'`. Returns false on a short or failed write.
  bool appendLine(const std::string& line);

  /// Test/chaos hook: appends only the first `bytes` bytes of `line` with
  /// NO terminating newline — simulates a write torn by a crash mid-append
  /// (the torn-tail case loadCheckpoint/replayJournal must tolerate). The
  /// truncated bytes are fsync'd immediately so a SIGKILL right after
  /// leaves exactly this fragment on disk.
  bool appendTorn(const std::string& line, std::size_t bytes);

  /// fsync(2) if anything was appended since the last sync.
  bool sync();

  void close();

  /// The fd backing the writer (-1 when closed or non-POSIX). Exposed so a
  /// forking caller can close it in the child.
  int fd() const;

 private:
  int fd_ = -1;
  bool dirty_ = false;
  void* stream_ = nullptr;  // non-POSIX fallback (std::ofstream*)
};

}  // namespace spt::harness

// The `spt-sweep-v1` checkpoint side-file format, shared by the hardened
// sweep and the fault campaign.
//
// One tab-separated line per finished cell:
//
//   spt-sweep-v1 <status> <benchmark> <config> <metric>... <diagnostic>
//
// Append-only, flushed per line, last line per (benchmark, config) wins on
// resume. The metric columns are caller-defined (the sweep stores the 20
// summary metrics writeSweepJson emits; the campaign stores its fault
// classification and digest fields) — the tag, key columns, status
// vocabulary, escaping, and last-line-wins semantics are identical, so
// `sptc sweep --resume` and `sptc inject --resume` share one format and
// one parser.
//
// String fields are backslash-escaped on write (`\\`, `\t`, `\n`, `\r`)
// and unescaped on read: diagnostics routinely carry tabs and newlines
// (multi-line oracle first-divergence text, worker stderr excerpts), and
// the old sanitize-to-spaces scheme silently corrupted them — a resumed
// run then re-keyed such cells differently than the run that wrote them.
// Rows written before escaping existed contain no `\` + t/n/r/backslash
// sequences in practice and parse unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/cell_status.h"

namespace spt::harness {

inline constexpr const char* kCheckpointTag = "spt-sweep-v1";

struct CheckpointLine {
  CellStatus status = CellStatus::kOk;
  std::string benchmark;
  std::string config;
  std::vector<std::uint64_t> metrics;
  std::string diagnostic;
};

/// Replaces tab/newline bytes with spaces. Kept for display contexts that
/// want flat one-line text; the checkpoint format itself now escapes
/// losslessly instead.
std::string sanitizeCheckpointField(std::string s);

/// Lossless escaping of the format's separator bytes: `\` -> `\\`,
/// tab -> `\t`, newline -> `\n`, CR -> `\r`.
std::string escapeCheckpointField(const std::string& s);

/// Inverse of escapeCheckpointField. Unknown escape pairs and a trailing
/// lone backslash pass through verbatim, so pre-escaping rows parse
/// unchanged.
std::string unescapeCheckpointField(const std::string& s);

/// The resume-map key for a cell: escaped benchmark + '\t' + config.
std::string checkpointKey(const std::string& benchmark,
                          const std::string& config);

/// One formatted line (no trailing newline).
std::string formatCheckpointLine(const CheckpointLine& line);

/// Parses one line; requires exactly `expected_metrics` metric columns.
/// Returns false on any malformed line (wrong tag, unknown status, bad
/// metric) — resume skips such lines rather than failing.
bool parseCheckpointLine(const std::string& text,
                         std::size_t expected_metrics, CheckpointLine* out);

/// Loads a checkpoint file into a last-line-wins map keyed by
/// checkpointKey(benchmark, config). A missing file yields an empty map.
///
/// Torn-tail tolerance: the writer appends each record as one line ending
/// in '\n' and flushes it, so a record missing its terminating newline can
/// only be the torn tail of a write killed mid-flush (power loss, SIGKILL
/// between write and newline). Such a trailing fragment is dropped — even
/// when its prefix happens to parse, a truncated metric column would
/// otherwise resume with a silently corrupted value — and reported via
/// `warning` (one human-readable sentence; untouched when the file is
/// clean). Interior malformed lines are skipped as before.
std::map<std::string, CheckpointLine> loadCheckpoint(
    const std::string& path, std::size_t expected_metrics,
    std::string* warning = nullptr);

}  // namespace spt::harness

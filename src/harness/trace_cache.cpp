#include "harness/trace_cache.h"

#include <cstdio>
#include <filesystem>

#include "support/check.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#include <unistd.h>
#endif

namespace spt::harness {

namespace {

std::string processTag() {
#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
  return std::to_string(static_cast<long>(::getpid()));
#else
  return "self";
#endif
}

}  // namespace

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  SPT_CHECK_MSG(!ec, ("trace cache: cannot create directory " + dir_ +
                      ": " + ec.message())
                         .c_str());
}

const TraceCache::Entry& TraceCache::get(const std::string& key,
                                         const Producer& produce) {
  Slot* slot = nullptr;
  bool fresh = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Slot>& s = slots_[key];
    if (!s) {
      s = std::make_unique<Slot>();
      fresh = true;
    }
    slot = s.get();
  }
  // call_once serializes producers for one key and makes every later get()
  // wait for (and then share) the populated entry; a producer exception
  // leaves the flag unset so the next get() retries.
  std::call_once(slot->once, [&] { populate(*slot, key, produce); });
  if (!fresh) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++memory_hits_;
  }
  return slot->entry;
}

void TraceCache::populate(Slot& slot, const std::string& key,
                          const Producer& produce) {
  // Keys come from workload names and hex fingerprints; normalize anything
  // that would escape the cache directory or upset a filesystem.
  std::string file = key;
  for (char& c : file) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                    c == '_';
    if (!ok) c = '_';
  }
  const std::string path = dir_ + "/" + file + ".spt3";

  // Another process (a sibling pooled worker, or an earlier run over the
  // same cache directory) may already have written this trace; v3
  // validation at open decides whether the file is trustworthy.
  std::string error;
  if (auto mapped = trace::MappedTrace::open(path, &error)) {
    slot.entry = {mapped->view(), mapped->meta(), path};
    slot.map = std::move(mapped);
    const std::lock_guard<std::mutex> lock(mu_);
    ++file_reuses_;
    return;
  }

  trace::TraceFileMeta meta;
  trace::TraceBuffer buffer = produce(&meta);

  // Write-then-rename keeps concurrent cross-process producers benign:
  // readers never observe a partial file, and because the trace is a
  // deterministic function of the key, whichever rename lands last
  // installs the same bytes.
  const std::string tmp = path + ".tmp." + processTag();
  SPT_CHECK_MSG(trace::writeTraceV3File(tmp, buffer.view(), meta),
                ("trace cache: cannot write " + tmp).c_str());
  SPT_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                ("trace cache: cannot rename " + tmp + " to " + path)
                    .c_str());

  auto mapped = trace::MappedTrace::open(path, &error);
  SPT_CHECK_MSG(mapped.has_value(),
                ("trace cache: just-written " + path +
                 " failed validation: " + error)
                    .c_str());
  slot.entry = {mapped->view(), mapped->meta(), path};
  slot.map = std::move(mapped);
  const std::lock_guard<std::mutex> lock(mu_);
  ++produced_;
}

std::uint64_t TraceCache::memoryHits() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return memory_hits_;
}

std::uint64_t TraceCache::fileReuses() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return file_reuses_;
}

std::uint64_t TraceCache::produced() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return produced_;
}

}  // namespace spt::harness

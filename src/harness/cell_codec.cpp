#include "harness/cell_codec.h"

namespace spt::harness {
namespace {

constexpr std::uint8_t kSweepRowTag = 'S';
constexpr std::uint8_t kCampaignCellTag = 'F';
constexpr std::uint8_t kPerfRowTag = 'P';

void putMachine(ByteWriter& w, const sim::MachineResult& m) {
  w.u64(m.cycles);
  w.u64(m.instrs);
  w.u64(m.breakdown.execution);
  w.u64(m.breakdown.pipeline_stall);
  w.u64(m.breakdown.dcache_stall);
  w.u64(m.threads.spawned);
  w.u64(m.threads.forks_ignored);
  w.u64(m.threads.wrong_path);
  w.u64(m.threads.fast_commits);
  w.u64(m.threads.replays);
  w.u64(m.threads.squashes);
  w.u64(m.threads.killed);
  w.u64(m.threads.spec_instrs);
  w.u64(m.threads.misspec_instrs);
  w.u64(m.threads.committed_instrs);
  w.u64(m.faults.injected);
  w.u64(m.faults.detected_by_net);
  w.u64(m.faults.detected_by_oracle);
  w.u64(m.faults.benign);
  w.u64(m.faults.escaped);
  w.u64(m.arch_digest);
  w.u64(m.oracle_checks);
}

bool getMachine(ByteReader& r, sim::MachineResult& m) {
  return r.u64(&m.cycles) && r.u64(&m.instrs) &&
         r.u64(&m.breakdown.execution) &&
         r.u64(&m.breakdown.pipeline_stall) &&
         r.u64(&m.breakdown.dcache_stall) && r.u64(&m.threads.spawned) &&
         r.u64(&m.threads.forks_ignored) && r.u64(&m.threads.wrong_path) &&
         r.u64(&m.threads.fast_commits) && r.u64(&m.threads.replays) &&
         r.u64(&m.threads.squashes) && r.u64(&m.threads.killed) &&
         r.u64(&m.threads.spec_instrs) && r.u64(&m.threads.misspec_instrs) &&
         r.u64(&m.threads.committed_instrs) && r.u64(&m.faults.injected) &&
         r.u64(&m.faults.detected_by_net) &&
         r.u64(&m.faults.detected_by_oracle) && r.u64(&m.faults.benign) &&
         r.u64(&m.faults.escaped) && r.u64(&m.arch_digest) &&
         r.u64(&m.oracle_checks);
}

}  // namespace

std::string encodeSweepRow(const SweepRow& row) {
  ByteWriter w;
  w.u8(kSweepRowTag);
  w.str(row.benchmark);
  w.str(row.config);
  w.u8(static_cast<std::uint8_t>(row.status));
  w.str(row.diagnostic);
  putMachine(w, row.result.baseline);
  putMachine(w, row.result.spt);
  w.u32(static_cast<std::uint32_t>(row.extra.size()));
  for (const auto& [k, v] : row.extra) {
    w.str(k);
    w.f64(v);
  }
  return w.take();
}

bool decodeSweepRow(const std::string& payload, SweepRow* row) {
  ByteReader r(payload);
  SweepRow out;
  std::uint8_t tag = 0;
  std::uint8_t status = 0;
  if (!r.u8(&tag) || tag != kSweepRowTag) return false;
  if (!r.str(&out.benchmark) || !r.str(&out.config) || !r.u8(&status) ||
      !r.str(&out.diagnostic)) {
    return false;
  }
  if (status > static_cast<std::uint8_t>(CellStatus::kProtocolError)) {
    return false;
  }
  out.status = static_cast<CellStatus>(status);
  if (!getMachine(r, out.result.baseline) || !getMachine(r, out.result.spt)) {
    return false;
  }
  std::uint32_t n_extra = 0;
  if (!r.u32(&n_extra)) return false;
  for (std::uint32_t i = 0; i < n_extra; ++i) {
    std::string k;
    double v = 0.0;
    if (!r.str(&k) || !r.f64(&v)) return false;
    out.extra[k] = v;
  }
  if (!r.ok() || !r.atEnd()) return false;
  *row = std::move(out);
  return true;
}

std::string encodeCampaignCell(const FaultCampaignCell& cell) {
  ByteWriter w;
  w.u8(kCampaignCellTag);
  w.str(cell.benchmark);
  w.u64(cell.fault_seed);
  w.u8(static_cast<std::uint8_t>(cell.status));
  w.str(cell.diagnostic);
  w.u64(cell.faults.injected);
  w.u64(cell.faults.detected_by_net);
  w.u64(cell.faults.detected_by_oracle);
  w.u64(cell.faults.benign);
  w.u64(cell.faults.escaped);
  w.u64(cell.arch_digest);
  w.u64(cell.sequential_digest);
  w.u64(cell.oracle_checks);
  w.boolean(cell.digest_match);
  w.boolean(cell.diverged);
  w.u64(cell.divergence_pos);
  w.str(cell.divergence_boundary);
  w.str(cell.divergence_diff);
  return w.take();
}

bool decodeCampaignCell(const std::string& payload, FaultCampaignCell* cell) {
  ByteReader r(payload);
  FaultCampaignCell out;
  std::uint8_t tag = 0;
  std::uint8_t status = 0;
  if (!r.u8(&tag) || tag != kCampaignCellTag) return false;
  if (!r.str(&out.benchmark) || !r.u64(&out.fault_seed) || !r.u8(&status) ||
      !r.str(&out.diagnostic)) {
    return false;
  }
  if (status > static_cast<std::uint8_t>(CellStatus::kProtocolError)) {
    return false;
  }
  out.status = static_cast<CellStatus>(status);
  if (!r.u64(&out.faults.injected) || !r.u64(&out.faults.detected_by_net) ||
      !r.u64(&out.faults.detected_by_oracle) || !r.u64(&out.faults.benign) ||
      !r.u64(&out.faults.escaped) || !r.u64(&out.arch_digest) ||
      !r.u64(&out.sequential_digest) || !r.u64(&out.oracle_checks) ||
      !r.boolean(&out.digest_match) || !r.boolean(&out.diverged) ||
      !r.u64(&out.divergence_pos) || !r.str(&out.divergence_boundary) ||
      !r.str(&out.divergence_diff)) {
    return false;
  }
  if (!r.ok() || !r.atEnd()) return false;
  *cell = std::move(out);
  return true;
}

std::string encodePerfRow(const PerfRow& row) {
  ByteWriter w;
  w.u8(kPerfRowTag);
  w.str(row.workload);
  w.u64(row.trace_records);
  w.u64(row.baseline_cycles);
  w.u64(row.spt_cycles);
  w.u64(row.baseline_sim_instrs);
  w.u64(row.spt_sim_instrs);
  w.u64(row.baseline_dispatch_fast);
  w.u64(row.baseline_dispatch_fallback);
  w.u64(row.spt_dispatch_fast);
  w.u64(row.spt_dispatch_fallback);
  w.u64(row.spt_arena_frame_allocs);
  w.u64(row.spt_arena_frame_reuses);
  w.f64(row.spt_records_per_alloc);
  w.f64(row.host_baseline_seconds);
  w.f64(row.host_spt_seconds);
  w.f64(row.host_baseline_mips);
  w.f64(row.host_spt_mips);
  return w.take();
}

bool decodePerfRow(const std::string& payload, PerfRow* row) {
  ByteReader r(payload);
  PerfRow out;
  std::uint8_t tag = 0;
  if (!r.u8(&tag) || tag != kPerfRowTag) return false;
  if (!r.str(&out.workload) || !r.u64(&out.trace_records) ||
      !r.u64(&out.baseline_cycles) || !r.u64(&out.spt_cycles) ||
      !r.u64(&out.baseline_sim_instrs) || !r.u64(&out.spt_sim_instrs) ||
      !r.u64(&out.baseline_dispatch_fast) ||
      !r.u64(&out.baseline_dispatch_fallback) ||
      !r.u64(&out.spt_dispatch_fast) || !r.u64(&out.spt_dispatch_fallback) ||
      !r.u64(&out.spt_arena_frame_allocs) ||
      !r.u64(&out.spt_arena_frame_reuses) ||
      !r.f64(&out.spt_records_per_alloc) ||
      !r.f64(&out.host_baseline_seconds) || !r.f64(&out.host_spt_seconds) ||
      !r.f64(&out.host_baseline_mips) || !r.f64(&out.host_spt_mips)) {
    return false;
  }
  if (!r.ok() || !r.atEnd()) return false;
  *row = std::move(out);
  return true;
}

}  // namespace spt::harness

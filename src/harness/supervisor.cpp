#include "harness/supervisor.h"

#include <cstring>
#include <deque>
#include <sstream>
#include <thread>

#include "support/error.h"
#include "support/rng.h"
#include "support/thread_pool.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define SPT_SUPERVISOR_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SPT_SUPERVISOR_POSIX 0
#endif

namespace spt::harness {
namespace {

// ---- Frame codec (trace_io v2 FNV approach) -------------------------------

constexpr char kFrameMagic[4] = {'S', 'P', 'T', 'W'};
constexpr std::uint32_t kFrameVersion = 1;
// magic + version + kind + length.
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1 + 8;
// A reply larger than this is corruption, not a result.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 28;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

void appendRaw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

std::string hexDump(const std::string& bytes, std::size_t limit) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(bytes.size(), limit);
  out.reserve(n * 2 + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(bytes[i]);
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  if (bytes.size() > limit) out += "..";
  return out;
}

}  // namespace

std::string encodeSupervisorFrame(std::uint8_t kind,
                                  const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + 8);
  appendRaw(out, kFrameMagic, sizeof kFrameMagic);
  const std::uint32_t version = kFrameVersion;
  appendRaw(out, &version, sizeof version);
  appendRaw(out, &kind, sizeof kind);
  const std::uint64_t length = payload.size();
  appendRaw(out, &length, sizeof length);
  out += payload;
  std::uint64_t checksum = kFnvOffset;
  checksum = fnv1a(checksum, &kind, sizeof kind);
  checksum = fnv1a(checksum, &length, sizeof length);
  checksum = fnv1a(checksum, payload.data(), payload.size());
  appendRaw(out, &checksum, sizeof checksum);
  return out;
}

bool decodeSupervisorFrame(const std::string& bytes, std::uint8_t* kind,
                           std::string* payload, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (bytes.empty()) return fail("empty reply (no frame)");
  if (bytes.size() < kFrameHeaderBytes + 8) {
    return fail("short reply: " + std::to_string(bytes.size()) +
                " bytes, frame header needs " +
                std::to_string(kFrameHeaderBytes + 8));
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof kFrameMagic) != 0) {
    return fail("bad frame magic (first bytes " + hexDump(bytes, 8) + ")");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof version);
  if (version != kFrameVersion) {
    return fail("unsupported frame version " + std::to_string(version) +
                " (expected " + std::to_string(kFrameVersion) + ")");
  }
  std::uint8_t k = 0;
  std::memcpy(&k, bytes.data() + 8, sizeof k);
  std::uint64_t length = 0;
  std::memcpy(&length, bytes.data() + 9, sizeof length);
  if (length > kMaxPayloadBytes) {
    return fail("frame length " + std::to_string(length) +
                " exceeds the payload cap");
  }
  if (bytes.size() != kFrameHeaderBytes + length + 8) {
    return fail("frame length mismatch: header says " +
                std::to_string(length) + " payload bytes, reply carries " +
                std::to_string(bytes.size() - kFrameHeaderBytes - 8));
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + kFrameHeaderBytes + length,
              sizeof stored);
  std::uint64_t checksum = kFnvOffset;
  checksum = fnv1a(checksum, &k, sizeof k);
  checksum = fnv1a(checksum, &length, sizeof length);
  checksum = fnv1a(checksum, bytes.data() + kFrameHeaderBytes, length);
  if (checksum != stored) {
    return fail("frame checksum mismatch: stored " + std::to_string(stored) +
                ", computed " + std::to_string(checksum) +
                " (reply bytes corrupted)");
  }
  if (kind != nullptr) *kind = k;
  if (payload != nullptr) {
    payload->assign(bytes, kFrameHeaderBytes, length);
  }
  return true;
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.jobs == 0) {
    options_.jobs = support::ThreadPool::defaultWorkerCount();
  }
}

double Supervisor::backoffSeconds(std::size_t cell,
                                  std::uint32_t attempt) const {
  if (attempt < 2) return 0.0;
  support::Rng rng(support::deriveSeed(
      options_.backoff_seed,
      static_cast<std::uint64_t>(cell) * 64 + attempt));
  const double factor = static_cast<double>(1ull << (attempt - 2));
  return options_.backoff_base_seconds * factor * (1.0 + rng.nextDouble());
}

#if SPT_SUPERVISOR_POSIX

namespace {

using Clock = std::chrono::steady_clock;

bool writeAll(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Deterministic garbage for ChaosAction::kGarbage: seeded by the cell so
/// the bytes (and thus the protocol-error diagnostics) are reproducible,
/// and guaranteed not to start with the frame magic.
std::string chaosGarbage(std::size_t cell) {
  support::Rng rng(support::deriveSeed(0xc4a05, cell));
  std::string bytes(64, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.nextBelow(256));
  }
  bytes[0] = static_cast<char>(static_cast<unsigned char>(bytes[0]) | 0x80);
  return bytes;
}

/// Worker body. Never returns: replies on `fd` and _exit()s. _exit (not
/// exit) so the forked copy of the parent's atexit handlers, static
/// destructors, and stdio buffers never run twice.
[[noreturn]] void runWorker(int fd, std::size_t cell, std::uint32_t attempt,
                            const SupervisorOptions& options,
                            const Supervisor::Producer& produce) {
  if (options.rlimit_as_bytes != 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(options.rlimit_as_bytes);
    rl.rlim_max = static_cast<rlim_t>(options.rlimit_as_bytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (options.rlimit_cpu_seconds != 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(options.rlimit_cpu_seconds);
    rl.rlim_max = static_cast<rlim_t>(options.rlimit_cpu_seconds + 1);
    ::setrlimit(RLIMIT_CPU, &rl);
  }

  switch (options.chaos.actionFor(cell, attempt)) {
    case support::ChaosAction::kNone:
      break;
    case support::ChaosAction::kCrash:
      // Sanitizer runtimes install SIGSEGV handlers that turn the crash
      // into a clean exit; restore the default action so the parent sees
      // a genuine signal death on every build type.
      ::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      ::_exit(97);  // unreachable
    case support::ChaosAction::kAbort:
      ::signal(SIGABRT, SIG_DFL);
      std::abort();
    case support::ChaosAction::kHang:
      for (;;) ::pause();
    case support::ChaosAction::kGarbage: {
      const std::string garbage = chaosGarbage(cell);
      writeAll(fd, garbage.data(), garbage.size());
      ::close(fd);
      ::_exit(0);
    }
    case support::ChaosAction::kPartial: {
      const std::string frame =
          encodeSupervisorFrame(0, "chaos-partial-payload");
      writeAll(fd, frame.data(), frame.size() / 2);
      ::close(fd);
      ::_exit(0);
    }
    case support::ChaosAction::kExit:
      ::_exit(3);
  }

  std::string frame;
  try {
    frame = encodeSupervisorFrame(0, produce(cell));
  } catch (const std::exception& e) {
    // Last-resort structured report (the producer normally catches cell
    // exceptions itself): kind-1 frames carry the worker's error text.
    frame = encodeSupervisorFrame(1, e.what());
  } catch (...) {
    frame = encodeSupervisorFrame(1, "unknown worker exception");
  }
  const bool ok = writeAll(fd, frame.data(), frame.size());
  ::close(fd);
  ::_exit(ok ? 0 : 1);
}

struct RunningWorker {
  std::size_t cell = 0;
  std::uint32_t attempt = 1;
  pid_t pid = -1;
  int fd = -1;
  bool has_deadline = false;
  Clock::time_point deadline;
  std::string buf;
};

struct PendingCell {
  std::size_t cell = 0;
  std::uint32_t attempt = 1;
  Clock::time_point not_before;
};

int signalOf(int wait_status) {
  return WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
}

}  // namespace

bool Supervisor::isolationSupported() { return true; }

std::vector<Supervisor::Outcome> Supervisor::run(
    std::size_t n, const Producer& produce,
    const OnSettled& on_settled) const {
  std::vector<Outcome> out(n);
  std::deque<PendingCell> pending;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) pending.push_back({i, 1, start});
  std::vector<RunningWorker> running;
  std::size_t settled = 0;

  const auto settle = [&](std::size_t cell, Outcome outcome) {
    out[cell] = std::move(outcome);
    ++settled;
    if (on_settled) on_settled(cell, out[cell]);
  };

  // Reaps one worker (blocking wait4; the fd already saw EOF or the
  // worker was just SIGKILLed) and either settles or schedules a retry.
  const auto reap = [&](RunningWorker& w, bool timed_out) {
    int wait_status = 0;
    rusage ru{};
    while (::wait4(w.pid, &wait_status, 0, &ru) < 0 && errno == EINTR) {
    }
    ::close(w.fd);

    Outcome oc;
    oc.worker.attempts = w.attempt;
    oc.worker.timed_out = timed_out;
    oc.worker.host_user_seconds =
        static_cast<double>(ru.ru_utime.tv_sec) +
        static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
    oc.worker.host_sys_seconds =
        static_cast<double>(ru.ru_stime.tv_sec) +
        static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    oc.worker.host_max_rss_kb = static_cast<std::int64_t>(ru.ru_maxrss);

    const int sig = signalOf(wait_status);
    if (timed_out) {
      oc.status = CellStatus::kTimeout;
      oc.worker.term_signal = sig;
      std::ostringstream os;
      os << "worker exceeded the " << options_.cell_timeout_seconds
         << "s wall-clock deadline on attempt " << w.attempt
         << "; killed (SIGKILL)";
      oc.diagnostic = os.str();
    } else if (sig != 0) {
      oc.worker.term_signal = sig;
      if (sig == SIGXCPU) {
        oc.status = CellStatus::kTimeout;
        oc.diagnostic = "worker hit RLIMIT_CPU (" +
                        std::to_string(options_.rlimit_cpu_seconds) +
                        "s) and died on SIGXCPU";
      } else {
        oc.status = CellStatus::kCrashed;
        const char* name = ::strsignal(sig);
        oc.diagnostic = "worker killed by signal " + std::to_string(sig) +
                        (name != nullptr ? std::string(" (") + name + ")"
                                         : std::string()) +
                        " after " + std::to_string(w.buf.size()) +
                        " reply bytes";
      }
      if (!w.buf.empty()) oc.worker.partial_reply = hexDump(w.buf, 64);
    } else {
      oc.worker.exit_code = WEXITSTATUS(wait_status);
      std::uint8_t kind = 0;
      std::string payload;
      std::string why;
      if (decodeSupervisorFrame(w.buf, &kind, &payload, &why)) {
        if (kind == 0) {
          oc.status = CellStatus::kOk;
          oc.payload = std::move(payload);
        } else {
          oc.status = CellStatus::kInternalError;
          oc.diagnostic = "worker error: " + payload;
        }
      } else {
        oc.status = CellStatus::kProtocolError;
        oc.diagnostic = "worker reply failed frame validation: " + why +
                        " (exit code " +
                        std::to_string(oc.worker.exit_code) + ")";
        oc.worker.partial_reply = hexDump(w.buf, 64);
      }
    }

    if (isTransportFailure(oc.status) && w.attempt <= options_.retries) {
      const double delay = backoffSeconds(w.cell, w.attempt + 1);
      pending.push_back(
          {w.cell, w.attempt + 1,
           Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(delay))});
    } else {
      settle(w.cell, std::move(oc));
    }
  };

  const auto spawn = [&](const PendingCell& p) {
    int fds[2];
    if (::pipe(fds) < 0) {
      Outcome oc;
      oc.status = CellStatus::kCrashed;
      oc.worker.attempts = p.attempt;
      oc.diagnostic = std::string("pipe() failed: ") + std::strerror(errno);
      settle(p.cell, std::move(oc));
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      Outcome oc;
      oc.status = CellStatus::kCrashed;
      oc.worker.attempts = p.attempt;
      oc.diagnostic = std::string("fork() failed: ") + std::strerror(errno);
      settle(p.cell, std::move(oc));
      return;
    }
    if (pid == 0) {
      ::close(fds[0]);
      // Drop inherited read ends of sibling pipes.
      for (const RunningWorker& other : running) ::close(other.fd);
      runWorker(fds[1], p.cell, p.attempt, options_, produce);
    }
    ::close(fds[1]);
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    RunningWorker w;
    w.cell = p.cell;
    w.attempt = p.attempt;
    w.pid = pid;
    w.fd = fds[0];
    if (options_.cell_timeout_seconds > 0.0) {
      w.has_deadline = true;
      w.deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 options_.cell_timeout_seconds));
    }
    running.push_back(std::move(w));
  };

  while (settled < n) {
    Clock::time_point now = Clock::now();

    // Launch every due pending cell into a free worker slot.
    for (std::size_t i = 0;
         i < pending.size() && running.size() < options_.jobs;) {
      if (pending[i].not_before <= now) {
        const PendingCell p = pending[i];
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        spawn(p);
      } else {
        ++i;
      }
    }

    if (running.empty()) {
      if (pending.empty()) break;  // everything settled via spawn failures
      // Only backoff waits remain; sleep to the earliest one.
      Clock::time_point wake = pending.front().not_before;
      for (const PendingCell& p : pending) wake = std::min(wake, p.not_before);
      std::this_thread::sleep_until(wake);
      continue;
    }

    // Poll timeout: the nearest watchdog deadline or pending spawn time.
    long long timeout_ms = -1;
    const auto consider = [&](Clock::time_point t) {
      const long long ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(t - now)
              .count();
      const long long clamped = ms < 0 ? 0 : ms + 1;
      if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
    };
    for (const RunningWorker& w : running) {
      if (w.has_deadline) consider(w.deadline);
    }
    for (const PendingCell& p : pending) consider(p.not_before);

    std::vector<pollfd> fds(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      fds[i] = pollfd{running[i].fd, POLLIN, 0};
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               timeout_ms < 0 ? -1 : static_cast<int>(
                                         std::min<long long>(timeout_ms,
                                                             60'000)));
    if (rc < 0 && errno != EINTR) {
      // A broken poll loop cannot supervise; fail loudly rather than spin.
      throw support::SptInternalError(
          std::string("supervisor poll() failed: ") + std::strerror(errno));
    }

    // Drain readable pipes; EOF means the worker finished its reply.
    for (std::size_t i = 0; i < running.size();) {
      RunningWorker& w = running[i];
      const short revents = fds[i].revents;
      bool done = false;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        char chunk[65536];
        for (;;) {
          const ssize_t r = ::read(w.fd, chunk, sizeof chunk);
          if (r > 0) {
            w.buf.append(chunk, static_cast<std::size_t>(r));
            if (w.buf.size() > kMaxPayloadBytes + kFrameHeaderBytes + 8) {
              ::kill(w.pid, SIGKILL);
              done = true;  // oversized reply; reap as protocol error
              break;
            }
            continue;
          }
          if (r == 0) {
            done = true;
            break;
          }
          if (errno == EINTR) continue;
          break;  // EAGAIN: drained for now
        }
      }
      if (done) {
        RunningWorker finished = std::move(w);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        reap(finished, /*timed_out=*/false);
      } else {
        ++i;
      }
    }

    // Watchdog: SIGKILL overdue workers and reap them as timeouts.
    now = Clock::now();
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].has_deadline && running[i].deadline <= now) {
        RunningWorker overdue = std::move(running[i]);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        ::kill(overdue.pid, SIGKILL);
        reap(overdue, /*timed_out=*/true);
      } else {
        ++i;
      }
    }
  }
  return out;
}

#else  // !SPT_SUPERVISOR_POSIX

bool Supervisor::isolationSupported() { return false; }

std::vector<Supervisor::Outcome> Supervisor::run(std::size_t, const Producer&,
                                                 const OnSettled&) const {
  throw support::SptInternalError(
      "process isolation is not supported on this platform (no fork); "
      "use the in-process path");
}

#endif  // SPT_SUPERVISOR_POSIX

}  // namespace spt::harness

#include "harness/supervisor.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <sstream>
#include <thread>

#include "support/error.h"
#include "support/rng.h"
#include "support/thread_pool.h"

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define SPT_SUPERVISOR_POSIX 1
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define SPT_SUPERVISOR_POSIX 0
#endif

namespace spt::harness {
namespace {

// ---- Frame codec (trace_io v2 FNV approach) -------------------------------

constexpr char kFrameMagic[4] = {'S', 'P', 'T', 'W'};
// magic + version + kind + length.
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1 + 8;
// A reply larger than this is corruption, not a result.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 28;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

void appendRaw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

std::string hexDump(const std::string& bytes, std::size_t limit) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(bytes.size(), limit);
  out.reserve(n * 2 + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(bytes[i]);
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  if (bytes.size() > limit) out += "..";
  return out;
}

/// The highest kind a frame of `version` may carry: v1 knows only the two
/// one-shot reply kinds; v2 adds request and cell-tagged replies; v3 adds
/// the spec request.
std::uint8_t maxKindForVersion(std::uint32_t version) {
  switch (version) {
    case kSupervisorFrameV1:
      return kFrameKindWorkerError;
    case kSupervisorFrameV2:
      return kFrameKindPooledError;
    default:
      return kFrameKindSpecRequest;
  }
}

bool supportedFrameVersion(std::uint32_t version) {
  return version >= kSupervisorFrameV1 && version <= kSupervisorFrameV3;
}

}  // namespace

std::string encodeSupervisorFrame(std::uint8_t kind,
                                  const std::string& payload,
                                  std::uint32_t version) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + 8);
  appendRaw(out, kFrameMagic, sizeof kFrameMagic);
  appendRaw(out, &version, sizeof version);
  appendRaw(out, &kind, sizeof kind);
  const std::uint64_t length = payload.size();
  appendRaw(out, &length, sizeof length);
  out += payload;
  std::uint64_t checksum = kFnvOffset;
  checksum = fnv1a(checksum, &kind, sizeof kind);
  checksum = fnv1a(checksum, &length, sizeof length);
  checksum = fnv1a(checksum, payload.data(), payload.size());
  appendRaw(out, &checksum, sizeof checksum);
  return out;
}

bool decodeSupervisorFrame(const std::string& bytes, std::uint8_t* kind,
                           std::string* payload, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (bytes.empty()) return fail("empty reply (no frame)");
  if (bytes.size() < kFrameHeaderBytes + 8) {
    return fail("short reply: " + std::to_string(bytes.size()) +
                " bytes, frame header needs " +
                std::to_string(kFrameHeaderBytes + 8));
  }
  if (std::memcmp(bytes.data(), kFrameMagic, sizeof kFrameMagic) != 0) {
    return fail("bad frame magic (first bytes " + hexDump(bytes, 8) + ")");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof version);
  if (!supportedFrameVersion(version)) {
    return fail("unsupported frame version " + std::to_string(version) +
                " (expected " + std::to_string(kSupervisorFrameV1) + " to " +
                std::to_string(kSupervisorFrameV3) + ")");
  }
  std::uint8_t k = 0;
  std::memcpy(&k, bytes.data() + 8, sizeof k);
  if (k > maxKindForVersion(version)) {
    return fail("frame kind " + std::to_string(k) +
                " is not valid in frame version " + std::to_string(version));
  }
  std::uint64_t length = 0;
  std::memcpy(&length, bytes.data() + 9, sizeof length);
  if (length > kMaxPayloadBytes) {
    return fail("frame length " + std::to_string(length) +
                " exceeds the payload cap");
  }
  if (bytes.size() != kFrameHeaderBytes + length + 8) {
    return fail("frame length mismatch: header says " +
                std::to_string(length) + " payload bytes, reply carries " +
                std::to_string(bytes.size() - kFrameHeaderBytes - 8));
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + kFrameHeaderBytes + length,
              sizeof stored);
  std::uint64_t checksum = kFnvOffset;
  checksum = fnv1a(checksum, &k, sizeof k);
  checksum = fnv1a(checksum, &length, sizeof length);
  checksum = fnv1a(checksum, bytes.data() + kFrameHeaderBytes, length);
  if (checksum != stored) {
    return fail("frame checksum mismatch: stored " + std::to_string(stored) +
                ", computed " + std::to_string(checksum) +
                " (reply bytes corrupted)");
  }
  if (kind != nullptr) *kind = k;
  if (payload != nullptr) {
    payload->assign(bytes, kFrameHeaderBytes, length);
  }
  return true;
}

FrameScan scanSupervisorFrame(const std::string& buf,
                              std::size_t* frame_bytes, std::string* error) {
  const auto corrupt = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return FrameScan::kCorrupt;
  };
  // Reject a garbage stream on the first bytes that can prove it garbage,
  // rather than waiting for a length that will never arrive.
  const std::size_t magic_avail = std::min(buf.size(), sizeof kFrameMagic);
  if (std::memcmp(buf.data(), kFrameMagic, magic_avail) != 0) {
    return corrupt("bad frame magic (first bytes " + hexDump(buf, 8) + ")");
  }
  if (buf.size() < 8) return FrameScan::kNeedMore;
  std::uint32_t version = 0;
  std::memcpy(&version, buf.data() + 4, sizeof version);
  if (!supportedFrameVersion(version)) {
    return corrupt("unsupported frame version " + std::to_string(version));
  }
  if (buf.size() < kFrameHeaderBytes) return FrameScan::kNeedMore;
  std::uint64_t length = 0;
  std::memcpy(&length, buf.data() + 9, sizeof length);
  if (length > kMaxPayloadBytes) {
    return corrupt("frame length " + std::to_string(length) +
                   " exceeds the payload cap");
  }
  const std::size_t total =
      kFrameHeaderBytes + static_cast<std::size_t>(length) + 8;
  if (buf.size() < total) return FrameScan::kNeedMore;
  if (frame_bytes != nullptr) *frame_bytes = total;
  return FrameScan::kFrame;
}

std::string encodePoolRequest(std::uint64_t cell, std::uint32_t attempt) {
  std::string out;
  out.reserve(sizeof cell + sizeof attempt);
  appendRaw(out, &cell, sizeof cell);
  appendRaw(out, &attempt, sizeof attempt);
  return out;
}

bool decodePoolRequest(const std::string& payload, std::uint64_t* cell,
                       std::uint32_t* attempt) {
  if (payload.size() != sizeof(std::uint64_t) + sizeof(std::uint32_t)) {
    return false;
  }
  std::memcpy(cell, payload.data(), sizeof *cell);
  std::memcpy(attempt, payload.data() + sizeof *cell, sizeof *attempt);
  return true;
}

std::string encodePoolReply(const PoolReplyHeader& header,
                            const std::string& inner) {
  std::string out;
  out.reserve(32 + inner.size());
  appendRaw(out, &header.cell, sizeof header.cell);
  appendRaw(out, &header.user_seconds, sizeof header.user_seconds);
  appendRaw(out, &header.sys_seconds, sizeof header.sys_seconds);
  appendRaw(out, &header.max_rss_kb, sizeof header.max_rss_kb);
  out += inner;
  return out;
}

bool decodePoolReply(const std::string& payload, PoolReplyHeader* header,
                     std::string* inner) {
  constexpr std::size_t kPrefix = 8 + 8 + 8 + 8;
  if (payload.size() < kPrefix) return false;
  std::memcpy(&header->cell, payload.data(), 8);
  std::memcpy(&header->user_seconds, payload.data() + 8, 8);
  std::memcpy(&header->sys_seconds, payload.data() + 16, 8);
  std::memcpy(&header->max_rss_kb, payload.data() + 24, 8);
  inner->assign(payload, kPrefix, payload.size() - kPrefix);
  return true;
}

std::string encodePoolSpecRequest(std::uint64_t id, std::uint32_t attempt,
                                  support::ChaosAction chaos,
                                  const std::string& spec) {
  std::string out;
  const std::uint8_t action = static_cast<std::uint8_t>(chaos);
  out.reserve(sizeof id + sizeof attempt + sizeof action + spec.size());
  appendRaw(out, &id, sizeof id);
  appendRaw(out, &attempt, sizeof attempt);
  appendRaw(out, &action, sizeof action);
  out += spec;
  return out;
}

bool decodePoolSpecRequest(const std::string& payload, std::uint64_t* id,
                           std::uint32_t* attempt,
                           support::ChaosAction* chaos, std::string* spec) {
  constexpr std::size_t kPrefix = 8 + 4 + 1;
  if (payload.size() < kPrefix) return false;
  std::memcpy(id, payload.data(), 8);
  std::memcpy(attempt, payload.data() + 8, 4);
  std::uint8_t action = 0;
  std::memcpy(&action, payload.data() + 12, 1);
  if (action > static_cast<std::uint8_t>(support::ChaosAction::kExit)) {
    return false;
  }
  *chaos = static_cast<support::ChaosAction>(action);
  spec->assign(payload, kPrefix, payload.size() - kPrefix);
  return true;
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.jobs == 0) {
    options_.jobs = support::ThreadPool::defaultWorkerCount();
  }
}

double Supervisor::backoffSeconds(std::size_t cell,
                                  std::uint32_t attempt) const {
  if (attempt < 2) return 0.0;
  // Chain deriveSeed so cell and attempt enter the splitmix64 finalizer as
  // separate words: the old `cell * 64 + attempt` packing collided (e.g.
  // (cell 0, attempt 66) with (cell 1, attempt 2)), giving those pairs an
  // identical jitter stream.
  support::Rng rng(support::deriveSeed(
      support::deriveSeed(options_.backoff_seed, cell), attempt));
  // Clamp the exponent: `1ull << (attempt - 2)` is UB once attempt >= 66,
  // and any delay beyond 2^62 * base is indistinguishable from forever.
  const std::uint32_t exponent = std::min<std::uint32_t>(attempt - 2, 62);
  const double factor = static_cast<double>(1ull << exponent);
  return options_.backoff_base_seconds * factor * (1.0 + rng.nextDouble());
}

#if SPT_SUPERVISOR_POSIX

namespace {

using Clock = std::chrono::steady_clock;

bool writeAll(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// ru_maxrss is KB on Linux but **bytes** on macOS; WorkerDiagnostics
/// promises KB, so normalize here.
std::int64_t maxRssKb(const rusage& ru) {
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss) / 1024;
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);
#endif
}

double timevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) / 1e6;
}

/// Deterministic garbage for ChaosAction::kGarbage: seeded by the cell so
/// the bytes (and thus the protocol-error diagnostics) are reproducible,
/// and guaranteed not to start with the frame magic.
std::string chaosGarbage(std::size_t cell) {
  support::Rng rng(support::deriveSeed(0xc4a05, cell));
  std::string bytes(64, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.nextBelow(256));
  }
  bytes[0] = static_cast<char>(static_cast<unsigned char>(bytes[0]) | 0x80);
  return bytes;
}

/// Executes a non-kNone chaos action inside a worker. Never returns except
/// for kHang's pause loop (which also never returns). `partial_frame` is
/// the valid reply frame whose first half a kPartial worker emits — the
/// caller builds it in its own protocol version.
[[noreturn]] void performChaos(support::ChaosAction action, int fd,
                               std::size_t cell,
                               const std::string& partial_frame) {
  switch (action) {
    case support::ChaosAction::kCrash:
      // Sanitizer runtimes install SIGSEGV handlers that turn the crash
      // into a clean exit; restore the default action so the parent sees
      // a genuine signal death on every build type.
      ::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      ::_exit(97);  // unreachable
    case support::ChaosAction::kAbort:
      ::signal(SIGABRT, SIG_DFL);
      std::abort();
    case support::ChaosAction::kHang:
      for (;;) ::pause();
    case support::ChaosAction::kGarbage: {
      const std::string garbage = chaosGarbage(cell);
      writeAll(fd, garbage.data(), garbage.size());
      ::close(fd);
      ::_exit(0);
    }
    case support::ChaosAction::kPartial:
      writeAll(fd, partial_frame.data(), partial_frame.size() / 2);
      ::close(fd);
      ::_exit(0);
    case support::ChaosAction::kExit:
    case support::ChaosAction::kNone:  // unreachable; callers filter kNone
      ::_exit(3);
  }
  ::_exit(3);
}

/// One-shot worker body. Never returns: replies on `fd` and _exit()s.
/// _exit (not exit) so the forked copy of the parent's atexit handlers,
/// static destructors, and stdio buffers never run twice.
[[noreturn]] void runWorker(int fd, std::size_t cell, std::uint32_t attempt,
                            const SupervisorOptions& options,
                            const Supervisor::Producer& produce) {
  if (options.rlimit_as_bytes != 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(options.rlimit_as_bytes);
    rl.rlim_max = static_cast<rlim_t>(options.rlimit_as_bytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }
  if (options.rlimit_cpu_seconds != 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(options.rlimit_cpu_seconds);
    rl.rlim_max = static_cast<rlim_t>(options.rlimit_cpu_seconds + 1);
    ::setrlimit(RLIMIT_CPU, &rl);
  }

  const support::ChaosAction chaos = options.chaos.actionFor(cell, attempt);
  if (chaos != support::ChaosAction::kNone) {
    performChaos(chaos, fd, cell,
                 encodeSupervisorFrame(kFrameKindPayload,
                                       "chaos-partial-payload"));
  }

  std::string frame;
  try {
    frame = encodeSupervisorFrame(kFrameKindPayload, produce(cell));
  } catch (const std::exception& e) {
    // Last-resort structured report (the producer normally catches cell
    // exceptions itself): kind-1 frames carry the worker's error text.
    frame = encodeSupervisorFrame(kFrameKindWorkerError, e.what());
  } catch (...) {
    frame = encodeSupervisorFrame(kFrameKindWorkerError,
                                  "unknown worker exception");
  }
  const bool ok = writeAll(fd, frame.data(), frame.size());
  ::close(fd);
  ::_exit(ok ? 0 : 1);
}

/// Re-arms the per-cell CPU window of a pooled worker. RLIMIT_CPU counts
/// cumulative process CPU, so a long-lived worker must move the limit
/// forward before each cell: budget measured from CPU already spent.
/// Only the soft limit moves — an unprivileged process cannot raise its
/// own hard limit, so touching rlim_max would make every re-arm after the
/// first fail with EPERM and freeze the CPU window on the first cell's
/// budget (SIGXCPU on healthy cells, misreported as timeouts).
void armPooledCpuLimit(std::uint64_t limit_seconds) {
  if (limit_seconds == 0) return;
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  // +1 rounds the already-spent seconds up so a worker that burned 0.9s
  // on earlier cells still gets the full window for this one.
  const rlim_t used =
      static_cast<rlim_t>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) + 1;
  rlimit rl{};
  if (::getrlimit(RLIMIT_CPU, &rl) != 0) return;
  rlim_t want = used + static_cast<rlim_t>(limit_seconds);
  if (rl.rlim_max != RLIM_INFINITY && want > rl.rlim_max) {
    want = rl.rlim_max;  // the inherited hard cap wins
  }
  rl.rlim_cur = want;
  if (::setrlimit(RLIMIT_CPU, &rl) != 0) {
    // Enforcement degrades to the previous window; the parent's wall-clock
    // watchdog still bounds the cell, so warn rather than die.
    std::fprintf(stderr,
                 "sptc worker %d: re-arming RLIMIT_CPU failed: %s\n",
                 static_cast<int>(::getpid()), std::strerror(errno));
  }
}

/// One decoded request off a pooled worker's request pipe: either an
/// index-mode cell (SPTW v2) or a spec-mode job (SPTW v3).
struct PoolWorkerRequest {
  std::uint64_t id = 0;  // cell index (v2) or opaque token (v3)
  std::uint32_t attempt = 1;
  bool has_spec = false;
  support::ChaosAction chaos = support::ChaosAction::kNone;  // v3 only
  std::string spec;                                          // v3 only
};

/// Blocks until one complete request frame is buffered, decoded, and
/// consumed. Returns false on clean shutdown (parent closed the request
/// pipe). Any malformed bytes on the request pipe are unrecoverable for
/// the worker; it exits and lets the parent's containment classify it.
bool readPoolRequest(int fd, std::string& buf, PoolWorkerRequest* req) {
  for (;;) {
    std::size_t frame_bytes = 0;
    const FrameScan scan = scanSupervisorFrame(buf, &frame_bytes, nullptr);
    if (scan == FrameScan::kCorrupt) ::_exit(2);
    if (scan == FrameScan::kFrame) {
      std::uint8_t kind = 0;
      std::string payload;
      if (!decodeSupervisorFrame(buf.substr(0, frame_bytes), &kind, &payload,
                                 nullptr)) {
        ::_exit(2);
      }
      buf.erase(0, frame_bytes);
      if (kind == kFrameKindRequest) {
        req->has_spec = false;
        req->chaos = support::ChaosAction::kNone;
        req->spec.clear();
        if (!decodePoolRequest(payload, &req->id, &req->attempt)) ::_exit(2);
      } else if (kind == kFrameKindSpecRequest) {
        req->has_spec = true;
        if (!decodePoolSpecRequest(payload, &req->id, &req->attempt,
                                   &req->chaos, &req->spec)) {
          ::_exit(2);
        }
      } else {
        ::_exit(2);
      }
      return true;
    }
    char chunk[4096];
    const ssize_t r = ::read(fd, chunk, sizeof chunk);
    if (r > 0) {
      buf.append(chunk, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) return false;  // EOF: the run is over
    if (errno == EINTR) continue;
    ::_exit(1);
  }
}

/// Pooled worker body: loop `recv request -> produce -> reply` until the
/// parent closes the request pipe. Every reply is a v2 frame tagged with
/// the id it answers plus the worker's self-reported per-cell rusage —
/// spec-mode requests are answered with the same reply kinds, so the
/// parent-side reply handling is identical across modes.
[[noreturn]] void runPoolWorker(int request_fd, int reply_fd,
                                const SupervisorOptions& options,
                                const Supervisor::Producer& produce,
                                const WorkerPool::SpecProducer& produce_spec) {
  if (options.rlimit_as_bytes != 0) {
    rlimit rl{};
    rl.rlim_cur = static_cast<rlim_t>(options.rlimit_as_bytes);
    rl.rlim_max = static_cast<rlim_t>(options.rlimit_as_bytes);
    ::setrlimit(RLIMIT_AS, &rl);
  }

  std::string in;
  PoolWorkerRequest req;
  while (readPoolRequest(request_fd, in, &req)) {
    armPooledCpuLimit(options.rlimit_cpu_seconds);

    // Index-mode chaos is resolved here from the plan (the worker knows
    // the cell index); spec-mode chaos arrives pre-resolved in the frame.
    const support::ChaosAction chaos =
        req.has_spec
            ? req.chaos
            : options.chaos.actionFor(static_cast<std::size_t>(req.id),
                                      req.attempt);
    if (chaos != support::ChaosAction::kNone) {
      performChaos(chaos, reply_fd, static_cast<std::size_t>(req.id),
                   encodeSupervisorFrame(
                       kFrameKindPooledReply,
                       encodePoolReply({req.id, 0.0, 0.0, 0},
                                       "chaos-partial-payload"),
                       kSupervisorFrameV2));
    }

    rusage before{};
    ::getrusage(RUSAGE_SELF, &before);
    std::uint8_t kind = kFrameKindPooledReply;
    std::string inner;
    try {
      if (req.has_spec) {
        if (!produce_spec) ::_exit(2);  // spec job sent to an index-only pool
        inner = produce_spec(req.spec);
      } else {
        inner = produce(static_cast<std::size_t>(req.id));
      }
    } catch (const std::exception& e) {
      kind = kFrameKindPooledError;
      inner = e.what();
    } catch (...) {
      kind = kFrameKindPooledError;
      inner = "unknown worker exception";
    }
    rusage after{};
    ::getrusage(RUSAGE_SELF, &after);
    PoolReplyHeader header;
    header.cell = req.id;
    header.user_seconds =
        timevalSeconds(after.ru_utime) - timevalSeconds(before.ru_utime);
    header.sys_seconds =
        timevalSeconds(after.ru_stime) - timevalSeconds(before.ru_stime);
    header.max_rss_kb = maxRssKb(after);
    const std::string frame = encodeSupervisorFrame(
        kind, encodePoolReply(header, inner), kSupervisorFrameV2);
    if (!writeAll(reply_fd, frame.data(), frame.size())) ::_exit(1);
  }
  ::_exit(0);
}

struct RunningWorker {
  std::size_t cell = 0;
  std::uint32_t attempt = 1;
  pid_t pid = -1;
  int fd = -1;
  bool has_deadline = false;
  Clock::time_point deadline;
  std::string buf;
};

struct PendingCell {
  std::size_t cell = 0;
  std::uint32_t attempt = 1;
  Clock::time_point not_before;
};

/// One long-lived pool member. `busy` workers own an in-flight job and
/// are polled; idle workers sit out of the poll set (a dead idle worker
/// surfaces as a failed request write at the next dispatch).
struct PoolWorker {
  pid_t pid = -1;
  int request_fd = -1;  // parent writes SPTW v2/v3 request frames here
  int reply_fd = -1;    // parent reads the worker's reply stream here
  bool busy = false;
  std::uint64_t id = 0;  // cell index (index mode) or opaque token (spec)
  std::uint32_t attempt = 1;
  bool has_deadline = false;
  Clock::time_point deadline;
  std::string buf;  // reply stream accumulator
};

int signalOf(int wait_status) {
  return WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
}

int reapWorker(pid_t pid, rusage* ru) {
  int wait_status = 0;
  while (::wait4(pid, &wait_status, 0, ru) < 0 && errno == EINTR) {
  }
  return wait_status;
}

Clock::time_point deadlineFrom(Clock::time_point now, double seconds) {
  return now + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(seconds));
}

/// Diagnostic for cells cancelled by SupervisorOptions::stop. Settled as
/// kInternalError (never retried, re-run by --resume) with attempts == 0,
/// so no worker block appears in JSON for a cell that never ran one.
constexpr const char* kInterruptedDiagnostic =
    "interrupted by signal before dispatch; finished cells are "
    "checkpointed, re-run with --resume";

/// Scoped SIG_IGN for SIGPIPE: the pooled parent writes request frames to
/// pipes whose worker may just have died; the write must fail with EPIPE,
/// not kill the sweep. Restores the previous disposition on scope exit.
class ScopedIgnoreSigpipe {
 public:
  ScopedIgnoreSigpipe() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedIgnoreSigpipe() { ::sigaction(SIGPIPE, &saved_, nullptr); }
  ScopedIgnoreSigpipe(const ScopedIgnoreSigpipe&) = delete;
  ScopedIgnoreSigpipe& operator=(const ScopedIgnoreSigpipe&) = delete;

 private:
  struct sigaction saved_ {};
};

}  // namespace

bool Supervisor::isolationSupported() { return true; }

std::vector<Supervisor::Outcome> Supervisor::run(
    std::size_t n, const Producer& produce, const OnSettled& on_settled,
    PoolStats* stats) const {
  if (stats != nullptr) *stats = PoolStats{};
  return options_.pool ? runPooled(n, produce, on_settled, stats)
                       : runForked(n, produce, on_settled, stats);
}

std::vector<Supervisor::Outcome> Supervisor::runForked(
    std::size_t n, const Producer& produce, const OnSettled& on_settled,
    PoolStats* stats) const {
  std::vector<Outcome> out(n);
  std::deque<PendingCell> pending;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) pending.push_back({i, 1, start});
  std::vector<RunningWorker> running;
  std::size_t settled = 0;
  bool interrupted = false;
  const auto stopRequested = [&] {
    return options_.stop != nullptr && *options_.stop != 0;
  };

  const auto settle = [&](std::size_t cell, Outcome outcome) {
    out[cell] = std::move(outcome);
    ++settled;
    if (on_settled) on_settled(cell, out[cell]);
  };

  // Reaps one worker (blocking wait4; the fd already saw EOF or the
  // worker was just SIGKILLed) and either settles or schedules a retry.
  const auto reap = [&](RunningWorker& w, bool timed_out) {
    rusage ru{};
    const int wait_status = reapWorker(w.pid, &ru);
    ::close(w.fd);

    Outcome oc;
    oc.worker.attempts = w.attempt;
    oc.worker.timed_out = timed_out;
    oc.worker.host_user_seconds = timevalSeconds(ru.ru_utime);
    oc.worker.host_sys_seconds = timevalSeconds(ru.ru_stime);
    oc.worker.host_max_rss_kb = maxRssKb(ru);

    const int sig = signalOf(wait_status);
    if (timed_out) {
      oc.status = CellStatus::kTimeout;
      oc.worker.term_signal = sig;
      std::ostringstream os;
      os << "worker exceeded the " << options_.cell_timeout_seconds
         << "s wall-clock deadline on attempt " << w.attempt
         << "; killed (SIGKILL)";
      oc.diagnostic = os.str();
    } else if (sig != 0) {
      oc.worker.term_signal = sig;
      if (sig == SIGXCPU) {
        oc.status = CellStatus::kTimeout;
        oc.diagnostic = "worker hit RLIMIT_CPU (" +
                        std::to_string(options_.rlimit_cpu_seconds) +
                        "s) and died on SIGXCPU";
      } else {
        oc.status = CellStatus::kCrashed;
        const char* name = ::strsignal(sig);
        oc.diagnostic = "worker killed by signal " + std::to_string(sig) +
                        (name != nullptr ? std::string(" (") + name + ")"
                                         : std::string()) +
                        " after " + std::to_string(w.buf.size()) +
                        " reply bytes";
      }
      if (!w.buf.empty()) oc.worker.partial_reply = hexDump(w.buf, 64);
    } else {
      oc.worker.exit_code = WEXITSTATUS(wait_status);
      std::uint8_t kind = 0;
      std::string payload;
      std::string why;
      if (decodeSupervisorFrame(w.buf, &kind, &payload, &why)) {
        if (kind == kFrameKindPayload) {
          oc.status = CellStatus::kOk;
          oc.payload = std::move(payload);
        } else {
          oc.status = CellStatus::kInternalError;
          oc.diagnostic = "worker error: " + payload;
        }
      } else {
        oc.status = CellStatus::kProtocolError;
        oc.diagnostic = "worker reply failed frame validation: " + why +
                        " (exit code " +
                        std::to_string(oc.worker.exit_code) + ")";
        oc.worker.partial_reply = hexDump(w.buf, 64);
      }
    }

    if (!interrupted && isTransportFailure(oc.status) &&
        w.attempt <= options_.retries) {
      const double delay = backoffSeconds(w.cell, w.attempt + 1);
      pending.push_back(
          {w.cell, w.attempt + 1, deadlineFrom(Clock::now(), delay)});
    } else {
      settle(w.cell, std::move(oc));
    }
  };

  const auto spawn = [&](const PendingCell& p) {
    int fds[2];
    if (::pipe(fds) < 0) {
      Outcome oc;
      oc.status = CellStatus::kCrashed;
      oc.worker.attempts = p.attempt;
      oc.diagnostic = std::string("pipe() failed: ") + std::strerror(errno);
      settle(p.cell, std::move(oc));
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      Outcome oc;
      oc.status = CellStatus::kCrashed;
      oc.worker.attempts = p.attempt;
      oc.diagnostic = std::string("fork() failed: ") + std::strerror(errno);
      settle(p.cell, std::move(oc));
      return;
    }
    if (pid == 0) {
      ::close(fds[0]);
      // Drop inherited read ends of sibling pipes.
      for (const RunningWorker& other : running) ::close(other.fd);
      runWorker(fds[1], p.cell, p.attempt, options_, produce);
    }
    if (stats != nullptr) ++stats->workers_spawned;
    ::close(fds[1]);
    const int flags = ::fcntl(fds[0], F_GETFL, 0);
    ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
    RunningWorker w;
    w.cell = p.cell;
    w.attempt = p.attempt;
    w.pid = pid;
    w.fd = fds[0];
    if (options_.cell_timeout_seconds > 0.0) {
      w.has_deadline = true;
      w.deadline = deadlineFrom(Clock::now(), options_.cell_timeout_seconds);
    }
    running.push_back(std::move(w));
  };

  while (settled < n) {
    if (!interrupted && stopRequested()) {
      // Graceful interrupt: cancel every undispatched cell (settled as
      // kInternalError, re-run on --resume) and let the in-flight workers
      // drain normally so their checkpoint lines are complete.
      interrupted = true;
      while (!pending.empty()) {
        const PendingCell p = pending.front();
        pending.pop_front();
        Outcome oc;
        oc.status = CellStatus::kInternalError;
        oc.diagnostic = kInterruptedDiagnostic;
        settle(p.cell, std::move(oc));
      }
    }
    Clock::time_point now = Clock::now();

    // Launch every due pending cell into a free worker slot.
    for (std::size_t i = 0;
         i < pending.size() && running.size() < options_.jobs;) {
      if (pending[i].not_before <= now) {
        const PendingCell p = pending[i];
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        spawn(p);
      } else {
        ++i;
      }
    }

    if (running.empty()) {
      if (pending.empty()) break;  // everything settled via spawn failures
      // Only backoff waits remain; sleep to the earliest one.
      Clock::time_point wake = pending.front().not_before;
      for (const PendingCell& p : pending) wake = std::min(wake, p.not_before);
      std::this_thread::sleep_until(wake);
      continue;
    }

    // Poll timeout: the nearest watchdog deadline or pending spawn time.
    long long timeout_ms = -1;
    const auto consider = [&](Clock::time_point t) {
      const long long ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(t - now)
              .count();
      const long long clamped = ms < 0 ? 0 : ms + 1;
      if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
    };
    for (const RunningWorker& w : running) {
      if (w.has_deadline) consider(w.deadline);
    }
    for (const PendingCell& p : pending) consider(p.not_before);

    std::vector<pollfd> fds(running.size());
    for (std::size_t i = 0; i < running.size(); ++i) {
      fds[i] = pollfd{running[i].fd, POLLIN, 0};
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               timeout_ms < 0 ? -1 : static_cast<int>(
                                         std::min<long long>(timeout_ms,
                                                             60'000)));
    if (rc < 0 && errno != EINTR) {
      // A broken poll loop cannot supervise; fail loudly rather than spin.
      throw support::SptInternalError(
          std::string("supervisor poll() failed: ") + std::strerror(errno));
    }

    // Drain readable pipes; EOF means the worker finished its reply.
    for (std::size_t i = 0; i < running.size();) {
      RunningWorker& w = running[i];
      const short revents = fds[i].revents;
      bool done = false;
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        char chunk[65536];
        for (;;) {
          const ssize_t r = ::read(w.fd, chunk, sizeof chunk);
          if (r > 0) {
            w.buf.append(chunk, static_cast<std::size_t>(r));
            if (w.buf.size() > kMaxPayloadBytes + kFrameHeaderBytes + 8) {
              ::kill(w.pid, SIGKILL);
              done = true;  // oversized reply; reap as protocol error
              break;
            }
            continue;
          }
          if (r == 0) {
            done = true;
            break;
          }
          if (errno == EINTR) continue;
          break;  // EAGAIN: drained for now
        }
      }
      if (done) {
        RunningWorker finished = std::move(w);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
        reap(finished, /*timed_out=*/false);
      } else {
        ++i;
      }
    }

    // Watchdog: SIGKILL overdue workers and reap them as timeouts.
    now = Clock::now();
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].has_deadline && running[i].deadline <= now) {
        RunningWorker overdue = std::move(running[i]);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        ::kill(overdue.pid, SIGKILL);
        reap(overdue, /*timed_out=*/true);
      } else {
        ++i;
      }
    }
  }
  return out;
}

// ---- WorkerPool: parent-side pool management -----------------------------
//
// The containment machinery the original batch-only runPooled loop owned
// — spawn/respawn, dispatch writes, reply-stream framing, death
// classification, watchdog — now lives here so the sweep service can
// drive the same pool from its own event loop. runPooled (below) is a
// thin retry/aggregation layer on top, which keeps the two paths
// byte-identical by construction.

struct WorkerPool::Impl {
  SupervisorOptions options;
  Supervisor::Producer produce;
  WorkerPool::SpecProducer produce_spec;
  std::function<bool()> respawn_policy;
  std::function<void()> child_setup;
  std::vector<PoolWorker> workers;
  std::size_t spawned = 0;
  std::size_t respawned = 0;
  // errno from the most recent failed pipe()/fork() in spawnWorker,
  // captured at the failure site: by the time the caller settles cells as
  // unspawnable, intervening close()/kill()/wait4() calls have clobbered
  // the global errno.
  int last_spawn_errno = 0;
  bool shut_down = false;

  bool wantRespawn() const {
    return !shut_down && (!respawn_policy || respawn_policy());
  }

  bool spawnWorker() {
    int request[2];
    int reply[2];
    if (::pipe(request) < 0) {
      last_spawn_errno = errno;
      return false;
    }
    if (::pipe(reply) < 0) {
      last_spawn_errno = errno;
      ::close(request[0]);
      ::close(request[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      last_spawn_errno = errno;
      ::close(request[0]);
      ::close(request[1]);
      ::close(reply[0]);
      ::close(reply[1]);
      return false;
    }
    if (pid == 0) {
      ::close(request[1]);
      ::close(reply[0]);
      // Drop inherited ends of sibling workers' pipes, so each worker's
      // EOF semantics depend only on the parent and itself.
      for (const PoolWorker& other : workers) {
        if (other.request_fd >= 0) ::close(other.request_fd);
        if (other.reply_fd >= 0) ::close(other.reply_fd);
      }
      // Caller-owned fds (a service's listening socket and client
      // connections) are closed here, so a worker never holds a client's
      // connection open past the parent's close().
      if (child_setup) child_setup();
      runPoolWorker(request[0], reply[1], options, produce, produce_spec);
    }
    ::close(request[0]);
    ::close(reply[1]);
    const int flags = ::fcntl(reply[0], F_GETFL, 0);
    ::fcntl(reply[0], F_SETFL, flags | O_NONBLOCK);
    PoolWorker w;
    w.pid = pid;
    w.request_fd = request[1];
    w.reply_fd = reply[0];
    workers.push_back(std::move(w));
    ++spawned;
    return true;
  }

  // Removes worker `wi` from the pool, reaps it, classifies the in-flight
  // attempt (if any) into `out`, and respawns a replacement while the
  // respawn policy allows. `corrupt_reason` is non-empty when the parent
  // detected a garbled reply stream (the worker was killed, or died right
  // after garbling).
  void workerDied(std::size_t wi, bool timed_out,
                  const std::string& corrupt_reason,
                  std::vector<WorkerPool::Settled>& out) {
    PoolWorker w = std::move(workers[wi]);
    workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(wi));
    rusage ru{};
    const int wait_status = reapWorker(w.pid, &ru);
    if (w.request_fd >= 0) ::close(w.request_fd);
    ::close(w.reply_fd);

    if (w.busy) {
      Supervisor::Outcome oc;
      oc.worker.attempts = w.attempt;
      oc.worker.timed_out = timed_out;
      // Whole-life rusage of the dead worker: the per-cell numbers a
      // healthy pooled reply self-reports are unavailable once it dies.
      oc.worker.host_user_seconds = timevalSeconds(ru.ru_utime);
      oc.worker.host_sys_seconds = timevalSeconds(ru.ru_stime);
      oc.worker.host_max_rss_kb = maxRssKb(ru);

      const int sig = signalOf(wait_status);
      if (timed_out) {
        oc.status = CellStatus::kTimeout;
        oc.worker.term_signal = sig;
        std::ostringstream os;
        os << "worker exceeded the " << options.cell_timeout_seconds
           << "s wall-clock deadline on attempt " << w.attempt
           << "; killed (SIGKILL)";
        oc.diagnostic = os.str();
      } else if (!corrupt_reason.empty()) {
        oc.status = CellStatus::kProtocolError;
        if (sig != 0) {
          oc.worker.term_signal = sig;
        } else {
          oc.worker.exit_code = WEXITSTATUS(wait_status);
        }
        oc.diagnostic =
            "worker reply failed frame validation: " + corrupt_reason +
            (sig == 0 ? " (exit code " + std::to_string(oc.worker.exit_code) +
                            ")"
                      : "");
        if (!w.buf.empty()) oc.worker.partial_reply = hexDump(w.buf, 64);
      } else if (sig != 0) {
        oc.worker.term_signal = sig;
        if (sig == SIGXCPU) {
          oc.status = CellStatus::kTimeout;
          oc.diagnostic = "worker hit RLIMIT_CPU (" +
                          std::to_string(options.rlimit_cpu_seconds) +
                          "s) and died on SIGXCPU";
        } else {
          oc.status = CellStatus::kCrashed;
          const char* name = ::strsignal(sig);
          oc.diagnostic = "worker killed by signal " + std::to_string(sig) +
                          (name != nullptr ? std::string(" (") + name + ")"
                                           : std::string()) +
                          " after " + std::to_string(w.buf.size()) +
                          " reply bytes";
        }
        if (!w.buf.empty()) oc.worker.partial_reply = hexDump(w.buf, 64);
      } else {
        // Exited without completing a reply: decode what arrived for the
        // specific reason ("empty reply", "short reply", ...).
        oc.worker.exit_code = WEXITSTATUS(wait_status);
        std::string why;
        decodeSupervisorFrame(w.buf, nullptr, nullptr, &why);
        oc.status = CellStatus::kProtocolError;
        oc.diagnostic = "worker reply failed frame validation: " + why +
                        " (exit code " +
                        std::to_string(oc.worker.exit_code) + ")";
        if (!w.buf.empty()) oc.worker.partial_reply = hexDump(w.buf, 64);
      }
      out.push_back({w.id, w.attempt, std::move(oc)});
    }

    // Respawn only the dead worker; the rest of the pool keeps draining.
    if (wantRespawn() && spawnWorker()) ++respawned;
  }

  // Consumes completed frames from worker `wi`'s reply stream. Returns
  // false (after containment) if the worker had to be killed.
  bool drainReplies(std::size_t wi, std::vector<WorkerPool::Settled>& out) {
    PoolWorker& w = workers[wi];
    for (;;) {
      std::size_t frame_bytes = 0;
      std::string why;
      const FrameScan scan = scanSupervisorFrame(w.buf, &frame_bytes, &why);
      if (scan == FrameScan::kNeedMore) return true;
      std::uint8_t kind = 0;
      std::string payload;
      if (scan == FrameScan::kCorrupt ||
          !decodeSupervisorFrame(w.buf.substr(0, frame_bytes), &kind,
                                 &payload, &why)) {
        ::kill(w.pid, SIGKILL);
        workerDied(wi, /*timed_out=*/false, why, out);
        return false;
      }
      w.buf.erase(0, frame_bytes);

      PoolReplyHeader header;
      std::string inner;
      const bool cell_tagged =
          (kind == kFrameKindPooledReply || kind == kFrameKindPooledError) &&
          decodePoolReply(payload, &header, &inner);
      if (!w.busy || !cell_tagged || header.cell != w.id) {
        ::kill(w.pid, SIGKILL);
        workerDied(wi, /*timed_out=*/false,
                   !w.busy ? "unsolicited reply from an idle worker"
                   : !cell_tagged
                       ? "reply frame is not a cell-tagged pooled reply"
                       : "reply answers cell " + std::to_string(header.cell) +
                             " but cell " + std::to_string(w.id) +
                             " was dispatched",
                   out);
        return false;
      }

      Supervisor::Outcome oc;
      oc.worker.attempts = w.attempt;
      oc.worker.exit_code = 0;  // a completed reply means a healthy worker
      oc.worker.host_user_seconds = header.user_seconds;
      oc.worker.host_sys_seconds = header.sys_seconds;
      oc.worker.host_max_rss_kb = header.max_rss_kb;
      if (kind == kFrameKindPooledReply) {
        oc.status = CellStatus::kOk;
        oc.payload = std::move(inner);
      } else {
        oc.status = CellStatus::kInternalError;
        oc.diagnostic = "worker error: " + inner;
      }
      const std::uint64_t id = w.id;
      const std::uint32_t attempt = w.attempt;
      w.busy = false;
      w.has_deadline = false;
      out.push_back({id, attempt, std::move(oc)});
    }
  }
};

WorkerPool::WorkerPool(SupervisorOptions options, Supervisor::Producer produce,
                       SpecProducer produce_spec)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  impl_->produce = std::move(produce);
  impl_->produce_spec = std::move(produce_spec);
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::setRespawnPolicy(std::function<bool()> policy) {
  impl_->respawn_policy = std::move(policy);
}

void WorkerPool::setChildSetup(std::function<void()> setup) {
  impl_->child_setup = std::move(setup);
}

bool WorkerPool::ensure(std::size_t workers) {
  while (impl_->workers.size() < workers) {
    if (!impl_->spawnWorker()) return false;
  }
  return true;
}

std::size_t WorkerPool::workerCount() const { return impl_->workers.size(); }

std::size_t WorkerPool::idleWorkers() const {
  std::size_t idle = 0;
  for (const PoolWorker& w : impl_->workers) {
    if (!w.busy) ++idle;
  }
  return idle;
}

std::size_t WorkerPool::busyWorkers() const {
  return impl_->workers.size() - idleWorkers();
}

std::size_t WorkerPool::workersSpawned() const { return impl_->spawned; }

std::size_t WorkerPool::workersRespawned() const { return impl_->respawned; }

int WorkerPool::lastSpawnErrno() const { return impl_->last_spawn_errno; }

bool WorkerPool::dispatch(const Job& job) {
  for (;;) {
    std::size_t wi = impl_->workers.size();
    for (std::size_t j = 0; j < impl_->workers.size(); ++j) {
      if (!impl_->workers[j].busy) {
        wi = j;
        break;
      }
    }
    if (wi == impl_->workers.size()) return false;  // no idle worker
    PoolWorker& w = impl_->workers[wi];
    const std::string frame =
        job.has_spec
            ? encodeSupervisorFrame(
                  kFrameKindSpecRequest,
                  encodePoolSpecRequest(job.id, job.attempt, job.chaos,
                                        job.spec),
                  kSupervisorFrameV3)
            : encodeSupervisorFrame(kFrameKindRequest,
                                    encodePoolRequest(job.id, job.attempt),
                                    kSupervisorFrameV2);
    if (!writeAll(w.request_fd, frame.data(), frame.size())) {
      // Dead request pipe: the worker never saw the job (no attempt
      // burned). Replace it and try the next idle worker — possibly the
      // replacement itself.
      ::kill(w.pid, SIGKILL);
      std::vector<Settled> none;  // an idle worker settles nothing
      impl_->workerDied(wi, /*timed_out=*/false, "", none);
      continue;
    }
    w.busy = true;
    w.id = job.id;
    w.attempt = job.attempt;
    w.buf.clear();
    if (impl_->options.cell_timeout_seconds > 0.0) {
      w.has_deadline = true;
      w.deadline =
          deadlineFrom(Clock::now(), impl_->options.cell_timeout_seconds);
    } else {
      w.has_deadline = false;
    }
    return true;
  }
}

std::vector<int> WorkerPool::busyReplyFds() const {
  std::vector<int> fds;
  for (const PoolWorker& w : impl_->workers) {
    if (w.busy) fds.push_back(w.reply_fd);
  }
  return fds;
}

bool WorkerPool::nextDeadline(std::chrono::steady_clock::time_point* out) const {
  bool any = false;
  for (const PoolWorker& w : impl_->workers) {
    if (!w.busy || !w.has_deadline) continue;
    if (!any || w.deadline < *out) *out = w.deadline;
    any = true;
  }
  return any;
}

void WorkerPool::service(std::vector<Settled>& settled) {
  // Snapshot the busy workers by pid: containment inside the loop mutates
  // the pool (and a respawn can reuse a just-closed fd number, so fds are
  // not stable identifiers either).
  std::vector<pid_t> busy_pids;
  for (const PoolWorker& w : impl_->workers) {
    if (w.busy) busy_pids.push_back(w.pid);
  }
  for (const pid_t pid : busy_pids) {
    std::size_t wi = impl_->workers.size();
    for (std::size_t j = 0; j < impl_->workers.size(); ++j) {
      if (impl_->workers[j].pid == pid) {
        wi = j;
        break;
      }
    }
    if (wi == impl_->workers.size()) continue;  // removed by a prior pass
    PoolWorker& w = impl_->workers[wi];
    bool saw_eof = false;
    char chunk[65536];
    for (;;) {
      const ssize_t r = ::read(w.reply_fd, chunk, sizeof chunk);
      if (r > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(r));
        if (w.buf.size() > kMaxPayloadBytes + kFrameHeaderBytes + 8) {
          ::kill(w.pid, SIGKILL);
          impl_->workerDied(wi, /*timed_out=*/false, "oversized reply",
                            settled);
          wi = impl_->workers.size();
          break;
        }
        continue;
      }
      if (r == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained for now
    }
    if (wi == impl_->workers.size()) continue;  // contained above
    if (!impl_->drainReplies(wi, settled)) continue;  // worker replaced
    if (saw_eof) {
      // The worker died (or exited on chaos) — any buffered partial
      // frame is part of the post-mortem.
      impl_->workerDied(wi, /*timed_out=*/false, "", settled);
    }
  }

  // Watchdog: SIGKILL overdue busy workers; their cells settle as
  // timeouts and the workers are replaced.
  const Clock::time_point now = Clock::now();
  for (std::size_t wi = 0; wi < impl_->workers.size();) {
    PoolWorker& w = impl_->workers[wi];
    if (w.busy && w.has_deadline && w.deadline <= now) {
      ::kill(w.pid, SIGKILL);
      impl_->workerDied(wi, /*timed_out=*/true, "", settled);
    } else {
      ++wi;
    }
  }
}

void WorkerPool::shutdown() {
  if (impl_ == nullptr || impl_->shut_down) return;
  impl_->shut_down = true;
  // Closing the request pipes is the idle workers' EOF signal; they
  // _exit(0) and are reaped below. A still-busy worker (drain abandoned)
  // is killed so reaping cannot block on it.
  for (PoolWorker& w : impl_->workers) {
    if (w.busy) ::kill(w.pid, SIGKILL);
    if (w.request_fd >= 0) {
      ::close(w.request_fd);
      w.request_fd = -1;
    }
  }
  for (PoolWorker& w : impl_->workers) {
    reapWorker(w.pid, nullptr);
    ::close(w.reply_fd);
  }
  impl_->workers.clear();
}

std::vector<Supervisor::Outcome> Supervisor::runPooled(
    std::size_t n, const Producer& produce, const OnSettled& on_settled,
    PoolStats* stats) const {
  ScopedIgnoreSigpipe sigpipe_guard;

  std::vector<Outcome> out(n);
  std::deque<PendingCell> pending;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < n; ++i) pending.push_back({i, 1, start});
  std::size_t settled = 0;
  bool interrupted = false;
  const auto stopRequested = [&] {
    return options_.stop != nullptr && *options_.stop != 0;
  };

  const auto settle = [&](std::size_t cell, Outcome outcome) {
    out[cell] = std::move(outcome);
    ++settled;
    if (on_settled) on_settled(cell, out[cell]);
  };

  // Settles the attempt's outcome or queues the retry — the same policy
  // as the fork-per-cell path.
  const auto finishAttempt = [&](std::size_t cell, std::uint32_t attempt,
                                 Outcome oc) {
    if (!interrupted && isTransportFailure(oc.status) &&
        attempt <= options_.retries) {
      const double delay = backoffSeconds(cell, attempt + 1);
      pending.push_back(
          {cell, attempt + 1, deadlineFrom(Clock::now(), delay)});
    } else {
      settle(cell, std::move(oc));
    }
  };

  WorkerPool pool(options_, produce);
  pool.setRespawnPolicy([&] { return settled < n && !interrupted; });
  pool.ensure(std::min(options_.jobs, std::max<std::size_t>(n, 1)));

  std::vector<WorkerPool::Settled> batch;
  while (settled < n) {
    if (!interrupted && stopRequested()) {
      // Graceful interrupt: cancel the queue, drain the in-flight cells.
      interrupted = true;
      while (!pending.empty()) {
        const PendingCell p = pending.front();
        pending.pop_front();
        Outcome oc;
        oc.status = CellStatus::kInternalError;
        oc.diagnostic = kInterruptedDiagnostic;
        settle(p.cell, std::move(oc));
      }
    }
    Clock::time_point now = Clock::now();

    // Dispatch due pending cells to idle workers.
    while (!pending.empty() && pool.idleWorkers() > 0) {
      std::size_t pi = pending.size();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].not_before <= now) {
          pi = i;
          break;
        }
      }
      if (pi == pending.size()) break;  // nothing due yet
      const PendingCell p = pending[pi];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pi));
      WorkerPool::Job job;
      job.id = static_cast<std::uint64_t>(p.cell);
      job.attempt = p.attempt;
      if (!pool.dispatch(job)) {
        // No idle worker survived the write; the cell was never sent and
        // goes back to the front of the queue.
        pending.push_front(p);
        break;
      }
    }

    if (pool.workerCount() == 0) {
      // The pool could not be (re)built; fail the remaining cells rather
      // than spin forever.
      while (!pending.empty()) {
        const PendingCell p = pending.front();
        pending.pop_front();
        Outcome oc;
        oc.status = CellStatus::kCrashed;
        oc.worker.attempts = p.attempt;
        oc.diagnostic = std::string("worker pool spawn failed: ") +
                        std::strerror(pool.lastSpawnErrno());
        settle(p.cell, std::move(oc));
      }
      break;
    }

    if (pool.busyWorkers() == 0) {
      if (pending.empty()) {
        if (settled < n) continue;  // dispatch loop will make progress
        break;
      }
      Clock::time_point wake = pending.front().not_before;
      for (const PendingCell& p : pending) wake = std::min(wake, p.not_before);
      std::this_thread::sleep_until(wake);
      continue;
    }

    long long timeout_ms = -1;
    const auto consider = [&](Clock::time_point t) {
      const long long ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(t - now)
              .count();
      const long long clamped = ms < 0 ? 0 : ms + 1;
      if (timeout_ms < 0 || clamped < timeout_ms) timeout_ms = clamped;
    };
    Clock::time_point pool_deadline;
    if (pool.nextDeadline(&pool_deadline)) consider(pool_deadline);
    for (const PendingCell& p : pending) consider(p.not_before);

    const std::vector<int> reply_fds = pool.busyReplyFds();
    std::vector<pollfd> fds(reply_fds.size());
    for (std::size_t i = 0; i < reply_fds.size(); ++i) {
      fds[i] = pollfd{reply_fds[i], POLLIN, 0};
    }
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               timeout_ms < 0 ? -1 : static_cast<int>(
                                         std::min<long long>(timeout_ms,
                                                             60'000)));
    if (rc < 0 && errno != EINTR) {
      throw support::SptInternalError(
          std::string("supervisor poll() failed: ") + std::strerror(errno));
    }

    batch.clear();
    pool.service(batch);
    for (WorkerPool::Settled& s : batch) {
      finishAttempt(static_cast<std::size_t>(s.id), s.attempt,
                    std::move(s.outcome));
    }
  }

  pool.shutdown();
  if (stats != nullptr) {
    stats->workers_spawned = pool.workersSpawned();
    stats->workers_respawned = pool.workersRespawned();
  }
  return out;
}

#else  // !SPT_SUPERVISOR_POSIX

bool Supervisor::isolationSupported() { return false; }

std::vector<Supervisor::Outcome> Supervisor::run(std::size_t,
                                                 const Producer&,
                                                 const OnSettled&,
                                                 PoolStats*) const {
  throw support::SptInternalError(
      "process isolation is not supported on this platform (no fork); "
      "use the in-process path");
}

struct WorkerPool::Impl {};

WorkerPool::WorkerPool(SupervisorOptions, Supervisor::Producer,
                       SpecProducer) {
  throw support::SptInternalError(
      "the warm worker pool is not supported on this platform (no fork)");
}

WorkerPool::~WorkerPool() = default;

void WorkerPool::setRespawnPolicy(std::function<bool()>) {}
void WorkerPool::setChildSetup(std::function<void()>) {}
bool WorkerPool::ensure(std::size_t) { return false; }
std::size_t WorkerPool::workerCount() const { return 0; }
std::size_t WorkerPool::idleWorkers() const { return 0; }
std::size_t WorkerPool::busyWorkers() const { return 0; }
std::size_t WorkerPool::workersSpawned() const { return 0; }
std::size_t WorkerPool::workersRespawned() const { return 0; }
int WorkerPool::lastSpawnErrno() const { return 0; }
bool WorkerPool::dispatch(const Job&) { return false; }
std::vector<int> WorkerPool::busyReplyFds() const { return {}; }
bool WorkerPool::nextDeadline(std::chrono::steady_clock::time_point*) const {
  return false;
}
void WorkerPool::service(std::vector<Settled>&) {}
void WorkerPool::shutdown() {}

#endif  // SPT_SUPERVISOR_POSIX

}  // namespace spt::harness

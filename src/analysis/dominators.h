// Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#pragma once

#include <vector>

#include "analysis/cfg.h"

namespace spt::analysis {

class DomTree {
 public:
  explicit DomTree(const Cfg& cfg);

  /// Immediate dominator; the entry block's idom is itself. Unreachable
  /// blocks report kInvalidBlock.
  ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

  /// True if a dominates b (reflexive).
  bool dominates(ir::BlockId a, ir::BlockId b) const;

 private:
  const Cfg& cfg_;
  std::vector<ir::BlockId> idom_;
};

}  // namespace spt::analysis

// Control-flow graph view over an ir::Function.
#pragma once

#include <vector>

#include "ir/module.h"

namespace spt::analysis {

/// Reference to a static instruction inside one function.
struct InstrRef {
  ir::BlockId block = ir::kInvalidBlock;
  std::uint32_t index = 0;

  bool valid() const { return block != ir::kInvalidBlock; }
  bool operator==(const InstrRef&) const = default;
  auto operator<=>(const InstrRef&) const = default;
};

/// Predecessor/successor lists and reverse post-order for a function.
/// The function must outlive the Cfg and must not be mutated under it.
class Cfg {
 public:
  explicit Cfg(const ir::Function& func);

  const ir::Function& func() const { return func_; }
  std::size_t blockCount() const { return succs_.size(); }

  const std::vector<ir::BlockId>& succs(ir::BlockId b) const {
    return succs_[b];
  }
  const std::vector<ir::BlockId>& preds(ir::BlockId b) const {
    return preds_[b];
  }

  /// Reverse post-order starting at the entry; unreachable blocks excluded.
  const std::vector<ir::BlockId>& rpo() const { return rpo_; }

  /// Position of a block in rpo(); blockCount() for unreachable blocks.
  std::size_t rpoIndex(ir::BlockId b) const { return rpo_index_[b]; }

  bool reachable(ir::BlockId b) const {
    return rpo_index_[b] != succs_.size();
  }

 private:
  const ir::Function& func_;
  std::vector<std::vector<ir::BlockId>> succs_;
  std::vector<std::vector<ir::BlockId>> preds_;
  std::vector<ir::BlockId> rpo_;
  std::vector<std::size_t> rpo_index_;
};

}  // namespace spt::analysis

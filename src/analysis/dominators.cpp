#include "analysis/dominators.h"

#include "support/check.h"

namespace spt::analysis {

DomTree::DomTree(const Cfg& cfg) : cfg_(cfg) {
  const std::size_t n = cfg.blockCount();
  idom_.assign(n, ir::kInvalidBlock);
  const ir::BlockId entry = cfg.rpo().front();
  idom_[entry] = entry;

  const auto intersect = [&](ir::BlockId a, ir::BlockId b) {
    while (a != b) {
      while (cfg_.rpoIndex(a) > cfg_.rpoIndex(b)) a = idom_[a];
      while (cfg_.rpoIndex(b) > cfg_.rpoIndex(a)) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const ir::BlockId b : cfg.rpo()) {
      if (b == entry) continue;
      ir::BlockId new_idom = ir::kInvalidBlock;
      for (const ir::BlockId p : cfg.preds(b)) {
        if (!cfg.reachable(p) || idom_[p] == ir::kInvalidBlock) continue;
        new_idom = new_idom == ir::kInvalidBlock ? p : intersect(new_idom, p);
      }
      SPT_CHECK_MSG(new_idom != ir::kInvalidBlock,
                    "reachable block with no processed predecessor");
      if (idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }
}

bool DomTree::dominates(ir::BlockId a, ir::BlockId b) const {
  if (!cfg_.reachable(a) || !cfg_.reachable(b)) return false;
  const ir::BlockId entry = cfg_.rpo().front();
  ir::BlockId cur = b;
  for (;;) {
    if (cur == a) return true;
    if (cur == entry) return false;
    cur = idom_[cur];
  }
}

}  // namespace spt::analysis

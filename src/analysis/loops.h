// Natural-loop detection.
//
// The SPT compiler parallelizes natural loops (paper Section 4): back edges
// t->h with h dominating t define a loop; loops sharing a header are merged.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dominators.h"

namespace spt::analysis {

using LoopId = std::uint32_t;
inline constexpr LoopId kInvalidLoop = 0xffffffffu;

struct Loop {
  LoopId id = kInvalidLoop;
  ir::BlockId header = ir::kInvalidBlock;
  std::vector<ir::BlockId> blocks;   // includes header, sorted
  std::vector<ir::BlockId> latches;  // sources of back edges into header
  /// Edges leaving the loop: (inside block, outside successor).
  std::vector<std::pair<ir::BlockId, ir::BlockId>> exit_edges;
  LoopId parent = kInvalidLoop;  // innermost enclosing loop
  std::uint32_t depth = 1;       // 1 for outermost

  bool contains(ir::BlockId b) const;
};

/// All natural loops of one function.
class LoopForest {
 public:
  LoopForest(const Cfg& cfg, const DomTree& dom);

  std::size_t loopCount() const { return loops_.size(); }
  const Loop& loop(LoopId id) const { return loops_[id]; }
  const std::vector<Loop>& loops() const { return loops_; }

  /// Innermost loop containing block b, or kInvalidLoop.
  LoopId innermostLoopOf(ir::BlockId b) const { return innermost_[b]; }

  /// Loop whose header is b, or kInvalidLoop.
  LoopId loopWithHeader(ir::BlockId b) const { return header_loop_[b]; }

 private:
  std::vector<Loop> loops_;
  std::vector<LoopId> innermost_;
  std::vector<LoopId> header_loop_;
};

}  // namespace spt::analysis

#include "analysis/loops.h"

#include <algorithm>
#include <map>

#include "support/check.h"

namespace spt::analysis {

bool Loop::contains(ir::BlockId b) const {
  return std::binary_search(blocks.begin(), blocks.end(), b);
}

LoopForest::LoopForest(const Cfg& cfg, const DomTree& dom) {
  const std::size_t n = cfg.blockCount();
  innermost_.assign(n, kInvalidLoop);
  header_loop_.assign(n, kInvalidLoop);

  // Collect back edges grouped by header.
  std::map<ir::BlockId, std::vector<ir::BlockId>> latches_by_header;
  for (const ir::BlockId b : cfg.rpo()) {
    for (const ir::BlockId s : cfg.succs(b)) {
      if (cfg.reachable(s) && dom.dominates(s, b)) {
        latches_by_header[s].push_back(b);
      }
    }
  }

  // Build the body of each loop by backward flood from the latches.
  for (const auto& [header, latches] : latches_by_header) {
    Loop loop;
    loop.id = static_cast<LoopId>(loops_.size());
    loop.header = header;
    loop.latches = latches;
    std::vector<std::uint8_t> in_loop(n, 0);
    in_loop[header] = 1;
    std::vector<ir::BlockId> work(latches.begin(), latches.end());
    while (!work.empty()) {
      const ir::BlockId b = work.back();
      work.pop_back();
      if (in_loop[b]) continue;
      in_loop[b] = 1;
      for (const ir::BlockId p : cfg.preds(b)) {
        if (cfg.reachable(p) && !in_loop[p]) work.push_back(p);
      }
    }
    for (ir::BlockId b = 0; b < n; ++b) {
      if (in_loop[b]) loop.blocks.push_back(b);
    }
    for (const ir::BlockId b : loop.blocks) {
      for (const ir::BlockId s : cfg.succs(b)) {
        if (!in_loop[s]) loop.exit_edges.emplace_back(b, s);
      }
    }
    header_loop_[header] = loop.id;
    loops_.push_back(std::move(loop));
  }

  // Nesting: loop A is the parent of B if A != B, A contains B's header,
  // and A is the smallest such loop. Depth follows from parent chains.
  for (auto& inner : loops_) {
    std::size_t best_size = SIZE_MAX;
    for (const auto& outer : loops_) {
      if (outer.id == inner.id) continue;
      if (outer.contains(inner.header) && outer.blocks.size() < best_size &&
          outer.blocks.size() >= inner.blocks.size()) {
        // A loop containing another's header contains the whole loop for
        // natural loops sharing no header.
        inner.parent = outer.id;
        best_size = outer.blocks.size();
      }
    }
  }
  for (auto& loop : loops_) {
    std::uint32_t depth = 1;
    for (LoopId p = loop.parent; p != kInvalidLoop; p = loops_[p].parent) {
      ++depth;
      SPT_CHECK_MSG(depth <= loops_.size() + 1, "loop nesting cycle");
    }
    loop.depth = depth;
  }

  // Innermost loop per block: the containing loop with maximal depth.
  for (const auto& loop : loops_) {
    for (const ir::BlockId b : loop.blocks) {
      const LoopId cur = innermost_[b];
      if (cur == kInvalidLoop || loops_[cur].depth < loop.depth) {
        innermost_[b] = loop.id;
      }
    }
  }
}

}  // namespace spt::analysis

// Transitive side-effect (mod/ref) summaries for functions.
//
// The SPT compiler needs to know whether a call can read or write memory:
// calls with side effects are violation candidates and memory-dependence
// endpoints (cf. the paper's Figure 5 discussion of foo()/bar()).
#pragma once

#include <vector>

#include "ir/module.h"

namespace spt::analysis {

struct ModRef {
  bool reads_memory = false;
  bool writes_memory = false;
  bool allocates = false;  // contains halloc

  bool pure() const { return !reads_memory && !writes_memory && !allocates; }
};

/// Computes a fixed point of mod/ref bits over the call graph (recursion
/// converges because the bits only grow).
class ModRefSummary {
 public:
  explicit ModRefSummary(const ir::Module& module);

  const ModRef& of(ir::FuncId f) const { return summary_[f]; }

 private:
  std::vector<ModRef> summary_;
};

}  // namespace spt::analysis

#include "analysis/defuse.h"

#include <algorithm>

namespace spt::analysis {

DefUse::DefUse(const Cfg& cfg) : cfg_(cfg) {
  const ir::Function& func = cfg.func();
  const std::size_t nblocks = func.blocks.size();
  const std::size_t nregs = func.reg_count;
  defs_.resize(nregs);
  uses_.resize(nregs);

  // Per-block gen (upward-exposed uses) and kill (defined) sets.
  std::vector<std::vector<bool>> gen(nblocks, std::vector<bool>(nregs));
  std::vector<std::vector<bool>> kill(nblocks, std::vector<bool>(nregs));
  std::vector<ir::Reg> tmp_uses;

  for (const auto& block : func.blocks) {
    for (std::uint32_t i = 0; i < block.instrs.size(); ++i) {
      const ir::Instr& instr = block.instrs[i];
      tmp_uses.clear();
      instr.appendUses(tmp_uses);
      for (const ir::Reg r : tmp_uses) {
        uses_[r.index].push_back({block.id, i});
        if (!kill[block.id][r.index]) gen[block.id][r.index] = true;
      }
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        defs_[instr.dst.index].push_back({block.id, i});
        kill[block.id][instr.dst.index] = true;
      }
    }
  }

  // Backward liveness: live_in(b) = gen(b) | (live_out(b) & ~kill(b)).
  std::vector<std::vector<bool>> in(nblocks, std::vector<bool>(nregs));
  bool changed = true;
  while (changed) {
    changed = false;
    // Iterate blocks in reverse RPO for fast convergence.
    for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend(); ++it) {
      const ir::BlockId b = *it;
      for (std::size_t r = 0; r < nregs; ++r) {
        if (in[b][r]) continue;
        bool live = gen[b][r];
        if (!live && !kill[b][r]) {
          for (const ir::BlockId s : cfg.succs(b)) {
            if (in[s][r]) {
              live = true;
              break;
            }
          }
        }
        if (live) {
          in[b][r] = true;
          changed = true;
        }
      }
    }
  }

  live_in_.resize(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (std::size_t r = 0; r < nregs; ++r) {
      if (in[b][r]) live_in_[b].push_back(ir::Reg{
          static_cast<std::uint32_t>(r)});
    }
  }
}

bool DefUse::isLiveIn(ir::BlockId b, ir::Reg r) const {
  const auto& v = live_in_[b];
  return std::binary_search(v.begin(), v.end(), r);
}

}  // namespace spt::analysis

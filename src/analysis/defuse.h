// Register def/use sites and block-level liveness for one function.
#pragma once

#include <vector>

#include "analysis/cfg.h"

namespace spt::analysis {

/// Definition and use sites per virtual register, plus iterative liveness.
class DefUse {
 public:
  explicit DefUse(const Cfg& cfg);

  const std::vector<InstrRef>& defsOf(ir::Reg r) const {
    return defs_[r.index];
  }
  const std::vector<InstrRef>& usesOf(ir::Reg r) const {
    return uses_[r.index];
  }

  /// Registers live on entry to block b (read before any write on some path
  /// from the top of b).
  const std::vector<ir::Reg>& liveIn(ir::BlockId b) const {
    return live_in_[b];
  }
  bool isLiveIn(ir::BlockId b, ir::Reg r) const;

 private:
  const Cfg& cfg_;
  std::vector<std::vector<InstrRef>> defs_;   // indexed by register
  std::vector<std::vector<InstrRef>> uses_;   // indexed by register
  std::vector<std::vector<ir::Reg>> live_in_;  // indexed by block, sorted
};

}  // namespace spt::analysis

#include "analysis/modref.h"

namespace spt::analysis {

ModRefSummary::ModRefSummary(const ir::Module& module) {
  summary_.resize(module.functionCount());

  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::FuncId f = 0; f < module.functionCount(); ++f) {
      ModRef next = summary_[f];
      for (const auto& block : module.function(f).blocks) {
        for (const auto& instr : block.instrs) {
          switch (instr.op) {
            case ir::Opcode::kLoad:
              next.reads_memory = true;
              break;
            case ir::Opcode::kStore:
              next.writes_memory = true;
              break;
            case ir::Opcode::kHalloc:
              next.allocates = true;
              break;
            case ir::Opcode::kCall: {
              const ModRef& callee = summary_[instr.callee];
              next.reads_memory |= callee.reads_memory;
              next.writes_memory |= callee.writes_memory;
              next.allocates |= callee.allocates;
              break;
            }
            default:
              break;
          }
        }
      }
      if (next.reads_memory != summary_[f].reads_memory ||
          next.writes_memory != summary_[f].writes_memory ||
          next.allocates != summary_[f].allocates) {
        summary_[f] = next;
        changed = true;
      }
    }
  }
}

}  // namespace spt::analysis

#include "analysis/cfg.h"

#include <algorithm>

#include "support/check.h"

namespace spt::analysis {

Cfg::Cfg(const ir::Function& func) : func_(func) {
  const std::size_t n = func.blocks.size();
  SPT_CHECK_MSG(n > 0, "CFG of empty function");
  succs_.resize(n);
  preds_.resize(n);
  for (const auto& block : func.blocks) {
    succs_[block.id] = block.successors();
    for (const ir::BlockId s : succs_[block.id]) {
      SPT_CHECK(s < n);
      preds_[s].push_back(block.id);
    }
  }

  // Iterative post-order DFS from the entry block.
  rpo_index_.assign(n, n);
  std::vector<std::uint8_t> state(n, 0);  // 0=unvisited 1=on-stack 2=done
  std::vector<std::pair<ir::BlockId, std::size_t>> stack;
  std::vector<ir::BlockId> post;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < succs_[b].size()) {
      const ir::BlockId s = succs_[b][next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  for (std::size_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;
}

}  // namespace spt::analysis

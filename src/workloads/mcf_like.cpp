// mcf analog: memory-bound network-simplex-style sweeps over arc arrays
// much larger than the L3 cache, plus pointer chasing through a node tree.
// SPT gains here come mostly from memory-level parallelism: the speculative
// thread's loads overlap the main thread's misses (the D-cache-stall
// reduction visible for mcf in paper Figure 9).
#include <bit>

#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload mcfLike() {
  Workload w;
  w.name = "mcf";
  w.description =
      "Arc-cost refresh sweeps over a >L3 working set and basis-tree "
      "pointer chasing; memory-bound.";
  w.build = [](std::uint64_t scale) {
    Module m("mcf");
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0x8cb92ba72f3d8dd7ll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    // The cost array alone is 4MB (beyond the 3MB L3); the refresh sweep
    // strides through it pseudo-randomly, so most of its loads go to
    // memory — mcf's defining behaviour.
    const auto COST_ENTRIES =
        static_cast<std::int64_t>(std::bit_ceil(524288 * scale));
    const auto ARCS = static_cast<std::int64_t>(3500 * scale);
    // Power of two: the tree permutation masks indices. 32k nodes * 16B =
    // 512KB, beyond L2.
    const auto NODES =
        static_cast<std::int64_t>(std::bit_ceil(32768 * scale));

    const std::int64_t SIDE = 8192;  // flow/head side arrays (L3-resident)
    // The big cost array stays zero-initialized (halloc zero-fills): its
    // point is the cache footprint, not the values.
    const Reg cost = b.halloc(COST_ENTRIES * 8);
    const Reg flow = emitRandomArrayImm(b, "flow_init", SIDE, prng, 8);
    const Reg headn = emitRandomArrayImm(b, "head_init", SIDE, prng, 13);

    // Basis tree: next[i] is a pseudo-random permutation step (i*K+1 mod
    // NODES), giving a full-cycle pointer chain with poor locality.
    const Reg tree = b.halloc(NODES * 16);
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(NODES);
      const Reg sixteen = b.iconst(16);
      countedLoop(b, "tree_init", i, end, [&](IrBuilder& b2) {
        const Reg k = b2.iconst(48271);
        const Reg mul = b2.mul(i, k);
        const Reg one = b2.iconst(1);
        const Reg mixed = b2.add(mul, one);
        const Reg nmask = b2.iconst(NODES - 1);
        const Reg nxt = b2.and_(mixed, nmask);
        const Reg potential = emitXorshift(b2, prng);
        const Reg addr = b2.add(tree, b2.mul(i, sixteen));
        // next pointer: 0 terminates; index 0 maps to null to bound trips.
        const Reg zero = b2.iconst(0);
        const Reg is_zero = b2.cmpEq(nxt, zero);
        const Reg keep = b2.sub(one, is_zero);
        const Reg next_addr = b2.add(tree, b2.mul(nxt, sixteen));
        b2.store(addr, 0, b2.mul(next_addr, keep));
        b2.store(addr, 8, potential);
      });
    }

    // Arc cost refresh: independent per-arc computation whose cost-array
    // accesses are pseudo-random over 4MB — nearly every load misses the
    // whole hierarchy. Fully parallel: the speculative thread's misses
    // overlap the main thread's (memory-level parallelism).
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(ARCS);
      countedLoop(b, "refresh_arcs", i, end, [&](IrBuilder& b2) {
        const Reg k = b2.iconst(2654435761ll);
        const Reg scrambled = b2.mul(i, k);
        const Reg cmask = b2.iconst(COST_ENTRIES - 1);
        const Reg idx = b2.and_(scrambled, cmask);
        const Reg c = b2.load(emitIndex(b2, cost, idx), 0);
        const Reg smask = b2.iconst(SIDE - 1);
        const Reg si = b2.and_(i, smask);
        const Reg fl = b2.load(emitIndex(b2, flow, si), 0);
        const Reg h = b2.load(emitIndex(b2, headn, si), 0);
        Reg red = b2.sub(c, fl);
        const Reg two = b2.iconst(2);
        red = b2.add(red, b2.shr(h, two));
        red = b2.xor_(red, b2.shl(fl, two));
        red = b2.add(red, i);
        b2.store(emitIndex(b2, cost, idx), 0, red);
      });
    }

    // Basis-tree chase: Figure-1-shaped pointer walk with potential
    // updates on each node (node-local, so iterations are independent
    // apart from the chase itself).
    {
      const Reg start = b.add(tree, b.iconst(16));  // node 1
      const Reg p = b.newReg();
      b.movTo(p, start);
      chaseLoop(b, "basis_chase", p, 0, [&](IrBuilder& b2, Reg pnext) {
        (void)pnext;
        const Reg pot = b2.load(p, 8);
        const Reg k = b2.iconst(0x9e3779b9);
        Reg np = b2.mul(pot, k);
        const Reg six = b2.iconst(6);
        np = b2.xor_(np, b2.shr(np, six));
        np = b2.add(np, pot);
        b2.store(p, 8, np);
        b2.movTo(chk, b2.add(chk, np));
      });
    }

    // Pivot scan: a dependent recurrence through memory (spill[i] is
    // computed from spill[i-1]) with random cost-array loads — a serial,
    // memory-heavy phase the compiler must reject.
    {
      const auto PIVOTS = static_cast<std::int64_t>(16000 * scale);
      const Reg spill = b.halloc(PIVOTS * 8);
      const Reg i = b.newReg();
      b.constTo(i, 1);
      const Reg end = b.iconst(PIVOTS);
      countedLoop(b, "pivot_scan", i, end, [&](IrBuilder& b2) {
        const Reg one = b2.iconst(1);
        const Reg prev_i = b2.sub(i, one);
        const Reg prev = b2.load(emitIndex(b2, spill, prev_i), 0);
        const Reg k = b2.iconst(2246822519ll);
        const Reg cmask = b2.iconst(32767);  // a 256KB L3-resident window
        const Reg idx = b2.and_(b2.mul(i, k), cmask);
        const Reg c = b2.load(emitIndex(b2, cost, idx), 0);
        const Reg kf = b2.iconst(0x100000001b3ll);
        Reg v = b2.mul(b2.xor_(prev, c), kf);
        v = b2.mul(b2.add(v, i), kf);
        v = b2.mul(b2.xor_(v, prev), kf);
        b2.store(emitIndex(b2, spill, i), 0, v);
      });
      const Reg last = b.load(emitIndex(b, spill, b.iconst(PIVOTS - 1)), 0);
      b.movTo(chk, b.xor_(chk, last));
    }

    // Price-out pass: sequential sweep over the side arrays.
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(SIDE);
      countedLoop(b, "price_out", i, end, [&](IrBuilder& b2) {
        const Reg c = b2.load(emitIndex(b2, cost, i), 0);
        const Reg h = b2.load(emitIndex(b2, headn, i), 0);
        const Reg three = b2.iconst(3);
        const Reg v = b2.add(b2.mul(c, three), h);
        b2.store(emitIndex(b2, flow, i), 0, v);
      });
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

// gzip analog: window fill, hash-chain insertion (low-probability
// cross-iteration dependences through the hash head table — speculation
// usually succeeds, occasionally replays), match scanning with short inner
// loops, and a serial CRC.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload gzipLike() {
  Workload w;
  w.name = "gzip";
  w.description =
      "LZ77-style hash insertion and match scanning; dynamic parallelism "
      "with rare hash-bucket collisions between consecutive positions.";
  w.build = [](std::uint64_t scale) {
    Module m("gzip");
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0xda3e39cb94b95bdbll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto W = static_cast<std::int64_t>(4200 * scale);
    const std::int64_t HASH_BITS = 9;  // 512 heads: ~0.2% collision rate
    const std::int64_t H = 1ll << HASH_BITS;

    // Input window.
    const Reg window = emitRandomArrayImm(b, "fill_window", W, prng, 12);
    const Reg head = emitRandomArrayImm(b, "head_init", H, prng, 1);
    const Reg prev = b.halloc(W * 8);

    // Hash-chain insertion: prev[i] = head[h]; head[h] = i. The head-table
    // read-modify-write creates a distance-1 dependence only when two
    // consecutive positions hash to the same bucket.
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(W);
      countedLoop(b, "hash_insert", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, window, i), 0);
        // 64-bit odd constant so the top HASH_BITS bits actually mix.
        const Reg k1 = b2.iconst(0x9e3779b97f4a7c15ll);
        const Reg mixed = b2.mul(v, k1);
        const Reg shift = b2.iconst(64 - HASH_BITS);
        const Reg h = b2.shr(mixed, shift);
        const Reg head_addr = emitIndex(b2, head, h);
        const Reg old = b2.load(head_addr, 0);
        b2.store(emitIndex(b2, prev, i), 0, old);
        b2.store(head_addr, 0, i);
        // Extra literal-cost modelling work.
        const Reg c = b2.iconst(0x27d4eb2f);
        Reg acc = b2.xor_(v, old);
        acc = b2.mul(acc, c);
        acc = b2.add(acc, v);
        b2.store(emitIndex(b2, prev, i), 0, acc);
      });
    }

    // Match scanning: outer loop over positions with a short inner
    // comparison loop (inner trips ~4: too short to select; the outer loop
    // contains it and is not transformable).
    {
      const Reg pos = b.newReg();
      b.constTo(pos, 8);
      const Reg pos_end = b.iconst(W - 8);
      countedLoop(b, "match_scan", pos, pos_end, [&](IrBuilder& b2) {
        const Reg j = b2.newReg();
        b2.constTo(j, 0);
        const Reg four = b2.iconst(4);
        Reg len = b2.newReg();
        b2.constTo(len, 0);
        countedLoop(b2, "match_len", j, four, [&](IrBuilder& b3) {
          const Reg idx1 = b3.add(pos, j);
          const Reg a = b3.load(emitIndex(b3, window, idx1), 0);
          const Reg back = b3.iconst(7);
          const Reg idx2 = b3.sub(idx1, back);
          const Reg c = b3.load(emitIndex(b3, window, idx2), 0);
          const Reg eq = b3.cmpEq(a, c);
          b3.movTo(len, b3.add(len, eq));
        });
        b2.movTo(chk, b2.add(chk, len));
      });
    }

    // Serial CRC over the prev[] table (accumulator: stays sequential).
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(W);
      countedLoop(b, "crc", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, prev, i), 0);
        const Reg k = b2.iconst(0xedb88320);
        const Reg one = b2.iconst(1);
        const Reg shifted = b2.shr(chk, one);
        const Reg mixed = b2.xor_(shifted, v);
        b2.movTo(chk, b2.xor_(b2.mul(mixed, k), v));
      });
    }

    // Adler-style second checksum over the window (serial).
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(W);
      const Reg s2 = b.newReg();
      b.constTo(s2, 1);
      countedLoop(b, "adler", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, window, i), 0);
        b2.movTo(chk, b2.add(chk, v));
        b2.movTo(s2, b2.add(s2, chk));
      });
      b.movTo(chk, b.xor_(chk, s2));
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

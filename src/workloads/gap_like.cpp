// gap analog: one very hot loop whose body is usually small but
// occasionally makes a huge function call (a GC-style region sweep) — the
// skewed loop the paper highlights under Figure 6, admitted only when the
// body-size limit is raised to 2500.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload gapLike() {
  Workload w;
  w.name = "gap";
  w.description =
      "One hot interpreter loop; ~1/4 of iterations call a large region "
      "sweep (4000 straight-line instructions), giving a skewed body-size "
      "distribution with an average near 1500 instructions.";
  w.build = [](std::uint64_t scale) {
    Module m("gap");

    const std::int64_t REGION_SLOTS = 700;

    // gc_sweep(region_base): rewrites every slot of one region as
    // *straight-line* generated code (~8 instructions per slot -> ~4000
    // instructions per call, a 64KB I-cache footprint). Keeping it
    // loop-free is what makes the enclosing collect_bags loop's body-size
    // distribution skewed, as the paper describes for gap.
    const FuncId gc_sweep = m.addFunction("gc_sweep", 1);
    {
      IrBuilder b(m, gc_sweep);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg region = b.param(0);
      Reg acc = b.iconst(0);
      const Reg k = b.iconst(0xbf58476d1ce4e5b9ll);
      const Reg c27 = b.iconst(27);
      for (std::int64_t slot = 0; slot < REGION_SLOTS; ++slot) {
        const Reg v = b.load(region, slot * 8);
        Reg nv = b.mul(v, k);
        nv = b.xor_(nv, b.shr(nv, c27));
        b.store(region, slot * 8, nv);
        acc = b.add(acc, nv);
      }
      b.ret(acc);
    }

    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0xd6e8feb86659fd93ll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto BAGS = static_cast<std::int64_t>(500 * scale);
    const auto NAMES = static_cast<std::int64_t>(11000 * scale);
    const std::int64_t NREGIONS = 4;

    const Reg bags = emitRandomArrayImm(b, "bag_init", BAGS, prng, 16);
    const Reg out = b.halloc(BAGS * 8);
    // Four regions; consecutive huge calls hit different regions, so huge
    // iterations stay speculatively independent.
    const Reg regions = b.halloc(NREGIONS * REGION_SLOTS * 8);

    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(BAGS);
      countedLoop(b, "collect_bags", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, bags, i), 0);
        // Common case: ~20 instructions of interpreter-style dispatch.
        const Reg k1 = b2.iconst(0x94d049bb133111ebll);
        Reg d = b2.mul(v, k1);
        const Reg c31 = b2.iconst(31);
        d = b2.xor_(d, b2.shr(d, c31));
        d = b2.add(d, i);
        d = b2.mul(d, k1);
        d = b2.xor_(d, b2.shl(d, c31));
        b2.store(emitIndex(b2, out, i), 0, d);

        // Rare case (v % 4 == 0, ~1/4): the huge region sweep.
        const Reg three_m = b2.iconst(3);
        const Reg low = b2.and_(v, three_m);
        const Reg zero = b2.iconst(0);
        const Reg is_big = b2.cmpEq(low, zero);
        const BlockId big = b2.createBlock("collect_big" );
        const BlockId join = b2.createBlock("collect_join");
        b2.condBr(is_big, big, join);
        b2.setInsertPoint(big);
        const Reg region_idx = emitMask(b2, i, 2);  // rotate over 4 regions
        const Reg slot_bytes = b2.iconst(REGION_SLOTS * 8);
        const Reg region = b2.add(regions, b2.mul(region_idx, slot_bytes));
        const Reg swept = b2.call(gc_sweep, {region});
        b2.store(emitIndex(b2, out, i), 0, swept);
        b2.br(join);
        b2.setInsertPoint(join);
      });
    }

    // Identifier hashing: the small-body loop work that gives gap its
    // ~35% coverage below the Figure 6 jump.
    {
      const Reg names = b.halloc(NAMES * 8);
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(NAMES);
      countedLoop(b, "name_hash", i, end, [&](IrBuilder& b2) {
        const Reg mask = b2.iconst(255);
        const Reg src = b2.and_(i, mask);
        const Reg v = b2.load(emitIndex(b2, bags, src), 0);
        const Reg k1 = b2.iconst(0xff51afd7ed558ccdll);
        Reg h = b2.mul(b2.add(v, i), k1);
        const Reg c33 = b2.iconst(33);
        h = b2.xor_(h, b2.shr(h, c33));
        h = b2.mul(h, k1);
        b2.store(emitIndex(b2, names, i), 0, h);
      });
    }

    // Small tail checksum loop.
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(BAGS);
      countedLoop(b, "bag_checksum", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, out, i), 0);
        b2.movTo(chk, b2.xor_(chk, v));
      });
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

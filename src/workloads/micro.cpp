// Microkernel workloads reproducing the paper's worked examples.
#include "workloads/common.h"
#include "workloads/kernels.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload microParserFree() {
  Workload w;
  w.name = "micro.parser_free";
  w.description =
      "Paper Figure 1: linked-list free loop from parser. The free-list "
      "push misspeculates on nearly every iteration but only a few "
      "instructions re-execute, so selective re-execution still wins.";
  w.build = [](std::uint64_t scale) {
    Module m("micro.parser_free");
    const FuncId free_node = addFreeNodeFunc(m, "free_node", /*work=*/24);
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0x9e3779b9);
    const auto n = static_cast<std::int64_t>(2000 * scale);
    const auto [head, freelist] = emitBuildList(b, "build_list", n, prng);
    emitFreeListLoop(b, "free_list", head, freelist, free_node);
    // Checksum: the final free-list head.
    const Reg sum = b.load(freelist, 0);
    b.ret(sum);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

Workload microSvpStride() {
  Workload w;
  w.name = "micro.svp_stride";
  w.description =
      "Paper Figure 5: while(x) { foo(x); x = bar(x); } where bar is "
      "impure but advances x by a constant stride — software value "
      "prediction eliminates the critical scalar dependence.";
  w.build = [](std::uint64_t scale) {
    Module m("micro.svp_stride");
    // foo(out_buf, x): ~15 instructions of consumer work, stores at
    // x-indexed cells (iteration-disjoint side effects).
    const FuncId foo = m.addFunction("foo", 2);
    {
      IrBuilder b(m, foo);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg x = b.param(1);
      Reg acc = x;
      const Reg c = b.iconst(0x2545f491);
      for (int k = 0; k < 10; ++k) {
        acc = (k % 2 == 0) ? b.mul(acc, c) : b.xor_(acc, x);
      }
      const Reg addr = emitIndex(b, b.param(0), x);
      b.store(addr, 0, acc);
      b.ret(acc);
    }
    // bar(out_buf, x): impure (bumps the cell it indexes) and returns
    // x + 2 — the predictable stride.
    const FuncId bar = m.addFunction("bar", 2);
    {
      IrBuilder b(m, bar);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg x = b.param(1);
      const Reg addr = emitIndex(b, b.param(0), x);
      const Reg old = b.load(addr, 0);
      const Reg one = b.iconst(1);
      b.store(addr, 0, b.add(old, one));
      const Reg two = b.iconst(2);
      b.ret(b.add(x, two));
    }
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const auto n = static_cast<std::int64_t>(3000 * scale);
    const Reg buf = b.halloc((2 * n + 16) * 8);
    const Reg x = b.newReg();
    b.constTo(x, 5);
    const Reg k = b.newReg();
    b.constTo(k, 0);
    const Reg end = b.iconst(n);
    countedLoop(b, "svp_loop", k, end, [&](IrBuilder& bb) {
      bb.callVoid(foo, {buf, x});
      const Reg x2 = bb.call(bar, {buf, x});
      bb.movTo(x, x2);
    });
    b.ret(x);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

// parser analog: dictionary lookups plus the Figure 1 linked-list free
// loops. High loop coverage, good SPT gains through selective re-execution
// (the free-list push misspeculates, but cheaply).
#include "workloads/common.h"
#include "workloads/kernels.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload parserLike() {
  Workload w;
  w.name = "parser";
  w.description =
      "Dictionary classification and lookup sweeps plus two linked-list "
      "free loops (paper Figure 1's hot loop).";
  w.build = [](std::uint64_t scale) {
    Module m("parser");
    const FuncId free_node = addFreeNodeFunc(m, "free_node", 20);

    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0x853c49e6748fea9bll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto T = static_cast<std::int64_t>(1600 * scale);
    const std::int64_t D = 4096;

    // Dictionary of word hashes.
    const Reg dict = emitRandomArrayImm(b, "dict_init", D, prng, 30);

    const Reg run = b.newReg();
    b.constTo(run, 0);
    const Reg runs = b.iconst(2);
    countedLoop(b, "run_loop", run, runs, [&](IrBuilder& bb) {
      // Token stream.
      const Reg tok = emitRandomArrayImm(bb, "tok_init", T, prng, 16);
      const Reg out = bb.halloc(T * 8);

      // Classification sweep: independent per-token work.
      {
        const Reg i = bb.newReg();
        bb.constTo(i, 0);
        const Reg end = bb.iconst(T);
        countedLoop(bb, "classify", i, end, [&](IrBuilder& b2) {
          const Reg v = b2.load(emitIndex(b2, tok, i), 0);
          Reg acc = v;
          const Reg k1 = b2.iconst(0x9e3779b9);
          const Reg k2 = b2.iconst(7);
          acc = b2.mul(acc, k1);
          acc = b2.xor_(acc, b2.shr(acc, k2));
          acc = b2.add(acc, v);
          acc = b2.mul(acc, k1);
          acc = b2.xor_(acc, b2.shl(acc, k2));
          b2.store(emitIndex(b2, out, i), 0, acc);
        });
      }

      // Dictionary lookup sweep: random dictionary probes.
      {
        const Reg i = bb.newReg();
        bb.constTo(i, 0);
        const Reg end = bb.iconst(T);
        countedLoop(bb, "dict_lookup", i, end, [&](IrBuilder& b2) {
          const Reg t = b2.load(emitIndex(b2, out, i), 0);
          const Reg h = emitMask(b2, t, 12);
          const Reg d = b2.load(emitIndex(b2, dict, h), 0);
          const Reg mixed = b2.xor_(d, t);
          const Reg three = b2.iconst(3);
          const Reg r = b2.mul(mixed, three);
          b2.store(emitIndex(b2, out, i), 0, r);
        });
      }

      // Clause lists: build then free (Figure 1).
      {
        const auto n1 = static_cast<std::int64_t>(1500 * scale);
        const auto [head, freelist] =
            emitBuildList(bb, "build_clauses", n1, prng);
        emitFreeListLoop(bb, "free_clauses", head, freelist, free_node);
        const Reg fl_head = bb.load(freelist, 0);
        bb.movTo(chk, bb.xor_(chk, fl_head));
      }
      {
        const auto n2 = static_cast<std::int64_t>(700 * scale);
        const auto [head, freelist] =
            emitBuildList(bb, "build_links", n2, prng);
        emitFreeListLoop(bb, "free_links", head, freelist, free_node);
        const Reg fl_head = bb.load(freelist, 0);
        bb.movTo(chk, bb.xor_(chk, fl_head));
      }

      // Serial word count (tiny accumulator body: rejected or unrolled).
      {
        const Reg i = bb.newReg();
        bb.constTo(i, 0);
        const Reg end = bb.iconst(T);
        countedLoop(bb, "count_words", i, end, [&](IrBuilder& b2) {
          const Reg v = b2.load(emitIndex(b2, out, i), 0);
          const Reg low = emitMask(b2, v, 2);
          bb.movTo(chk, b2.add(chk, low));
        });
      }
    });

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

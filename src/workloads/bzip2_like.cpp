// bzip2 analog: block-sort rank updates whose every iteration updates
// global statistics through helper calls — the "indirect global memory
// updates via function calls" that the paper says hurt bzip2's gain — plus
// a serial run-length encoder.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload bzip2Like() {
  Workload w;
  w.name = "bzip2";
  w.description =
      "Block-sort rank sweep with per-iteration global statistics updates "
      "through calls (frequent cheap misspeculation) and a serial RLE pass.";
  w.build = [](std::uint64_t scale) {
    Module m("bzip2");

    // bump_stats(stats, v): updates a shared histogram bucket AND a shared
    // byte counter — the counter makes every iteration dependent.
    const FuncId bump = m.addFunction("bump_stats", 2);
    {
      IrBuilder b(m, bump);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg stats = b.param(0);
      const Reg v = b.param(1);
      const Reg bucket = emitMask(b, v, 4);  // 16 buckets
      const Reg baddr = emitIndex(b, stats, bucket);
      const Reg old = b.load(baddr, 0);
      const Reg one = b.iconst(1);
      b.store(baddr, 0, b.add(old, one));
      // Shared total counter at stats[16]: the update is a dependent
      // multiply chain, so the cross-iteration memory recurrence is
      // latency-bound (this is what makes bzip2's gain small).
      const Reg total = b.load(stats, 16 * 8);
      const Reg kf = b.iconst(0x100000001b3ll);
      Reg nt = b.mul(total, kf);
      nt = b.mul(b.xor_(nt, total), kf);
      nt = b.add(nt, v);
      b.store(stats, 16 * 8, nt);
      b.ret(total);
    }

    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0xc4ceb9fe1a85ec53ll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto N = static_cast<std::int64_t>(1400 * scale);
    const auto RLE_N = static_cast<std::int64_t>(5500 * scale);
    const Reg block = emitRandomArrayImm(b, "block_init", RLE_N, prng, 10);
    const Reg rank = b.halloc(N * 8);
    const Reg stats = b.halloc(17 * 8);

    // Rank sweep: per-element sort-rank computation plus global stats —
    // the shared total counter is read *early* (feeding the stored rank)
    // and written *late* through the call, so every iteration violates and
    // replays its counter-dependent chain.
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(N);
      countedLoop(b, "rank_sweep", i, end, [&](IrBuilder& b2) {
        const Reg total_in = b2.load(stats, 16 * 8);
        const Reg v = b2.load(emitIndex(b2, block, i), 0);
        const Reg k1 = b2.iconst(0x85ebca6b);
        const Reg k2 = b2.iconst(13);
        Reg r = b2.mul(b2.xor_(v, total_in), k1);
        r = b2.xor_(r, b2.shr(r, k2));
        r = b2.add(r, i);
        r = b2.mul(r, k1);
        r = b2.xor_(r, b2.shl(r, k2));
        b2.store(emitIndex(b2, rank, i), 0, r);
        b2.callVoid(bump, {stats, v});
      });
    }

    // Serial RLE: run state is conditionally updated — stays sequential.
    {
      const Reg i = b.newReg();
      b.constTo(i, 1);
      const Reg end = b.iconst(RLE_N);
      const Reg run_len = b.newReg();
      b.constTo(run_len, 1);
      countedLoop(b, "rle_encode", i, end, [&](IrBuilder& b2) {
        const Reg cur = b2.load(emitIndex(b2, block, i), 0);
        const Reg one = b2.iconst(1);
        const Reg prev_idx = b2.sub(i, one);
        const Reg prev = b2.load(emitIndex(b2, block, prev_idx), 0);
        const Reg same = b2.cmpEq(cur, prev);
        // run_len = same ? run_len + 1 : 1, branch-free.
        const Reg grown = b2.add(run_len, one);
        const Reg not_same = b2.sub(one, same);
        const Reg kept = b2.mul(grown, same);
        const Reg reset = b2.mul(one, not_same);
        const Reg kf = b2.iconst(0x100000001b3ll);
        Reg rl = b2.add(kept, reset);
        rl = b2.add(b2.mul(b2.mul(rl, kf), kf), rl);
        b2.movTo(run_len, rl);
        b2.movTo(chk, b2.add(chk, rl));
      });
    }

    const Reg total = b.load(stats, 16 * 8);
    b.ret(b.xor_(chk, total));
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

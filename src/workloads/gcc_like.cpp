// gcc analog: many medium-sized loops — bitset dataflow sweeps, constant
// propagation passes with conditional updates, and an instruction-list walk
// with occasional table updates. The known hard-to-parallelize benchmark
// that still gets ~14% in the paper.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload gccLike() {
  Workload w;
  w.name = "gcc";
  w.description =
      "Bitset dataflow over basic blocks, constant-propagation sweeps, and "
      "an RTL-style list walk with low-probability table collisions.";
  w.build = [](std::uint64_t scale) {
    Module m("gcc");

    // note_use(table, reg_id): bumps a use-count cell (random index:
    // low-probability distance-1 dependences).
    const FuncId note_use = m.addFunction("note_use", 2);
    {
      IrBuilder b(m, note_use);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg idx = emitMask(b, b.param(1), 8);  // 256 cells
      const Reg addr = emitIndex(b, b.param(0), idx);
      const Reg old = b.load(addr, 0);
      const Reg one = b.iconst(1);
      b.store(addr, 0, b.add(old, one));
      b.ret(old);
    }

    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0x2b992ddfa23249d6ll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto BLOCKS = static_cast<std::int64_t>(16 * scale);
    const std::int64_t WORDS = 48;  // bitset words per block
    const auto INSNS = static_cast<std::int64_t>(3000 * scale);

    const Reg gen = emitRandomArrayImm(b, "gen_init", BLOCKS * WORDS, prng);
    const Reg kill = emitRandomArrayImm(b, "kill_init", BLOCKS * WORDS, prng);
    const Reg in = b.halloc(BLOCKS * WORDS * 8);
    const Reg out = b.halloc(BLOCKS * WORDS * 8);
    const Reg use_table = b.halloc(256 * 8);
    const Reg insns = emitRandomArrayImm(b, "insn_init", INSNS, prng, 20);

    // Dataflow: outer loop over blocks (contains the inner loop), inner
    // parallel sweep over bitset words.
    {
      const Reg blk = b.newReg();
      b.constTo(blk, 0);
      const Reg nblk = b.iconst(BLOCKS);
      const Reg words = b.iconst(WORDS);
      countedLoop(b, "dataflow_blocks", blk, nblk, [&](IrBuilder& b2) {
        const Reg base = b2.mul(blk, words);
        const Reg word = b2.newReg();
        b2.constTo(word, 0);
        countedLoop(b2, "dataflow_words", word, words, [&](IrBuilder& b3) {
          const Reg idx = b3.add(base, word);
          const Reg o = b3.load(emitIndex(b3, out, idx), 0);
          const Reg k = b3.load(emitIndex(b3, kill, idx), 0);
          const Reg g = b3.load(emitIndex(b3, gen, idx), 0);
          const Reg minus1 = b3.iconst(-1);
          const Reg not_k = b3.xor_(k, minus1);
          const Reg masked = b3.and_(o, not_k);
          const Reg res = b3.or_(masked, g);
          b3.store(emitIndex(b3, in, idx), 0, res);
          const Reg two = b3.iconst(2);
          const Reg nxt = b3.or_(res, b3.shr(res, two));
          b3.store(emitIndex(b3, out, idx), 0, nxt);
        });
      });
    }

    // Constant propagation sweep: conditional stores, no carried scalars.
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(INSNS / 3);
      countedLoop(b, "const_prop", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, insns, i), 0);
        const Reg seven = b2.iconst(7);
        const Reg low = b2.and_(v, seven);
        const Reg zero = b2.iconst(0);
        const Reg is_const = b2.cmpEq(low, zero);
        const Reg k1 = b2.iconst(0xcc9e2d51);
        Reg folded = b2.mul(v, k1);
        folded = b2.xor_(folded, v);
        const Reg five = b2.iconst(5);
        folded = b2.add(folded, b2.shr(v, five));
        // Branch-free conditional store value.
        const Reg keep = b2.sub(b2.iconst(1), is_const);
        const Reg merged =
            b2.add(b2.mul(folded, is_const), b2.mul(v, keep));
        b2.store(emitIndex(b2, insns, i), 0, merged);
      });
    }

    // RTL walk: per-insn decode work plus an occasional use-table bump.
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(2 * INSNS / 3);
      countedLoop(b, "rtl_walk", i, end, [&](IrBuilder& b2) {
        const Reg v = b2.load(emitIndex(b2, insns, i), 0);
        const Reg k1 = b2.iconst(0x1b873593);
        Reg d = b2.mul(v, k1);
        const Reg nine = b2.iconst(9);
        d = b2.xor_(d, b2.shr(d, nine));
        d = b2.add(d, i);
        const Reg r = b2.call(note_use, {use_table, d});
        b2.movTo(chk, b2.xor_(chk, r));
      });
    }

    // Live-range numbering: a serial dependent recurrence (the running
    // range id depends on the previous instruction's).
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(3 * INSNS);
      const Reg range = b.newReg();
      b.constTo(range, 1);
      countedLoop(b, "live_ranges", i, end, [&](IrBuilder& b2) {
        const Reg imask = b2.iconst(2047);
        const Reg idx = b2.and_(i, imask);
        const Reg v = b2.load(emitIndex(b2, insns, idx), 0);
        const Reg three = b2.iconst(3);
        const Reg starts = b2.and_(v, three);
        const Reg zero = b2.iconst(0);
        const Reg is_start = b2.cmpEq(starts, zero);
        // Latency-bound recurrence: dependent multiplies serialize the
        // loop regardless of issue width.
        const Reg k9 = b2.iconst(0x100000001b3ll);
        Reg rr = b2.mul(b2.add(range, is_start), k9);
        rr = b2.mul(b2.xor_(rr, v), k9);
        rr = b2.add(b2.mul(rr, k9), is_start);
        b2.movTo(range, rr);
        b2.movTo(chk, b2.xor_(chk, rr));
      });
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

// vortex analog: an object-database workload whose execution is dominated
// by call trees (insert / lookup / validate chains driven by recursion),
// with almost no loop coverage — the paper's Figure 6 shows vortex's loop
// coverage staying negligible, and Figure 9 shows no SPT gain.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload vortexLike() {
  Workload w;
  w.name = "vortex";
  w.description =
      "Recursive transaction driver issuing database insert/lookup/validate "
      "call chains; negligible loop coverage by construction.";
  w.build = [](std::uint64_t scale) {
    Module m("vortex");
    const std::int64_t TABLE = 2048;

    // insert(db, key): hashed store plus chain bookkeeping.
    const FuncId insert = m.addFunction("db_insert", 2);
    {
      IrBuilder b(m, insert);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg key = b.param(1);
      const Reg k1 = b.iconst(0xff51afd7ed558ccdll);
      Reg h = b.mul(key, k1);
      const Reg c33 = b.iconst(33);
      h = b.xor_(h, b.shr(h, c33));
      const Reg slot = emitMask(b, h, 11);
      const Reg addr = emitIndex(b, b.param(0), slot);
      const Reg old = b.load(addr, 0);
      b.store(addr, 0, b.xor_(old, key));
      b.ret(slot);
    }

    // lookup(db, key): hashed probe with a short rehash chain.
    const FuncId lookup = m.addFunction("db_lookup", 2);
    {
      IrBuilder b(m, lookup);
      b.setInsertPoint(b.createBlock("entry"));
      const Reg key = b.param(1);
      const Reg k1 = b.iconst(0xc4ceb9fe1a85ec53ll);
      Reg h = b.mul(key, k1);
      const Reg c29 = b.iconst(29);
      h = b.xor_(h, b.shr(h, c29));
      const Reg s0 = emitMask(b, h, 11);
      const Reg v0 = b.load(emitIndex(b, b.param(0), s0), 0);
      const Reg one = b.iconst(1);
      const Reg s1 = emitMask(b, b.add(s0, one), 11);
      const Reg v1 = b.load(emitIndex(b, b.param(0), s1), 0);
      b.ret(b.xor_(v0, v1));
    }

    // validate(v): pure arithmetic tree.
    const FuncId validate = m.addFunction("db_validate", 1);
    {
      IrBuilder b(m, validate);
      b.setInsertPoint(b.createBlock("entry"));
      Reg v = b.param(0);
      const Reg k = b.iconst(0x2545f4914f6cdd1dll);
      for (int i = 0; i < 8; ++i) {
        v = (i % 2 == 0) ? b.mul(v, k) : b.xor_(v, b.param(0));
      }
      b.ret(v);
    }

    // process(db, n): one transaction then recurse (no loop!).
    const FuncId process = m.addFunction("process", 2);
    {
      IrBuilder b(m, process);
      const BlockId entry = b.createBlock("entry");
      const BlockId work = b.createBlock("work");
      const BlockId done = b.createBlock("done");
      b.setInsertPoint(entry);
      const Reg n = b.param(1);
      const Reg zero = b.iconst(0);
      const Reg stop = b.cmpEq(n, zero);
      b.condBr(stop, done, work);
      b.setInsertPoint(work);
      const Reg k1 = b.iconst(0x9e3779b97f4a7c15ll);
      const Reg key = b.mul(n, k1);
      const Reg slot = b.call(insert, {b.param(0), key});
      const Reg found = b.call(lookup, {b.param(0), key});
      const Reg ok = b.call(validate, {found});
      const Reg mixed = b.xor_(b.add(slot, ok), key);
      const Reg one = b.iconst(1);
      const Reg rest = b.call(process, {b.param(0), b.sub(n, one)});
      b.ret(b.xor_(mixed, rest));
      b.setInsertPoint(done);
      b.ret(zero);
    }

    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0xe7037ed1a0b428dbll);
    const Reg db = emitRandomArrayImm(b, "db_init", TABLE, prng);
    const auto n = static_cast<std::int64_t>(1600 * scale);
    const Reg count = b.iconst(n);
    const Reg r1 = b.call(process, {db, count});
    const Reg r2 = b.call(process, {db, count});
    b.ret(b.xor_(r1, r2));
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

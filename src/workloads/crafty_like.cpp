// crafty analog: chess-engine-style bitboard work where most loop coverage
// sits in short-trip-count move-generation loops nested under a position
// driver — the paper notes crafty "has many loops of short iteration
// counts that is inefficient to parallelize at iteration level".
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload craftyLike() {
  Workload w;
  w.name = "crafty";
  w.description =
      "Move generation with trip-count-4 direction loops under a position "
      "driver, a 64-square evaluation sweep, and hash probes.";
  w.build = [](std::uint64_t scale) {
    Module m("crafty");
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0x94d049bb133111ebll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto POSITIONS = static_cast<std::int64_t>(600 * scale);
    const std::int64_t HASH = 1024;

    const Reg board = emitRandomArrayImm(b, "board_init", 64, prng);
    const Reg hash_table = emitRandomArrayImm(b, "hash_init", HASH, prng);
    const Reg moves = b.halloc(64 * 8);

    // Position driver: untransformable (inner loops); the inner direction
    // loops have trip count 4 and tiny bodies — rejected by selection.
    {
      const Reg pos = b.newReg();
      b.constTo(pos, 0);
      const Reg pend = b.iconst(POSITIONS);
      countedLoop(b, "search_positions", pos, pend, [&](IrBuilder& b2) {
        const Reg piece = b2.newReg();
        b2.constTo(piece, 0);
        const Reg npieces = b2.iconst(12);
        countedLoop(b2, "gen_pieces", piece, npieces, [&](IrBuilder& b3) {
          const Reg sq = emitMask(b3, b3.add(piece, pos), 6);
          const Reg bits = b3.load(emitIndex(b3, board, sq), 0);
          const Reg dir = b3.newReg();
          b3.constTo(dir, 0);
          const Reg ndirs = b3.iconst(4);
          countedLoop(b3, "gen_dirs", dir, ndirs, [&](IrBuilder& b4) {
            const Reg ray = b4.shr(bits, dir);
            const Reg slot = emitMask(b4, b4.add(sq, dir), 6);
            b4.store(emitIndex(b4, moves, slot), 0, ray);
          });
        });
        // Hash probe: one global-table read-modify-write per position.
        const Reg key = emitXorshift(b2, prng);
        const Reg h = emitMask(b2, key, 10);
        const Reg haddr = emitIndex(b2, hash_table, h);
        const Reg old = b2.load(haddr, 0);
        b2.store(haddr, 0, b2.xor_(old, key));
        b2.movTo(chk, b2.add(chk, old));
      });
    }

    // Evaluation: the one healthy parallel loop (64 squares, decent body).
    {
      const Reg round = b.newReg();
      b.constTo(round, 0);
      const Reg rounds = b.iconst(POSITIONS / 32);
      countedLoop(b, "eval_rounds", round, rounds, [&](IrBuilder& b2) {
        const Reg sq = b2.newReg();
        b2.constTo(sq, 0);
        const Reg n64 = b2.iconst(64);
        countedLoop(b2, "evaluate", sq, n64, [&](IrBuilder& b3) {
          const Reg v = b3.load(emitIndex(b3, board, sq), 0);
          const Reg k1 = b3.iconst(0xff51afd7ed558ccdll);
          Reg score = b3.mul(v, k1);
          const Reg c33 = b3.iconst(33);
          score = b3.xor_(score, b3.shr(score, c33));
          score = b3.add(score, sq);
          score = b3.mul(score, k1);
          score = b3.xor_(score, b3.shl(score, c33));
          b3.store(emitIndex(b3, moves, sq), 0, score);
        });
      });
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

// Shared kernels used by more than one workload (notably the paper's
// Figure 1 linked-list free loop, used by parser_like and micro.parser_free).
#pragma once

#include <cstdint>
#include <string>

#include "ir/builder.h"

namespace spt::workloads {

/// Adds `free_node(freelist_head_addr, node)`: payload bookkeeping on the
/// node (about `work` arithmetic instructions plus two node-local memory
/// operations) followed by a push onto the free list — the global update
/// that makes the Figure 1 loop misspeculate on ~all iterations while only
/// a few of its instructions need re-execution.
/// Node layout (32 bytes): +0 payload, +8 next, +16 scratch, +24 free-link.
ir::FuncId addFreeNodeFunc(ir::Module& m, const std::string& name, int work);

/// Emits, at the current insert point:
///  * allocation of `n` 32-byte nodes as a linked list (build loop labelled
///    `label_build`), payload from the caller's PRNG state register;
///  * allocation of the free-list head cell;
/// Returns (head_node_reg, freelist_addr_reg). Builder ends un-terminated.
std::pair<ir::Reg, ir::Reg> emitBuildList(ir::IrBuilder& b,
                                          const std::string& label_build,
                                          std::int64_t n, ir::Reg prng);

/// Emits the Figure 1 free loop (labelled `label`): chases `head` via the
/// +8 next field, calling free_node(freelist, node) on each node. Builder
/// ends un-terminated in the loop exit block.
void emitFreeListLoop(ir::IrBuilder& b, const std::string& label,
                      ir::Reg head, ir::Reg freelist, ir::FuncId free_node);

}  // namespace spt::workloads

// The synthetic SPECint2000-analog workload suite.
//
// Ten programs reproduce the loop characteristics the paper reports for
// the ten SPECint2000 benchmarks it evaluates (Section 5.2): parser's
// linked-list free loops (Figure 1), gap's single skewed hot loop with
// occasionally-huge call bodies, vortex's near-absent loop coverage,
// crafty's short trip counts, mcf's memory-bound pointer chasing, and so
// on. Two microkernels reproduce the paper's worked examples (Figures 1
// and 5) in isolation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace spt::workloads {

struct Workload {
  std::string name;
  std::string description;
  /// Builds the program; `scale` multiplies the input size (1 = default,
  /// suitable for full-program simulation in seconds).
  std::function<ir::Module(std::uint64_t scale)> build;
};

// The ten SPECint2000 analogs, in the paper's figure order.
Workload bzip2Like();
Workload craftyLike();
Workload gapLike();
Workload gccLike();
Workload gzipLike();
Workload mcfLike();
Workload parserLike();
Workload twolfLike();
Workload vortexLike();
Workload vprLike();

/// All ten, in figure order.
std::vector<Workload> specSuite();

// Microkernels for the paper's worked examples.
Workload microParserFree();  // Figure 1: linked-list free loop
Workload microSvpStride();   // Figure 5: x = bar(x) stride prediction

/// Finds a workload by name across the suite and microkernels.
Workload findWorkload(const std::string& name);

}  // namespace spt::workloads

// vpr analog: FPGA place-and-route style sweeps — congestion cost updates
// (parallel), a minimum-cost search with a conditionally-updated carried
// minimum (unhoistable, occasionally violating), and timing-delay updates.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload vprLike() {
  Workload w;
  w.name = "vpr";
  w.description =
      "Routing congestion sweeps, a conditional running-minimum search, "
      "and delay propagation updates.";
  w.build = [](std::uint64_t scale) {
    Module m("vpr");
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0x6c62272e07bb0142ll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto NODES = static_cast<std::int64_t>(3600 * scale);

    const Reg occupancy = emitRandomArrayImm(b, "occ_init", NODES, prng, 6);
    const Reg capacity = emitRandomArrayImm(b, "cap_init", NODES, prng, 6);
    const Reg costs = b.halloc(NODES * 8);
    const Reg delays = b.halloc(NODES * 8);

    // Congestion cost sweep: independent per-node work (~20 instrs).
    {
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(NODES);
      countedLoop(b, "congestion", i, end, [&](IrBuilder& b2) {
        const Reg occ = b2.load(emitIndex(b2, occupancy, i), 0);
        const Reg cap = b2.load(emitIndex(b2, capacity, i), 0);
        const Reg one = b2.iconst(1);
        const Reg cap1 = b2.add(cap, one);
        const Reg over = b2.sub(occ, cap);
        const Reg c63 = b2.iconst(63);
        const Reg sign = b2.shr(over, c63);
        const Reg pos_over = b2.sub(b2.xor_(over, sign), sign);
        const Reg base_cost = b2.mul(pos_over, cap1);
        const Reg hist = b2.shl(occ, b2.iconst(2));
        const Reg total = b2.add(base_cost, hist);
        b2.store(emitIndex(b2, costs, i), 0, total);
      });
    }

    // Minimum-cost search: the carried minimum is updated conditionally
    // (conditional def: not hoistable, not SVP-able; violates only when a
    // new minimum is found, which becomes rare as the sweep progresses —
    // dynamic parallelism the compiler cannot prove).
    {
      const Reg best = b.newReg();
      b.constTo(best, INT64_MAX);
      const Reg i = b.newReg();
      b.constTo(i, 0);
      const Reg end = b.iconst(NODES);
      countedLoop(b, "min_search", i, end, [&](IrBuilder& b2) {
        const Reg c = b2.load(emitIndex(b2, costs, i), 0);
        const Reg k1 = b2.iconst(0x9e3779b9);
        Reg scored = b2.mul(c, k1);
        const Reg c7 = b2.iconst(7);
        scored = b2.xor_(scored, b2.shr(scored, c7));
        const Reg better = b2.cmpLt(scored, best);
        const BlockId take = b2.createBlock("min_take");
        const BlockId join = b2.createBlock("min_join");
        b2.condBr(better, take, join);
        b2.setInsertPoint(take);
        b2.movTo(best, scored);
        b2.br(join);
        b2.setInsertPoint(join);
      });
      b.movTo(chk, b.xor_(chk, best));
    }

    // Delay propagation: reads a neighbour, writes self (distance-4
    // neighbour: no distance-1 dependence).
    {
      const Reg i = b.newReg();
      b.constTo(i, 4);
      const Reg end = b.iconst(NODES);
      countedLoop(b, "delay_update", i, end, [&](IrBuilder& b2) {
        const Reg four = b2.iconst(4);
        const Reg src = b2.sub(i, four);
        const Reg d = b2.load(emitIndex(b2, delays, src), 0);
        const Reg c = b2.load(emitIndex(b2, costs, i), 0);
        const Reg two = b2.iconst(2);
        const Reg nd = b2.add(d, b2.shr(c, two));
        b2.store(emitIndex(b2, delays, i), 0, nd);
      });
    }

    // Critical-path timing walk: serial recurrence over the delays.
    {
      const Reg i = b.newReg();
      b.constTo(i, 1);
      const Reg end = b.iconst(NODES);
      countedLoop(b, "timing_walk", i, end, [&](IrBuilder& b2) {
        const Reg one = b2.iconst(1);
        const Reg prev_i = b2.sub(i, one);
        const Reg prev = b2.load(emitIndex(b2, delays, prev_i), 0);
        const Reg cur = b2.load(emitIndex(b2, delays, i), 0);
        const Reg kf = b2.iconst(0x100000001b3ll);
        Reg worst = b2.mul(b2.add(cur, prev), kf);
        worst = b2.mul(b2.xor_(worst, prev), kf);
        worst = b2.mul(b2.add(worst, cur), kf);
        b2.store(emitIndex(b2, delays, i), 0, worst);
      });
      b.movTo(chk, b.xor_(chk, b.load(emitIndex(b, delays, b.iconst(100)), 0)));
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

#include "workloads/kernels.h"

#include "workloads/common.h"

namespace spt::workloads {

using namespace ir;

FuncId addFreeNodeFunc(Module& m, const std::string& name, int work) {
  const FuncId f = m.addFunction(name, 2);  // (freelist_addr, node)
  IrBuilder b(m, f);
  const BlockId entry = b.createBlock("entry");
  const BlockId do_push = b.createBlock("push");
  const BlockId done = b.createBlock("done");
  b.setInsertPoint(entry);
  const Reg fl = b.param(0);
  const Reg node = b.param(1);

  // The free-list head is read *early* and written *late*: a speculative
  // thread one iteration ahead reads it before the main thread's store
  // lands, so nearly every thread misspeculates — but only the short
  // old_head-dependent chain re-executes (paper Figure 1: 80% of threads
  // violate, yet 95% of speculative instructions stay correct).
  const Reg old_head = b.load(fl, 0);

  // Payload bookkeeping (the free_Tconnector-style local work),
  // independent of the free-list head.
  const Reg v = b.load(node, 0);
  Reg acc = v;
  const Reg three = b.iconst(3);
  const Reg magic = b.iconst(0x5bd1e995);
  for (int k = 0; k < work; ++k) {
    switch (k % 4) {
      case 0:
        acc = b.mul(acc, three);
        break;
      case 1:
        acc = b.xor_(acc, magic);
        break;
      case 2:
        acc = b.add(acc, v);
        break;
      default: {
        const Reg five = b.iconst(5);
        acc = b.shr(acc, five);
        break;
      }
    }
  }
  b.store(node, 16, acc);

  // Free-list push (the global update) — skipped for ~1/4 of nodes (small
  // blocks go back to the arena, not the free list), so a matching
  // fraction of speculative threads runs perfectly parallel (the paper
  // reports ~20% for this loop).
  const Reg three_mask = b.iconst(3);
  const Reg low = b.and_(v, three_mask);
  const Reg zero = b.iconst(0);
  const Reg keep = b.cmpEq(low, zero);
  b.condBr(keep, done, do_push);
  b.setInsertPoint(do_push);
  b.store(node, 24, old_head);
  b.store(fl, 0, node);
  b.br(done);
  b.setInsertPoint(done);
  b.ret(acc);
  return f;
}

std::pair<Reg, Reg> emitBuildList(IrBuilder& b, const std::string& label_build,
                                  std::int64_t n, Reg prng) {
  const Reg base = b.halloc(n * 32);
  const Reg freelist = b.halloc(8);
  const Reg i = b.newReg();
  b.constTo(i, 0);
  const Reg end = b.iconst(n);
  const Reg thirty_two = b.iconst(32);
  const Reg last = b.iconst(n - 1);
  countedLoop(b, label_build, i, end, [&](IrBuilder& bb) {
    const Reg off = bb.mul(i, thirty_two);
    const Reg node = bb.add(base, off);
    const Reg payload = emitXorshift(bb, prng);
    bb.store(node, 0, payload);
    // next = (i == n-1) ? 0 : node + 32, branch-free via masking.
    const Reg is_last = bb.cmpEq(i, last);
    const Reg one = bb.iconst(1);
    const Reg not_last = bb.sub(one, is_last);
    const Reg next = bb.add(node, thirty_two);
    const Reg masked = bb.mul(next, not_last);
    bb.store(node, 8, masked);
    const Reg zero = bb.iconst(0);
    bb.store(node, 16, zero);
    bb.store(node, 24, zero);
  });
  return {base, freelist};
}

void emitFreeListLoop(IrBuilder& b, const std::string& label, Reg head,
                      Reg freelist, FuncId free_node) {
  const Reg p = b.newReg();
  b.movTo(p, head);
  chaseLoop(b, label, p, /*next_offset=*/8, [&](IrBuilder& bb, Reg pnext) {
    (void)pnext;
    bb.callVoid(free_node, {freelist, p});
  });
}

}  // namespace spt::workloads

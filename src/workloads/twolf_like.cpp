// twolf analog: standard-cell placement cost sweeps with conditional
// memory updates and a cheap serial cost accumulator — moderate SPT gains
// through selective re-execution of the short accumulator chain.
#include "workloads/common.h"
#include "workloads/workloads.h"

namespace spt::workloads {

using namespace ir;

Workload twolfLike() {
  Workload w;
  w.name = "twolf";
  w.description =
      "Placement cost sweeps (wire-length style) with conditional stores "
      "and a carried total-cost accumulator.";
  w.build = [](std::uint64_t scale) {
    Module m("twolf");
    const FuncId main_id = m.addFunction("main", 0);
    IrBuilder b(m, main_id);
    b.setInsertPoint(b.createBlock("entry"));
    const Reg prng = b.newReg();
    b.constTo(prng, 0xa0761d6478bd642fll);
    const Reg chk = b.newReg();
    b.constTo(chk, 0);

    const auto CELLS = static_cast<std::int64_t>(2600 * scale);

    const Reg xs = emitRandomArrayImm(b, "x_init", CELLS, prng, 10);
    const Reg ys = emitRandomArrayImm(b, "y_init", CELLS, prng, 10);
    const Reg cost = b.halloc(CELLS * 8);

    const Reg pass = b.newReg();
    b.constTo(pass, 0);
    const Reg passes = b.iconst(1);
    countedLoop(b, "anneal_passes", pass, passes, [&](IrBuilder& bb) {
      // Wire cost sweep: independent per-cell computation with a cheap
      // carried accumulator left in the post-fork region.
      {
        const Reg c = bb.newReg();
        bb.constTo(c, 1);
        const Reg end = bb.iconst(CELLS - 1);
        countedLoop(bb, "cost_sweep", c, end, [&](IrBuilder& b2) {
          const Reg x = b2.load(emitIndex(b2, xs, c), 0);
          const Reg y = b2.load(emitIndex(b2, ys, c), 0);
          const Reg one = b2.iconst(1);
          const Reg left = b2.sub(c, one);
          const Reg xl = b2.load(emitIndex(b2, xs, left), 0);
          const Reg dx = b2.sub(x, xl);
          // |dx| without branches: (dx ^ (dx>>63)) - (dx>>63).
          const Reg c63 = b2.iconst(63);
          const Reg sign = b2.shr(dx, c63);
          const Reg adx = b2.sub(b2.xor_(dx, sign), sign);
          const Reg two = b2.iconst(2);
          const Reg wire = b2.add(adx, b2.mul(y, two));
          b2.store(emitIndex(b2, cost, c), 0, wire);
          b2.movTo(chk, b2.add(chk, wire));
        });
      }

      // Swap evaluation: conditional position updates (accepted moves).
      {
        const Reg c = bb.newReg();
        bb.constTo(c, 0);
        const Reg end = bb.iconst(CELLS - 3);
        countedLoop(bb, "swap_eval", c, end, [&](IrBuilder& b2) {
          const Reg here = b2.load(emitIndex(b2, cost, c), 0);
          const Reg three = b2.iconst(3);
          const Reg there_idx = b2.add(c, three);
          const Reg there = b2.load(emitIndex(b2, cost, there_idx), 0);
          const Reg gain = b2.sub(here, there);
          const Reg zero = b2.iconst(0);
          const Reg accept = b2.cmpGt(gain, zero);
          const BlockId do_swap = b2.createBlock("swap_do");
          const BlockId join = b2.createBlock("swap_join");
          b2.condBr(accept, do_swap, join);
          b2.setInsertPoint(do_swap);
          const Reg x = b2.load(emitIndex(b2, xs, c), 0);
          const Reg one = b2.iconst(1);
          b2.store(emitIndex(b2, xs, c), 0, b2.add(x, one));
          b2.br(join);
          b2.setInsertPoint(join);
        });
      }
    });

    // Net ripple propagation: a latency-bound dependent recurrence (the
    // multiply chain dominates the iteration, so neither the baseline nor
    // the SPT machine can overlap anything). Two passes.
    {
      const Reg rpass = b.newReg();
      b.constTo(rpass, 0);
      const Reg rpasses = b.iconst(2);
      countedLoop(b, "ripple_passes", rpass, rpasses, [&](IrBuilder& bb) {
        const Reg i = bb.newReg();
        bb.constTo(i, 1);
        const Reg end = bb.iconst(CELLS);
        countedLoop(bb, "net_ripple", i, end, [&](IrBuilder& b2) {
          const Reg one = b2.iconst(1);
          const Reg prev_i = b2.sub(i, one);
          const Reg prev = b2.load(emitIndex(b2, cost, prev_i), 0);
          const Reg cur = b2.load(emitIndex(b2, cost, i), 0);
          const Reg kf = b2.iconst(0x100000001b3ll);
          Reg v = b2.mul(b2.xor_(prev, cur), kf);
          v = b2.mul(b2.add(v, cur), kf);
          v = b2.mul(b2.xor_(v, prev), kf);
          b2.store(emitIndex(b2, cost, i), 0, v);
          b2.movTo(chk, b2.xor_(chk, v));
        });
      });
    }

    b.ret(chk);
    m.setMainFunc(main_id);
    return m;
  };
  return w;
}

}  // namespace spt::workloads

#include "workloads/workloads.h"

#include "support/check.h"

namespace spt::workloads {

std::vector<Workload> specSuite() {
  return {bzip2Like(), craftyLike(), gapLike(),    gccLike(), gzipLike(),
          mcfLike(),   parserLike(), twolfLike(), vortexLike(), vprLike()};
}

Workload findWorkload(const std::string& name) {
  for (Workload& w : specSuite()) {
    if (w.name == name) return w;
  }
  if (Workload w = microParserFree(); w.name == name) return w;
  if (Workload w = microSvpStride(); w.name == name) return w;
  SPT_UNREACHABLE("unknown workload name");
}

}  // namespace spt::workloads

// Sequential IR interpreter with trace emission.
//
// Executes a finalized module and streams one trace::Record per dynamic
// instruction plus loop iteration/exit markers (paper Section 5.1: the SPT
// simulator is driven by the trace of the *sequential* execution).
#pragma once

#include <cstdint>
#include <span>

#include "interp/memory.h"
#include "interp/program_context.h"
#include "trace/trace.h"

namespace spt::interp {

struct RunLimits {
  std::uint64_t max_instrs = 500'000'000;
};

struct RunResult {
  std::int64_t return_value = 0;
  std::uint64_t dynamic_instrs = 0;
  std::uint64_t memory_hash = 0;
};

class Interpreter {
 public:
  Interpreter(const ProgramContext& ctx, Memory& memory,
              trace::TraceSink& sink);

  /// Runs `entry` with the given arguments to completion.
  RunResult run(ir::FuncId entry, std::span<const std::int64_t> args,
                const RunLimits& limits = {});

  /// Runs the module's main function.
  RunResult runMain(std::span<const std::int64_t> args = {},
                    const RunLimits& limits = {});

 private:
  struct ActiveLoop {
    analysis::LoopId loop;
    std::int64_t iteration;  // 0-based
  };

  struct Frame {
    ir::FuncId func = ir::kInvalidFunc;
    trace::FrameId id = 0;
    std::vector<std::int64_t> regs;
    ir::BlockId block = 0;
    std::uint32_t index = 0;  // next instruction within block
    std::vector<ActiveLoop> active_loops;  // innermost last
    ir::Reg ret_dst;          // caller register awaiting the return value
  };

  void enterBlock(Frame& frame, ir::BlockId target);
  void exitAllLoops(Frame& frame);
  void emitIterBegin(const Frame& frame, analysis::LoopId loop,
                     std::int64_t iteration);
  void emitLoopExit(const Frame& frame, analysis::LoopId loop);

  const ProgramContext& ctx_;
  Memory& memory_;
  trace::TraceSink& sink_;
  trace::FrameId next_frame_ = 0;
};

}  // namespace spt::interp

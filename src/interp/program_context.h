// Immutable per-program bundle of analyses used by the interpreter, the
// profilers, and the simulator.
#pragma once

#include <memory>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dominators.h"
#include "analysis/loops.h"
#include "ir/module.h"

namespace spt::interp {

/// Builds and owns Cfg/DomTree/LoopForest for every function of a finalized
/// module. The module must not be mutated while a ProgramContext refers to
/// it (block vectors are referenced, not copied).
class ProgramContext {
 public:
  explicit ProgramContext(const ir::Module& module);

  const ir::Module& module() const { return module_; }
  const analysis::Cfg& cfg(ir::FuncId f) const { return infos_[f]->cfg; }
  const analysis::LoopForest& loops(ir::FuncId f) const {
    return infos_[f]->loops;
  }

  /// Loops containing block b, outermost first (possibly empty).
  const std::vector<analysis::LoopId>& loopChain(ir::FuncId f,
                                                 ir::BlockId b) const {
    return infos_[f]->block_loop_chain[b];
  }

  /// Static id of the first instruction of a block (the loop identity used
  /// by trace markers when the block is a loop header).
  ir::StaticId firstSid(ir::FuncId f, ir::BlockId b) const {
    return module_.function(f).blocks[b].instrs.front().static_id;
  }

 private:
  struct FuncInfo {
    analysis::Cfg cfg;
    analysis::DomTree dom;
    analysis::LoopForest loops;
    std::vector<std::vector<analysis::LoopId>> block_loop_chain;

    explicit FuncInfo(const ir::Function& func)
        : cfg(func), dom(cfg), loops(cfg, dom) {}
  };

  const ir::Module& module_;
  std::vector<std::unique_ptr<FuncInfo>> infos_;
};

}  // namespace spt::interp

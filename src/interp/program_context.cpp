#include "interp/program_context.h"

#include <algorithm>

#include "support/check.h"

namespace spt::interp {

ProgramContext::ProgramContext(const ir::Module& module) : module_(module) {
  SPT_CHECK_MSG(module.finalized(),
                "ProgramContext requires a finalized module");
  infos_.reserve(module.functionCount());
  for (ir::FuncId f = 0; f < module.functionCount(); ++f) {
    auto info = std::make_unique<FuncInfo>(module.function(f));
    const std::size_t nblocks = module.function(f).blocks.size();
    info->block_loop_chain.resize(nblocks);
    for (ir::BlockId b = 0; b < nblocks; ++b) {
      std::vector<analysis::LoopId> chain;
      for (analysis::LoopId l = info->loops.innermostLoopOf(b);
           l != analysis::kInvalidLoop; l = info->loops.loop(l).parent) {
        chain.push_back(l);
      }
      std::reverse(chain.begin(), chain.end());  // outermost first
      info->block_loop_chain[b] = std::move(chain);
    }
    infos_.push_back(std::move(info));
  }
}

}  // namespace spt::interp

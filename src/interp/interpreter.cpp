#include "interp/interpreter.h"

#include "support/check.h"
#include "support/error.h"

namespace spt::interp {
namespace {

std::int64_t evalBinary(ir::Opcode op, std::int64_t a, std::int64_t b) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kAdd:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                       static_cast<std::uint64_t>(b));
    case Opcode::kSub:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                       static_cast<std::uint64_t>(b));
    case Opcode::kMul:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                       static_cast<std::uint64_t>(b));
    case Opcode::kDiv:
      SPT_CHECK_MSG(b != 0, "division by zero");
      SPT_CHECK_MSG(!(a == INT64_MIN && b == -1), "division overflow");
      return a / b;
    case Opcode::kRem:
      SPT_CHECK_MSG(b != 0, "remainder by zero");
      SPT_CHECK_MSG(!(a == INT64_MIN && b == -1), "remainder overflow");
      return a % b;
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                       << (b & 63));
    case Opcode::kShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
    case Opcode::kCmpEq:
      return a == b;
    case Opcode::kCmpNe:
      return a != b;
    case Opcode::kCmpLt:
      return a < b;
    case Opcode::kCmpLe:
      return a <= b;
    case Opcode::kCmpGt:
      return a > b;
    case Opcode::kCmpGe:
      return a >= b;
    default:
      SPT_UNREACHABLE("not a binary opcode");
  }
}

}  // namespace

Interpreter::Interpreter(const ProgramContext& ctx, Memory& memory,
                         trace::TraceSink& sink)
    : ctx_(ctx), memory_(memory), sink_(sink) {}

void Interpreter::emitIterBegin(const Frame& frame, analysis::LoopId loop,
                                std::int64_t iteration) {
  const auto& header = ctx_.loops(frame.func).loop(loop).header;
  trace::Record rec;
  rec.kind = trace::RecordKind::kIterBegin;
  rec.sid = ctx_.firstSid(frame.func, header);
  rec.frame = frame.id;
  rec.value = iteration;
  sink_.onRecord(rec);
}

void Interpreter::emitLoopExit(const Frame& frame, analysis::LoopId loop) {
  const auto& header = ctx_.loops(frame.func).loop(loop).header;
  trace::Record rec;
  rec.kind = trace::RecordKind::kLoopExit;
  rec.sid = ctx_.firstSid(frame.func, header);
  rec.frame = frame.id;
  sink_.onRecord(rec);
}

void Interpreter::exitAllLoops(Frame& frame) {
  while (!frame.active_loops.empty()) {
    emitLoopExit(frame, frame.active_loops.back().loop);
    frame.active_loops.pop_back();
  }
}

void Interpreter::enterBlock(Frame& frame, ir::BlockId target) {
  const auto& chain = ctx_.loopChain(frame.func, target);  // outermost first

  // Close loops the target is no longer inside. Active loops are properly
  // nested, so the surviving prefix must match the chain positionally.
  while (!frame.active_loops.empty() &&
         (frame.active_loops.size() > chain.size() ||
          chain[frame.active_loops.size() - 1] !=
              frame.active_loops.back().loop)) {
    emitLoopExit(frame, frame.active_loops.back().loop);
    frame.active_loops.pop_back();
  }

  // Back edge: target is the header of the (still-active) innermost loop.
  if (!frame.active_loops.empty() &&
      frame.active_loops.size() == chain.size() &&
      ctx_.loops(frame.func).loop(frame.active_loops.back().loop).header ==
          target) {
    ActiveLoop& top = frame.active_loops.back();
    ++top.iteration;
    emitIterBegin(frame, top.loop, top.iteration);
  }

  // Newly entered loops (natural loops are entered through their header).
  for (std::size_t i = frame.active_loops.size(); i < chain.size(); ++i) {
    frame.active_loops.push_back({chain[i], 0});
    emitIterBegin(frame, chain[i], 0);
  }

  frame.block = target;
  frame.index = 0;
}

RunResult Interpreter::run(ir::FuncId entry,
                           std::span<const std::int64_t> args,
                           const RunLimits& limits) {
  const ir::Module& module = ctx_.module();
  SPT_CHECK(module.finalized());
  const ir::Function& entry_func = module.function(entry);
  SPT_CHECK_MSG(args.size() == entry_func.param_count,
                "entry argument count mismatch");

  std::vector<Frame> stack;
  {
    Frame frame;
    frame.func = entry;
    frame.id = next_frame_++;
    frame.regs.assign(entry_func.reg_count, 0);
    for (std::size_t i = 0; i < args.size(); ++i) frame.regs[i] = args[i];
    stack.push_back(std::move(frame));
    enterBlock(stack.back(), 0);
  }

  RunResult result;
  std::uint64_t count = 0;

  while (!stack.empty()) {
    Frame& f = stack.back();
    const ir::Function& func = module.function(f.func);
    const ir::BasicBlock& bb = func.blocks[f.block];
    SPT_CHECK_MSG(f.index < bb.instrs.size(), "fell off the end of a block");
    const ir::Instr& in = bb.instrs[f.index];

    if (count >= limits.max_instrs) {
      throw support::SptBudgetExceeded("interpreted instructions", count,
                                       limits.max_instrs);
    }
    ++count;

    trace::Record rec;
    rec.kind = trace::RecordKind::kInstr;
    rec.op = in.op;
    rec.sid = in.static_id;
    rec.frame = f.id;

    using ir::Opcode;
    switch (in.op) {
      case Opcode::kConst:
        f.regs[in.dst.index] = in.imm;
        rec.value = in.imm;
        sink_.onRecord(rec);
        ++f.index;
        break;
      case Opcode::kMov:
        f.regs[in.dst.index] = f.regs[in.a.index];
        rec.value = f.regs[in.dst.index];
        sink_.onRecord(rec);
        ++f.index;
        break;
      case Opcode::kHalloc: {
        const std::uint64_t base =
            memory_.alloc(static_cast<std::uint64_t>(in.imm));
        f.regs[in.dst.index] = static_cast<std::int64_t>(base);
        rec.value = f.regs[in.dst.index];
        sink_.onRecord(rec);
        ++f.index;
        break;
      }
      case Opcode::kLoad: {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(f.regs[in.a.index] + in.imm);
        const std::int64_t v = memory_.load64(addr);
        f.regs[in.dst.index] = v;
        rec.value = v;
        rec.mem_addr = addr;
        sink_.onRecord(rec);
        ++f.index;
        break;
      }
      case Opcode::kStore: {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(f.regs[in.a.index] + in.imm);
        rec.mem_old = memory_.load64(addr);
        rec.value = f.regs[in.b.index];
        rec.mem_addr = addr;
        memory_.store64(addr, f.regs[in.b.index]);
        sink_.onRecord(rec);
        ++f.index;
        break;
      }
      case Opcode::kBr:
        sink_.onRecord(rec);
        enterBlock(f, in.target0);
        break;
      case Opcode::kCondBr: {
        const bool taken = f.regs[in.a.index] != 0;
        rec.taken = taken;
        sink_.onRecord(rec);
        enterBlock(f, taken ? in.target0 : in.target1);
        break;
      }
      case Opcode::kCall: {
        const ir::Function& callee = module.function(in.callee);
        Frame next;
        next.func = in.callee;
        next.id = next_frame_++;
        next.regs.assign(callee.reg_count, 0);
        for (std::size_t i = 0; i < in.args.size(); ++i) {
          next.regs[i] = f.regs[in.args[i].index];
        }
        next.ret_dst = in.dst;
        rec.callee_frame = next.id;
        sink_.onRecord(rec);
        ++f.index;  // caller resumes after the call
        stack.push_back(std::move(next));
        enterBlock(stack.back(), 0);
        break;
      }
      case Opcode::kRet: {
        const std::int64_t value =
            in.a.valid() ? f.regs[in.a.index] : 0;
        exitAllLoops(f);
        rec.value = value;
        sink_.onRecord(rec);
        const ir::Reg ret_dst = f.ret_dst;
        stack.pop_back();
        if (stack.empty()) {
          result.return_value = value;
        } else if (ret_dst.valid()) {
          stack.back().regs[ret_dst.index] = value;
        }
        break;
      }
      case Opcode::kSptFork:
      case Opcode::kSptKill:
      case Opcode::kNop:
        sink_.onRecord(rec);
        ++f.index;
        break;
      default: {
        // Binary arithmetic / comparison.
        const std::int64_t v =
            evalBinary(in.op, f.regs[in.a.index], f.regs[in.b.index]);
        f.regs[in.dst.index] = v;
        rec.value = v;
        sink_.onRecord(rec);
        ++f.index;
        break;
      }
    }
  }

  result.dynamic_instrs = count;
  result.memory_hash = memory_.hash();
  return result;
}

RunResult Interpreter::runMain(std::span<const std::int64_t> args,
                               const RunLimits& limits) {
  SPT_CHECK_MSG(ctx_.module().mainFunc() != ir::kInvalidFunc,
                "module has no main function");
  return run(ctx_.module().mainFunc(), args, limits);
}

}  // namespace spt::interp

// Flat program memory with a bump allocator.
//
// The IR addresses a single flat byte address space. All accesses are
// 8-byte, 8-aligned (the IR has only 64-bit loads/stores). Address 0 is
// reserved as the null pointer.
#pragma once

#include <cstdint>
#include <vector>

namespace spt::interp {

class Memory {
 public:
  explicit Memory(std::size_t size_bytes = 64u << 20);

  std::int64_t load64(std::uint64_t addr) const;
  void store64(std::uint64_t addr, std::int64_t value);

  /// Bump-allocates `bytes` (rounded up to 8), zero-initialized.
  /// Returns the 8-aligned base address (never 0).
  std::uint64_t alloc(std::uint64_t bytes);

  std::uint64_t brk() const { return brk_; }
  std::size_t size() const { return bytes_.size(); }

  /// FNV-1a hash of the allocated region — used by tests to prove the SPT
  /// transformation preserved sequential semantics.
  std::uint64_t hash() const;

 private:
  void checkAccess(std::uint64_t addr) const;

  std::vector<std::uint8_t> bytes_;
  std::uint64_t brk_ = 8;  // skip the null page slot
};

}  // namespace spt::interp

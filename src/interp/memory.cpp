#include "interp/memory.h"

#include <cstring>

#include "support/check.h"

namespace spt::interp {

Memory::Memory(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

void Memory::checkAccess(std::uint64_t addr) const {
  SPT_CHECK_MSG(addr != 0, "null pointer dereference");
  SPT_CHECK_MSG(addr % 8 == 0, "unaligned 64-bit access");
  SPT_CHECK_MSG(addr + 8 <= bytes_.size(), "memory access out of bounds");
}

std::int64_t Memory::load64(std::uint64_t addr) const {
  checkAccess(addr);
  std::int64_t v;
  std::memcpy(&v, bytes_.data() + addr, 8);
  return v;
}

void Memory::store64(std::uint64_t addr, std::int64_t value) {
  checkAccess(addr);
  std::memcpy(bytes_.data() + addr, &value, 8);
}

std::uint64_t Memory::alloc(std::uint64_t bytes) {
  const std::uint64_t rounded = (bytes + 7) & ~7ull;
  SPT_CHECK_MSG(brk_ + rounded <= bytes_.size(), "interpreter heap overflow");
  const std::uint64_t base = brk_;
  brk_ += rounded;
  return base;
}

std::uint64_t Memory::hash() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (std::uint64_t i = 0; i < brk_ && i < bytes_.size(); ++i) {
    h ^= bytes_[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace spt::interp

// GAg branch predictor (paper Table 1: GAg with 1K entries, 5-cycle
// mispredict penalty). A single global history register indexes one shared
// pattern history table of 2-bit saturating counters.
#pragma once

#include <cstdint>
#include <vector>

namespace spt::support {
class Rng;
}

namespace spt::sim {

class BranchPredictor {
 public:
  explicit BranchPredictor(std::uint32_t entries);

  /// Predicts, updates the tables with the actual outcome, and reports
  /// whether the prediction was correct. Inline: runs once per dynamic
  /// conditional branch inside the pipeline hot path.
  bool predictAndUpdate(bool actual_taken) {
    const std::uint32_t index = history_ & history_mask_;
    std::uint8_t& counter = pht_[index];
    const bool predicted_taken = counter >= 2;

    ++predictions_;
    const bool correct = predicted_taken == actual_taken;
    if (!correct) ++mispredictions_;

    if (actual_taken) {
      if (counter < 3) ++counter;
    } else {
      if (counter > 0) --counter;
    }
    history_ = ((history_ << 1) | (actual_taken ? 1u : 0u)) & history_mask_;
    return correct;
  }

  /// Fault injection: corrupts one PHT counter bit or one global-history
  /// bit. The predictor holds only prediction metadata — a corrupted entry
  /// can cost (or save) a mispredict penalty but never change a simulated
  /// value, so the fault is benign by construction.
  void corruptMeta(support::Rng& rng);

  std::uint64_t predictions() const { return predictions_; }
  std::uint64_t mispredictions() const { return mispredictions_; }
  double mispredictRatio() const {
    return predictions_ == 0
               ? 0.0
               : static_cast<double>(mispredictions_) / predictions_;
  }

 private:
  std::vector<std::uint8_t> pht_;  // 2-bit counters
  std::uint32_t history_ = 0;
  std::uint32_t history_mask_;
  std::uint64_t predictions_ = 0;
  std::uint64_t mispredictions_ = 0;
};

}  // namespace spt::sim

// Simulation result structures shared by the baseline and SPT machines.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/cache.h"
#include "sim/pipeline.h"
#include "support/stats.h"

namespace spt::sim {

/// Cycles attributed to a static loop (all dynamic episodes aggregated;
/// nested loops also accumulate into their ancestors, consistently across
/// baseline and SPT runs).
struct LoopCycleStats {
  std::uint64_t cycles = 0;
  std::uint64_t episodes = 0;
  std::uint64_t iterations = 0;
};

/// Speculative-threading statistics (paper Figure 8 inputs).
struct ThreadStats {
  std::uint64_t spawned = 0;       // spt_fork executed with idle spec core
  std::uint64_t forks_ignored = 0; // spt_fork while the spec core was busy
  std::uint64_t wrong_path = 0;    // forked with no next iteration
  std::uint64_t fast_commits = 0;
  std::uint64_t replays = 0;       // arrivals that needed selective replay
  std::uint64_t squashes = 0;      // full-squash recoveries (ablation mode)
  std::uint64_t killed = 0;        // killed by spt_kill / end of trace
  std::uint64_t spec_instrs = 0;   // speculatively executed instructions
  std::uint64_t misspec_instrs = 0;  // re-executed during replay
  std::uint64_t committed_instrs = 0;

  // Zero-denominator policy: a run with no speculative activity reports
  // 0.0 for every ratio (support::safeRatio), never NaN.
  double fastCommitRatio() const {
    return support::safeRatio(static_cast<double>(fast_commits),
                              static_cast<double>(spawned));
  }
  double misspeculationRatio() const {
    return support::safeRatio(static_cast<double>(misspec_instrs),
                              static_cast<double>(spec_instrs));
  }

  void accumulate(const ThreadStats& other);
};

/// Fault-injection accounting (sim::FaultInjector). Classification is per
/// injected fault at the granularity of the speculative thread it hit:
///  * detected_by_net    — the thread ended in replay / squash with the
///                         dependence-checking net (LAB, register check,
///                         branch compare, fault suppression) flagging the
///                         violation, or was discarded wholesale (kill);
///  * detected_by_oracle — the commit-time value validation had to flag a
///                         divergent entry the net missed (e.g. a dropped
///                         LAB record whose load actually conflicted);
///  * benign             — the corruption never changed a committed value
///                         (overwritten, never read, or bit-identical);
///  * escaped            — a divergent value was committed undetected.
///                         Must always be zero; the campaign asserts it.
struct FaultStats {
  std::uint64_t injected = 0;
  std::uint64_t detected_by_net = 0;
  std::uint64_t detected_by_oracle = 0;
  std::uint64_t benign = 0;
  std::uint64_t escaped = 0;

  std::uint64_t detectedOrBenign() const {
    return detected_by_net + detected_by_oracle + benign;
  }

  void accumulate(const FaultStats& other) {
    injected += other.injected;
    detected_by_net += other.detected_by_net;
    detected_by_oracle += other.detected_by_oracle;
    benign += other.benign;
    escaped += other.escaped;
  }
};

/// Host-side telemetry of the threaded-dispatch and arena machinery
/// (docs/PERF.md). Purely observational: the counters describe how the
/// simulator executed, never what it simulated, so they are deterministic
/// for a given trace but deliberately excluded from the golden digests.
struct HotPathStats {
  std::uint64_t dispatch_fast = 0;      // records through specialized handlers
  std::uint64_t dispatch_fallback = 0;  // records through the generic path
  std::uint64_t arena_frame_allocs = 0;  // frames newly allocated
  std::uint64_t arena_frame_reuses = 0;  // frames recycled from the arena
  std::uint64_t fork_site_hits = 0;    // fork records served from the
  std::uint64_t fork_site_misses = 0;  // FlatMap64 site cache vs first seen

  double recordsPerAlloc() const {
    return support::safeRatio(
        static_cast<double>(dispatch_fast + dispatch_fallback),
        static_cast<double>(arena_frame_allocs));
  }
};

struct MachineResult {
  std::uint64_t cycles = 0;
  std::uint64_t instrs = 0;
  CycleBreakdown breakdown;
  std::map<std::string, LoopCycleStats> loops;
  ThreadStats threads;                             // whole program
  std::map<std::string, ThreadStats> loop_threads; // per SPT loop
  CacheStats l1d;
  CacheStats l2;
  CacheStats l3;
  double branch_mispredict_ratio = 0.0;
  HotPathStats hotpath;  // host-side telemetry, excluded from digests

  // Robustness subsystem outputs; all-zero unless the oracle / injector
  // were enabled (the golden digests deliberately exclude them).
  FaultStats faults;
  std::uint64_t arch_digest = 0;   // oracle stream digest at end of run
  std::uint64_t oracle_checks = 0; // boundary checks the oracle ran

  double ipc() const {
    return support::safeRatio(static_cast<double>(instrs),
                              static_cast<double>(cycles));
  }
};

/// Speedup of `spt` over `baseline` as a fraction (0.156 == 15.6%).
/// Zero-denominator policy: spt_cycles == 0 (an empty or unsimulated run)
/// reports 0.0 — "no measured speedup" — consistently with
/// support::safeRatio rather than +Inf or NaN.
inline double speedupOf(std::uint64_t baseline_cycles,
                        std::uint64_t spt_cycles) {
  if (spt_cycles == 0) return 0.0;
  return static_cast<double>(baseline_cycles) / spt_cycles - 1.0;
}

}  // namespace spt::sim

#include "sim/branch_predictor.h"

#include <bit>

#include "support/check.h"

namespace spt::sim {

BranchPredictor::BranchPredictor(std::uint32_t entries)
    : pht_(entries, 2) /* weakly taken */ {
  SPT_CHECK_MSG(entries > 0 && std::has_single_bit(entries),
                "GAg table size must be a power of two");
  history_mask_ = entries - 1;
}

}  // namespace spt::sim

#include "sim/branch_predictor.h"

#include <bit>

#include "support/check.h"
#include "support/rng.h"

namespace spt::sim {

BranchPredictor::BranchPredictor(std::uint32_t entries)
    : pht_(entries, 2) /* weakly taken */ {
  SPT_CHECK_MSG(entries > 0 && std::has_single_bit(entries),
                "GAg table size must be a power of two");
  history_mask_ = entries - 1;
}

void BranchPredictor::corruptMeta(support::Rng& rng) {
  const std::size_t target = rng.nextBelow(pht_.size() + 1);
  if (target < pht_.size()) {
    // Flipping bit 0 or 1 keeps the counter inside its 2-bit range.
    pht_[target] ^= static_cast<std::uint8_t>(1u << rng.nextBelow(2));
  } else {
    history_ = (history_ ^ (1u << rng.nextBelow(32))) & history_mask_;
  }
}

}  // namespace spt::sim

#include "sim/branch_predictor.h"

#include <bit>

#include "support/check.h"

namespace spt::sim {

BranchPredictor::BranchPredictor(std::uint32_t entries)
    : pht_(entries, 2) /* weakly taken */ {
  SPT_CHECK_MSG(entries > 0 && std::has_single_bit(entries),
                "GAg table size must be a power of two");
  history_mask_ = entries - 1;
}

bool BranchPredictor::predictAndUpdate(bool actual_taken) {
  const std::uint32_t index = history_ & history_mask_;
  std::uint8_t& counter = pht_[index];
  const bool predicted_taken = counter >= 2;

  ++predictions_;
  const bool correct = predicted_taken == actual_taken;
  if (!correct) ++mispredictions_;

  if (actual_taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
  history_ = ((history_ << 1) | (actual_taken ? 1u : 0u)) & history_mask_;
  return correct;
}

}  // namespace spt::sim

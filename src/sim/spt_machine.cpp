#include "sim/spt_machine.h"

#include "support/check.h"
#include "support/error.h"

namespace spt::sim {
namespace {

/// Binary-op evaluation for speculative emulation. Unlike the interpreter,
/// faults (division by zero on stale inputs) are reported, not fatal: a
/// real speculative pipeline would suppress the fault and the thread would
/// be squashed at validation.
std::int64_t emulateBinary(ir::Opcode op, std::int64_t a, std::int64_t b,
                           bool& fault) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kAdd:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                       static_cast<std::uint64_t>(b));
    case Opcode::kSub:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                       static_cast<std::uint64_t>(b));
    case Opcode::kMul:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                       static_cast<std::uint64_t>(b));
    case Opcode::kDiv:
      if (b == 0 || (a == INT64_MIN && b == -1)) {
        fault = true;
        return 0;
      }
      return a / b;
    case Opcode::kRem:
      if (b == 0 || (a == INT64_MIN && b == -1)) {
        fault = true;
        return 0;
      }
      return a % b;
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                       << (b & 63));
    case Opcode::kShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
    case Opcode::kCmpEq:
      return a == b;
    case Opcode::kCmpNe:
      return a != b;
    case Opcode::kCmpLt:
      return a < b;
    case Opcode::kCmpLe:
      return a <= b;
    case Opcode::kCmpGt:
      return a > b;
    case Opcode::kCmpGe:
      return a >= b;
    default:
      SPT_UNREACHABLE("not a binary opcode");
  }
}

}  // namespace

void ThreadStats::accumulate(const ThreadStats& other) {
  spawned += other.spawned;
  forks_ignored += other.forks_ignored;
  wrong_path += other.wrong_path;
  fast_commits += other.fast_commits;
  replays += other.replays;
  squashes += other.squashes;
  killed += other.killed;
  spec_instrs += other.spec_instrs;
  misspec_instrs += other.misspec_instrs;
  committed_instrs += other.committed_instrs;
}

SptMachine::SptMachine(const ir::Module& module, trace::TraceView trace,
                       const trace::LoopIndex& loop_index,
                       const support::MachineConfig& config)
    : module_(module),
      trace_(trace),
      loop_index_(loop_index),
      config_(config),
      decode_(module),
      memory_(std::make_unique<MemorySystem>(config)),
      main_pipe_(std::make_unique<Pipeline>(config, *memory_)),
      arch_(module),
      loop_tracker_(module) {
  SPT_CHECK_MSG(config.spec_threads >= 1 &&
                    config.spec_threads <= support::kMaxSpecThreads,
                "spec_threads out of range");
  multiway_ = config.spec_threads > 1;
  spec_pipes_.reserve(config.spec_threads);
  slots_.reserve(config.spec_threads);
  chain_.reserve(config.spec_threads);
  for (std::uint32_t i = 0; i < config.spec_threads; ++i) {
    spec_pipes_.push_back(std::make_unique<Pipeline>(config, *memory_));
    auto t = std::make_unique<SpecThread>();
    t->slot = i;
    t->pipe = spec_pipes_[i].get();
    // The SSB/LAB hold at most the configured number of distinct addresses
    // (capacity stalls enforce it), so size them once and never rehash.
    t->ssb.reserveFor(config.speculative_store_buffer_entries);
    t->lab.reserveFor(config.load_address_buffer_entries);
    slots_.push_back(std::move(t));
  }
  if (config.fault_plan.enabled) {
    injector_ = std::make_unique<FaultInjector>(config.fault_plan);
    fault_mode_ = true;
  }
  if (config.oracle != support::OracleMode::kOff) {
    oracle_ = std::make_unique<Oracle>(module, trace, decode_, config.oracle);
    arch_.enableDigest();
  }
}

void SptMachine::SpecThread::reset() {
  active = false;
  wrong_path = false;
  stalled = false;
  forked_by_main = false;
  seq = 0;
  start_pos = 0;
  pos = 0;
  limit_pos = kNoLimit;
  fork_frame = 0;
  rf.reset();
  ssb.clear();
  lab.clear();
  lab_pool_used = 0;
  for (const std::uint32_t reg : livein_touched) livein_reads[reg].clear();
  livein_touched.clear();
  srb.clear();
  call_stack.clear();
  halloc_at_fork = 0;
  faults_pending = 0;
  breakdown_at_fork = CycleBreakdown{};
  loop_stats = nullptr;
}

std::vector<std::size_t>& SptMachine::SpecThread::labList(
    std::uint64_t addr) {
  std::uint32_t& slot = lab[addr];
  if (slot == 0) {
    if (lab_pool_used == lab_pool.size()) lab_pool.emplace_back();
    lab_pool[lab_pool_used].clear();
    slot = static_cast<std::uint32_t>(++lab_pool_used);
  }
  return lab_pool[slot - 1];
}

SptMachine::ForkSite& SptMachine::forkSiteOf(const trace::Record& r) {
  if (ForkSite* found = fork_sites_.find(r.sid)) {
    ++fork_site_hits_;
    return *found;
  }
  ++fork_site_misses_;

  // Loop attribution: the fork's target block is the loop header.
  const auto& loc = module_.locate(r.sid);
  const ir::Function& func = module_.function(loc.func);
  const ir::Instr& fork = func.blocks[loc.block].instrs[loc.index];
  const ir::StaticId header_sid =
      func.blocks[fork.target0].instrs.front().static_id;

  ForkSite& site = fork_sites_[r.sid];
  site.loop_name = trace::loopNameOf(module_, header_sid);
  site.stats = &result_.loop_threads[site.loop_name];
  site.slice = module_.forkSlice(r.sid);
  site.frame_regs = func.reg_count;
  return site;
}

CycleBreakdown SptMachine::specProfileSinceFork(const SpecThread& t) const {
  const CycleBreakdown& now = t.pipe->breakdown();
  const CycleBreakdown& base = t.breakdown_at_fork;
  CycleBreakdown delta;
  delta.execution = now.execution - base.execution;
  delta.pipeline_stall = now.pipeline_stall - base.pipeline_stall;
  delta.dcache_stall = now.dcache_stall - base.dcache_stall;
  return delta;
}

std::int64_t SptMachine::specPeekReg(const SpecThread& t,
                                     trace::FrameId frame,
                                     ir::Reg reg) const {
  const std::int64_t* v = t.rf.find(frame, reg.index);
  if (v != nullptr) return *v;
  if (frame == t.fork_frame) return t.fork_rf[reg.index];
  return 0;
}

std::int64_t SptMachine::specReadReg(SpecThread& t, trace::FrameId frame,
                                     ir::Reg reg) {
  const std::int64_t* v = t.rf.find(frame, reg.index);
  if (v != nullptr) return *v;
  if (frame == t.fork_frame) {
    // Live-in read from the fork-time register context.
    std::vector<std::size_t>& reads = t.livein_reads[reg.index];
    if (reads.empty()) t.livein_touched.push_back(reg.index);
    reads.push_back(t.srb.size());
    return t.fork_rf[reg.index];
  }
  // Registers of frames created during speculation are zero-initialized,
  // matching interpreter frames.
  return 0;
}

void SptMachine::specWriteReg(SpecThread& t, trace::FrameId frame,
                              ir::Reg reg, std::int64_t value) {
  t.rf.at(frame, reg.index) = value;
}

bool SptMachine::specCanStep(const SpecThread& t) const {
  return t.active && !t.wrong_path && !t.stalled && t.pos < trace_.size() &&
         t.pos < t.limit_pos &&
         t.srb.size() < config_.speculation_result_buffer_entries &&
         t.pipe->cycle() <= main_pipe_->cycle();
}

SptMachine::SpecThread* SptMachine::firstSteppable() {
  for (const std::uint32_t slot : chain_) {
    SpecThread& t = *slots_[slot];
    if (specCanStep(t)) return &t;
  }
  return nullptr;
}

std::size_t SptMachine::chainIndexOf(const SpecThread& t) const {
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    if (chain_[i] == t.slot) return i;
  }
  SPT_UNREACHABLE("thread not in chain");
}

bool SptMachine::seqIsLivePredecessor(std::uint32_t seq) const {
  if (seq == 0) return false;
  for (const std::uint32_t slot : chain_) {
    if (slots_[slot]->seq == seq) return true;
  }
  return false;
}

MachineResult SptMachine::run() {
  const bool budgeted = config_.max_simulated_records != 0 ||
                        config_.max_simulated_cycles != 0;
  std::uint64_t steps = 0;
  while (pos_ < trace_.size()) {
    if (budgeted && (++steps & 1023u) == 0) checkBudgets();
    if (SpecThread* t = firstSteppable()) {
      stepSpec(*t);
    } else {
      stepMain();
    }
  }
  killChain();
  if (budgeted) checkBudgets();

  main_pipe_->finish();
  loop_tracker_.finish(main_pipe_->cycle());

  result_.cycles = main_pipe_->cycle();
  std::uint64_t spec_issued = 0;
  for (const auto& p : spec_pipes_) spec_issued += p->instrsIssued();
  result_.instrs = main_pipe_->instrsIssued() + spec_issued;
  result_.breakdown = main_pipe_->breakdown();
  result_.loops = loop_tracker_.stats();
  result_.l1d = memory_->l1d().stats();
  result_.l2 = memory_->l2().stats();
  result_.l3 = memory_->l3().stats();
  result_.branch_mispredict_ratio = main_pipe_->predictor().mispredictRatio();
  result_.hotpath.dispatch_fallback = dispatch_fallbacks_;
  result_.hotpath.dispatch_fast = result_.instrs - dispatch_fallbacks_;
  result_.hotpath.arena_frame_allocs = arch_.arenaAllocs();
  result_.hotpath.arena_frame_reuses = arch_.arenaReuses();
  result_.hotpath.fork_site_hits = fork_site_hits_;
  result_.hotpath.fork_site_misses = fork_site_misses_;
  if (injector_) {
    // Timing-metadata faults never enter the per-thread classification:
    // fold them in as injected + benign (the claim the campaign asserts).
    result_.faults.injected += injector_->metadataInjected();
    result_.faults.benign += injector_->metadataInjected();
  }
  if (oracle_) {
    oracle_->checkAt(trace_.size(), arch_, "end-of-run");
    result_.arch_digest = arch_.streamDigest();
    result_.oracle_checks = oracle_->checksRun();
  }
  return result_;
}

void SptMachine::checkBudgets() const {
  if (config_.max_simulated_cycles != 0 &&
      main_pipe_->cycle() > config_.max_simulated_cycles) {
    throw support::SptBudgetExceeded("simulated cycles", main_pipe_->cycle(),
                                     config_.max_simulated_cycles);
  }
  if (config_.max_simulated_records != 0 &&
      pos_ > config_.max_simulated_records) {
    throw support::SptBudgetExceeded("simulated trace records", pos_,
                                     config_.max_simulated_records);
  }
}

void SptMachine::stepMain() {
  const trace::Record& r = trace_[pos_];

  if (!chain_.empty()) {
    SpecThread& front = *slots_[chain_.front()];
    if (!front.wrong_path && pos_ == front.start_pos) {
      arrival(front);
      return;
    }
  }

  if (r.kind != trace::RecordKind::kInstr) {
    loop_tracker_.onMarker(r, main_pipe_->cycle());
    ++pos_;
    return;
  }

  if (r.op == ir::Opcode::kSptFork) {
    executeFork(r);
    ++pos_;
    return;
  }
  executeMainInstr(r);
  ++pos_;
}

void SptMachine::executeFork(const trace::Record& r) {
  const DecodedInstr& d = decode_[r.sid];
  // The fork instruction itself plus the register-context copy (Table 1:
  // 1 cycle minimum — the copy is assumed banked/bulk, not port-limited;
  // our virtual-register IR would otherwise overcharge it).
  main_pipe_->execute(makeExecInstr(d, r));
  ++dispatch_fallbacks_;
  main_pipe_->advanceTo(main_pipe_->cycle() + config_.rf_copy_overhead,
                        StallKind::kPipeline);
  arch_.apply(r, *d.instr);

  if (!chain_.empty()) {
    // The fork is dropped because the chain head's core is busy; attribute
    // it to the loop whose thread is occupying the most speculative core so
    // per-loop and whole-program fork counts stay consistent.
    ++result_.threads.forks_ignored;
    ++slots_[chain_.back()]->loop_stats->forks_ignored;
    return;
  }

  const std::size_t start = loop_index_.startOfFork(pos_);
  ForkSite& site = forkSiteOf(r);

  // The chain is empty, so every slot is free; the head always spawns into
  // slot 0 (the paper's single speculative core).
  SpecThread& t = *slots_[0];
  t.reset();
  t.active = true;
  t.forked_by_main = true;
  t.seq = next_seq_++;
  t.loop_stats = site.stats;
  t.halloc_at_fork = arch_.hallocCount();
  t.breakdown_at_fork = t.pipe->breakdown();
  chain_.push_back(t.slot);

  ThreadStats& ts = *t.loop_stats;
  ++result_.threads.spawned;
  ++ts.spawned;

  if (start == trace::LoopIndex::kNoStart) {
    // No next iteration exists in the trace: the speculative thread runs a
    // wrong path we cannot replay; it occupies the core until spt_kill.
    t.wrong_path = true;
    ++result_.threads.wrong_path;
    ++ts.wrong_path;
    return;
  }

  t.start_pos = start;
  // Loop forks start at a kIterBegin marker (skip it); region forks start
  // directly at the target instruction.
  t.pos =
      trace_[start].kind == trace::RecordKind::kInstr ? start : start + 1;
  t.fork_frame = arch_.curFrame();
  t.fork_rf = arch_.topRegs();
  if (injector_) {
    if (injector_->maybeFlipForkReg(t.fork_rf)) ++t.faults_pending;
    // Timing-metadata faults, fired once per fork: the shared hierarchy
    // and the speculative pipeline's predictor carry no data values, so
    // these are benign by construction (counted separately; see run()).
    injector_->maybeCorruptCacheMeta(*memory_);
    injector_->maybeCorruptBpMeta(t.pipe->predictor());
  }
  if (t.livein_reads.size() < t.fork_rf.size()) {
    t.livein_reads.resize(t.fork_rf.size());
  }
  main_written_.assign(t.fork_rf.size(), 0);
  sb_thread_ = &t;
  t.pipe->advanceTo(main_pipe_->cycle(), StallKind::kPipeline);
  // Main forks copy the architectural registers directly — the snapshot is
  // already exact, so the precomputation slice (which *predicts* live-ins
  // from a stale context) only runs for chained forks.
}

void SptMachine::chainFork(SpecThread& t, const trace::Record& r) {
  ForkSite& site = forkSiteOf(r);
  if (chain_.size() >= config_.spec_threads || chain_.back() != t.slot) {
    // Every speculative core is occupied, or a more speculative thread
    // already owns the chain tail (only the tail may extend the chain:
    // its successor would otherwise speculate an iteration an existing
    // thread already covers).
    ++result_.threads.forks_ignored;
    ++site.stats->forks_ignored;
    return;
  }

  // Spawn into the lowest free slot.
  bool used[support::kMaxSpecThreads] = {};
  for (const std::uint32_t slot : chain_) used[slot] = true;
  std::uint32_t free_slot = 0;
  while (used[free_slot]) ++free_slot;

  SpecThread& nt = *slots_[free_slot];
  nt.reset();
  nt.active = true;
  nt.seq = next_seq_++;
  nt.loop_stats = site.stats;
  nt.halloc_at_fork = arch_.hallocCount();
  nt.breakdown_at_fork = nt.pipe->breakdown();
  chain_.push_back(nt.slot);

  ++result_.threads.spawned;
  ++site.stats->spawned;

  const std::size_t start = loop_index_.startOfFork(t.pos);
  if (start == trace::LoopIndex::kNoStart) {
    // The forker speculates the loop's last iteration: its successor has
    // no trace to replay. The wrong-path thread occupies the tail slot
    // (blocking further chaining) until the chain is squashed or killed —
    // the forker's own horizon stays unbounded.
    nt.wrong_path = true;
    ++result_.threads.wrong_path;
    ++site.stats->wrong_path;
    return;
  }

  nt.start_pos = start;
  nt.pos =
      trace_[start].kind == trace::RecordKind::kInstr ? start : start + 1;
  nt.fork_frame = r.frame;
  // The successor's context is the forker's *speculative* view of the
  // forking frame — possibly stale or wrong; the arrival register check
  // (always value-based for chained threads) validates every live-in
  // against ground truth.
  nt.fork_rf = snapshotRegsFrom(t, r.frame, site.frame_regs);
  if (injector_) {
    if (injector_->maybeFlipForkReg(nt.fork_rf)) ++nt.faults_pending;
    injector_->maybeCorruptCacheMeta(*memory_);
    injector_->maybeCorruptBpMeta(nt.pipe->predictor());
  }
  if (nt.livein_reads.size() < nt.fork_rf.size()) {
    nt.livein_reads.resize(nt.fork_rf.size());
  }
  // The forker freezes at its successor's start-point: records from
  // `start` on belong to the successor.
  t.limit_pos = start;
  // Timing: the forker pays the register-context copy; the new core then
  // syncs to the forker's clock and runs the precomputation slice, if any.
  t.pipe->advanceTo(t.pipe->cycle() + config_.rf_copy_overhead,
                    StallKind::kPipeline);
  nt.pipe->advanceTo(t.pipe->cycle(), StallKind::kPipeline);
  applyForkSlice(nt, site);
}

std::vector<std::int64_t> SptMachine::snapshotRegsFrom(
    SpecThread& t, trace::FrameId frame, std::uint32_t reg_count) {
  std::vector<std::int64_t> out(reg_count, 0);
  const bool base = frame == t.fork_frame;
  for (std::uint32_t i = 0; i < reg_count; ++i) {
    const std::int64_t* v = t.rf.find(frame, i);
    if (v != nullptr) {
      out[i] = *v;
    } else if (base && i < t.fork_rf.size()) {
      out[i] = t.fork_rf[i];
    }
  }
  return out;
}

void SptMachine::applyForkSlice(SpecThread& t, const ForkSite& site) {
  if (site.slice == nullptr) return;
  // The slice is straight-line predictor code over the snapshot: each
  // instruction reads and writes t.fork_rf, refining the live-ins the
  // forked iteration will observe. A wrong prediction is safe — the
  // arrival register check validates every live-in read against ground
  // truth — so a suppressed fault simply stops the refinement.
  for (const ir::Instr& in : *site.slice) {
    const auto reg = [&t](ir::Reg rg) -> std::int64_t {
      return rg.valid() && rg.index < t.fork_rf.size() ? t.fork_rf[rg.index]
                                                       : 0;
    };
    std::int64_t v = 0;
    if (in.op == ir::Opcode::kConst) {
      v = in.imm;
    } else if (in.op == ir::Opcode::kMov) {
      v = reg(in.a);
    } else {
      bool fault = false;
      v = emulateBinary(in.op, reg(in.a), reg(in.b), fault);
      if (fault) break;
    }
    if (in.dst.valid() && in.dst.index < t.fork_rf.size()) {
      t.fork_rf[in.dst.index] = v;
    }
  }
  // Slice execution occupies the speculative core before its first record:
  // one cycle per slice instruction.
  t.pipe->advanceTo(t.pipe->cycle() + site.slice->size(),
                    StallKind::kPipeline);
}

void SptMachine::flagSuccessorLoads(const SpecThread& t, std::uint64_t addr,
                                    std::int64_t value,
                                    std::uint32_t store_srb,
                                    bool allow_forward_exemption) {
  // A store by thread t conflicts with every load of `addr` a more
  // speculative thread has already executed — unless (commit time only)
  // the load forwarded this exact store's committed value, or a later
  // store of the same thread that sequentially shadows this one.
  const std::size_t ci = chainIndexOf(t);
  for (std::size_t j = ci + 1; j < chain_.size(); ++j) {
    SpecThread& s = *slots_[chain_[j]];
    if (s.wrong_path) continue;
    const std::uint32_t* slot = s.lab.find(addr);
    if (slot == nullptr) continue;
    for (const std::size_t idx : s.lab_pool[*slot - 1]) {
      SrbEntry& le = s.srb[idx];
      if (allow_forward_exemption && le.fwd_seq == t.seq) {
        if (le.fwd_srb > store_srb) continue;
        if (le.fwd_srb == store_srb && le.emu_value == value) continue;
      }
      le.violated = true;
    }
  }
}

void SptMachine::mainStoreCheck(std::uint64_t addr) {
  // Memory dependence checking: every main store is checked against every
  // active thread's load address buffer (paper Section 3.2). A load that
  // forwarded from a *still-active* chained thread's SSB is exempt: that
  // thread's store is sequentially ahead of this one and shadows it. Once
  // the forwarding thread has committed (or was discarded), its stores are
  // in the main thread's past and this store supersedes them.
  for (const std::uint32_t ci : chain_) {
    SpecThread& s = *slots_[ci];
    if (s.wrong_path) continue;
    const std::uint32_t* slot = s.lab.find(addr);
    if (slot == nullptr) continue;
    for (const std::size_t idx : s.lab_pool[*slot - 1]) {
      SrbEntry& le = s.srb[idx];
      if (!seqIsLivePredecessor(le.fwd_seq)) le.violated = true;
    }
  }
}

void SptMachine::executeMainInstr(const trace::Record& r) {
  const DecodedInstr& d = decode_[r.sid];

  // Threaded dispatch off the predecoded class (jump table): each fast case
  // pairs the class-specialized ExecInstr builder and executeKnown
  // instantiation with the matching inline ArchState applier, hoisting the
  // opcode re-dispatch and every data-dependent flag test out of the
  // per-record path. Calls/returns/kills/hallocs take the generic fallback.
  switch (static_cast<DispatchClass>(d.klass)) {
    case DispatchClass::kValue:
      main_pipe_->executeKnown<Pipeline::kExecPlain>(
          makeExecInstrFor<DispatchClass::kValue>(d, r));
      arch_.applyValue(r, d.dst_reg);
      if (sb_thread_ != nullptr && r.frame == sb_thread_->fork_frame) {
        main_written_[d.dst_reg] = 1;  // scoreboard-mode register tracking
      }
      return;
    case DispatchClass::kLoad:
      main_pipe_->executeKnown<Pipeline::kExecLoad>(
          makeExecInstrFor<DispatchClass::kLoad>(d, r));
      arch_.applyLoad(r, d.dst_reg);
      if (sb_thread_ != nullptr && r.frame == sb_thread_->fork_frame) {
        main_written_[d.dst_reg] = 1;
      }
      return;
    case DispatchClass::kStore:
      main_pipe_->executeKnown<Pipeline::kExecStore>(
          makeExecInstrFor<DispatchClass::kStore>(d, r));
      arch_.applyStore(r);
      if (!chain_.empty()) mainStoreCheck(r.mem_addr);
      return;
    case DispatchClass::kCondBr:
      main_pipe_->executeKnown<Pipeline::kExecBranch>(
          makeExecInstrFor<DispatchClass::kCondBr>(d, r));
      arch_.applyNoEffect(r);
      return;
    case DispatchClass::kJump:
      main_pipe_->executeKnown<Pipeline::kExecPlain>(
          makeExecInstrFor<DispatchClass::kJump>(d, r));
      arch_.applyNoEffect(r);
      return;
    default:
      executeMainFallback(d, r);
      return;
  }
}

void SptMachine::executeMainFallback(const DecodedInstr& d,
                                     const trace::Record& r) {
  const ir::Instr& instr = *d.instr;
  ++dispatch_fallbacks_;

  if (d.op == ir::Opcode::kSptKill) {
    main_pipe_->execute(makeExecInstr(d, r));
    arch_.apply(r, instr);
    killChain();
    return;
  }

  const ExecInstr e = makeExecInstr(d, r);
  const std::uint64_t done = main_pipe_->execute(e);
  const ApplyInfo info = arch_.apply(r, instr);

  if (d.op == ir::Opcode::kCall) {
    for (std::uint32_t p = 0; p < info.callee_params; ++p) {
      main_pipe_->setRegReady(Pipeline::regKey(info.callee_frame, ir::Reg{p}),
                              done, false);
    }
  } else if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
    main_pipe_->setRegReady(
        Pipeline::regKey(info.caller_frame, info.caller_dst), done, false);
  }

  // Memory dependence checking (see the kStore fast case).
  if (d.is_store && !chain_.empty()) mainStoreCheck(r.mem_addr);

  // Register tracking for the scoreboard checking mode. A call's optional
  // destination counts as written by the main thread here, exactly as the
  // pre-dispatch implementation did.
  if (sb_thread_ != nullptr && r.frame == sb_thread_->fork_frame &&
      instr.dst.valid() && ir::producesValue(instr.op)) {
    main_written_[instr.dst.index] = 1;
  }
}

void SptMachine::stepSpec(SpecThread& t) {
  const trace::Record& r = trace_[t.pos];
  if (r.kind != trace::RecordKind::kInstr) {
    ++t.pos;
    return;
  }

  const DecodedInstr& d = decode_[r.sid];
  const ir::Instr& instr = *d.instr;
  SrbEntry entry;
  entry.record_index = t.pos;

  // Buffer-capacity stalls for stores/loads. Both buffers are keyed by
  // address, so only an access that would create a *new* entry can exceed
  // capacity: a store overwriting an SSB entry and a load that hits the
  // SSB (forwarded, never reaches the LAB) or re-reads a LAB address are
  // always admitted. The stall triggers exactly when the buffer already
  // holds the configured number of distinct addresses and one more would
  // be needed. Addresses are computed with specPeekReg (no live-in read is
  // recorded): a stalled instruction never executes speculatively, so it
  // must not leave a dangling SRB reference behind.
  if (d.is_store) {
    const std::uint64_t addr = static_cast<std::uint64_t>(
        specPeekReg(t, r.frame, instr.a) + instr.imm);
    if (!t.ssb.contains(addr) &&
        t.ssb.size() >= config_.speculative_store_buffer_entries) {
      t.stalled = true;
      return;
    }
  }
  if (d.is_load) {
    const std::uint64_t addr = static_cast<std::uint64_t>(
        specPeekReg(t, r.frame, instr.a) + instr.imm);
    if (!t.ssb.contains(addr) && !t.lab.contains(addr) &&
        t.lab.size() >= config_.load_address_buffer_entries) {
      t.stalled = true;
      return;
    }
  }

  std::uint64_t mem_addr_override = 0;
  bool stall_after = false;
  bool ssb_forwarded = false;

  switch (instr.op) {
    case ir::Opcode::kConst:
      entry.emu_value = instr.imm;
      specWriteReg(t, r.frame, instr.dst, entry.emu_value);
      break;
    case ir::Opcode::kMov:
      entry.emu_value = specReadReg(t, r.frame, instr.a);
      specWriteReg(t, r.frame, instr.dst, entry.emu_value);
      break;
    case ir::Opcode::kLoad: {
      const std::int64_t base = specReadReg(t, r.frame, instr.a);
      const std::uint64_t addr =
          static_cast<std::uint64_t>(base + instr.imm);
      entry.emu_addr = addr;
      mem_addr_override = addr;
      const SsbEntry* hit = t.ssb.find(addr);
      if (hit != nullptr) {
        entry.emu_value = hit->value;
        ssb_forwarded = true;  // forwarded from the SSB: no cache access
      } else {
        // Chained mode: a miss in the thread's own SSB consults every
        // less-speculative predecessor's SSB, nearest first — the nearest
        // predecessor's store is the latest one sequentially before this
        // load. A cross-thread forward records its provenance in the SRB
        // entry (commit-time exemption) and still registers in this
        // thread's LAB: main-thread and intermediate stores must be able
        // to flag it. It is charged as a cache access, not a same-core
        // forward — the value crosses cores.
        bool cross = false;
        if (multiway_ && chain_.size() > 1) {
          for (std::size_t j = chainIndexOf(t); j-- > 0;) {
            SpecThread& p = *slots_[chain_[j]];
            const SsbEntry* ph = p.ssb.find(addr);
            if (ph != nullptr) {
              entry.emu_value = ph->value;
              entry.fwd_seq = p.seq;
              entry.fwd_srb = static_cast<std::uint32_t>(ph->srb_index);
              cross = true;
              break;
            }
          }
        }
        t.labList(addr).push_back(t.srb.size());
        // Dropping the record cuts the memory-dependence net's wire for
        // this load: a conflicting store can no longer flag it, and only
        // the commit-time validation walk can catch the divergence.
        if (injector_ && injector_->maybeDropLabRecord()) {
          t.labList(addr).pop_back();
          ++t.faults_pending;
        }
        if (!cross) {
          entry.emu_value = addr == r.mem_addr
                                ? arch_.memValue(addr, r.value)
                                : arch_.memValue(addr, 0);
        }
      }
      specWriteReg(t, r.frame, instr.dst, entry.emu_value);
      break;
    }
    case ir::Opcode::kStore: {
      const std::int64_t base = specReadReg(t, r.frame, instr.a);
      const std::int64_t value = specReadReg(t, r.frame, instr.b);
      const std::uint64_t addr =
          static_cast<std::uint64_t>(base + instr.imm);
      entry.emu_addr = addr;
      entry.emu_value = value;
      mem_addr_override = addr;
      SsbEntry& slot = (t.ssb[addr] = SsbEntry{value, t.srb.size()});
      // Corrupts the buffered copy only: later loads forward the corrupted
      // value while this store's own SRB payload stays correct, so only the
      // *consumers* can diverge.
      if (injector_ && injector_->maybeCorruptSsbValue(slot.value)) {
        ++t.faults_pending;
      }
      // Cross-thread dependence: this store may conflict with loads already
      // executed by more speculative successors. No exemption at execute
      // time — a successor's forward from an *earlier* store of this thread
      // is stale by definition once this one executes.
      if (multiway_ && chain_.size() > 1) {
        flagSuccessorLoads(t, addr, 0, 0, /*allow_forward_exemption=*/false);
      }
      break;
    }
    case ir::Opcode::kBr:
      break;
    case ir::Opcode::kCondBr: {
      const std::int64_t cond = specReadReg(t, r.frame, instr.a);
      entry.emu_value = cond;
      const bool outcome = cond != 0;
      if (outcome != r.taken) {
        // The speculative thread would fetch down the other path, which the
        // sequential trace cannot provide; it stops producing results here
        // and replay will stop at this entry.
        entry.branch_mismatch = true;
        stall_after = true;
      }
      break;
    }
    case ir::Opcode::kCall: {
      const ir::Function& callee = module_.function(instr.callee);
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        const std::int64_t v = specReadReg(t, r.frame, instr.args[i]);
        specWriteReg(t, r.callee_frame,
                     ir::Reg{static_cast<std::uint32_t>(i)}, v);
      }
      (void)callee;
      t.call_stack.push_back({r.frame, instr.dst});
      break;
    }
    case ir::Opcode::kRet: {
      if (t.call_stack.empty()) {
        // Returning out of the forked function: stop speculating.
        t.stalled = true;
        return;
      }
      const std::int64_t v =
          instr.a.valid() ? specReadReg(t, r.frame, instr.a) : 0;
      entry.emu_value = v;
      const CallCtx ctx = t.call_stack.back();
      t.call_stack.pop_back();
      if (ctx.dst.valid()) specWriteReg(t, ctx.caller_frame, ctx.dst, v);
      break;
    }
    case ir::Opcode::kHalloc:
      // The bump allocator is shared architectural state; if the main
      // thread allocated since the fork the speculative address is stale.
      entry.emu_value = r.value;
      entry.violated = arch_.hallocCount() != t.halloc_at_fork;
      specWriteReg(t, r.frame, instr.dst, entry.emu_value);
      break;
    case ir::Opcode::kSptFork:
      // Chained speculation: the tail thread consuming a fork record spawns
      // its own successor (single-core mode: a no-op on the spec pipeline).
      if (multiway_) chainFork(t, r);
      break;
    case ir::Opcode::kSptKill:
    case ir::Opcode::kNop:
      // No-ops on the speculative pipeline (paper Section 3.1).
      break;
    default: {
      bool fault = false;
      const std::int64_t a = specReadReg(t, r.frame, instr.a);
      const std::int64_t b = specReadReg(t, r.frame, instr.b);
      entry.emu_value = emulateBinary(instr.op, a, b, fault);
      if (fault) {
        entry.violated = true;
        entry.emu_value = r.value;
        stall_after = true;
      }
      specWriteReg(t, r.frame, instr.dst, entry.emu_value);
      break;
    }
  }

  ExecInstr e = makeExecInstr(d, r, mem_addr_override);
  // Speculative stores stay in the SSB; they only reach the shared cache
  // at commit time. Loads satisfied by the SSB are forwarded without a
  // cache access.
  e.is_store = false;
  if (ssb_forwarded) e.is_load = false;
  t.pipe->execute(e);
  ++dispatch_fallbacks_;  // emulation mutates flags: always the generic path
  // SRB payload corruption targets entries whose buffered result is
  // actually consumed at commit (value producers, stores, returns); the
  // register-file overlay keeps the true value, so downstream speculative
  // dataflow is unaffected — exactly a buffer-array corruption.
  if (injector_ && (d.is_store || instr.op == ir::Opcode::kRet ||
                    (ir::producesValue(instr.op) &&
                     instr.op != ir::Opcode::kCall))) {
    if (injector_->maybeCorruptSrbPayload(entry.emu_value)) {
      ++t.faults_pending;
    }
  }
  t.srb.push_back(entry);
  ++t.pos;
  if (stall_after) t.stalled = true;
}

void SptMachine::arrival(SpecThread& t) {
  SPT_CHECK(arch_.curFrame() == t.fork_frame);
  ThreadStats& ts = *t.loop_stats;

  // Register dependence check (paper Section 3.2). Flag setting is
  // idempotent, so the iteration order over live-in registers is free.
  // Chained threads always use the value-based check: their snapshot was
  // materialized from a predecessor's speculative view, so the main-thread
  // scoreboard does not describe it — comparing against the architectural
  // registers at arrival both detects main-thread overwrites and validates
  // the (possibly slice-predicted) snapshot itself.
  const bool value_based =
      config_.register_check == support::RegisterCheckMode::kValueBased ||
      !t.forked_by_main;
  const std::vector<std::int64_t>& now = arch_.topRegs();
  for (const std::uint32_t reg : t.livein_touched) {
    bool violated;
    if (value_based) {
      violated = now[reg] != t.fork_rf[reg];
    } else {
      violated = main_written_[reg] != 0;
    }
    if (violated) {
      for (const std::size_t idx : t.livein_reads[reg]) {
        t.srb[idx].input_violated = true;
      }
    }
  }

  // Commit-time value validation (fault mode only): any clean entry whose
  // buffered result diverges from the trace — possible only when injection
  // cut one of the net's wires — is flagged here, forcing the thread into
  // the replay/squash path instead of fast-committing a wrong value.
  const std::size_t oracle_flagged = fault_mode_ ? validateSrbAtArrival(t) : 0;

  bool any_violation = false;
  for (const SrbEntry& e : t.srb) {
    if (e.violated || e.input_violated) {
      any_violation = true;
      break;
    }
  }
  result_.threads.spec_instrs += t.srb.size();
  ts.spec_instrs += t.srb.size();

  switch (config_.recovery) {
    case support::RecoveryMechanism::kSelectiveReplayFastCommit:
      if (!any_violation) {
        settleFaults(t, false, oracle_flagged, false, fastCommit(t));
      } else {
        replayCommit(t);
        settleFaults(t, true, oracle_flagged, false);
      }
      break;
    case support::RecoveryMechanism::kSelectiveReplay:
      replayCommit(t);
      settleFaults(t, true, oracle_flagged, false);
      break;
    case support::RecoveryMechanism::kFullSquash:
      if (!any_violation) {
        settleFaults(t, false, oracle_flagged, false, fastCommit(t));
      } else {
        fullSquash(t);
        settleFaults(t, true, oracle_flagged, false);
      }
      break;
  }

  // The thread is settled either way: remove it from the chain head. Its
  // successor (if any) becomes the least-speculative thread and the main
  // thread will arrive at its start-point next — cascaded in-order commit.
  SPT_CHECK(!chain_.empty() && chain_.front() == t.slot);
  chain_.erase(chain_.begin());
  if (sb_thread_ == &t) sb_thread_ = nullptr;
}

bool SptMachine::entryDiverges(const SrbEntry& e,
                               const trace::Record& r) const {
  switch (decode_[r.sid].op) {
    case ir::Opcode::kBr:
    case ir::Opcode::kCall:
    case ir::Opcode::kSptFork:
    case ir::Opcode::kSptKill:
    case ir::Opcode::kNop:
      return false;  // no comparable result payload
    case ir::Opcode::kCondBr:
      // The record's value field is unused for branches; the emulated
      // direction against the trace's `taken` bit is the ground truth.
      return e.branch_mismatch;
    case ir::Opcode::kStore:
      return e.emu_value != r.value || e.emu_addr != r.mem_addr;
    default:
      return e.emu_value != r.value;
  }
}

std::size_t SptMachine::validateSrbAtArrival(SpecThread& t) {
  // Mirrors replayCommit's dirty-closure walk (same scratch maps, same
  // propagation rule) but with no timing or architectural effects: its only
  // output is `violated` flags on clean entries that diverge from the
  // trace. Entries inside the closure are left alone — replay re-executes
  // them anyway, so only clean-yet-divergent entries are the net's misses.
  replay_dirty_regs_.reset();
  replay_dirty_addrs_.clear();
  const bool value_based =
      config_.register_check == support::RegisterCheckMode::kValueBased ||
      !t.forked_by_main;
  // Local call contexts for ret propagation: every executed ret in the SRB
  // range has its matching call in range (a ret with an empty speculative
  // call stack stalls the thread before recording an entry).
  std::vector<CallCtx> calls;
  std::size_t flagged = 0;

  for (SrbEntry& e : t.srb) {
    const trace::Record& r = trace_[e.record_index];
    const DecodedInstr& d = decode_[r.sid];
    const ir::Instr& instr = *d.instr;

    bool dirty = e.violated || e.input_violated;
    if (!dirty) {
      const auto srcDirty = [&](ir::Reg reg) {
        return reg.valid() &&
               replay_dirty_regs_.find(r.frame, reg.index) != nullptr;
      };
      dirty = srcDirty(instr.a) || srcDirty(instr.b);
      if (!dirty) {
        for (const ir::Reg arg : instr.args) {
          if (srcDirty(arg)) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty && d.is_load) {
        dirty = replay_dirty_addrs_.contains(e.emu_addr) ||
                replay_dirty_addrs_.contains(r.mem_addr);
      }
    }

    if (!dirty && entryDiverges(e, r)) {
      e.violated = true;
      dirty = true;
      ++flagged;
    }

    if (dirty) {
      const bool value_changed =
          e.emu_value != r.value ||
          (d.is_store && e.emu_addr != r.mem_addr) ||
          e.branch_mismatch;
      if (!value_based || value_changed) {
        if (instr.dst.valid() && ir::producesValue(instr.op)) {
          replay_dirty_regs_.at(r.frame, instr.dst.index) = 1;
        }
        if (d.is_store) {
          replay_dirty_addrs_[e.emu_addr] = 1;
          replay_dirty_addrs_[r.mem_addr] = 1;
        }
        if (d.op == ir::Opcode::kCall) {
          const std::uint32_t params =
              module_.function(instr.callee).param_count;
          for (std::uint32_t p = 0; p < params; ++p) {
            replay_dirty_regs_.at(r.callee_frame, p) = 1;
          }
        }
        if (d.op == ir::Opcode::kRet && !calls.empty() &&
            calls.back().dst.valid()) {
          replay_dirty_regs_.at(calls.back().caller_frame,
                                calls.back().dst.index) = 1;
        }
      }
      if (e.branch_mismatch) break;  // replay discards everything after it
    }

    if (d.op == ir::Opcode::kCall) {
      calls.push_back({r.frame, instr.dst});
    } else if (d.op == ir::Opcode::kRet && !calls.empty()) {
      calls.pop_back();
    }
  }
  return flagged;
}

void SptMachine::settleFaults(SpecThread& t, bool replayed,
                              std::size_t oracle_flagged, bool discarded,
                              std::size_t escapes) {
  if (!injector_) return;
  const std::size_t n = t.faults_pending;
  t.faults_pending = 0;
  if (n == 0) return;
  result_.faults.injected += n;
  if (escapes > 0) {
    // A divergent value fast-committed undetected. Must never happen; the
    // campaign asserts this stays zero.
    result_.faults.escaped += n;
  } else if (discarded || !replayed) {
    // Discarded wholesale (kill / wrong path / cascade), or fast-committed
    // with every entry validated equal: the corruption never reached
    // committed state.
    result_.faults.benign += n;
  } else if (oracle_flagged > 0) {
    result_.faults.detected_by_oracle += n;
  } else {
    result_.faults.detected_by_net += n;
  }
}

void SptMachine::syncToFreezePoint(SpecThread& t) {
  // The speculative thread is frozen at arrival; results in the buffer were
  // produced by (at latest) the speculative pipeline's clock, so the main
  // pipeline cannot consume them earlier. The jump inherits the speculative
  // pipeline's cycle breakdown — it represents that pipeline's work.
  const std::uint64_t freeze = std::max(main_pipe_->cycle(), t.pipe->cycle());
  main_pipe_->advanceToWithProfile(freeze, specProfileSinceFork(t));
}

std::size_t SptMachine::fastCommit(SpecThread& t) {
  ThreadStats& ts = *t.loop_stats;
  syncToFreezePoint(t);
  // The bulk commit costs the Table 1 minimum regardless of buffer depth —
  // that is fast commit's whole point versus walking the buffer at replay
  // width.
  main_pipe_->advanceTo(main_pipe_->cycle() + config_.fast_commit_overhead,
                        StallKind::kPipeline);

  // Commit the speculative state: walk the committed record range, applying
  // architectural effects and loop markers at commit time. The walk is
  // class-dispatched like executeMainInstr: the common classes pair the
  // inline ArchState applier with the scoreboard update, and only
  // calls/returns/hallocs re-dispatch through the generic apply().
  std::size_t srb_i = 0;
  for (std::size_t i = t.start_pos; i < t.pos; ++i) {
    const trace::Record& r = trace_[i];
    if (r.kind != trace::RecordKind::kInstr) {
      loop_tracker_.onMarker(r, main_pipe_->cycle());
      continue;
    }
    const std::size_t cur_srb = srb_i++;
    const DecodedInstr& d = decode_[r.sid];
    switch (static_cast<DispatchClass>(d.klass)) {
      case DispatchClass::kValue:
        arch_.applyValue(r, d.dst_reg);
        main_pipe_->setRegReady(
            (static_cast<std::uint64_t>(r.frame) << 32) + 1 + d.dst_reg,
            main_pipe_->cycle(), false);
        continue;
      case DispatchClass::kLoad:
        arch_.applyLoad(r, d.dst_reg);
        main_pipe_->setRegReady(
            (static_cast<std::uint64_t>(r.frame) << 32) + 1 + d.dst_reg,
            main_pipe_->cycle(), false);
        continue;
      case DispatchClass::kStore:
        arch_.applyStore(r);
        // Outstanding speculative stores write back at commit.
        memory_->accessData(r.mem_addr, main_pipe_->cycle());
        // Cross-thread dependence: the committed store checks successor
        // LABs; a successor load that forwarded exactly this store's
        // committed value is exempt.
        if (multiway_ && chain_.size() > 1) {
          flagSuccessorLoads(t, r.mem_addr, r.value,
                             static_cast<std::uint32_t>(cur_srb),
                             /*allow_forward_exemption=*/true);
        }
        continue;
      case DispatchClass::kCondBr:
      case DispatchClass::kJump:
      case DispatchClass::kFork:
        arch_.applyNoEffect(r);
        continue;
      case DispatchClass::kKill:
        arch_.applyNoEffect(r);
        // The loop exited inside the committed span: every more
        // speculative thread runs iterations that never execute.
        if (multiway_) cascadeKillSuccessors();
        continue;
      default:
        break;
    }
    const ir::Instr& instr = *d.instr;
    const ApplyInfo info = arch_.apply(r, instr);
    if (instr.dst.valid() && ir::producesValue(instr.op)) {
      main_pipe_->setRegReady(Pipeline::regKey(r.frame, instr.dst),
                              main_pipe_->cycle(), false);
    }
    if (instr.op == ir::Opcode::kRet && info.caller_dst.valid()) {
      main_pipe_->setRegReady(
          Pipeline::regKey(info.caller_frame, info.caller_dst),
          main_pipe_->cycle(), false);
    }
  }

  result_.threads.committed_instrs += t.srb.size();
  ts.committed_instrs += t.srb.size();
  ++result_.threads.fast_commits;
  ++ts.fast_commits;

  // Honest escape detector (fault mode): the arrival validation walk must
  // have routed every divergent entry into replay, so nothing that reaches
  // fast commit may mismatch the trace.
  std::size_t escapes = 0;
  if (fault_mode_) {
    for (const SrbEntry& e : t.srb) {
      if (entryDiverges(e, trace_[e.record_index])) ++escapes;
    }
  }

  pos_ = t.pos;
  t.active = false;
  if (oracle_) oracle_->checkAt(pos_, arch_, "fast-commit");
  return escapes;
}

void SptMachine::replayCommit(SpecThread& t) {
  ThreadStats& ts = *t.loop_stats;
  ++result_.threads.replays;
  ++ts.replays;
  syncToFreezePoint(t);

  replay_dirty_regs_.reset();
  replay_dirty_addrs_.clear();
  const bool value_based =
      config_.register_check == support::RegisterCheckMode::kValueBased ||
      !t.forked_by_main;

  std::size_t srb_i = 0;
  bool diverged = false;
  std::size_t resume_pos = t.pos;

  for (std::size_t rec_i = t.start_pos; rec_i < t.pos && !diverged;
       ++rec_i) {
    const trace::Record& r = trace_[rec_i];
    if (r.kind != trace::RecordKind::kInstr) {
      loop_tracker_.onMarker(r, main_pipe_->cycle());
      continue;
    }
    const std::size_t cur_srb = srb_i;
    SrbEntry& e = t.srb[srb_i++];
    SPT_CHECK(e.record_index == rec_i);
    const DecodedInstr& d = decode_[r.sid];
    const ir::Instr& instr = *d.instr;

    bool dirty = e.violated || e.input_violated;
    if (!dirty) {
      const auto srcDirty = [&](ir::Reg reg) {
        return reg.valid() &&
               replay_dirty_regs_.find(r.frame, reg.index) != nullptr;
      };
      dirty = srcDirty(instr.a) || srcDirty(instr.b);
      if (!dirty) {
        for (const ir::Reg arg : instr.args) {
          if (srcDirty(arg)) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty && d.is_load) {
        dirty = replay_dirty_addrs_.contains(e.emu_addr) ||
                replay_dirty_addrs_.contains(r.mem_addr);
      }
    }

    const ApplyInfo info = arch_.apply(r, instr);

    // Cross-thread dependence on the architecturally applied record: the
    // committed store checks successor LABs (forwarding exemption against
    // the trace value), and a speculative store whose emulated address was
    // wrong additionally invalidates forwards from the phantom address.
    if (multiway_ && d.is_store && chain_.size() > 1) {
      flagSuccessorLoads(t, r.mem_addr, r.value,
                         static_cast<std::uint32_t>(cur_srb),
                         /*allow_forward_exemption=*/true);
      if (e.emu_addr != r.mem_addr) {
        flagSuccessorLoads(t, e.emu_addr, 0, 0,
                           /*allow_forward_exemption=*/false);
      }
    }
    if (multiway_ && d.op == ir::Opcode::kSptKill) cascadeKillSuccessors();

    if (dirty) {
      // Selective re-execution on the main pipeline (normal width).
      const std::uint64_t done = main_pipe_->execute(makeExecInstr(d, r));
      ++dispatch_fallbacks_;
      ++result_.threads.misspec_instrs;
      ++ts.misspec_instrs;

      const bool value_changed =
          e.emu_value != r.value ||
          (d.is_store && e.emu_addr != r.mem_addr) ||
          e.branch_mismatch;
      if (!value_based || value_changed) {
        if (instr.dst.valid() && ir::producesValue(instr.op)) {
          replay_dirty_regs_.at(r.frame, instr.dst.index) = 1;
        }
        if (d.is_store) {
          replay_dirty_addrs_[e.emu_addr] = 1;
          replay_dirty_addrs_[r.mem_addr] = 1;
        }
        if (d.op == ir::Opcode::kCall) {
          for (std::uint32_t p = 0; p < info.callee_params; ++p) {
            replay_dirty_regs_.at(info.callee_frame, p) = 1;
          }
        }
        if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
          replay_dirty_regs_.at(info.caller_frame, info.caller_dst.index) = 1;
        }
      }
      if (d.op == ir::Opcode::kCall) {
        for (std::uint32_t p = 0; p < info.callee_params; ++p) {
          main_pipe_->setRegReady(
              Pipeline::regKey(info.callee_frame, ir::Reg{p}), done, false);
        }
      } else if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
        main_pipe_->setRegReady(
            Pipeline::regKey(info.caller_frame, info.caller_dst), done,
            false);
      }
      if (e.branch_mismatch) {
        // The re-executed branch goes the other way: everything after it in
        // the buffer is wrong-path and is discarded (paper Section 3.1).
        diverged = true;
        resume_pos = rec_i + 1;
      }
    } else {
      main_pipe_->commitFromBuffer();
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        main_pipe_->setRegReady(Pipeline::regKey(r.frame, instr.dst),
                                main_pipe_->cycle(), false);
      }
      if (d.is_store) {
        memory_->accessData(r.mem_addr, main_pipe_->cycle());
      }
      ++result_.threads.committed_instrs;
      ++ts.committed_instrs;
    }
  }

  if (multiway_ && diverged && chain_.size() > 1) {
    // Replay stopped at the mismatching branch: stores past it never
    // commit, so any successor load that forwarded from one read a phantom
    // value the net can no longer observe — flag those entries directly.
    // (The successors themselves stay alive: their spans are real trace
    // iterations the main thread will still arrive at.)
    const std::uint32_t div_srb = static_cast<std::uint32_t>(srb_i - 1);
    for (std::size_t j = 1; j < chain_.size(); ++j) {
      SpecThread& s = *slots_[chain_[j]];
      if (s.wrong_path) continue;
      for (SrbEntry& le : s.srb) {
        if (le.fwd_seq == t.seq && le.fwd_srb > div_srb) le.violated = true;
      }
    }
  }

  pos_ = diverged ? resume_pos : t.pos;
  t.active = false;
  if (oracle_) oracle_->checkAt(pos_, arch_, "replay");
}

void SptMachine::fullSquash(SpecThread& t) {
  ThreadStats& ts = *t.loop_stats;
  ++result_.threads.squashes;
  ++ts.squashes;
  result_.threads.misspec_instrs += t.srb.size();
  ts.misspec_instrs += t.srb.size();
  main_pipe_->advanceTo(main_pipe_->cycle() + config_.fast_commit_overhead,
                        StallKind::kPipeline);

  // Cascaded squash: the violating thread's whole span re-executes on the
  // main thread, so every more speculative thread — forked from it and
  // covering later iterations — is discarded with it.
  while (chain_.size() > 1) {
    SpecThread& s = *slots_[chain_.back()];
    ThreadStats& sts = *s.loop_stats;
    ++result_.threads.squashes;
    ++sts.squashes;
    // Cascaded threads never arrived, so charge both their speculative
    // and misspeculated instruction counts here.
    result_.threads.spec_instrs += s.srb.size();
    sts.spec_instrs += s.srb.size();
    result_.threads.misspec_instrs += s.srb.size();
    sts.misspec_instrs += s.srb.size();
    settleFaults(s, false, 0, /*discarded=*/true);
    s.active = false;
    chain_.pop_back();
  }

  pos_ = t.start_pos;  // re-execute the whole speculative span normally
  t.active = false;
  if (oracle_) oracle_->checkAt(pos_, arch_, "squash");
}

void SptMachine::killSpec(SpecThread& t) {
  ThreadStats& ts = *t.loop_stats;
  ++result_.threads.killed;
  ++ts.killed;
  result_.threads.spec_instrs += t.srb.size();
  ts.spec_instrs += t.srb.size();
  result_.threads.misspec_instrs += t.srb.size();
  ts.misspec_instrs += t.srb.size();
  t.active = false;
  settleFaults(t, false, 0, /*discarded=*/true);
}

void SptMachine::killChain() {
  for (const std::uint32_t slot : chain_) killSpec(*slots_[slot]);
  chain_.clear();
  sb_thread_ = nullptr;
}

void SptMachine::cascadeKillSuccessors() {
  while (chain_.size() > 1) {
    killSpec(*slots_[chain_.back()]);
    chain_.pop_back();
  }
}

}  // namespace spt::sim

#include "sim/spt_machine.h"

#include "support/check.h"
#include "support/error.h"

namespace spt::sim {
namespace {

/// Binary-op evaluation for speculative emulation. Unlike the interpreter,
/// faults (division by zero on stale inputs) are reported, not fatal: a
/// real speculative pipeline would suppress the fault and the thread would
/// be squashed at validation.
std::int64_t emulateBinary(ir::Opcode op, std::int64_t a, std::int64_t b,
                           bool& fault) {
  using ir::Opcode;
  switch (op) {
    case Opcode::kAdd:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                       static_cast<std::uint64_t>(b));
    case Opcode::kSub:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                       static_cast<std::uint64_t>(b));
    case Opcode::kMul:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                       static_cast<std::uint64_t>(b));
    case Opcode::kDiv:
      if (b == 0 || (a == INT64_MIN && b == -1)) {
        fault = true;
        return 0;
      }
      return a / b;
    case Opcode::kRem:
      if (b == 0 || (a == INT64_MIN && b == -1)) {
        fault = true;
        return 0;
      }
      return a % b;
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                       << (b & 63));
    case Opcode::kShr:
      return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                       (b & 63));
    case Opcode::kCmpEq:
      return a == b;
    case Opcode::kCmpNe:
      return a != b;
    case Opcode::kCmpLt:
      return a < b;
    case Opcode::kCmpLe:
      return a <= b;
    case Opcode::kCmpGt:
      return a > b;
    case Opcode::kCmpGe:
      return a >= b;
    default:
      SPT_UNREACHABLE("not a binary opcode");
  }
}

}  // namespace

void ThreadStats::accumulate(const ThreadStats& other) {
  spawned += other.spawned;
  forks_ignored += other.forks_ignored;
  wrong_path += other.wrong_path;
  fast_commits += other.fast_commits;
  replays += other.replays;
  squashes += other.squashes;
  killed += other.killed;
  spec_instrs += other.spec_instrs;
  misspec_instrs += other.misspec_instrs;
  committed_instrs += other.committed_instrs;
}

SptMachine::SptMachine(const ir::Module& module, trace::TraceView trace,
                       const trace::LoopIndex& loop_index,
                       const support::MachineConfig& config)
    : module_(module),
      trace_(trace),
      loop_index_(loop_index),
      config_(config),
      decode_(module),
      memory_(std::make_unique<MemorySystem>(config)),
      main_pipe_(std::make_unique<Pipeline>(config, *memory_)),
      spec_pipe_(std::make_unique<Pipeline>(config, *memory_)),
      arch_(module),
      loop_tracker_(module) {
  // The SSB/LAB hold at most the configured number of distinct addresses
  // (capacity stalls enforce it), so size them once and never rehash.
  spec_.ssb.reserveFor(config.speculative_store_buffer_entries);
  spec_.lab.reserveFor(config.load_address_buffer_entries);
  if (config.fault_plan.enabled) {
    injector_ = std::make_unique<FaultInjector>(config.fault_plan);
    fault_mode_ = true;
  }
  if (config.oracle != support::OracleMode::kOff) {
    oracle_ = std::make_unique<Oracle>(module, trace, decode_, config.oracle);
    arch_.enableDigest();
  }
}

void SptMachine::SpecThread::reset() {
  active = false;
  wrong_path = false;
  stalled = false;
  start_pos = 0;
  pos = 0;
  fork_frame = 0;
  rf.reset();
  ssb.clear();
  lab.clear();
  lab_pool_used = 0;
  for (const std::uint32_t reg : livein_touched) livein_reads[reg].clear();
  livein_touched.clear();
  srb.clear();
  call_stack.clear();
  halloc_at_fork = 0;
  breakdown_at_fork = CycleBreakdown{};
  loop_stats = nullptr;
}

std::vector<std::size_t>& SptMachine::SpecThread::labList(
    std::uint64_t addr) {
  std::uint32_t& slot = lab[addr];
  if (slot == 0) {
    if (lab_pool_used == lab_pool.size()) lab_pool.emplace_back();
    lab_pool[lab_pool_used].clear();
    slot = static_cast<std::uint32_t>(++lab_pool_used);
  }
  return lab_pool[slot - 1];
}

ThreadStats& SptMachine::loopThreadStats() { return *spec_.loop_stats; }

SptMachine::ForkSite& SptMachine::forkSiteOf(const trace::Record& r) {
  const auto it = fork_sites_.find(r.sid);
  if (it != fork_sites_.end()) return it->second;

  // Loop attribution: the fork's target block is the loop header.
  const auto& loc = module_.locate(r.sid);
  const ir::Function& func = module_.function(loc.func);
  const ir::Instr& fork = func.blocks[loc.block].instrs[loc.index];
  const ir::StaticId header_sid =
      func.blocks[fork.target0].instrs.front().static_id;

  ForkSite site;
  site.loop_name = trace::loopNameOf(module_, header_sid);
  site.stats = &result_.loop_threads[site.loop_name];
  return fork_sites_.emplace(r.sid, std::move(site)).first->second;
}

CycleBreakdown SptMachine::specProfileSinceFork() const {
  const CycleBreakdown& now = spec_pipe_->breakdown();
  const CycleBreakdown& base = spec_.breakdown_at_fork;
  CycleBreakdown delta;
  delta.execution = now.execution - base.execution;
  delta.pipeline_stall = now.pipeline_stall - base.pipeline_stall;
  delta.dcache_stall = now.dcache_stall - base.dcache_stall;
  return delta;
}

std::int64_t SptMachine::specPeekReg(trace::FrameId frame,
                                     ir::Reg reg) const {
  const std::int64_t* v = spec_.rf.find(frame, reg.index);
  if (v != nullptr) return *v;
  if (frame == spec_.fork_frame) return spec_.fork_rf[reg.index];
  return 0;
}

std::int64_t SptMachine::specReadReg(trace::FrameId frame, ir::Reg reg) {
  const std::int64_t* v = spec_.rf.find(frame, reg.index);
  if (v != nullptr) return *v;
  if (frame == spec_.fork_frame) {
    // Live-in read from the fork-time register context.
    std::vector<std::size_t>& reads = spec_.livein_reads[reg.index];
    if (reads.empty()) spec_.livein_touched.push_back(reg.index);
    reads.push_back(spec_.srb.size());
    return spec_.fork_rf[reg.index];
  }
  // Registers of frames created during speculation are zero-initialized,
  // matching interpreter frames.
  return 0;
}

void SptMachine::specWriteReg(trace::FrameId frame, ir::Reg reg,
                              std::int64_t value) {
  spec_.rf.at(frame, reg.index) = value;
}

bool SptMachine::specCanStep() const {
  return spec_.active && !spec_.wrong_path && !spec_.stalled &&
         spec_.pos < trace_.size() &&
         spec_.srb.size() < config_.speculation_result_buffer_entries &&
         spec_pipe_->cycle() <= main_pipe_->cycle();
}

MachineResult SptMachine::run() {
  const bool budgeted = config_.max_simulated_records != 0 ||
                        config_.max_simulated_cycles != 0;
  std::uint64_t steps = 0;
  while (pos_ < trace_.size()) {
    if (budgeted && (++steps & 1023u) == 0) checkBudgets();
    if (specCanStep()) {
      stepSpec();
    } else {
      stepMain();
    }
  }
  if (spec_.active) killSpec();
  if (budgeted) checkBudgets();

  main_pipe_->finish();
  loop_tracker_.finish(main_pipe_->cycle());

  result_.cycles = main_pipe_->cycle();
  result_.instrs = main_pipe_->instrsIssued() + spec_pipe_->instrsIssued();
  result_.breakdown = main_pipe_->breakdown();
  result_.loops = loop_tracker_.stats();
  result_.l1d = memory_->l1d().stats();
  result_.l2 = memory_->l2().stats();
  result_.l3 = memory_->l3().stats();
  result_.branch_mispredict_ratio = main_pipe_->predictor().mispredictRatio();
  result_.hotpath.dispatch_fallback = dispatch_fallbacks_;
  result_.hotpath.dispatch_fast = result_.instrs - dispatch_fallbacks_;
  result_.hotpath.arena_frame_allocs = arch_.arenaAllocs();
  result_.hotpath.arena_frame_reuses = arch_.arenaReuses();
  if (injector_) {
    // Timing-metadata faults never enter the per-thread classification:
    // fold them in as injected + benign (the claim the campaign asserts).
    result_.faults.injected += injector_->metadataInjected();
    result_.faults.benign += injector_->metadataInjected();
  }
  if (oracle_) {
    oracle_->checkAt(trace_.size(), arch_, "end-of-run");
    result_.arch_digest = arch_.streamDigest();
    result_.oracle_checks = oracle_->checksRun();
  }
  return result_;
}

void SptMachine::checkBudgets() const {
  if (config_.max_simulated_cycles != 0 &&
      main_pipe_->cycle() > config_.max_simulated_cycles) {
    throw support::SptBudgetExceeded("simulated cycles", main_pipe_->cycle(),
                                     config_.max_simulated_cycles);
  }
  if (config_.max_simulated_records != 0 &&
      pos_ > config_.max_simulated_records) {
    throw support::SptBudgetExceeded("simulated trace records", pos_,
                                     config_.max_simulated_records);
  }
}

void SptMachine::stepMain() {
  const trace::Record& r = trace_[pos_];

  if (spec_.active && !spec_.wrong_path && pos_ == spec_.start_pos) {
    arrival();
    return;
  }

  if (r.kind != trace::RecordKind::kInstr) {
    loop_tracker_.onMarker(r, main_pipe_->cycle());
    ++pos_;
    return;
  }

  if (r.op == ir::Opcode::kSptFork) {
    executeFork(r);
    ++pos_;
    return;
  }
  executeMainInstr(r);
  ++pos_;
}

void SptMachine::executeFork(const trace::Record& r) {
  const DecodedInstr& d = decode_[r.sid];
  // The fork instruction itself plus the register-context copy (Table 1:
  // 1 cycle minimum — the copy is assumed banked/bulk, not port-limited;
  // our virtual-register IR would otherwise overcharge it).
  main_pipe_->execute(makeExecInstr(d, r));
  ++dispatch_fallbacks_;
  main_pipe_->advanceTo(main_pipe_->cycle() + config_.rf_copy_overhead,
                        StallKind::kPipeline);
  arch_.apply(r, *d.instr);

  if (spec_.active) {
    // The fork is dropped because the speculative core is busy; attribute
    // it to the loop whose thread is occupying the core so per-loop and
    // whole-program fork counts stay consistent.
    ++result_.threads.forks_ignored;
    ++loopThreadStats().forks_ignored;
    return;
  }

  const std::size_t start = loop_index_.startOfFork(pos_);
  ForkSite& site = forkSiteOf(r);

  spec_.reset();
  spec_.active = true;
  if (injector_) injector_->threadStart();
  spec_.loop_stats = site.stats;
  spec_.halloc_at_fork = arch_.hallocCount();
  spec_.breakdown_at_fork = spec_pipe_->breakdown();

  ThreadStats& ts = loopThreadStats();
  ++result_.threads.spawned;
  ++ts.spawned;

  if (start == trace::LoopIndex::kNoStart) {
    // No next iteration exists in the trace: the speculative thread runs a
    // wrong path we cannot replay; it occupies the core until spt_kill.
    spec_.wrong_path = true;
    ++result_.threads.wrong_path;
    ++ts.wrong_path;
    return;
  }

  spec_.start_pos = start;
  // Loop forks start at a kIterBegin marker (skip it); region forks start
  // directly at the target instruction.
  spec_.pos = trace_[start].kind == trace::RecordKind::kInstr ? start
                                                              : start + 1;
  spec_.fork_frame = arch_.curFrame();
  spec_.fork_rf = arch_.topRegs();
  if (injector_) {
    injector_->maybeFlipForkReg(spec_.fork_rf);
    // Timing-metadata faults, fired once per fork: the shared hierarchy
    // and the speculative pipeline's predictor carry no data values, so
    // these are benign by construction (counted separately; see run()).
    injector_->maybeCorruptCacheMeta(*memory_);
    injector_->maybeCorruptBpMeta(spec_pipe_->predictor());
  }
  if (spec_.livein_reads.size() < spec_.fork_rf.size()) {
    spec_.livein_reads.resize(spec_.fork_rf.size());
  }
  main_written_.assign(spec_.fork_rf.size(), 0);
  spec_pipe_->advanceTo(main_pipe_->cycle(), StallKind::kPipeline);
}

void SptMachine::executeMainInstr(const trace::Record& r) {
  const DecodedInstr& d = decode_[r.sid];
  const bool spec_live = spec_.active && !spec_.wrong_path;

  // Threaded dispatch off the predecoded class (jump table): each fast case
  // pairs the class-specialized ExecInstr builder and executeKnown
  // instantiation with the matching inline ArchState applier, hoisting the
  // opcode re-dispatch and every data-dependent flag test out of the
  // per-record path. Calls/returns/kills/hallocs take the generic fallback.
  switch (static_cast<DispatchClass>(d.klass)) {
    case DispatchClass::kValue:
      main_pipe_->executeKnown<Pipeline::kExecPlain>(
          makeExecInstrFor<DispatchClass::kValue>(d, r));
      arch_.applyValue(r, d.dst_reg);
      if (spec_live && r.frame == spec_.fork_frame) {
        main_written_[d.dst_reg] = 1;  // scoreboard-mode register tracking
      }
      return;
    case DispatchClass::kLoad:
      main_pipe_->executeKnown<Pipeline::kExecLoad>(
          makeExecInstrFor<DispatchClass::kLoad>(d, r));
      arch_.applyLoad(r, d.dst_reg);
      if (spec_live && r.frame == spec_.fork_frame) {
        main_written_[d.dst_reg] = 1;
      }
      return;
    case DispatchClass::kStore:
      main_pipe_->executeKnown<Pipeline::kExecStore>(
          makeExecInstrFor<DispatchClass::kStore>(d, r));
      arch_.applyStore(r);
      if (spec_live) {
        // Memory dependence checking: every main store is checked against
        // the speculative load address buffer (paper Section 3.2).
        const std::uint32_t* slot = spec_.lab.find(r.mem_addr);
        if (slot != nullptr) {
          for (const std::size_t idx : spec_.lab_pool[*slot - 1]) {
            spec_.srb[idx].violated = true;
          }
        }
      }
      return;
    case DispatchClass::kCondBr:
      main_pipe_->executeKnown<Pipeline::kExecBranch>(
          makeExecInstrFor<DispatchClass::kCondBr>(d, r));
      arch_.applyNoEffect(r);
      return;
    case DispatchClass::kJump:
      main_pipe_->executeKnown<Pipeline::kExecPlain>(
          makeExecInstrFor<DispatchClass::kJump>(d, r));
      arch_.applyNoEffect(r);
      return;
    default:
      executeMainFallback(d, r);
      return;
  }
}

void SptMachine::executeMainFallback(const DecodedInstr& d,
                                     const trace::Record& r) {
  const ir::Instr& instr = *d.instr;
  ++dispatch_fallbacks_;

  if (d.op == ir::Opcode::kSptKill) {
    main_pipe_->execute(makeExecInstr(d, r));
    arch_.apply(r, instr);
    if (spec_.active) killSpec();
    return;
  }

  const ExecInstr e = makeExecInstr(d, r);
  const std::uint64_t done = main_pipe_->execute(e);
  const ApplyInfo info = arch_.apply(r, instr);

  if (d.op == ir::Opcode::kCall) {
    for (std::uint32_t p = 0; p < info.callee_params; ++p) {
      main_pipe_->setRegReady(Pipeline::regKey(info.callee_frame, ir::Reg{p}),
                              done, false);
    }
  } else if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
    main_pipe_->setRegReady(
        Pipeline::regKey(info.caller_frame, info.caller_dst), done, false);
  }

  if (!spec_.active || spec_.wrong_path) return;

  // Memory dependence checking (see the kStore fast case).
  if (d.is_store) {
    const std::uint32_t* slot = spec_.lab.find(r.mem_addr);
    if (slot != nullptr) {
      for (const std::size_t idx : spec_.lab_pool[*slot - 1]) {
        spec_.srb[idx].violated = true;
      }
    }
  }

  // Register tracking for the scoreboard checking mode. A call's optional
  // destination counts as written by the main thread here, exactly as the
  // pre-dispatch implementation did.
  if (r.frame == spec_.fork_frame && instr.dst.valid() &&
      ir::producesValue(instr.op)) {
    main_written_[instr.dst.index] = 1;
  }
}

void SptMachine::stepSpec() {
  const trace::Record& r = trace_[spec_.pos];
  if (r.kind != trace::RecordKind::kInstr) {
    ++spec_.pos;
    return;
  }

  const DecodedInstr& d = decode_[r.sid];
  const ir::Instr& instr = *d.instr;
  SrbEntry entry;
  entry.record_index = spec_.pos;

  // Buffer-capacity stalls for stores/loads. Both buffers are keyed by
  // address, so only an access that would create a *new* entry can exceed
  // capacity: a store overwriting an SSB entry and a load that hits the
  // SSB (forwarded, never reaches the LAB) or re-reads a LAB address are
  // always admitted. The stall triggers exactly when the buffer already
  // holds the configured number of distinct addresses and one more would
  // be needed. Addresses are computed with specPeekReg (no live-in read is
  // recorded): a stalled instruction never executes speculatively, so it
  // must not leave a dangling SRB reference behind.
  if (d.is_store) {
    const std::uint64_t addr = static_cast<std::uint64_t>(
        specPeekReg(r.frame, instr.a) + instr.imm);
    if (!spec_.ssb.contains(addr) &&
        spec_.ssb.size() >= config_.speculative_store_buffer_entries) {
      spec_.stalled = true;
      return;
    }
  }
  if (d.is_load) {
    const std::uint64_t addr = static_cast<std::uint64_t>(
        specPeekReg(r.frame, instr.a) + instr.imm);
    if (!spec_.ssb.contains(addr) && !spec_.lab.contains(addr) &&
        spec_.lab.size() >= config_.load_address_buffer_entries) {
      spec_.stalled = true;
      return;
    }
  }

  std::uint64_t mem_addr_override = 0;
  bool stall_after = false;
  bool ssb_forwarded = false;

  switch (instr.op) {
    case ir::Opcode::kConst:
      entry.emu_value = instr.imm;
      specWriteReg(r.frame, instr.dst, entry.emu_value);
      break;
    case ir::Opcode::kMov:
      entry.emu_value = specReadReg(r.frame, instr.a);
      specWriteReg(r.frame, instr.dst, entry.emu_value);
      break;
    case ir::Opcode::kLoad: {
      const std::int64_t base = specReadReg(r.frame, instr.a);
      const std::uint64_t addr =
          static_cast<std::uint64_t>(base + instr.imm);
      entry.emu_addr = addr;
      mem_addr_override = addr;
      const SsbEntry* hit = spec_.ssb.find(addr);
      if (hit != nullptr) {
        entry.emu_value = hit->value;
        ssb_forwarded = true;  // forwarded from the SSB: no cache access
      } else {
        spec_.labList(addr).push_back(spec_.srb.size());
        // Dropping the record cuts the memory-dependence net's wire for
        // this load: a conflicting main store can no longer flag it, and
        // only the commit-time validation walk can catch the divergence.
        if (injector_ && injector_->maybeDropLabRecord()) {
          spec_.labList(addr).pop_back();
        }
        entry.emu_value = addr == r.mem_addr
                              ? arch_.memValue(addr, r.value)
                              : arch_.memValue(addr, 0);
      }
      specWriteReg(r.frame, instr.dst, entry.emu_value);
      break;
    }
    case ir::Opcode::kStore: {
      const std::int64_t base = specReadReg(r.frame, instr.a);
      const std::int64_t value = specReadReg(r.frame, instr.b);
      const std::uint64_t addr =
          static_cast<std::uint64_t>(base + instr.imm);
      entry.emu_addr = addr;
      entry.emu_value = value;
      mem_addr_override = addr;
      SsbEntry& slot = (spec_.ssb[addr] = SsbEntry{value, spec_.srb.size()});
      // Corrupts the buffered copy only: later loads forward the corrupted
      // value while this store's own SRB payload stays correct, so only the
      // *consumers* can diverge.
      if (injector_) injector_->maybeCorruptSsbValue(slot.value);
      break;
    }
    case ir::Opcode::kBr:
      break;
    case ir::Opcode::kCondBr: {
      const std::int64_t cond = specReadReg(r.frame, instr.a);
      entry.emu_value = cond;
      const bool outcome = cond != 0;
      if (outcome != r.taken) {
        // The speculative thread would fetch down the other path, which the
        // sequential trace cannot provide; it stops producing results here
        // and replay will stop at this entry.
        entry.branch_mismatch = true;
        stall_after = true;
      }
      break;
    }
    case ir::Opcode::kCall: {
      const ir::Function& callee = module_.function(instr.callee);
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        const std::int64_t v = specReadReg(r.frame, instr.args[i]);
        specWriteReg(r.callee_frame, ir::Reg{static_cast<std::uint32_t>(i)},
                     v);
      }
      (void)callee;
      spec_.call_stack.push_back({r.frame, instr.dst});
      break;
    }
    case ir::Opcode::kRet: {
      if (spec_.call_stack.empty()) {
        // Returning out of the forked function: stop speculating.
        spec_.stalled = true;
        return;
      }
      const std::int64_t v =
          instr.a.valid() ? specReadReg(r.frame, instr.a) : 0;
      entry.emu_value = v;
      const CallCtx ctx = spec_.call_stack.back();
      spec_.call_stack.pop_back();
      if (ctx.dst.valid()) specWriteReg(ctx.caller_frame, ctx.dst, v);
      break;
    }
    case ir::Opcode::kHalloc:
      // The bump allocator is shared architectural state; if the main
      // thread allocated since the fork the speculative address is stale.
      entry.emu_value = r.value;
      entry.violated = arch_.hallocCount() != spec_.halloc_at_fork;
      specWriteReg(r.frame, instr.dst, entry.emu_value);
      break;
    case ir::Opcode::kSptFork:
    case ir::Opcode::kSptKill:
    case ir::Opcode::kNop:
      // No-ops on the speculative pipeline (paper Section 3.1).
      break;
    default: {
      bool fault = false;
      const std::int64_t a = specReadReg(r.frame, instr.a);
      const std::int64_t b = specReadReg(r.frame, instr.b);
      entry.emu_value = emulateBinary(instr.op, a, b, fault);
      if (fault) {
        entry.violated = true;
        entry.emu_value = r.value;
        stall_after = true;
      }
      specWriteReg(r.frame, instr.dst, entry.emu_value);
      break;
    }
  }

  ExecInstr e = makeExecInstr(d, r, mem_addr_override);
  // Speculative stores stay in the SSB; they only reach the shared cache
  // at commit time. Loads satisfied by the SSB are forwarded without a
  // cache access.
  e.is_store = false;
  if (ssb_forwarded) e.is_load = false;
  spec_pipe_->execute(e);
  ++dispatch_fallbacks_;  // emulation mutates flags: always the generic path
  // SRB payload corruption targets entries whose buffered result is
  // actually consumed at commit (value producers, stores, returns); the
  // register-file overlay keeps the true value, so downstream speculative
  // dataflow is unaffected — exactly a buffer-array corruption.
  if (injector_ && (d.is_store || instr.op == ir::Opcode::kRet ||
                    (ir::producesValue(instr.op) &&
                     instr.op != ir::Opcode::kCall))) {
    injector_->maybeCorruptSrbPayload(entry.emu_value);
  }
  spec_.srb.push_back(entry);
  ++spec_.pos;
  if (stall_after) spec_.stalled = true;
}

void SptMachine::arrival() {
  SPT_CHECK(arch_.curFrame() == spec_.fork_frame);
  ThreadStats& ts = loopThreadStats();

  // Register dependence check (paper Section 3.2). Flag setting is
  // idempotent, so the iteration order over live-in registers is free.
  const std::vector<std::int64_t>& now = arch_.topRegs();
  for (const std::uint32_t reg : spec_.livein_touched) {
    bool violated;
    if (config_.register_check == support::RegisterCheckMode::kValueBased) {
      violated = now[reg] != spec_.fork_rf[reg];
    } else {
      violated = main_written_[reg] != 0;
    }
    if (violated) {
      for (const std::size_t idx : spec_.livein_reads[reg]) {
        spec_.srb[idx].input_violated = true;
      }
    }
  }

  // Commit-time value validation (fault mode only): any clean entry whose
  // buffered result diverges from the trace — possible only when injection
  // cut one of the net's wires — is flagged here, forcing the thread into
  // the replay/squash path instead of fast-committing a wrong value.
  const std::size_t oracle_flagged =
      fault_mode_ ? validateSrbAtArrival() : 0;

  bool any_violation = false;
  for (const SrbEntry& e : spec_.srb) {
    if (e.violated || e.input_violated) {
      any_violation = true;
      break;
    }
  }
  result_.threads.spec_instrs += spec_.srb.size();
  ts.spec_instrs += spec_.srb.size();

  switch (config_.recovery) {
    case support::RecoveryMechanism::kSelectiveReplayFastCommit:
      if (!any_violation) {
        settleFaults(false, oracle_flagged, false, fastCommit());
      } else {
        replayCommit();
        settleFaults(true, oracle_flagged, false);
      }
      return;
    case support::RecoveryMechanism::kSelectiveReplay:
      replayCommit();
      settleFaults(true, oracle_flagged, false);
      return;
    case support::RecoveryMechanism::kFullSquash:
      if (!any_violation) {
        settleFaults(false, oracle_flagged, false, fastCommit());
      } else {
        fullSquash();
        settleFaults(true, oracle_flagged, false);
      }
      return;
  }
}

bool SptMachine::entryDiverges(const SrbEntry& e,
                               const trace::Record& r) const {
  switch (decode_[r.sid].op) {
    case ir::Opcode::kBr:
    case ir::Opcode::kCall:
    case ir::Opcode::kSptFork:
    case ir::Opcode::kSptKill:
    case ir::Opcode::kNop:
      return false;  // no comparable result payload
    case ir::Opcode::kCondBr:
      // The record's value field is unused for branches; the emulated
      // direction against the trace's `taken` bit is the ground truth.
      return e.branch_mismatch;
    case ir::Opcode::kStore:
      return e.emu_value != r.value || e.emu_addr != r.mem_addr;
    default:
      return e.emu_value != r.value;
  }
}

std::size_t SptMachine::validateSrbAtArrival() {
  // Mirrors replayCommit's dirty-closure walk (same scratch maps, same
  // propagation rule) but with no timing or architectural effects: its only
  // output is `violated` flags on clean entries that diverge from the
  // trace. Entries inside the closure are left alone — replay re-executes
  // them anyway, so only clean-yet-divergent entries are the net's misses.
  replay_dirty_regs_.reset();
  replay_dirty_addrs_.clear();
  const bool value_based =
      config_.register_check == support::RegisterCheckMode::kValueBased;
  // Local call contexts for ret propagation: every executed ret in the SRB
  // range has its matching call in range (a ret with an empty speculative
  // call stack stalls the thread before recording an entry).
  std::vector<CallCtx> calls;
  std::size_t flagged = 0;

  for (SrbEntry& e : spec_.srb) {
    const trace::Record& r = trace_[e.record_index];
    const DecodedInstr& d = decode_[r.sid];
    const ir::Instr& instr = *d.instr;

    bool dirty = e.violated || e.input_violated;
    if (!dirty) {
      const auto srcDirty = [&](ir::Reg reg) {
        return reg.valid() &&
               replay_dirty_regs_.find(r.frame, reg.index) != nullptr;
      };
      dirty = srcDirty(instr.a) || srcDirty(instr.b);
      if (!dirty) {
        for (const ir::Reg arg : instr.args) {
          if (srcDirty(arg)) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty && d.is_load) {
        dirty = replay_dirty_addrs_.contains(e.emu_addr) ||
                replay_dirty_addrs_.contains(r.mem_addr);
      }
    }

    if (!dirty && entryDiverges(e, r)) {
      e.violated = true;
      dirty = true;
      ++flagged;
    }

    if (dirty) {
      const bool value_changed =
          e.emu_value != r.value ||
          (d.is_store && e.emu_addr != r.mem_addr) ||
          e.branch_mismatch;
      if (!value_based || value_changed) {
        if (instr.dst.valid() && ir::producesValue(instr.op)) {
          replay_dirty_regs_.at(r.frame, instr.dst.index) = 1;
        }
        if (d.is_store) {
          replay_dirty_addrs_[e.emu_addr] = 1;
          replay_dirty_addrs_[r.mem_addr] = 1;
        }
        if (d.op == ir::Opcode::kCall) {
          const std::uint32_t params =
              module_.function(instr.callee).param_count;
          for (std::uint32_t p = 0; p < params; ++p) {
            replay_dirty_regs_.at(r.callee_frame, p) = 1;
          }
        }
        if (d.op == ir::Opcode::kRet && !calls.empty() &&
            calls.back().dst.valid()) {
          replay_dirty_regs_.at(calls.back().caller_frame,
                                calls.back().dst.index) = 1;
        }
      }
      if (e.branch_mismatch) break;  // replay discards everything after it
    }

    if (d.op == ir::Opcode::kCall) {
      calls.push_back({r.frame, instr.dst});
    } else if (d.op == ir::Opcode::kRet && !calls.empty()) {
      calls.pop_back();
    }
  }
  return flagged;
}

void SptMachine::settleFaults(bool replayed, std::size_t oracle_flagged,
                              bool discarded, std::size_t escapes) {
  if (!injector_) return;
  const std::size_t n = injector_->pending();
  injector_->threadStart();
  if (n == 0) return;
  result_.faults.injected += n;
  if (escapes > 0) {
    // A divergent value fast-committed undetected. Must never happen; the
    // campaign asserts this stays zero.
    result_.faults.escaped += n;
  } else if (discarded || !replayed) {
    // Discarded wholesale (kill / wrong path), or fast-committed with every
    // entry validated equal: the corruption never reached committed state.
    result_.faults.benign += n;
  } else if (oracle_flagged > 0) {
    result_.faults.detected_by_oracle += n;
  } else {
    result_.faults.detected_by_net += n;
  }
}

void SptMachine::syncToFreezePoint() {
  // The speculative thread is frozen at arrival; results in the buffer were
  // produced by (at latest) the speculative pipeline's clock, so the main
  // pipeline cannot consume them earlier. The jump inherits the speculative
  // pipeline's cycle breakdown — it represents that pipeline's work.
  const std::uint64_t freeze =
      std::max(main_pipe_->cycle(), spec_pipe_->cycle());
  main_pipe_->advanceToWithProfile(freeze, specProfileSinceFork());
}

std::size_t SptMachine::fastCommit() {
  ThreadStats& ts = loopThreadStats();
  syncToFreezePoint();
  // The bulk commit costs the Table 1 minimum regardless of buffer depth —
  // that is fast commit's whole point versus walking the buffer at replay
  // width.
  main_pipe_->advanceTo(main_pipe_->cycle() + config_.fast_commit_overhead,
                        StallKind::kPipeline);

  // Commit the speculative state: walk the committed record range, applying
  // architectural effects and loop markers at commit time. The walk is
  // class-dispatched like executeMainInstr: the common classes pair the
  // inline ArchState applier with the scoreboard update, and only
  // calls/returns/hallocs re-dispatch through the generic apply().
  for (std::size_t i = spec_.start_pos; i < spec_.pos; ++i) {
    const trace::Record& r = trace_[i];
    if (r.kind != trace::RecordKind::kInstr) {
      loop_tracker_.onMarker(r, main_pipe_->cycle());
      continue;
    }
    const DecodedInstr& d = decode_[r.sid];
    switch (static_cast<DispatchClass>(d.klass)) {
      case DispatchClass::kValue:
        arch_.applyValue(r, d.dst_reg);
        main_pipe_->setRegReady(
            (static_cast<std::uint64_t>(r.frame) << 32) + 1 + d.dst_reg,
            main_pipe_->cycle(), false);
        continue;
      case DispatchClass::kLoad:
        arch_.applyLoad(r, d.dst_reg);
        main_pipe_->setRegReady(
            (static_cast<std::uint64_t>(r.frame) << 32) + 1 + d.dst_reg,
            main_pipe_->cycle(), false);
        continue;
      case DispatchClass::kStore:
        arch_.applyStore(r);
        // Outstanding speculative stores write back at commit.
        memory_->accessData(r.mem_addr, main_pipe_->cycle());
        continue;
      case DispatchClass::kCondBr:
      case DispatchClass::kJump:
      case DispatchClass::kFork:
      case DispatchClass::kKill:
        arch_.applyNoEffect(r);
        continue;
      default:
        break;
    }
    const ir::Instr& instr = *d.instr;
    const ApplyInfo info = arch_.apply(r, instr);
    if (instr.dst.valid() && ir::producesValue(instr.op)) {
      main_pipe_->setRegReady(Pipeline::regKey(r.frame, instr.dst),
                              main_pipe_->cycle(), false);
    }
    if (instr.op == ir::Opcode::kRet && info.caller_dst.valid()) {
      main_pipe_->setRegReady(
          Pipeline::regKey(info.caller_frame, info.caller_dst),
          main_pipe_->cycle(), false);
    }
  }

  result_.threads.committed_instrs += spec_.srb.size();
  ts.committed_instrs += spec_.srb.size();
  ++result_.threads.fast_commits;
  ++ts.fast_commits;

  // Honest escape detector (fault mode): the arrival validation walk must
  // have routed every divergent entry into replay, so nothing that reaches
  // fast commit may mismatch the trace.
  std::size_t escapes = 0;
  if (fault_mode_) {
    for (const SrbEntry& e : spec_.srb) {
      if (entryDiverges(e, trace_[e.record_index])) ++escapes;
    }
  }

  pos_ = spec_.pos;
  spec_.active = false;
  if (oracle_) oracle_->checkAt(pos_, arch_, "fast-commit");
  return escapes;
}

void SptMachine::replayCommit() {
  ThreadStats& ts = loopThreadStats();
  ++result_.threads.replays;
  ++ts.replays;
  syncToFreezePoint();

  replay_dirty_regs_.reset();
  replay_dirty_addrs_.clear();
  const bool value_based =
      config_.register_check == support::RegisterCheckMode::kValueBased;

  std::size_t srb_i = 0;
  bool diverged = false;
  std::size_t resume_pos = spec_.pos;

  for (std::size_t rec_i = spec_.start_pos;
       rec_i < spec_.pos && !diverged; ++rec_i) {
    const trace::Record& r = trace_[rec_i];
    if (r.kind != trace::RecordKind::kInstr) {
      loop_tracker_.onMarker(r, main_pipe_->cycle());
      continue;
    }
    SrbEntry& e = spec_.srb[srb_i++];
    SPT_CHECK(e.record_index == rec_i);
    const DecodedInstr& d = decode_[r.sid];
    const ir::Instr& instr = *d.instr;

    bool dirty = e.violated || e.input_violated;
    if (!dirty) {
      const auto srcDirty = [&](ir::Reg reg) {
        return reg.valid() &&
               replay_dirty_regs_.find(r.frame, reg.index) != nullptr;
      };
      dirty = srcDirty(instr.a) || srcDirty(instr.b);
      if (!dirty) {
        for (const ir::Reg arg : instr.args) {
          if (srcDirty(arg)) {
            dirty = true;
            break;
          }
        }
      }
      if (!dirty && d.is_load) {
        dirty = replay_dirty_addrs_.contains(e.emu_addr) ||
                replay_dirty_addrs_.contains(r.mem_addr);
      }
    }

    const ApplyInfo info = arch_.apply(r, instr);

    if (dirty) {
      // Selective re-execution on the main pipeline (normal width).
      const std::uint64_t done = main_pipe_->execute(makeExecInstr(d, r));
      ++dispatch_fallbacks_;
      ++result_.threads.misspec_instrs;
      ++ts.misspec_instrs;

      const bool value_changed =
          e.emu_value != r.value ||
          (d.is_store && e.emu_addr != r.mem_addr) ||
          e.branch_mismatch;
      if (!value_based || value_changed) {
        if (instr.dst.valid() && ir::producesValue(instr.op)) {
          replay_dirty_regs_.at(r.frame, instr.dst.index) = 1;
        }
        if (d.is_store) {
          replay_dirty_addrs_[e.emu_addr] = 1;
          replay_dirty_addrs_[r.mem_addr] = 1;
        }
        if (d.op == ir::Opcode::kCall) {
          for (std::uint32_t p = 0; p < info.callee_params; ++p) {
            replay_dirty_regs_.at(info.callee_frame, p) = 1;
          }
        }
        if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
          replay_dirty_regs_.at(info.caller_frame, info.caller_dst.index) = 1;
        }
      }
      if (d.op == ir::Opcode::kCall) {
        for (std::uint32_t p = 0; p < info.callee_params; ++p) {
          main_pipe_->setRegReady(
              Pipeline::regKey(info.callee_frame, ir::Reg{p}), done, false);
        }
      } else if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
        main_pipe_->setRegReady(
            Pipeline::regKey(info.caller_frame, info.caller_dst), done,
            false);
      }
      if (e.branch_mismatch) {
        // The re-executed branch goes the other way: everything after it in
        // the buffer is wrong-path and is discarded (paper Section 3.1).
        diverged = true;
        resume_pos = rec_i + 1;
      }
    } else {
      main_pipe_->commitFromBuffer();
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        main_pipe_->setRegReady(Pipeline::regKey(r.frame, instr.dst),
                                main_pipe_->cycle(), false);
      }
      if (d.is_store) {
        memory_->accessData(r.mem_addr, main_pipe_->cycle());
      }
      ++result_.threads.committed_instrs;
      ++ts.committed_instrs;
    }
  }

  pos_ = diverged ? resume_pos : spec_.pos;
  spec_.active = false;
  if (oracle_) oracle_->checkAt(pos_, arch_, "replay");
}

void SptMachine::fullSquash() {
  ThreadStats& ts = loopThreadStats();
  ++result_.threads.squashes;
  ++ts.squashes;
  result_.threads.misspec_instrs += spec_.srb.size();
  ts.misspec_instrs += spec_.srb.size();
  main_pipe_->advanceTo(main_pipe_->cycle() + config_.fast_commit_overhead,
                        StallKind::kPipeline);
  pos_ = spec_.start_pos;  // re-execute the whole speculative span normally
  spec_.active = false;
  if (oracle_) oracle_->checkAt(pos_, arch_, "squash");
}

void SptMachine::killSpec() {
  ThreadStats& ts = loopThreadStats();
  ++result_.threads.killed;
  ++ts.killed;
  result_.threads.spec_instrs += spec_.srb.size();
  ts.spec_instrs += spec_.srb.size();
  result_.threads.misspec_instrs += spec_.srb.size();
  ts.misspec_instrs += spec_.srb.size();
  spec_.active = false;
  settleFaults(false, 0, /*discarded=*/true);
}

}  // namespace spt::sim

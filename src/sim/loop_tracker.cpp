#include "sim/loop_tracker.h"

#include "support/check.h"

namespace spt::sim {

void LoopCycleTracker::closeEpisode(const Open& top, std::uint64_t cycle) {
  if (top.sid >= by_sid_.size()) by_sid_.resize(top.sid + 1);
  LoopCycleStats& s = by_sid_[top.sid];
  if (s.episodes == 0) touched_.push_back(top.sid);
  s.cycles += cycle - top.begin_cycle;
  ++s.episodes;
  s.iterations += top.iterations;
}

void LoopCycleTracker::onMarker(const trace::Record& record,
                                std::uint64_t cycle) {
  switch (record.kind) {
    case trace::RecordKind::kIterBegin:
      if (record.value == 0) {
        open_.push_back({record.sid, cycle, 1});
      } else {
        SPT_CHECK_MSG(!open_.empty() && open_.back().sid == record.sid,
                      "iteration marker for a loop that is not innermost");
        ++open_.back().iterations;
      }
      return;
    case trace::RecordKind::kLoopExit: {
      SPT_CHECK_MSG(!open_.empty() && open_.back().sid == record.sid,
                    "unbalanced loop exit marker");
      const Open top = open_.back();
      open_.pop_back();
      closeEpisode(top, cycle);
      return;
    }
    case trace::RecordKind::kInstr:
      SPT_UNREACHABLE("onMarker fed an instruction record");
  }
}

void LoopCycleTracker::finish(std::uint64_t cycle) {
  while (!open_.empty()) {
    const Open top = open_.back();
    open_.pop_back();
    closeEpisode(top, cycle);
  }
}

const std::map<std::string, LoopCycleStats>& LoopCycleTracker::stats() const {
  stats_.clear();
  for (const ir::StaticId sid : touched_) {
    // Distinct sids with the same name merge by accumulation, exactly as
    // the previous name-keyed incremental map did.
    LoopCycleStats& dst = stats_[trace::loopNameOf(module_, sid)];
    const LoopCycleStats& src = by_sid_[sid];
    dst.cycles += src.cycles;
    dst.episodes += src.episodes;
    dst.iterations += src.iterations;
  }
  return stats_;
}

}  // namespace spt::sim

#include "sim/loop_tracker.h"

#include "support/check.h"

namespace spt::sim {

void LoopCycleTracker::onMarker(const trace::Record& record,
                                std::uint64_t cycle) {
  switch (record.kind) {
    case trace::RecordKind::kIterBegin:
      if (record.value == 0) {
        open_.push_back({record.sid, cycle, 1});
      } else {
        SPT_CHECK_MSG(!open_.empty() && open_.back().sid == record.sid,
                      "iteration marker for a loop that is not innermost");
        ++open_.back().iterations;
      }
      return;
    case trace::RecordKind::kLoopExit: {
      SPT_CHECK_MSG(!open_.empty() && open_.back().sid == record.sid,
                    "unbalanced loop exit marker");
      const Open top = open_.back();
      open_.pop_back();
      LoopCycleStats& s = stats_[trace::loopNameOf(module_, top.sid)];
      s.cycles += cycle - top.begin_cycle;
      ++s.episodes;
      s.iterations += top.iterations;
      return;
    }
    case trace::RecordKind::kInstr:
      SPT_UNREACHABLE("onMarker fed an instruction record");
  }
}

void LoopCycleTracker::finish(std::uint64_t cycle) {
  while (!open_.empty()) {
    const Open top = open_.back();
    open_.pop_back();
    LoopCycleStats& s = stats_[trace::loopNameOf(module_, top.sid)];
    s.cycles += cycle - top.begin_cycle;
    ++s.episodes;
    s.iterations += top.iterations;
  }
}

}  // namespace spt::sim

// Flat open-addressing containers for the simulator hot path.
//
// Every per-record structure the machines consult — pipeline register
// scoreboards, the reconstructed memory image, the speculative thread's
// register overlay, SSB/LAB — used to be a node-based std::unordered_map.
// At multi-million-record traces the malloc/rehash/pointer-chase traffic of
// those maps dominated host time (see docs/PERF.md), so the hot path uses
// three purpose-built containers instead:
//
//  * FlatMap64<V>   — linear-probing hash map with u64 keys, grow-only,
//                     plus a predicate purge that rebuilds in place
//                     (pipeline scoreboards drop entries that are already
//                     available; the memory image just grows).
//  * EpochMap64<V>  — FlatMap64 whose clear() is O(1): slots carry a
//                     generation stamp and clearing bumps the generation.
//                     Backs the SSB/LAB and per-replay dirty-address sets,
//                     which are rebuilt from scratch at every fork/replay.
//  * FrameRegMap<V> — (frame, register) -> V as dense per-frame arrays,
//                     also generation-stamped so a fork/kill reset is O(1).
//                     Backs the speculative register overlay and the
//                     replay dirty-register set. A one-entry frame cache
//                     makes the common consecutive-same-frame access an
//                     array index.
//
// None of these change any simulated number: they are drop-in value-map
// replacements (no iteration-order-dependent results anywhere — asserted
// by the golden digest tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spt::sim {

/// Multiplicative (Fibonacci) hashing; `shift` = 64 - log2(capacity).
inline std::size_t flatHashSlot(std::uint64_t key, unsigned shift) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift);
}

inline std::size_t flatPow2AtLeast(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Linear-probing hash map with std::uint64_t keys. Grow-only (no erase);
/// `purge` rebuilds the table keeping only entries that satisfy a
/// predicate. Key 0 is valid (dedicated slot).
template <typename V>
class FlatMap64 {
 public:
  explicit FlatMap64(std::size_t min_capacity = 16) {
    rebuild(flatPow2AtLeast(min_capacity));
  }

  std::size_t size() const { return size_; }

  V* find(std::uint64_t key) {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    std::size_t i = flatHashSlot(key, shift_);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Returns a reference to the value for `key`, default-constructing it
  /// on first insertion (std::unordered_map::operator[] semantics).
  V& operator[](std::uint64_t key) {
    if (key == 0) {
      if (!has_zero_) {
        has_zero_ = true;
        zero_value_ = V{};
        ++size_;
      }
      return zero_value_;
    }
    std::size_t i = flatHashSlot(key, shift_);
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    if (needsGrow()) {
      grow();
      return (*this)[key];
    }
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Visits every live (key, value) pair. Iteration order is the table's
  /// slot order — callers that need order-independent results (the oracle's
  /// state diff) must combine commutatively or look keys up on the other
  /// side.
  template <typename Fn>
  void forEach(Fn fn) const {
    if (has_zero_) fn(std::uint64_t{0}, zero_value_);
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

  /// Drops every entry whose value fails `keep`, rebuilding the table.
  /// Lossless only if absent and dropped entries are indistinguishable to
  /// the caller (true for scoreboard entries that are already available).
  template <typename Keep>
  void purge(Keep keep) {
    std::vector<Slot> old = std::move(slots_);
    const bool old_has_zero = has_zero_;
    const V old_zero = zero_value_;
    rebuild(slots_capacity_);  // same capacity; live set is about to shrink
    for (const Slot& s : old) {
      if (s.key != 0 && keep(s.value)) (*this)[s.key] = s.value;
    }
    if (old_has_zero && keep(old_zero)) (*this)[0] = old_zero;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  bool needsGrow() const { return (size_ + 1) * 4 > slots_capacity_ * 3; }

  void rebuild(std::size_t capacity) {
    slots_capacity_ = capacity;
    mask_ = capacity - 1;
    shift_ = 64;
    for (std::size_t c = capacity; c > 1; c >>= 1) --shift_;
    slots_.assign(capacity, Slot{});
    size_ = 0;
    has_zero_ = false;
    zero_value_ = V{};
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const bool old_has_zero = has_zero_;
    const V old_zero = zero_value_;
    rebuild(slots_capacity_ * 2);
    for (const Slot& s : old) {
      if (s.key != 0) (*this)[s.key] = s.value;
    }
    if (old_has_zero) (*this)[0] = old_zero;
  }

  std::vector<Slot> slots_;
  std::size_t slots_capacity_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
  bool has_zero_ = false;
  V zero_value_{};
};

/// FlatMap64 variant whose clear() is O(1): every slot carries the
/// generation it was written in, and clearing bumps the generation. Used
/// for structures that are torn down and rebuilt at every fork / replay.
template <typename V>
class EpochMap64 {
 public:
  explicit EpochMap64(std::size_t min_capacity = 16) {
    rebuild(flatPow2AtLeast(min_capacity));
  }

  /// Ensures capacity for `entries` live keys without rehashing mid-use.
  void reserveFor(std::size_t entries) {
    const std::size_t wanted = flatPow2AtLeast(entries * 2);
    if (wanted > slots_capacity_) rebuild(wanted);
  }

  void clear() {
    ++epoch_;
    size_ = 0;
  }

  std::size_t size() const { return size_; }

  V* find(std::uint64_t key) {
    if (key == 0) {
      return zero_epoch_ == epoch_ ? &zero_value_ : nullptr;
    }
    std::size_t i = flatHashSlot(key, shift_);
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<EpochMap64*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  V& operator[](std::uint64_t key) {
    if (key == 0) {
      if (zero_epoch_ != epoch_) {
        zero_epoch_ = epoch_;
        zero_value_ = V{};
        ++size_;
      }
      return zero_value_;
    }
    std::size_t i = flatHashSlot(key, shift_);
    while (slots_[i].epoch == epoch_) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    if (needsGrow()) {
      grow();
      return (*this)[key];
    }
    slots_[i].key = key;
    slots_[i].epoch = epoch_;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;  // slot live iff epoch == map epoch
    V value{};
  };

  bool needsGrow() const { return (size_ + 1) * 4 > slots_capacity_ * 3; }

  void rebuild(std::size_t capacity) {
    slots_capacity_ = capacity;
    mask_ = capacity - 1;
    shift_ = 64;
    for (std::size_t c = capacity; c > 1; c >>= 1) --shift_;
    slots_.assign(capacity, Slot{});
    epoch_ = 1;
    size_ = 0;
    zero_epoch_ = 0;
    zero_value_ = V{};
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::uint64_t old_epoch = epoch_;
    const bool old_has_zero = zero_epoch_ == epoch_;
    const V old_zero = zero_value_;
    rebuild(slots_capacity_ * 2);
    for (const Slot& s : old) {
      if (s.epoch == old_epoch) (*this)[s.key] = s.value;
    }
    if (old_has_zero) (*this)[0] = old_zero;
  }

  std::vector<Slot> slots_;
  std::size_t slots_capacity_ = 0;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
  std::uint64_t zero_epoch_ = 0;
  V zero_value_{};
};

/// (frame, register) -> V as dense per-frame arrays with generation
/// stamps: reset() is O(1) and invalidates every entry; per-frame slabs
/// (and their grown register vectors) are recycled across generations.
/// Frames are mapped to slabs through a small epoch map with a one-entry
/// inline cache, so a run of accesses to the same frame costs one compare
/// plus an array index each.
template <typename V>
class FrameRegMap {
 public:
  void reset() {
    ++epoch_;
    used_slabs_ = 0;
    frame_to_slab_.clear();
    cached_frame_ = kNoFrame;
  }

  /// Pointer to the live entry or nullptr. Never allocates.
  const V* find(std::uint32_t frame, std::uint32_t reg) const {
    const Slab* slab = slabFor(frame);
    if (slab == nullptr || reg >= slab->stamp.size() ||
        slab->stamp[reg] != epoch_) {
      return nullptr;
    }
    return &slab->val[reg];
  }

  /// Reference to the entry, default-constructing it (and claiming the
  /// frame's slab) on first touch this generation.
  V& at(std::uint32_t frame, std::uint32_t reg) {
    Slab& slab = claimSlab(frame);
    if (reg >= slab.stamp.size()) {
      slab.stamp.resize(reg + 1, 0);
      slab.val.resize(reg + 1);
    }
    if (slab.stamp[reg] != epoch_) {
      slab.stamp[reg] = epoch_;
      slab.val[reg] = V{};
    }
    return slab.val[reg];
  }

 private:
  static constexpr std::uint64_t kNoFrame = ~0ull;

  struct Slab {
    std::vector<std::uint64_t> stamp;  // entry live iff stamp == epoch_
    std::vector<V> val;
  };

  const Slab* slabFor(std::uint32_t frame) const {
    if (cached_frame_ == frame) return &slabs_[cached_slab_];
    const std::uint32_t* idx = frame_to_slab_.find(keyOf(frame));
    if (idx == nullptr) return nullptr;
    cached_frame_ = frame;
    cached_slab_ = *idx - 1;  // map stores slab index + 1 (0 = unassigned)
    return &slabs_[cached_slab_];
  }

  Slab& claimSlab(std::uint32_t frame) {
    if (cached_frame_ == frame) return slabs_[cached_slab_];
    std::uint32_t& idx = frame_to_slab_[keyOf(frame)];
    if (idx == 0) {  // 0 is the "unassigned" sentinel; slab ids start at 1
      if (used_slabs_ == slabs_.size()) slabs_.emplace_back();
      idx = static_cast<std::uint32_t>(++used_slabs_);
    }
    cached_frame_ = frame;
    cached_slab_ = idx - 1;
    return slabs_[idx - 1];
  }

  /// Frame ids are map keys; shift by one so frame 0 avoids the map's
  /// reserved-key-0 fast path staying V{} (any key works, this is just
  /// uniform).
  static std::uint64_t keyOf(std::uint32_t frame) {
    return static_cast<std::uint64_t>(frame) + 1;
  }

  EpochMap64<std::uint32_t> frame_to_slab_;
  std::vector<Slab> slabs_;
  std::size_t used_slabs_ = 0;
  std::uint64_t epoch_ = 1;
  mutable std::uint64_t cached_frame_ = kNoFrame;
  mutable std::uint32_t cached_slab_ = 0;
};

}  // namespace spt::sim

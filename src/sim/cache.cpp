#include "sim/cache.h"

#include <bit>

#include "support/check.h"
#include "support/rng.h"

namespace spt::sim {

Cache::Cache(const support::CacheConfig& config) : config_(config) {
  SPT_CHECK(config.block_bytes > 0 && config.associativity > 0);
  SPT_CHECK(std::has_single_bit(config.block_bytes));
  num_sets_ = config.size_bytes / (config.block_bytes * config.associativity);
  SPT_CHECK_MSG(num_sets_ > 0 && std::has_single_bit(num_sets_),
                "cache geometry must give a power-of-two set count");
  block_shift_ = std::countr_zero(config.block_bytes);
  set_shift_ = std::countr_zero(num_sets_);
  lines_.resize(static_cast<std::size_t>(num_sets_) * config.associativity);
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t block = addr >> block_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(block & (num_sets_ - 1));
  const std::uint64_t tag = block >> std::countr_zero(num_sets_);
  const Line* base =
      &lines_[static_cast<std::size_t>(set) * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::corruptLineMeta(support::Rng& rng) {
  // The corrupted line may be the memo'd one, whose resident-block
  // guarantee the corruption breaks — drop the memo.
  memo_line_ = nullptr;
  Line& line = lines_[rng.nextBelow(lines_.size())];
  switch (rng.nextBelow(3)) {
    case 0:
      line.tag ^= std::uint64_t{1} << rng.nextBelow(64);
      break;
    case 1:
      line.last_used ^= std::uint64_t{1} << rng.nextBelow(64);
      break;
    default:
      line.valid = !line.valid;
      break;
  }
}

void MemorySystem::corruptMeta(support::Rng& rng) {
  switch (rng.nextBelow(4)) {
    case 0:
      l1i_.corruptLineMeta(rng);
      break;
    case 1:
      l1d_.corruptLineMeta(rng);
      break;
    case 2:
      l2_.corruptLineMeta(rng);
      break;
    default:
      l3_.corruptLineMeta(rng);
      break;
  }
}

MemorySystem::MemorySystem(const support::MachineConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      l3_(config.l3) {}

}  // namespace spt::sim

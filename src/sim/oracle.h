// Architectural oracle for the SPT machine (co-simulation cross-check).
//
// The SPT machine's correctness contract is that, whatever the speculative
// pipeline did, the *committed* architectural state after every recovery
// boundary is exactly the sequential execution's state. The oracle enforces
// that contract at runtime: it owns an independent ArchState that replays
// the trace strictly sequentially, and at every fast-commit, selective-
// replay, and full-squash boundary (plus end of run) it advances that
// reference to the machine's commit position and compares.
//
//  * kDigest (cheap): both sides fold each applied record into an
//    incremental FNV digest (O(1) per record); the boundary check is one
//    integer compare. This catches any skipped, duplicated, or reordered
//    architectural commit.
//  * kDeep: additionally diffs the materialized state — every frame
//    register, the memory image, the allocator count — and names the first
//    divergent register or address. O(state) per boundary; for debugging.
//
// On divergence the oracle throws support::SptInternalError with the diff,
// so a quarantined sweep cell reports it instead of silently producing
// wrong numbers.
#pragma once

#include <cstddef>
#include <memory>

#include "ir/module.h"
#include "sim/arch_state.h"
#include "sim/decode.h"
#include "support/machine_config.h"
#include "trace/trace.h"

namespace spt::sim {

class Oracle {
 public:
  /// The trace's backing store must outlive the oracle.
  Oracle(const ir::Module& module, trace::TraceView trace,
         const DecodeTable& decode, support::OracleMode mode);

  /// Cross-checks `machine_arch` (whose digest must be enabled) against the
  /// sequential reference advanced to trace position `pos`. Throws
  /// support::SptInternalError on divergence.
  void checkAt(std::size_t pos, const ArchState& machine_arch,
               const char* boundary);

  std::size_t checksRun() const { return checks_run_; }
  std::uint64_t referenceDigest() const { return ref_.streamDigest(); }

  /// The sequential architectural digest of a whole trace — what any
  /// correct machine's oracle digest must equal at end of run (used by the
  /// fault campaign as the baseline architectural result).
  static std::uint64_t sequentialDigest(const ir::Module& module,
                                        trace::TraceView trace);

 private:
  void advanceTo(std::size_t pos);

  trace::TraceView trace_;
  const DecodeTable& decode_;
  support::OracleMode mode_;
  ArchState ref_;
  std::size_t ref_pos_ = 0;
  std::size_t checks_run_ = 0;
};

}  // namespace spt::sim

// Per-loop cycle attribution from trace markers.
//
// Tracks, on the main thread's time line, how many cycles each static loop
// (all episodes summed) was open. Nested loops accumulate independently, so
// an outer loop's cycles include its inner loops — consistently in both the
// baseline and the SPT run, which is what the Figure 8 loop-level speedups
// compare.
//
// Episodes are accumulated by header StaticId (a vector index); the
// human-readable loop names the rest of the system keys on are only
// materialized in stats(), so the per-episode marker path does no string
// construction or map lookups.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/module.h"
#include "sim/result.h"
#include "trace/trace.h"

namespace spt::sim {

class LoopCycleTracker {
 public:
  explicit LoopCycleTracker(const ir::Module& module) : module_(module) {}

  /// Feed every marker the main thread passes (normal execution or commit
  /// walk) in trace order, with the main pipeline's cycle at that moment.
  void onMarker(const trace::Record& record, std::uint64_t cycle);

  /// Closes still-open episodes (trace ended inside a loop).
  void finish(std::uint64_t cycle);

  /// Name-keyed view of the accumulated stats (rebuilt on each call).
  const std::map<std::string, LoopCycleStats>& stats() const;

 private:
  struct Open {
    ir::StaticId sid;
    std::uint64_t begin_cycle;
    std::uint64_t iterations;
  };

  void closeEpisode(const Open& top, std::uint64_t cycle);

  const ir::Module& module_;
  std::vector<Open> open_;
  std::vector<LoopCycleStats> by_sid_;
  std::vector<ir::StaticId> touched_;  // sids with at least one episode
  mutable std::map<std::string, LoopCycleStats> stats_;
};

}  // namespace spt::sim

// In-order pipeline timing model (Itanium2-like, paper Table 1).
//
// The model is event-driven rather than cycle-stepped: each dynamic
// instruction issues in order, constrained by issue width, operand
// readiness (register scoreboard), I-cache fetch latency and branch
// mispredictions. Every cycle the pipeline clock advances is attributed to
// one of three categories — execution, pipeline stall, or D-cache stall —
// which is exactly the breakdown paper Figure 9 reports.
//
// The register scoreboard is a flat open-addressing table keyed by
// frame-qualified register ids. Keys accumulate with trace length, but an
// entry whose value is already available behaves exactly like an absent
// one, so the table is purged in place at a size threshold — lossless by
// construction, and it keeps the scoreboard cache-resident. (A dense
// per-frame-array variant was measured and lost to this layout: the
// operand-readiness probe almost always hits the first slot, while the
// per-frame arrays cost an extra indirection per source.)
#pragma once

#include <cstdint>
#include <string>

#include "ir/instr.h"
#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "sim/flat_map.h"
#include "trace/record.h"

namespace spt::sim {

enum class StallKind : std::uint8_t {
  kExecution,
  kPipeline,
  kDCache,
};

struct CycleBreakdown {
  std::uint64_t execution = 0;
  std::uint64_t pipeline_stall = 0;
  std::uint64_t dcache_stall = 0;

  std::uint64_t total() const {
    return execution + pipeline_stall + dcache_stall;
  }
  void add(StallKind kind, std::uint64_t cycles) {
    switch (kind) {
      case StallKind::kExecution:
        execution += cycles;
        break;
      case StallKind::kPipeline:
        pipeline_stall += cycles;
        break;
      case StallKind::kDCache:
        dcache_stall += cycles;
        break;
    }
  }
};

/// One dynamic instruction prepared for timing simulation.
struct ExecInstr {
  ir::StaticId sid = ir::kInvalidStaticId;
  ir::Opcode op = ir::Opcode::kNop;
  std::uint32_t base_latency = 1;
  /// Frame-qualified source register keys (see Pipeline::regKey); the first
  /// `src_count` entries are set, the rest are 0.
  std::uint64_t srcs[4] = {0, 0, 0, 0};
  std::uint32_t src_count = 0;
  std::uint64_t dst = 0;
  bool is_load = false;
  bool is_store = false;
  std::uint64_t mem_addr = 0;
  bool is_cond_branch = false;
  bool taken = false;
};

class Pipeline {
 public:
  Pipeline(const support::MachineConfig& config, MemorySystem& memory);

  /// Frame-qualified register key; 0 is reserved for "no register".
  static std::uint64_t regKey(trace::FrameId frame, ir::Reg reg) {
    return ((static_cast<std::uint64_t>(frame) << 32) | reg.index) + 1;
  }
  /// Kind selectors for executeKnown: which memory/branch flags the caller
  /// has already resolved at compile time. kExecDynamic reads the flags from
  /// the ExecInstr at runtime (the classic execute() behavior); the others
  /// fold the corresponding branches away entirely — the threaded-dispatch
  /// handlers (docs/PERF.md) call the variant matching their dispatch class.
  enum : int {
    kExecPlain = 0,   // no memory access, not a conditional branch
    kExecLoad = 1,    // is_load
    kExecStore = 2,   // is_store
    kExecBranch = 3,  // is_cond_branch
    kExecDynamic = 4,
  };

  /// Issues one instruction; returns the cycle its result is available.
  /// Inline: this is the per-record core of both machines, and keeping it
  /// (and the cache model it calls) visible to the caller's translation
  /// unit is worth measurable host throughput (docs/PERF.md). One body
  /// serves the dynamic path and all specialized instantiations, so the
  /// timing semantics cannot diverge between them.
  template <int Kind = kExecDynamic>
  std::uint64_t executeKnown(const ExecInstr& instr) {
    constexpr bool kDyn = Kind == kExecDynamic;
    const bool is_load = kDyn ? instr.is_load : Kind == kExecLoad;
    const bool is_store = kDyn ? instr.is_store : Kind == kExecStore;
    const bool is_cond_branch =
        kDyn ? instr.is_cond_branch : Kind == kExecBranch;

    // Instruction fetch. Instructions occupy 16 synthetic bytes each; an
    // L1I miss stalls the front end for the extra fill latency.
    const std::uint64_t iaddr = static_cast<std::uint64_t>(instr.sid) * 16;
    const std::uint32_t ifetch = memory_.accessInstr(iaddr, cycle_);
    if (ifetch > config_.l1i.latency_cycles) {
      bumpCycleTo(cycle_ + (ifetch - config_.l1i.latency_cycles),
                  StallKind::kPipeline);
    }

    // Operand readiness.
    const RegState latest = sourceState(instr);
    if (latest.ready > cycle_) {
      bumpCycleTo(latest.ready,
                  latest.from_load ? StallKind::kDCache : StallKind::kPipeline);
    }

    // Issue.
    const std::uint64_t issue_cycle = cycle_;
    cycle_had_issue_ = true;
    ++instrs_issued_;
    ++slots_;
    if (slots_ >= config_.issue_width) {
      breakdown_.add(StallKind::kExecution, 1);
      ++cycle_;
      slots_ = 0;
      replay_slots_ = 0;
      cycle_had_issue_ = false;
    }

    // Result latency.
    std::uint64_t done = issue_cycle + instr.base_latency;
    if (is_load || is_store) {
      const std::uint32_t dlat =
          memory_.accessData(instr.mem_addr, issue_cycle);
      if (is_load) done = issue_cycle + dlat;
      // Stores retire through the store buffer without stalling the pipe.
    }
    if (instr.dst != 0) {
      scoreboardWrite(instr.dst, RegState{done, is_load});
    }

    // Branch resolution.
    if (is_cond_branch) {
      const bool correct = predictor_.predictAndUpdate(instr.taken);
      if (!correct) {
        bumpCycleTo(issue_cycle + 1 + config_.branch_mispredict_penalty,
                    StallKind::kPipeline);
      }
    }
    return done;
  }

  std::uint64_t execute(const ExecInstr& instr) {
    return executeKnown<kExecDynamic>(instr);
  }

  /// Consumes one replay-commit slot (replay width entries retire per
  /// cycle during SRB replay, paper Section 3.1).
  void commitFromBuffer();

  /// Jumps the clock forward attributing the gap to `kind` (used for
  /// fork/commit overheads and cross-pipeline synchronization).
  void advanceTo(std::uint64_t cycle, StallKind kind);

  /// Jumps the clock forward distributing the gap across categories in the
  /// proportions of `profile` (used at fast commit: the jump corresponds to
  /// work the speculative pipeline performed, so it inherits that
  /// pipeline's breakdown).
  void advanceToWithProfile(std::uint64_t cycle, const CycleBreakdown& profile);

  /// Marks a register value as available at `cycle` without issuing
  /// (register context copies at fork / commit).
  void setRegReady(std::uint64_t key, std::uint64_t cycle, bool from_load);

  std::uint64_t cycle() const { return cycle_; }
  const CycleBreakdown& breakdown() const { return breakdown_; }
  BranchPredictor& predictor() { return predictor_; }
  std::uint64_t instrsIssued() const { return instrs_issued_; }

  /// Accounts the current partially-filled cycle; call before reading final
  /// numbers.
  void finish();

 private:
  struct RegState {
    std::uint64_t ready = 0;
    bool from_load = false;
  };

  void bumpCycleTo(std::uint64_t cycle, StallKind kind) {
    if (cycle <= cycle_) return;
    std::uint64_t gap = cycle - cycle_;
    if (cycle_had_issue_) {
      // The partially-filled current cycle counts as execution, the rest of
      // the gap as the given stall kind.
      breakdown_.add(StallKind::kExecution, 1);
      cycle_had_issue_ = false;
      --gap;
    }
    breakdown_.add(kind, gap);
    cycle_ = cycle;
    slots_ = 0;
    replay_slots_ = 0;
  }

  RegState sourceState(const ExecInstr& instr) const {
    RegState latest;
    for (std::uint32_t i = 0; i < instr.src_count; ++i) {
      const RegState* state = scoreboard_.find(instr.srcs[i]);
      if (state != nullptr && state->ready > latest.ready) latest = *state;
    }
    return latest;
  }

  void scoreboardWrite(std::uint64_t key, RegState state) {
    if (scoreboard_.size() >= 4096) {
      // Entries whose value is already available behave exactly like absent
      // entries, so dropping them is lossless; the genuinely in-flight set
      // is tiny (see the header's memory-growth note).
      scoreboard_.purge(
          [cycle = cycle_](const RegState& s) { return s.ready > cycle; });
    }
    scoreboard_[key] = state;
  }

  const support::MachineConfig& config_;
  MemorySystem& memory_;
  BranchPredictor predictor_;

  std::uint64_t cycle_ = 0;
  std::uint32_t slots_ = 0;         // issue slots used this cycle
  std::uint32_t replay_slots_ = 0;  // replay-commit slots used this cycle
  bool cycle_had_issue_ = false;
  std::uint64_t instrs_issued_ = 0;
  CycleBreakdown breakdown_;
  FlatMap64<RegState> scoreboard_;
};

}  // namespace spt::sim

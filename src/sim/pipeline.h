// In-order pipeline timing model (Itanium2-like, paper Table 1).
//
// The model is event-driven rather than cycle-stepped: each dynamic
// instruction issues in order, constrained by issue width, operand
// readiness (register scoreboard), I-cache fetch latency and branch
// mispredictions. Every cycle the pipeline clock advances is attributed to
// one of three categories — execution, pipeline stall, or D-cache stall —
// which is exactly the breakdown paper Figure 9 reports.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "ir/instr.h"
#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "trace/record.h"

namespace spt::sim {

enum class StallKind : std::uint8_t {
  kExecution,
  kPipeline,
  kDCache,
};

struct CycleBreakdown {
  std::uint64_t execution = 0;
  std::uint64_t pipeline_stall = 0;
  std::uint64_t dcache_stall = 0;

  std::uint64_t total() const {
    return execution + pipeline_stall + dcache_stall;
  }
  void add(StallKind kind, std::uint64_t cycles);
};

/// One dynamic instruction prepared for timing simulation.
struct ExecInstr {
  ir::StaticId sid = ir::kInvalidStaticId;
  ir::Opcode op = ir::Opcode::kNop;
  std::uint32_t base_latency = 1;
  /// Frame-qualified source register keys (see Pipeline::regKey); 0 = none.
  std::uint64_t srcs[4] = {0, 0, 0, 0};
  std::uint64_t dst = 0;
  bool is_load = false;
  bool is_store = false;
  std::uint64_t mem_addr = 0;
  bool is_cond_branch = false;
  bool taken = false;
};

class Pipeline {
 public:
  Pipeline(const support::MachineConfig& config, MemorySystem& memory);

  /// Frame-qualified register key; 0 is reserved for "no register".
  static std::uint64_t regKey(trace::FrameId frame, ir::Reg reg) {
    return ((static_cast<std::uint64_t>(frame) << 32) | reg.index) + 1;
  }

  /// Issues one instruction; returns the cycle its result is available.
  std::uint64_t execute(const ExecInstr& instr);

  /// Consumes one replay-commit slot (replay width entries retire per
  /// cycle during SRB replay, paper Section 3.1).
  void commitFromBuffer();

  /// Jumps the clock forward attributing the gap to `kind` (used for
  /// fork/commit overheads and cross-pipeline synchronization).
  void advanceTo(std::uint64_t cycle, StallKind kind);

  /// Jumps the clock forward distributing the gap across categories in the
  /// proportions of `profile` (used at fast commit: the jump corresponds to
  /// work the speculative pipeline performed, so it inherits that
  /// pipeline's breakdown).
  void advanceToWithProfile(std::uint64_t cycle, const CycleBreakdown& profile);

  /// Marks a register value as available at `cycle` without issuing
  /// (register context copies at fork / commit).
  void setRegReady(std::uint64_t key, std::uint64_t cycle, bool from_load);

  std::uint64_t cycle() const { return cycle_; }
  const CycleBreakdown& breakdown() const { return breakdown_; }
  BranchPredictor& predictor() { return predictor_; }
  std::uint64_t instrsIssued() const { return instrs_issued_; }

  /// Accounts the current partially-filled cycle; call before reading final
  /// numbers.
  void finish();

 private:
  struct RegState {
    std::uint64_t ready = 0;
    bool from_load = false;
  };

  void bumpCycleTo(std::uint64_t cycle, StallKind kind);
  RegState sourceState(const ExecInstr& instr) const;
  void maybePurgeScoreboard();

  const support::MachineConfig& config_;
  MemorySystem& memory_;
  BranchPredictor predictor_;

  std::uint64_t cycle_ = 0;
  std::uint32_t slots_ = 0;         // issue slots used this cycle
  std::uint32_t replay_slots_ = 0;  // replay-commit slots used this cycle
  bool cycle_had_issue_ = false;
  std::uint64_t instrs_issued_ = 0;
  CycleBreakdown breakdown_;
  std::unordered_map<std::uint64_t, RegState> scoreboard_;
};

}  // namespace spt::sim

#include "sim/decode.h"

#include "support/check.h"

namespace spt::sim {

DecodeTable::DecodeTable(const ir::Module& module) {
  SPT_CHECK_MSG(module.finalized(),
                "DecodeTable requires a finalized module (StaticIds)");
  entries_.resize(module.staticInstrCount());
  for (std::uint32_t f = 0; f < module.functionCount(); ++f) {
    for (const ir::BasicBlock& block : module.function(f).blocks) {
      for (const ir::Instr& instr : block.instrs) {
        SPT_CHECK(instr.static_id < entries_.size());
        DecodedInstr& d = entries_[instr.static_id];
        d.instr = &instr;
        d.op = instr.op;
        d.base_latency = ir::baseLatency(instr.op);

        const auto addSrc = [&d](ir::Reg r) {
          if (r.valid() && d.src_count < 4) d.src_regs[d.src_count++] = r.index;
        };
        addSrc(instr.a);
        addSrc(instr.b);
        for (const ir::Reg arg : instr.args) addSrc(arg);

        if (instr.dst.valid() && ir::producesValue(instr.op) &&
            instr.op != ir::Opcode::kCall) {
          // A call's destination becomes ready when the callee returns; the
          // machines set it explicitly on kRet (same rule as makeExecInstr).
          d.dst_reg = instr.dst.index;
        }
        d.is_load = instr.op == ir::Opcode::kLoad;
        d.is_store = instr.op == ir::Opcode::kStore;
        d.is_cond_branch = instr.op == ir::Opcode::kCondBr;

        // Dispatch classification. A class other than kGeneric is a promise
        // to the threaded-dispatch handlers (e.g. kValue/kLoad/kHalloc imply
        // a live dst), so anything that breaks a handler's precondition
        // falls back to kGeneric/kJump rather than asserting.
        DispatchClass klass = DispatchClass::kGeneric;
        switch (instr.op) {
          case ir::Opcode::kLoad:
            klass = d.dst_reg != ir::Reg::kInvalidIndex ? DispatchClass::kLoad
                                                        : DispatchClass::kGeneric;
            break;
          case ir::Opcode::kStore:
            klass = DispatchClass::kStore;
            break;
          case ir::Opcode::kCondBr:
            klass = DispatchClass::kCondBr;
            break;
          case ir::Opcode::kBr:
          case ir::Opcode::kNop:
            klass = DispatchClass::kJump;
            break;
          case ir::Opcode::kCall:
            klass = DispatchClass::kCall;
            d.callee_params = module.function(instr.callee).param_count;
            break;
          case ir::Opcode::kRet:
            klass = DispatchClass::kRet;
            break;
          case ir::Opcode::kSptFork:
            klass = DispatchClass::kFork;
            break;
          case ir::Opcode::kSptKill:
            klass = DispatchClass::kKill;
            break;
          case ir::Opcode::kHalloc:
            klass = d.dst_reg != ir::Reg::kInvalidIndex
                        ? DispatchClass::kHalloc
                        : DispatchClass::kJump;
            break;
          default:
            // Pure producers: kValue when the destination is live, kJump
            // when it is dead (timing-wise just an issue slot).
            klass = d.dst_reg != ir::Reg::kInvalidIndex ? DispatchClass::kValue
                                                        : DispatchClass::kJump;
            break;
        }
        d.klass = static_cast<std::uint8_t>(klass);
      }
    }
  }
}

}  // namespace spt::sim

#include "sim/decode.h"

#include "support/check.h"

namespace spt::sim {

DecodeTable::DecodeTable(const ir::Module& module) {
  SPT_CHECK_MSG(module.finalized(),
                "DecodeTable requires a finalized module (StaticIds)");
  entries_.resize(module.staticInstrCount());
  for (std::uint32_t f = 0; f < module.functionCount(); ++f) {
    for (const ir::BasicBlock& block : module.function(f).blocks) {
      for (const ir::Instr& instr : block.instrs) {
        SPT_CHECK(instr.static_id < entries_.size());
        DecodedInstr& d = entries_[instr.static_id];
        d.instr = &instr;
        d.op = instr.op;
        d.base_latency = ir::baseLatency(instr.op);

        const auto addSrc = [&d](ir::Reg r) {
          if (r.valid() && d.src_count < 4) d.src_regs[d.src_count++] = r.index;
        };
        addSrc(instr.a);
        addSrc(instr.b);
        for (const ir::Reg arg : instr.args) addSrc(arg);

        if (instr.dst.valid() && ir::producesValue(instr.op) &&
            instr.op != ir::Opcode::kCall) {
          // A call's destination becomes ready when the callee returns; the
          // machines set it explicitly on kRet (same rule as makeExecInstr).
          d.dst_reg = instr.dst.index;
        }
        d.is_load = instr.op == ir::Opcode::kLoad;
        d.is_store = instr.op == ir::Opcode::kStore;
        d.is_cond_branch = instr.op == ir::Opcode::kCondBr;
      }
    }
  }
}

}  // namespace spt::sim

// Predecoded static instruction table.
//
// Both machines touch every trace record with `module_.instrAt(r.sid)`
// (a location lookup plus three indirections) and `makeExecInstr` (opcode
// classification and source-register collection). All of that is a pure
// function of the StaticId, so DecodeTable computes it exactly once per
// static instruction at machine construction; the per-record work shrinks
// to one vector index plus stamping the frame id into the prepared
// register-key templates.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "sim/pipeline.h"
#include "trace/record.h"

namespace spt::sim {

/// Dispatch class of a static instruction — the index into the machines'
/// threaded-dispatch tables (computed-goto labels / jump tables). Each
/// class's handler hoists every data-dependent branch the generic
/// makeExecInstr + Pipeline::execute path would re-test per record.
enum class DispatchClass : std::uint8_t {
  kValue = 0,  // pure producer with a live destination (ALU, const, mov)
  kLoad,       // kLoad with a live destination
  kStore,      // kStore
  kCondBr,     // kCondBr
  kJump,       // no timed effects beyond issue: kBr, kNop, dead-dst ops
  kCall,       // kCall
  kRet,        // kRet
  kFork,       // kSptFork
  kKill,       // kSptKill
  kHalloc,     // kHalloc with a live destination
  kGeneric,    // anything unusual; handled by the generic slow path
};
inline constexpr std::size_t kDispatchClassCount = 11;

/// The per-StaticId skeleton of an ExecInstr: everything except the
/// frame-qualified register keys, the memory address, and the branch
/// direction, which come from the dynamic record.
struct DecodedInstr {
  /// The full static instruction, for emulation-only fields (imm, callee,
  /// args, targets). Points into the module the table was built from.
  const ir::Instr* instr = nullptr;
  ir::Opcode op = ir::Opcode::kNop;
  std::uint8_t klass = static_cast<std::uint8_t>(DispatchClass::kGeneric);
  std::uint32_t base_latency = 1;
  std::uint32_t src_count = 0;
  std::uint32_t src_regs[4] = {0, 0, 0, 0};
  std::uint32_t dst_reg = ir::Reg::kInvalidIndex;  // invalid = no timed dst
  std::uint32_t callee_params = 0;  // kCall: the callee's parameter count
  bool is_load = false;
  bool is_store = false;
  bool is_cond_branch = false;
};

/// StaticId -> DecodedInstr for every instruction of a finalized module.
class DecodeTable {
 public:
  explicit DecodeTable(const ir::Module& module);

  const DecodedInstr& operator[](ir::StaticId sid) const {
    return entries_[sid];
  }

 private:
  std::vector<DecodedInstr> entries_;
};

/// Instantiates the skeleton for one dynamic record. Produces exactly the
/// ExecInstr that makeExecInstr(module, record, override) builds — asserted
/// by the golden digest tests.
inline ExecInstr makeExecInstr(const DecodedInstr& d, const trace::Record& r,
                               std::uint64_t mem_addr_override = 0) {
  ExecInstr e;
  e.sid = r.sid;
  e.op = d.op;
  e.base_latency = d.base_latency;
  // regKey(frame, reg) == (frame << 32) + reg.index + 1; hoist the frame
  // part out of the per-source additions.
  const std::uint64_t frame_base =
      (static_cast<std::uint64_t>(r.frame) << 32) + 1;
  for (std::uint32_t i = 0; i < d.src_count; ++i) {
    e.srcs[i] = frame_base + d.src_regs[i];
  }
  e.src_count = d.src_count;
  if (d.dst_reg != ir::Reg::kInvalidIndex) e.dst = frame_base + d.dst_reg;
  if (d.is_load) {
    e.is_load = true;
    e.mem_addr = mem_addr_override != 0 ? mem_addr_override : r.mem_addr;
  } else if (d.is_store) {
    e.is_store = true;
    e.mem_addr = mem_addr_override != 0 ? mem_addr_override : r.mem_addr;
  }
  if (d.is_cond_branch) {
    e.is_cond_branch = true;
    e.taken = r.taken;
  }
  return e;
}

/// Class-specialized variant of makeExecInstr for the threaded-dispatch
/// handlers: with the dispatch class known statically every data-dependent
/// branch folds away. Preconditions (enforced by DecodeTable's
/// classification): kValue/kLoad/kHalloc imply a valid dst_reg. Produces
/// bit-identical ExecInstrs to makeExecInstr for records of its class.
template <DispatchClass K>
inline ExecInstr makeExecInstrFor(const DecodedInstr& d,
                                  const trace::Record& r) {
  ExecInstr e;
  e.sid = r.sid;
  e.op = d.op;
  e.base_latency = d.base_latency;
  const std::uint64_t frame_base =
      (static_cast<std::uint64_t>(r.frame) << 32) + 1;
  for (std::uint32_t i = 0; i < d.src_count; ++i) {
    e.srcs[i] = frame_base + d.src_regs[i];
  }
  e.src_count = d.src_count;
  if constexpr (K == DispatchClass::kValue || K == DispatchClass::kLoad ||
                K == DispatchClass::kHalloc) {
    e.dst = frame_base + d.dst_reg;
  }
  if constexpr (K == DispatchClass::kLoad) {
    e.is_load = true;
    e.mem_addr = r.mem_addr;
  }
  if constexpr (K == DispatchClass::kStore) {
    e.is_store = true;
    e.mem_addr = r.mem_addr;
  }
  if constexpr (K == DispatchClass::kCondBr) {
    e.is_cond_branch = true;
    e.taken = r.taken;
  }
  return e;
}

}  // namespace spt::sim

#include "sim/baseline.h"

#include "sim/arch_state.h"
#include "sim/loop_tracker.h"
#include "support/check.h"
#include "support/error.h"

namespace spt::sim {

ExecInstr makeExecInstr(const ir::Module& module, const trace::Record& record,
                        std::uint64_t mem_addr_override) {
  SPT_CHECK(record.kind == trace::RecordKind::kInstr);
  const ir::Instr& instr = module.instrAt(record.sid);
  ExecInstr e;
  e.sid = record.sid;
  e.op = instr.op;
  e.base_latency = ir::baseLatency(instr.op);

  int n = 0;
  const auto addSrc = [&](ir::Reg r) {
    if (r.valid() && n < 4) e.srcs[n++] = Pipeline::regKey(record.frame, r);
  };
  addSrc(instr.a);
  addSrc(instr.b);
  for (const ir::Reg arg : instr.args) addSrc(arg);
  e.src_count = static_cast<std::uint32_t>(n);

  if (instr.dst.valid() && ir::producesValue(instr.op) &&
      instr.op != ir::Opcode::kCall) {
    // A call's destination becomes ready when the callee returns; the
    // machines set it explicitly on kRet.
    e.dst = Pipeline::regKey(record.frame, instr.dst);
  }
  if (instr.op == ir::Opcode::kLoad) {
    e.is_load = true;
    e.mem_addr = mem_addr_override != 0 ? mem_addr_override : record.mem_addr;
  } else if (instr.op == ir::Opcode::kStore) {
    e.is_store = true;
    e.mem_addr = mem_addr_override != 0 ? mem_addr_override : record.mem_addr;
  }
  if (instr.op == ir::Opcode::kCondBr) {
    e.is_cond_branch = true;
    e.taken = record.taken;
  }
  return e;
}

BaselineMachine::BaselineMachine(const ir::Module& module,
                                 const trace::TraceBuffer& trace,
                                 const support::MachineConfig& config)
    : module_(module), trace_(trace), config_(config), decode_(module) {}

MachineResult BaselineMachine::run() {
  MemorySystem memory(config_);
  Pipeline pipe(config_, memory);
  ArchState arch(module_);
  LoopCycleTracker loops(module_);

  const bool budgeted = config_.max_simulated_records != 0 ||
                        config_.max_simulated_cycles != 0;
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    if (budgeted && (i & 1023u) == 0) {
      if (config_.max_simulated_records != 0 &&
          i > config_.max_simulated_records) {
        throw support::SptBudgetExceeded("simulated trace records", i,
                                         config_.max_simulated_records);
      }
      if (config_.max_simulated_cycles != 0 &&
          pipe.cycle() > config_.max_simulated_cycles) {
        throw support::SptBudgetExceeded("simulated cycles", pipe.cycle(),
                                         config_.max_simulated_cycles);
      }
    }
    const trace::Record& r = trace_[i];
    if (r.kind != trace::RecordKind::kInstr) {
      loops.onMarker(r, pipe.cycle());
      continue;
    }
    const DecodedInstr& d = decode_[r.sid];
    const ExecInstr e = makeExecInstr(d, r);
    const std::uint64_t done = pipe.execute(e);
    const ApplyInfo info = arch.apply(r, *d.instr);
    if (d.op == ir::Opcode::kCall) {
      // Parameters materialize in the callee when the call issues.
      for (std::uint32_t p = 0; p < info.callee_params; ++p) {
        pipe.setRegReady(Pipeline::regKey(info.callee_frame, ir::Reg{p}),
                         done, false);
      }
    } else if (d.op == ir::Opcode::kRet && info.caller_dst.valid()) {
      pipe.setRegReady(Pipeline::regKey(info.caller_frame, info.caller_dst),
                       done, false);
    }
  }

  pipe.finish();
  loops.finish(pipe.cycle());

  MachineResult result;
  result.cycles = pipe.cycle();
  result.instrs = pipe.instrsIssued();
  result.breakdown = pipe.breakdown();
  result.loops = loops.stats();
  result.l1d = memory.l1d().stats();
  result.l2 = memory.l2().stats();
  result.l3 = memory.l3().stats();
  result.branch_mispredict_ratio = pipe.predictor().mispredictRatio();
  return result;
}

}  // namespace spt::sim

#include "sim/baseline.h"

#include <vector>

#include "sim/loop_tracker.h"
#include "support/check.h"
#include "support/error.h"

namespace spt::sim {

ExecInstr makeExecInstr(const ir::Module& module, const trace::Record& record,
                        std::uint64_t mem_addr_override) {
  SPT_CHECK(record.kind == trace::RecordKind::kInstr);
  const ir::Instr& instr = module.instrAt(record.sid);
  ExecInstr e;
  e.sid = record.sid;
  e.op = instr.op;
  e.base_latency = ir::baseLatency(instr.op);

  int n = 0;
  const auto addSrc = [&](ir::Reg r) {
    if (r.valid() && n < 4) e.srcs[n++] = Pipeline::regKey(record.frame, r);
  };
  addSrc(instr.a);
  addSrc(instr.b);
  for (const ir::Reg arg : instr.args) addSrc(arg);
  e.src_count = static_cast<std::uint32_t>(n);

  if (instr.dst.valid() && ir::producesValue(instr.op) &&
      instr.op != ir::Opcode::kCall) {
    // A call's destination becomes ready when the callee returns; the
    // machines set it explicitly on kRet.
    e.dst = Pipeline::regKey(record.frame, instr.dst);
  }
  if (instr.op == ir::Opcode::kLoad) {
    e.is_load = true;
    e.mem_addr = mem_addr_override != 0 ? mem_addr_override : record.mem_addr;
  } else if (instr.op == ir::Opcode::kStore) {
    e.is_store = true;
    e.mem_addr = mem_addr_override != 0 ? mem_addr_override : record.mem_addr;
  }
  if (instr.op == ir::Opcode::kCondBr) {
    e.is_cond_branch = true;
    e.taken = record.taken;
  }
  return e;
}

BaselineMachine::BaselineMachine(const ir::Module& module,
                                 trace::TraceView trace,
                                 const support::MachineConfig& config)
    : module_(module), trace_(trace), config_(config), decode_(module) {}

MachineResult BaselineMachine::run() {
  MemorySystem memory(config_);
  Pipeline pipe(config_, memory);
  LoopCycleTracker loops(module_);

  // The baseline machine consumed ArchState purely for its call/return
  // plumbing — the callee frame and parameter count on kCall, the caller
  // frame and return destination on kRet — plus the per-record frame
  // check; value and memory reconstruction never influenced baseline
  // timing. This call-stack tracker keeps exactly that (same check, same
  // failure behavior) at a push/pop instead of full frame reconstruction.
  struct FrameEntry {
    trace::FrameId id = 0;
    ir::Reg ret_dst;
  };
  std::vector<FrameEntry> stack;
  stack.reserve(64);
  // Sentinels outside FrameId's 32-bit range: kUnstarted routes the first
  // record to entry-frame creation; kDead makes any record after the entry
  // frame returned fail the frame check, as ArchState's empty-stack check
  // did.
  constexpr std::uint64_t kUnstarted = ~0ull;
  constexpr std::uint64_t kDead = ~0ull - 1;
  std::uint64_t cur_frame = kUnstarted;

  const auto checkFrame = [&](const trace::Record& rec) {
    if (cur_frame == rec.frame) [[likely]] return;
    if (cur_frame == kUnstarted) {
      stack.push_back({rec.frame, ir::Reg{}});
      cur_frame = rec.frame;
      return;
    }
    SPT_CHECK_MSG(
        false, "trace record frame does not match the reconstructed stack");
  };

  const bool budgeted = config_.max_simulated_records != 0 ||
                        config_.max_simulated_cycles != 0;
  const std::size_t n = trace_.size();
  std::size_t i = 0;
  const trace::Record* r = nullptr;
  const DecodedInstr* d = nullptr;
  std::uint64_t fallbacks = 0;

  // Advances to the next kInstr record (handling budget checks and loop
  // markers in passing) and predecodes it. Returns false at end of trace.
  const auto fetch = [&]() -> bool {
    while (i < n) {
      if (budgeted && (i & 1023u) == 0) {
        if (config_.max_simulated_records != 0 &&
            i > config_.max_simulated_records) {
          throw support::SptBudgetExceeded("simulated trace records", i,
                                           config_.max_simulated_records);
        }
        if (config_.max_simulated_cycles != 0 &&
            pipe.cycle() > config_.max_simulated_cycles) {
          throw support::SptBudgetExceeded("simulated cycles", pipe.cycle(),
                                           config_.max_simulated_cycles);
        }
      }
      const trace::Record& rec = trace_[i];
      ++i;
      if (rec.kind == trace::RecordKind::kInstr) [[likely]] {
        r = &rec;
        d = &decode_[rec.sid];
        return true;
      }
      loops.onMarker(rec, pipe.cycle());
    }
    return false;
  };

  // Per-class handlers. Each pairs the class-specialized ExecInstr builder
  // with the matching compile-time executeKnown instantiation, so every
  // data-dependent branch of the generic path is resolved at dispatch.
  const auto doValue = [&] {
    checkFrame(*r);
    pipe.executeKnown<Pipeline::kExecPlain>(
        makeExecInstrFor<DispatchClass::kValue>(*d, *r));
  };
  const auto doLoad = [&] {
    checkFrame(*r);
    pipe.executeKnown<Pipeline::kExecLoad>(
        makeExecInstrFor<DispatchClass::kLoad>(*d, *r));
  };
  const auto doStore = [&] {
    checkFrame(*r);
    pipe.executeKnown<Pipeline::kExecStore>(
        makeExecInstrFor<DispatchClass::kStore>(*d, *r));
  };
  const auto doCondBr = [&] {
    checkFrame(*r);
    pipe.executeKnown<Pipeline::kExecBranch>(
        makeExecInstrFor<DispatchClass::kCondBr>(*d, *r));
  };
  const auto doJump = [&] {
    checkFrame(*r);
    pipe.executeKnown<Pipeline::kExecPlain>(
        makeExecInstrFor<DispatchClass::kJump>(*d, *r));
  };
  const auto doCall = [&] {
    const std::uint64_t done = pipe.executeKnown<Pipeline::kExecPlain>(
        makeExecInstrFor<DispatchClass::kJump>(*d, *r));
    checkFrame(*r);
    stack.push_back({r->callee_frame, d->instr->dst});
    cur_frame = r->callee_frame;
    // Parameters materialize in the callee when the call issues.
    const std::uint64_t base =
        (static_cast<std::uint64_t>(r->callee_frame) << 32) + 1;
    for (std::uint32_t p = 0; p < d->callee_params; ++p) {
      pipe.setRegReady(base + p, done, false);
    }
    ++fallbacks;
  };
  const auto doRet = [&] {
    const std::uint64_t done = pipe.executeKnown<Pipeline::kExecPlain>(
        makeExecInstrFor<DispatchClass::kJump>(*d, *r));
    checkFrame(*r);
    const ir::Reg dst = stack.back().ret_dst;
    stack.pop_back();
    if (!stack.empty()) {
      cur_frame = stack.back().id;
      if (dst.valid()) {
        pipe.setRegReady(Pipeline::regKey(stack.back().id, dst), done, false);
      }
    } else {
      cur_frame = kDead;
    }
    ++fallbacks;
  };
  const auto doGeneric = [&] {
    pipe.execute(makeExecInstr(*d, *r));
    checkFrame(*r);
    ++fallbacks;
  };

#if defined(__GNUC__) || defined(__clang__)
  // Computed-goto threaded dispatch: each handler jumps straight to the
  // next record's handler through a label table indexed by the predecoded
  // dispatch class, giving the host branch predictor one indirect-jump
  // site per handler instead of a single shared switch dispatch point.
  {
    static const void* const kTargets[kDispatchClassCount] = {
        /* kValue   */ &&lbl_value,
        /* kLoad    */ &&lbl_load,
        /* kStore   */ &&lbl_store,
        /* kCondBr  */ &&lbl_condbr,
        /* kJump    */ &&lbl_jump,
        /* kCall    */ &&lbl_call,
        /* kRet     */ &&lbl_ret,
        /* kFork    */ &&lbl_jump,   // timing-wise an ordinary jump here
        /* kKill    */ &&lbl_jump,
        /* kHalloc  */ &&lbl_value,  // producer with a live destination
        /* kGeneric */ &&lbl_generic,
    };
#define SPT_DISPATCH_NEXT()                 \
  do {                                      \
    if (!fetch()) goto lbl_done;            \
    goto* kTargets[d->klass];               \
  } while (0)
    SPT_DISPATCH_NEXT();
  lbl_value:
    doValue();
    SPT_DISPATCH_NEXT();
  lbl_load:
    doLoad();
    SPT_DISPATCH_NEXT();
  lbl_store:
    doStore();
    SPT_DISPATCH_NEXT();
  lbl_condbr:
    doCondBr();
    SPT_DISPATCH_NEXT();
  lbl_jump:
    doJump();
    SPT_DISPATCH_NEXT();
  lbl_call:
    doCall();
    SPT_DISPATCH_NEXT();
  lbl_ret:
    doRet();
    SPT_DISPATCH_NEXT();
  lbl_generic:
    doGeneric();
    SPT_DISPATCH_NEXT();
#undef SPT_DISPATCH_NEXT
  lbl_done:;
  }
#else
  // Portable fallback: a jump-table switch over the same handlers.
  while (fetch()) {
    switch (static_cast<DispatchClass>(d->klass)) {
      case DispatchClass::kValue:
      case DispatchClass::kHalloc:
        doValue();
        break;
      case DispatchClass::kLoad:
        doLoad();
        break;
      case DispatchClass::kStore:
        doStore();
        break;
      case DispatchClass::kCondBr:
        doCondBr();
        break;
      case DispatchClass::kJump:
      case DispatchClass::kFork:
      case DispatchClass::kKill:
        doJump();
        break;
      case DispatchClass::kCall:
        doCall();
        break;
      case DispatchClass::kRet:
        doRet();
        break;
      case DispatchClass::kGeneric:
        doGeneric();
        break;
    }
  }
#endif

  pipe.finish();
  loops.finish(pipe.cycle());

  MachineResult result;
  result.cycles = pipe.cycle();
  result.instrs = pipe.instrsIssued();
  result.breakdown = pipe.breakdown();
  result.loops = loops.stats();
  result.l1d = memory.l1d().stats();
  result.l2 = memory.l2().stats();
  result.l3 = memory.l3().stats();
  result.branch_mispredict_ratio = pipe.predictor().mispredictRatio();
  result.hotpath.dispatch_fallback = fallbacks;
  result.hotpath.dispatch_fast = pipe.instrsIssued() - fallbacks;
  return result;
}

}  // namespace spt::sim

// The N-pipeline SPT machine (paper Section 3; docs/MULTIWAY.md for the
// chained N-way generalization).
//
// Trace-driven co-simulation of the main pipeline and an ordered chain of
// up to MachineConfig::spec_threads speculative pipelines over the
// sequential trace:
//  * the main pipeline executes trace records in order;
//  * `spt_fork` spawns a speculative thread at the next iteration's
//    start-point (resolved by trace::LoopIndex); the register context copy
//    costs rf_copy_overhead cycles. With spec_threads > 1 a speculative
//    thread that consumes a fork record spawns its own successor
//    (Prophet-style chaining): the forker freezes at the successor's
//    start-point and the successor's context snapshot is materialized from
//    the forker's speculative view, optionally refined by a compiler
//    precomputation slice (ir::Module::forkSlice);
//  * each speculative pipeline runs ahead whenever its clock is behind the
//    main clock, emulating every instruction on its fork-time register
//    snapshot — so speculative values, and therefore misspeculation, are
//    exact rather than modeled probabilistically;
//  * speculative stores go to the thread's speculative store buffer;
//    speculative loads look up their own SSB first, then (chained mode)
//    every less-speculative predecessor's SSB nearest-first, and otherwise
//    register in the thread's load address buffer. Main-thread stores check
//    every active thread's LAB; a speculative store also checks the LABs of
//    all more-speculative successors (cross-thread memory dependence
//    checking, Section 3.2 generalized);
//  * when the main thread arrives at the least-speculative thread's
//    start-point, registers are checked (value-based or scoreboard mode;
//    chained threads always use value-based — their snapshot has no
//    main-thread scoreboard) and the thread is fast-committed, selectively
//    replayed, or fully squashed, per the configured recovery mechanism.
//    Commits are strictly in chain order; a full squash of the arriving
//    thread cascades to every more-speculative thread, and a committed
//    spt_kill record kills the rest of the chain;
//  * a speculative thread is frozen at arrival and at its successor's
//    start-point; it also stops on its own at a mismatching branch (wrong
//    path), a division fault, a full SSB/LAB, or when it would return out
//    of the forked function.
//
// spec_threads == 1 reduces exactly to the paper's 2-core machine: the
// golden-digest tests assert bit-identity with the pre-multiway simulator.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "sim/arch_state.h"
#include "sim/baseline.h"
#include "sim/decode.h"
#include "sim/fault_injector.h"
#include "sim/flat_map.h"
#include "sim/loop_tracker.h"
#include "sim/oracle.h"
#include "sim/result.h"
#include "support/machine_config.h"
#include "trace/trace.h"

namespace spt::sim {

class SptMachine {
 public:
  /// The trace's backing store (TraceBuffer or trace_io::MappedTrace) must
  /// outlive the machine; `loop_index` must be built over the same records.
  SptMachine(const ir::Module& module, trace::TraceView trace,
             const trace::LoopIndex& loop_index,
             const support::MachineConfig& config);

  MachineResult run();

 private:
  struct SrbEntry {
    std::size_t record_index = 0;
    std::int64_t emu_value = 0;
    std::uint64_t emu_addr = 0;
    // Cross-thread forwarding provenance (chained mode): the spawn id of
    // the predecessor whose SSB satisfied this load (0 = not forwarded
    // cross-thread) and the SRB index of the producing store within it.
    // Commit-time dependence checks use it to exempt a load that read
    // exactly the value the store later commits.
    std::uint32_t fwd_seq = 0;
    std::uint32_t fwd_srb = 0;
    bool violated = false;         // LAB hit / allocator race / fault
    bool input_violated = false;   // register check at arrival
    bool branch_mismatch = false;  // emulated direction != trace direction
  };

  struct CallCtx {
    trace::FrameId caller_frame = 0;
    ir::Reg dst;
  };

  struct SsbEntry {
    std::int64_t value = 0;
    std::size_t srb_index = 0;  // producing store's SRB entry
  };

  /// No freeze horizon: the thread may run to the end of the trace.
  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

  /// Per-thread speculative state. The containers are persistent across
  /// threads (reset() is O(1) epoch bumps plus clearing the touched lists)
  /// so per-fork setup does not rehash or free anything. One instance per
  /// speculative core; active instances are ordered least- to
  /// most-speculative by `chain_`.
  struct SpecThread {
    bool active = false;
    bool wrong_path = false;
    bool stalled = false;
    /// Forked by the main thread (chain head); only such threads have a
    /// main-written scoreboard for RegisterCheckMode::kScoreboard.
    bool forked_by_main = false;
    std::uint32_t seq = 0;   // spawn id, 1-based; 0 is reserved
    std::uint32_t slot = 0;  // index into slots_ / spec_pipes_
    std::size_t start_pos = 0;
    std::size_t pos = 0;
    /// Freeze horizon: one past the last record this thread owns (its
    /// successor's start-point). kNoLimit when it is the most speculative.
    std::size_t limit_pos = kNoLimit;
    trace::FrameId fork_frame = 0;
    std::vector<std::int64_t> fork_rf;
    FrameRegMap<std::int64_t> rf;  // emulated overlay
    EpochMap64<SsbEntry> ssb;      // addr -> latest speculative store
    // LAB: addr -> SRB indices of the speculative loads from it. The lists
    // live in a recycled pool; the map stores pool slot + 1 (0 = fresh key).
    EpochMap64<std::uint32_t> lab;
    std::vector<std::vector<std::size_t>> lab_pool;
    std::size_t lab_pool_used = 0;
    // Live-in reads from the fork-time context, dense by register index.
    std::vector<std::vector<std::size_t>> livein_reads;
    std::vector<std::uint32_t> livein_touched;
    std::vector<SrbEntry> srb;
    std::vector<CallCtx> call_stack;
    std::uint64_t halloc_at_fork = 0;
    /// Injected faults charged to this thread, classified at settle time.
    std::size_t faults_pending = 0;
    CycleBreakdown breakdown_at_fork;
    // Per-loop stats of the loop this thread speculates for; points into
    // result_.loop_threads (std::map nodes are stable). Set at fork from
    // the fork-site cache.
    ThreadStats* loop_stats = nullptr;
    /// This slot's speculative pipeline (owned by spec_pipes_).
    Pipeline* pipe = nullptr;

    void reset();
    std::vector<std::size_t>& labList(std::uint64_t addr);
  };

  /// Fork-site cache: everything executeFork derives from the static fork
  /// instruction (target-loop header, display name, per-loop stats slot,
  /// precomputation slice, forking function's register count), computed
  /// once per site instead of per dynamic fork. FlatMap64-backed — the
  /// last per-machine hash map; hit/miss counts land in
  /// MachineResult::hotpath.
  struct ForkSite {
    std::string loop_name;
    ThreadStats* stats = nullptr;  // &result_.loop_threads[loop_name]
    const std::vector<ir::Instr>* slice = nullptr;  // may be null
    std::uint32_t frame_regs = 0;  // forking function's reg_count
  };

  void stepMain();
  void stepSpec(SpecThread& t);
  bool specCanStep(const SpecThread& t) const;
  /// First thread in chain order that can step this cycle, else nullptr.
  SpecThread* firstSteppable();
  void executeFork(const trace::Record& record);
  /// A speculative thread consumed a fork record (chained mode): spawn its
  /// successor, or drop the fork when no core is free / the forker is not
  /// the chain tail.
  void chainFork(SpecThread& t, const trace::Record& record);
  /// Runs the fork site's precomputation slice (if any) over the fork-time
  /// snapshot and charges its execution to the new thread's pipeline.
  void applyForkSlice(SpecThread& t, const ForkSite& site);
  /// Materializes a register snapshot of `frame` as seen by thread `t`
  /// (its overlay over its own fork-time context).
  std::vector<std::int64_t> snapshotRegsFrom(SpecThread& t,
                                             trace::FrameId frame,
                                             std::uint32_t reg_count);
  void executeMainInstr(const trace::Record& record);
  /// Generic-path main instruction (calls, returns, kills, hallocs, and
  /// anything classified kGeneric); the class-specialized handlers live in
  /// executeMainInstr's dispatch switch.
  void executeMainFallback(const DecodedInstr& d, const trace::Record& record);
  void arrival(SpecThread& t);
  /// Commit-time value validation (fault mode only): replicates the replay
  /// dirty-closure walk without timing or architectural effects, and flags
  /// any *clean* SRB entry whose emulated result diverges from the trace.
  /// Returns the number of entries it had to flag — divergences the
  /// dependence-checking net alone would have fast-committed.
  std::size_t validateSrbAtArrival(SpecThread& t);
  /// True when `e`'s emulated result observably diverges from the trace's
  /// ground truth (opcode-aware: branches compare direction, stores also
  /// compare the address, control records carry no comparable payload).
  bool entryDiverges(const SrbEntry& e, const trace::Record& r) const;
  /// Classifies thread `t`'s pending injected faults into result_.faults.
  /// `discarded` marks kill/wrong-path/cascade paths (nothing speculative
  /// committed).
  void settleFaults(SpecThread& t, bool replayed, std::size_t oracle_flagged,
                    bool discarded, std::size_t escapes = 0);
  void checkBudgets() const;
  void syncToFreezePoint(SpecThread& t);
  /// Returns the number of divergent entries it committed (fault mode
  /// only; must be zero — the arrival validation walk forces any thread
  /// with a divergent entry into replay before fast commit is reachable).
  std::size_t fastCommit(SpecThread& t);
  void replayCommit(SpecThread& t);
  void fullSquash(SpecThread& t);
  void killSpec(SpecThread& t);
  /// Kills every active thread and empties the chain (main-thread
  /// spt_kill / end of trace).
  void killChain();
  /// Kills every thread more speculative than the chain head (a committed
  /// spt_kill record: the loop exited inside the committing thread's span,
  /// so its successors speculate iterations that never execute).
  void cascadeKillSuccessors();
  /// Chain position of `t` (index into chain_).
  std::size_t chainIndexOf(const SpecThread& t) const;
  /// True when `seq` names a currently active chained thread — its stores
  /// are still sequentially ahead of the main thread.
  bool seqIsLivePredecessor(std::uint32_t seq) const;
  /// Cross-thread memory dependence check: a store by `t` (at execute or
  /// commit time) flags every load of `addr` registered in the LAB of a
  /// more-speculative thread. With `allow_forward_exemption` (commit
  /// time), a load that forwarded this exact store's committed value — or
  /// a later store of the same thread — is exempt.
  void flagSuccessorLoads(const SpecThread& t, std::uint64_t addr,
                          std::int64_t value, std::uint32_t store_srb,
                          bool allow_forward_exemption);
  /// Main-thread store: flags matching loads in every active thread's LAB.
  void mainStoreCheck(std::uint64_t addr);

  std::int64_t specReadReg(SpecThread& t, trace::FrameId frame, ir::Reg reg);
  /// Reads like specReadReg but records nothing: used to pre-compute a
  /// memory address for the SSB/LAB capacity check before committing to
  /// execute the instruction (a stalled instruction must leave no live-in
  /// read behind — it never gets an SRB entry to attach the read to).
  std::int64_t specPeekReg(const SpecThread& t, trace::FrameId frame,
                           ir::Reg reg) const;
  void specWriteReg(SpecThread& t, trace::FrameId frame, ir::Reg reg,
                    std::int64_t value);

  CycleBreakdown specProfileSinceFork(const SpecThread& t) const;

  const ir::Module& module_;
  trace::TraceView trace_;
  const trace::LoopIndex& loop_index_;
  const support::MachineConfig& config_;
  DecodeTable decode_;

  FlatMap64<ForkSite> fork_sites_;
  ForkSite& forkSiteOf(const trace::Record& record);

  std::unique_ptr<MemorySystem> memory_;
  std::unique_ptr<Pipeline> main_pipe_;
  /// One speculative pipeline per thread slot (slot i drives pipe i).
  std::vector<std::unique_ptr<Pipeline>> spec_pipes_;
  ArchState arch_;
  LoopCycleTracker loop_tracker_;

  std::size_t pos_ = 0;  // main thread's next record
  /// Thread slots (stable addresses) and the active chain: slot indices
  /// ordered least- to most-speculative. Slot 0 is the paper's single
  /// speculative core; chain_.size() <= config_.spec_threads.
  std::vector<std::unique_ptr<SpecThread>> slots_;
  std::vector<std::uint32_t> chain_;
  std::uint32_t next_seq_ = 1;
  bool multiway_ = false;  // config_.spec_threads > 1
  // Robustness subsystem (null / false on the default path).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Oracle> oracle_;
  bool fault_mode_ = false;
  /// Scoreboard tracking for the main-forked thread: fork-frame regs
  /// written by the main thread since its fork, dense by index.
  /// sb_thread_ is that thread (null when none is live).
  SpecThread* sb_thread_ = nullptr;
  std::vector<char> main_written_;
  // Replay scratch (persistent; epoch-reset at each replayCommit).
  FrameRegMap<char> replay_dirty_regs_;
  EpochMap64<char> replay_dirty_addrs_;
  // Instructions issued through the generic execute path (forks, calls,
  // returns, speculative emulation, replay re-execution) as opposed to the
  // class-specialized handlers; reported in MachineResult::hotpath.
  std::uint64_t dispatch_fallbacks_ = 0;
  std::uint64_t fork_site_hits_ = 0;
  std::uint64_t fork_site_misses_ = 0;
  MachineResult result_;
};

}  // namespace spt::sim

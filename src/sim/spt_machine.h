// The two-pipeline SPT machine (paper Section 3).
//
// Trace-driven co-simulation of the main and speculative pipelines over the
// sequential trace:
//  * the main pipeline executes trace records in order;
//  * `spt_fork` spawns a speculative thread at the next iteration's
//    start-point (resolved by trace::LoopIndex); the register context copy
//    costs rf_copy_overhead cycles;
//  * the speculative pipeline runs ahead whenever its clock is behind the
//    main clock, emulating every instruction on the fork-time register
//    snapshot — so speculative values, and therefore misspeculation, are
//    exact rather than modeled probabilistically;
//  * speculative stores go to the speculative store buffer; speculative
//    loads look it up first and otherwise register in the load address
//    buffer, which every later main-thread store checks (memory dependence
//    checking, Section 3.2);
//  * when the main thread arrives at the start-point, registers are checked
//    (value-based or scoreboard mode) and the thread is fast-committed,
//    selectively replayed (correct entries commit at replay width, dirty
//    entries re-execute; a mismatching re-executed branch stops replay), or
//    fully squashed, per the configured recovery mechanism;
//  * a speculative thread is frozen at arrival; it also stops on its own at
//    a mismatching branch (wrong path), a division fault, a full SSB/LAB,
//    or when it would return out of the forked function.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/module.h"
#include "sim/arch_state.h"
#include "sim/baseline.h"
#include "sim/decode.h"
#include "sim/fault_injector.h"
#include "sim/flat_map.h"
#include "sim/loop_tracker.h"
#include "sim/oracle.h"
#include "sim/result.h"
#include "support/machine_config.h"
#include "trace/trace.h"

namespace spt::sim {

class SptMachine {
 public:
  /// The trace's backing store (TraceBuffer or trace_io::MappedTrace) must
  /// outlive the machine; `loop_index` must be built over the same records.
  SptMachine(const ir::Module& module, trace::TraceView trace,
             const trace::LoopIndex& loop_index,
             const support::MachineConfig& config);

  MachineResult run();

 private:
  struct SrbEntry {
    std::size_t record_index = 0;
    std::int64_t emu_value = 0;
    std::uint64_t emu_addr = 0;
    bool violated = false;         // LAB hit / allocator race / fault
    bool input_violated = false;   // register check at arrival
    bool branch_mismatch = false;  // emulated direction != trace direction
  };

  struct CallCtx {
    trace::FrameId caller_frame = 0;
    ir::Reg dst;
  };

  struct SsbEntry {
    std::int64_t value = 0;
    std::size_t srb_index = 0;  // producing store's SRB entry
  };

  /// Per-thread speculative state. The containers are persistent across
  /// threads (reset() is O(1) epoch bumps plus clearing the touched lists)
  /// so per-fork setup does not rehash or free anything.
  struct SpecThread {
    bool active = false;
    bool wrong_path = false;
    bool stalled = false;
    std::size_t start_pos = 0;
    std::size_t pos = 0;
    trace::FrameId fork_frame = 0;
    std::vector<std::int64_t> fork_rf;
    FrameRegMap<std::int64_t> rf;  // emulated overlay
    EpochMap64<SsbEntry> ssb;      // addr -> latest speculative store
    // LAB: addr -> SRB indices of the speculative loads from it. The lists
    // live in a recycled pool; the map stores pool slot + 1 (0 = fresh key).
    EpochMap64<std::uint32_t> lab;
    std::vector<std::vector<std::size_t>> lab_pool;
    std::size_t lab_pool_used = 0;
    // Live-in reads from the fork-time context, dense by register index.
    std::vector<std::vector<std::size_t>> livein_reads;
    std::vector<std::uint32_t> livein_touched;
    std::vector<SrbEntry> srb;
    std::vector<CallCtx> call_stack;
    std::uint64_t halloc_at_fork = 0;
    CycleBreakdown breakdown_at_fork;
    // Per-loop stats of the loop this thread speculates for; points into
    // result_.loop_threads (std::map nodes are stable). Set at fork from
    // the fork-site cache.
    ThreadStats* loop_stats = nullptr;

    void reset();
    std::vector<std::size_t>& labList(std::uint64_t addr);
  };

  void stepMain();
  void stepSpec();
  bool specCanStep() const;
  void executeFork(const trace::Record& record);
  void executeMainInstr(const trace::Record& record);
  /// Generic-path main instruction (calls, returns, kills, hallocs, and
  /// anything classified kGeneric); the class-specialized handlers live in
  /// executeMainInstr's dispatch switch.
  void executeMainFallback(const DecodedInstr& d, const trace::Record& record);
  void arrival();
  /// Commit-time value validation (fault mode only): replicates the replay
  /// dirty-closure walk without timing or architectural effects, and flags
  /// any *clean* SRB entry whose emulated result diverges from the trace.
  /// Returns the number of entries it had to flag — divergences the
  /// dependence-checking net alone would have fast-committed.
  std::size_t validateSrbAtArrival();
  /// True when `e`'s emulated result observably diverges from the trace's
  /// ground truth (opcode-aware: branches compare direction, stores also
  /// compare the address, control records carry no comparable payload).
  bool entryDiverges(const SrbEntry& e, const trace::Record& r) const;
  /// Classifies this thread's pending injected faults into result_.faults
  /// and re-arms the injector. `discarded` marks kill/wrong-path paths
  /// (nothing speculative committed).
  void settleFaults(bool replayed, std::size_t oracle_flagged,
                    bool discarded, std::size_t escapes = 0);
  void checkBudgets() const;
  void syncToFreezePoint();
  /// Returns the number of divergent entries it committed (fault mode
  /// only; must be zero — the arrival validation walk forces any thread
  /// with a divergent entry into replay before fast commit is reachable).
  std::size_t fastCommit();
  void replayCommit();
  void fullSquash();
  void killSpec();

  std::int64_t specReadReg(trace::FrameId frame, ir::Reg reg);
  /// Reads like specReadReg but records nothing: used to pre-compute a
  /// memory address for the SSB/LAB capacity check before committing to
  /// execute the instruction (a stalled instruction must leave no live-in
  /// read behind — it never gets an SRB entry to attach the read to).
  std::int64_t specPeekReg(trace::FrameId frame, ir::Reg reg) const;
  void specWriteReg(trace::FrameId frame, ir::Reg reg, std::int64_t value);

  ThreadStats& loopThreadStats();
  CycleBreakdown specProfileSinceFork() const;

  const ir::Module& module_;
  trace::TraceView trace_;
  const trace::LoopIndex& loop_index_;
  const support::MachineConfig& config_;
  DecodeTable decode_;

  /// Fork-site cache: everything executeFork derives from the static fork
  /// instruction (target-loop header, display name, per-loop stats slot),
  /// computed once per site instead of per dynamic fork (the name alone
  /// cost a string build plus a string-keyed map lookup per fork).
  struct ForkSite {
    std::string loop_name;
    ThreadStats* stats = nullptr;  // &result_.loop_threads[loop_name]
  };
  std::unordered_map<ir::StaticId, ForkSite> fork_sites_;
  ForkSite& forkSiteOf(const trace::Record& record);

  std::unique_ptr<MemorySystem> memory_;
  std::unique_ptr<Pipeline> main_pipe_;
  std::unique_ptr<Pipeline> spec_pipe_;
  ArchState arch_;
  LoopCycleTracker loop_tracker_;

  std::size_t pos_ = 0;  // main thread's next record
  SpecThread spec_;
  // Robustness subsystem (null / false on the default path).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Oracle> oracle_;
  bool fault_mode_ = false;
  std::vector<char> main_written_;  // fork-frame regs, dense by index
  // Replay scratch (persistent; epoch-reset at each replayCommit).
  FrameRegMap<char> replay_dirty_regs_;
  EpochMap64<char> replay_dirty_addrs_;
  // Instructions issued through the generic execute path (forks, calls,
  // returns, speculative emulation, replay re-execution) as opposed to the
  // class-specialized handlers; reported in MachineResult::hotpath.
  std::uint64_t dispatch_fallbacks_ = 0;
  MachineResult result_;
};

}  // namespace spt::sim

// Architectural state reconstruction from the sequential trace.
//
// The simulator's main thread walks the trace in order; ArchState mirrors
// the interpreter's frames and register values from the trace records, and
// learns memory contents from the loads/stores it passes. The SPT machine
// uses it for: fork-time register snapshots, value-based register
// dependence checking, and the memory values speculative loads observe.
//
// Frame storage is an arena: call/return recycle Frame slots (and their
// register vectors' capacity) in a depth-indexed stack instead of
// allocating per call, so deep call-heavy traces run allocation-free once
// the arena reaches the program's maximum call depth. Reset to any depth is
// O(1) (just the depth index moves).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "sim/flat_map.h"
#include "support/check.h"
#include "trace/record.h"

namespace spt::sim {

/// Side information a machine needs about the record it just applied.
struct ApplyInfo {
  // kCall:
  trace::FrameId callee_frame = 0;
  ir::FuncId callee_func = ir::kInvalidFunc;
  std::uint32_t callee_params = 0;
  // kRet:
  trace::FrameId caller_frame = 0;
  ir::Reg caller_dst;  // invalid when the callee's result is unused
};

class ArchState {
 public:
  /// The first applied record must belong to frame 0 of `entry` (the
  /// module's main function unless overridden).
  explicit ArchState(const ir::Module& module);

  /// Applies one kInstr record (markers must not be passed).
  ApplyInfo apply(const trace::Record& record);

  /// Same, with the record's static instruction already looked up (the
  /// machines keep a predecode table, saving the instrAt per record).
  ApplyInfo apply(const trace::Record& record, const ir::Instr& instr);

  /// Hot-path appliers for the threaded-dispatch handlers: identical
  /// architectural effects to apply() for their dispatch class, minus the
  /// opcode re-dispatch and ApplyInfo construction. Preconditions match the
  /// DispatchClass contract (kValue/kLoad imply a live destination); calls,
  /// returns, forks with side info, and hallocs stay on apply().
  void applyValue(const trace::Record& r, std::uint32_t dst_index) {
    hotFrame(r).regs[dst_index] = r.value;
  }
  void applyLoad(const trace::Record& r, std::uint32_t dst_index) {
    hotFrame(r).regs[dst_index] = r.value;
    memory_[r.mem_addr] = r.value;
  }
  void applyStore(const trace::Record& r) {
    hotFrame(r);
    memory_[r.mem_addr] = r.value;
  }
  /// kJump/kCondBr/kFork/kKill: digest + frame check only.
  void applyNoEffect(const trace::Record& r) { hotFrame(r); }

  const ir::Instr& instrOf(const trace::Record& record) const {
    return module_.instrAt(record.sid);
  }

  trace::FrameId curFrame() const { return frames_[depth_ - 1].id; }
  ir::FuncId curFunc() const { return frames_[depth_ - 1].func; }
  const std::vector<std::int64_t>& topRegs() const {
    return frames_[depth_ - 1].regs;
  }

  /// Current memory value at `addr` as of the applied prefix; `fallback`
  /// when the address was never observed (then the trace-recorded value is
  /// the correct content).
  std::int64_t memValue(std::uint64_t addr, std::int64_t fallback) const;

  std::uint64_t hallocCount() const { return halloc_count_; }

  /// Arena telemetry: frames newly allocated vs recycled from the arena.
  std::uint64_t arenaAllocs() const { return arena_allocs_; }
  std::uint64_t arenaReuses() const { return arena_reuses_; }

  /// Opt-in incremental architectural digest: every applied record folds
  /// its (sid, frame, value, mem_addr) into an FNV chain, so two ArchStates
  /// that applied the same records in the same order carry equal digests.
  /// Off by default — the fold would otherwise tax the simulation hot path.
  void enableDigest() { digest_enabled_ = true; }
  bool digestEnabled() const { return digest_enabled_; }
  std::uint64_t streamDigest() const { return digest_; }

  /// Deep state comparison for the oracle's diff mode: frames (id, func,
  /// every register), the memory image, and the allocator count. On
  /// divergence returns false and, when `diff` is given, names the first
  /// divergent register or address.
  bool deepEquals(const ArchState& other, std::string* diff) const;

 private:
  struct Frame {
    trace::FrameId id = 0;
    ir::FuncId func = ir::kInvalidFunc;
    std::vector<std::int64_t> regs;
    ir::Reg ret_dst;
  };

  /// Digest fold plus frame check; the live top frame. The slow path covers
  /// lazy entry-frame creation and check failure.
  Frame& hotFrame(const trace::Record& r) {
    if (digest_enabled_) foldDigest(r);
    if (depth_ == 0 || frames_[depth_ - 1].id != r.frame) {
      return frameSlowPath(r);
    }
    return frames_[depth_ - 1];
  }

  void foldDigest(const trace::Record& r);
  Frame& frameSlowPath(const trace::Record& r);

  const ir::Module& module_;
  std::vector<Frame> frames_;  // arena; [0, depth_) are the live stack
  std::size_t depth_ = 0;
  FlatMap64<std::int64_t> memory_;
  std::uint64_t halloc_count_ = 0;
  std::uint64_t arena_allocs_ = 0;
  std::uint64_t arena_reuses_ = 0;
  bool started_ = false;
  bool digest_enabled_ = false;
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV-1a offset basis
};

}  // namespace spt::sim

// Architectural state reconstruction from the sequential trace.
//
// The simulator's main thread walks the trace in order; ArchState mirrors
// the interpreter's frames and register values from the trace records, and
// learns memory contents from the loads/stores it passes. The SPT machine
// uses it for: fork-time register snapshots, value-based register
// dependence checking, and the memory values speculative loads observe.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/module.h"
#include "sim/flat_map.h"
#include "trace/record.h"

namespace spt::sim {

/// Side information a machine needs about the record it just applied.
struct ApplyInfo {
  // kCall:
  trace::FrameId callee_frame = 0;
  ir::FuncId callee_func = ir::kInvalidFunc;
  std::uint32_t callee_params = 0;
  // kRet:
  trace::FrameId caller_frame = 0;
  ir::Reg caller_dst;  // invalid when the callee's result is unused
};

class ArchState {
 public:
  /// The first applied record must belong to frame 0 of `entry` (the
  /// module's main function unless overridden).
  explicit ArchState(const ir::Module& module);

  /// Applies one kInstr record (markers must not be passed).
  ApplyInfo apply(const trace::Record& record);

  /// Same, with the record's static instruction already looked up (the
  /// machines keep a predecode table, saving the instrAt per record).
  ApplyInfo apply(const trace::Record& record, const ir::Instr& instr);

  const ir::Instr& instrOf(const trace::Record& record) const {
    return module_.instrAt(record.sid);
  }

  trace::FrameId curFrame() const { return frames_.back().id; }
  ir::FuncId curFunc() const { return frames_.back().func; }
  const std::vector<std::int64_t>& topRegs() const {
    return frames_.back().regs;
  }

  /// Current memory value at `addr` as of the applied prefix; `fallback`
  /// when the address was never observed (then the trace-recorded value is
  /// the correct content).
  std::int64_t memValue(std::uint64_t addr, std::int64_t fallback) const;

  std::uint64_t hallocCount() const { return halloc_count_; }

  /// Opt-in incremental architectural digest: every applied record folds
  /// its (sid, frame, value, mem_addr) into an FNV chain, so two ArchStates
  /// that applied the same records in the same order carry equal digests.
  /// Off by default — the fold would otherwise tax the simulation hot path.
  void enableDigest() { digest_enabled_ = true; }
  bool digestEnabled() const { return digest_enabled_; }
  std::uint64_t streamDigest() const { return digest_; }

  /// Deep state comparison for the oracle's diff mode: frames (id, func,
  /// every register), the memory image, and the allocator count. On
  /// divergence returns false and, when `diff` is given, names the first
  /// divergent register or address.
  bool deepEquals(const ArchState& other, std::string* diff) const;

 private:
  struct Frame {
    trace::FrameId id = 0;
    ir::FuncId func = ir::kInvalidFunc;
    std::vector<std::int64_t> regs;
    ir::Reg ret_dst;
  };

  const ir::Module& module_;
  std::vector<Frame> frames_;
  FlatMap64<std::int64_t> memory_;
  std::uint64_t halloc_count_ = 0;
  bool started_ = false;
  bool digest_enabled_ = false;
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV-1a offset basis
};

}  // namespace spt::sim

#include "sim/arch_state.h"

#include "support/check.h"

namespace spt::sim {

ArchState::ArchState(const ir::Module& module) : module_(module) {}

ApplyInfo ArchState::apply(const trace::Record& record) {
  return apply(record, module_.instrAt(record.sid));
}

ApplyInfo ArchState::apply(const trace::Record& record,
                           const ir::Instr& instr) {
  SPT_CHECK(record.kind == trace::RecordKind::kInstr);
  ApplyInfo info;

  if (!started_) {
    // Lazily create the entry frame from the first record.
    const auto& loc = module_.locate(record.sid);
    Frame frame;
    frame.id = record.frame;
    frame.func = loc.func;
    frame.regs.assign(module_.function(loc.func).reg_count, 0);
    frames_.push_back(std::move(frame));
    started_ = true;
  }

  SPT_CHECK_MSG(!frames_.empty() && frames_.back().id == record.frame,
                "trace record frame does not match the reconstructed stack");
  Frame& top = frames_.back();

  switch (instr.op) {
    case ir::Opcode::kCall: {
      const ir::Function& callee = module_.function(instr.callee);
      Frame next;
      next.id = record.callee_frame;
      next.func = instr.callee;
      next.regs.assign(callee.reg_count, 0);
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        next.regs[i] = top.regs[instr.args[i].index];
      }
      next.ret_dst = instr.dst;
      info.callee_frame = next.id;
      info.callee_func = instr.callee;
      info.callee_params = callee.param_count;
      frames_.push_back(std::move(next));
      return info;
    }
    case ir::Opcode::kRet: {
      const ir::Reg dst = top.ret_dst;
      frames_.pop_back();
      if (!frames_.empty()) {
        info.caller_frame = frames_.back().id;
        info.caller_dst = dst;
        if (dst.valid()) frames_.back().regs[dst.index] = record.value;
      }
      return info;
    }
    case ir::Opcode::kStore:
      memory_[record.mem_addr] = record.value;
      return info;
    case ir::Opcode::kLoad:
      memory_[record.mem_addr] = record.value;
      top.regs[instr.dst.index] = record.value;
      return info;
    case ir::Opcode::kHalloc:
      ++halloc_count_;
      top.regs[instr.dst.index] = record.value;
      return info;
    default:
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        top.regs[instr.dst.index] = record.value;
      }
      return info;
  }
}

std::int64_t ArchState::memValue(std::uint64_t addr,
                                 std::int64_t fallback) const {
  const std::int64_t* value = memory_.find(addr);
  return value == nullptr ? fallback : *value;
}

}  // namespace spt::sim

#include "sim/arch_state.h"

#include "support/check.h"

namespace spt::sim {

ArchState::ArchState(const ir::Module& module) : module_(module) {}

ApplyInfo ArchState::apply(const trace::Record& record) {
  return apply(record, module_.instrAt(record.sid));
}

ApplyInfo ArchState::apply(const trace::Record& record,
                           const ir::Instr& instr) {
  SPT_CHECK(record.kind == trace::RecordKind::kInstr);
  ApplyInfo info;

  if (digest_enabled_) {
    const auto fold = [this](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        digest_ = (digest_ ^ static_cast<unsigned char>(v >> (8 * i))) *
                  1099511628211ull;
      }
    };
    fold(record.sid);
    fold(record.frame);
    fold(static_cast<std::uint64_t>(record.value));
    fold(record.mem_addr);
  }

  if (!started_) {
    // Lazily create the entry frame from the first record.
    const auto& loc = module_.locate(record.sid);
    Frame frame;
    frame.id = record.frame;
    frame.func = loc.func;
    frame.regs.assign(module_.function(loc.func).reg_count, 0);
    frames_.push_back(std::move(frame));
    started_ = true;
  }

  SPT_CHECK_MSG(!frames_.empty() && frames_.back().id == record.frame,
                "trace record frame does not match the reconstructed stack");
  Frame& top = frames_.back();

  switch (instr.op) {
    case ir::Opcode::kCall: {
      const ir::Function& callee = module_.function(instr.callee);
      Frame next;
      next.id = record.callee_frame;
      next.func = instr.callee;
      next.regs.assign(callee.reg_count, 0);
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        next.regs[i] = top.regs[instr.args[i].index];
      }
      next.ret_dst = instr.dst;
      info.callee_frame = next.id;
      info.callee_func = instr.callee;
      info.callee_params = callee.param_count;
      frames_.push_back(std::move(next));
      return info;
    }
    case ir::Opcode::kRet: {
      const ir::Reg dst = top.ret_dst;
      frames_.pop_back();
      if (!frames_.empty()) {
        info.caller_frame = frames_.back().id;
        info.caller_dst = dst;
        if (dst.valid()) frames_.back().regs[dst.index] = record.value;
      }
      return info;
    }
    case ir::Opcode::kStore:
      memory_[record.mem_addr] = record.value;
      return info;
    case ir::Opcode::kLoad:
      memory_[record.mem_addr] = record.value;
      top.regs[instr.dst.index] = record.value;
      return info;
    case ir::Opcode::kHalloc:
      ++halloc_count_;
      top.regs[instr.dst.index] = record.value;
      return info;
    default:
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        top.regs[instr.dst.index] = record.value;
      }
      return info;
  }
}

std::int64_t ArchState::memValue(std::uint64_t addr,
                                 std::int64_t fallback) const {
  const std::int64_t* value = memory_.find(addr);
  return value == nullptr ? fallback : *value;
}

bool ArchState::deepEquals(const ArchState& other, std::string* diff) const {
  const auto report = [&](const std::string& what) {
    if (diff != nullptr) *diff = what;
    return false;
  };

  if (halloc_count_ != other.halloc_count_) {
    return report("halloc count: " + std::to_string(halloc_count_) +
                  " vs " + std::to_string(other.halloc_count_));
  }
  if (frames_.size() != other.frames_.size()) {
    return report("frame stack depth: " + std::to_string(frames_.size()) +
                  " vs " + std::to_string(other.frames_.size()));
  }
  for (std::size_t f = 0; f < frames_.size(); ++f) {
    const Frame& a = frames_[f];
    const Frame& b = other.frames_[f];
    if (a.id != b.id || a.func != b.func) {
      return report("frame " + std::to_string(f) + ": id/func mismatch");
    }
    const std::size_t regs = std::max(a.regs.size(), b.regs.size());
    for (std::size_t r = 0; r < regs; ++r) {
      const std::int64_t av = r < a.regs.size() ? a.regs[r] : 0;
      const std::int64_t bv = r < b.regs.size() ? b.regs[r] : 0;
      if (av != bv) {
        return report("frame " + std::to_string(f) + " r" +
                      std::to_string(r) + ": " + std::to_string(av) +
                      " vs " + std::to_string(bv));
      }
    }
  }
  if (memory_.size() != other.memory_.size()) {
    return report("memory image size: " + std::to_string(memory_.size()) +
                  " vs " + std::to_string(other.memory_.size()));
  }
  // Equal sizes plus one-way key/value agreement imply identical maps.
  bool equal = true;
  std::string first_diff;
  memory_.forEach([&](std::uint64_t addr, const std::int64_t& value) {
    if (!equal) return;
    const std::int64_t* theirs = other.memory_.find(addr);
    if (theirs == nullptr || *theirs != value) {
      equal = false;
      first_diff = "memory[0x" + std::to_string(addr) + "]: " +
                   std::to_string(value) + " vs " +
                   (theirs == nullptr ? std::string("<absent>")
                                      : std::to_string(*theirs));
    }
  });
  if (!equal) return report(first_diff);
  return true;
}

}  // namespace spt::sim

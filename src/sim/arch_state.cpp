#include "sim/arch_state.h"

#include "support/check.h"

namespace spt::sim {

ArchState::ArchState(const ir::Module& module) : module_(module) {}

ApplyInfo ArchState::apply(const trace::Record& record) {
  return apply(record, module_.instrAt(record.sid));
}

void ArchState::foldDigest(const trace::Record& r) {
  const auto fold = [this](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ = (digest_ ^ static_cast<unsigned char>(v >> (8 * i))) *
                1099511628211ull;
    }
  };
  fold(r.sid);
  fold(r.frame);
  fold(static_cast<std::uint64_t>(r.value));
  fold(r.mem_addr);
}

ArchState::Frame& ArchState::frameSlowPath(const trace::Record& record) {
  if (!started_) {
    // Lazily create the entry frame from the first record.
    const auto& loc = module_.locate(record.sid);
    frames_.emplace_back();
    ++arena_allocs_;
    Frame& frame = frames_.front();
    frame.id = record.frame;
    frame.func = loc.func;
    frame.regs.assign(module_.function(loc.func).reg_count, 0);
    frame.ret_dst = ir::Reg{};
    depth_ = 1;
    started_ = true;
  }
  SPT_CHECK_MSG(depth_ > 0 && frames_[depth_ - 1].id == record.frame,
                "trace record frame does not match the reconstructed stack");
  return frames_[depth_ - 1];
}

ApplyInfo ArchState::apply(const trace::Record& record,
                           const ir::Instr& instr) {
  SPT_CHECK(record.kind == trace::RecordKind::kInstr);
  ApplyInfo info;

  // Digest fold, lazy entry-frame creation, and the frame check. The
  // returned reference is re-derived inside the kCall case because growing
  // the arena may relocate it.
  hotFrame(record);

  switch (instr.op) {
    case ir::Opcode::kCall: {
      const ir::Function& callee = module_.function(instr.callee);
      if (depth_ == frames_.size()) {
        frames_.emplace_back();
        ++arena_allocs_;
      } else {
        ++arena_reuses_;
      }
      Frame& next = frames_[depth_];
      const Frame& caller = frames_[depth_ - 1];
      next.id = record.callee_frame;
      next.func = instr.callee;
      // assign() reuses the recycled slot's capacity: allocation-free once
      // the arena has seen this depth with enough registers.
      next.regs.assign(callee.reg_count, 0);
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        next.regs[i] = caller.regs[instr.args[i].index];
      }
      next.ret_dst = instr.dst;
      info.callee_frame = next.id;
      info.callee_func = instr.callee;
      info.callee_params = callee.param_count;
      ++depth_;
      return info;
    }
    case ir::Opcode::kRet: {
      const ir::Reg dst = frames_[depth_ - 1].ret_dst;
      --depth_;
      if (depth_ > 0) {
        Frame& caller = frames_[depth_ - 1];
        info.caller_frame = caller.id;
        info.caller_dst = dst;
        if (dst.valid()) caller.regs[dst.index] = record.value;
      }
      return info;
    }
    case ir::Opcode::kStore:
      memory_[record.mem_addr] = record.value;
      return info;
    case ir::Opcode::kLoad:
      memory_[record.mem_addr] = record.value;
      frames_[depth_ - 1].regs[instr.dst.index] = record.value;
      return info;
    case ir::Opcode::kHalloc:
      ++halloc_count_;
      frames_[depth_ - 1].regs[instr.dst.index] = record.value;
      return info;
    default:
      if (instr.dst.valid() && ir::producesValue(instr.op)) {
        frames_[depth_ - 1].regs[instr.dst.index] = record.value;
      }
      return info;
  }
}

std::int64_t ArchState::memValue(std::uint64_t addr,
                                 std::int64_t fallback) const {
  const std::int64_t* value = memory_.find(addr);
  return value == nullptr ? fallback : *value;
}

bool ArchState::deepEquals(const ArchState& other, std::string* diff) const {
  const auto report = [&](const std::string& what) {
    if (diff != nullptr) *diff = what;
    return false;
  };

  if (halloc_count_ != other.halloc_count_) {
    return report("halloc count: " + std::to_string(halloc_count_) +
                  " vs " + std::to_string(other.halloc_count_));
  }
  if (depth_ != other.depth_) {
    return report("frame stack depth: " + std::to_string(depth_) + " vs " +
                  std::to_string(other.depth_));
  }
  for (std::size_t f = 0; f < depth_; ++f) {
    const Frame& a = frames_[f];
    const Frame& b = other.frames_[f];
    if (a.id != b.id || a.func != b.func) {
      return report("frame " + std::to_string(f) + ": id/func mismatch");
    }
    const std::size_t regs = std::max(a.regs.size(), b.regs.size());
    for (std::size_t r = 0; r < regs; ++r) {
      const std::int64_t av = r < a.regs.size() ? a.regs[r] : 0;
      const std::int64_t bv = r < b.regs.size() ? b.regs[r] : 0;
      if (av != bv) {
        return report("frame " + std::to_string(f) + " r" +
                      std::to_string(r) + ": " + std::to_string(av) +
                      " vs " + std::to_string(bv));
      }
    }
  }
  if (memory_.size() != other.memory_.size()) {
    return report("memory image size: " + std::to_string(memory_.size()) +
                  " vs " + std::to_string(other.memory_.size()));
  }
  // Equal sizes plus one-way key/value agreement imply identical maps.
  bool equal = true;
  std::string first_diff;
  memory_.forEach([&](std::uint64_t addr, const std::int64_t& value) {
    if (!equal) return;
    const std::int64_t* theirs = other.memory_.find(addr);
    if (theirs == nullptr || *theirs != value) {
      equal = false;
      first_diff = "memory[0x" + std::to_string(addr) + "]: " +
                   std::to_string(value) + " vs " +
                   (theirs == nullptr ? std::string("<absent>")
                                      : std::to_string(*theirs));
    }
  });
  if (!equal) return report(first_diff);
  return true;
}

}  // namespace spt::sim

// Baseline single-core machine: runs a sequential trace on one pipeline.
//
// This is the paper's reference configuration ("the optimized non-SPT code
// running on one core", Section 5.5).
#pragma once

#include "ir/module.h"
#include "sim/decode.h"
#include "sim/result.h"
#include "support/machine_config.h"
#include "trace/trace.h"

namespace spt::sim {

/// Converts one kInstr record into a timed ExecInstr. `mem_addr_override`
/// replaces the record's address (used by speculative emulation where the
/// effective address may differ). Call arguments beyond the fourth do not
/// constrain timing.
ExecInstr makeExecInstr(const ir::Module& module, const trace::Record& record,
                        std::uint64_t mem_addr_override = 0);

class BaselineMachine {
 public:
  /// The trace's backing store (TraceBuffer or trace_io::MappedTrace) must
  /// outlive the machine.
  BaselineMachine(const ir::Module& module, trace::TraceView trace,
                  const support::MachineConfig& config);

  MachineResult run();

 private:
  const ir::Module& module_;
  trace::TraceView trace_;
  const support::MachineConfig& config_;
  DecodeTable decode_;
};

}  // namespace spt::sim

// Set-associative LRU caches and the shared memory hierarchy.
//
// Paper Table 1: separate L1 I/D caches (16KB 4-way 64B 1cy), unified L2
// (256KB 8-way 64B 5cy), unified L3 (3MB 12-way 128B 12cy), 150-cycle
// memory. Both pipelines share the hierarchy (Figure 2), and accesses are
// tagged with timestamps to maintain temporal ordering (Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "support/machine_config.h"

namespace spt::support {
class Rng;
}

namespace spt::sim {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double missRatio() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(misses) / total;
  }
};

/// One set-associative cache level with LRU replacement. Timestamps drive
/// the LRU ordering so that interleaved accesses from the two pipelines age
/// lines consistently.
///
/// `access` is defined inline: it runs a handful of times per trace record
/// in both machines, and the call overhead plus the un-inlined hit scan were
/// measurable in the host-throughput benchmark.
class Cache {
 public:
  explicit Cache(const support::CacheConfig& config);

  /// Returns true on hit; on miss the line is (re)filled. `timestamp` is
  /// the access cycle.
  ///
  /// Same-block memo: `memo_line_` always points at the line holding the
  /// most recently accessed block (a hit leaves it resident, a miss fills
  /// it), and nothing else mutates placement state between two accesses
  /// except corruptLineMeta (which drops the memo). So a repeat access to
  /// the same block is a guaranteed hit and can skip the set scan; the memo
  /// path performs exactly the state updates of a full-path hit (LRU stamp
  /// plus hit count), keeping every downstream stat and eviction decision
  /// bit-identical. Sequential instruction fetch makes this the L1I common
  /// case (several 16-byte instructions per 64-byte line).
  bool access(std::uint64_t addr, std::uint64_t timestamp) {
    const std::uint64_t block = addr >> block_shift_;
    if (memo_line_ != nullptr && block == memo_block_) {
      memo_line_->last_used = timestamp;
      ++stats_.hits;
      return true;
    }
    const std::uint32_t set =
        static_cast<std::uint32_t>(block & (num_sets_ - 1));
    const std::uint64_t tag = block >> set_shift_;
    Line* base =
        &lines_[static_cast<std::size_t>(set) * config_.associativity];

    Line* victim = base;
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) {
        line.last_used = timestamp;
        ++stats_.hits;
        memo_block_ = block;
        memo_line_ = &line;
        return true;
      }
      if (!line.valid) {
        victim = &line;
      } else if (victim->valid && line.last_used < victim->last_used) {
        victim = &line;
      }
    }
    ++stats_.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->last_used = timestamp;
    memo_block_ = block;
    memo_line_ = victim;
    return false;
  }

  /// Hit check without state change (used by tests).
  bool probe(std::uint64_t addr) const;

  /// Fault injection: corrupts one random line's timing metadata (tag bit,
  /// LRU stamp bit, or valid flag). A cache line here carries no data —
  /// only placement state — so the corruption is benign by construction:
  /// it can turn hits into misses (and vice versa) but never change a
  /// simulated value.
  void corruptLineMeta(support::Rng& rng);

  const CacheStats& stats() const { return stats_; }
  std::uint32_t numSets() const { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_used = 0;
    bool valid = false;
  };

  support::CacheConfig config_;
  std::uint32_t num_sets_;
  std::uint64_t block_shift_;
  std::uint64_t set_shift_;  // countr_zero(num_sets_), precomputed
  std::vector<Line> lines_;  // num_sets_ * associativity; never resized
  CacheStats stats_;
  // Same-block memo (see access); line pointers stay valid because lines_
  // never resizes after construction. corruptLineMeta invalidates it.
  std::uint64_t memo_block_ = 0;
  Line* memo_line_ = nullptr;
};

/// The shared three-level hierarchy plus memory. Returns total access
/// latency in cycles for instruction fetches and data accesses. Inline for
/// the same reason as Cache::access — the L1-hit path is the per-record
/// common case.
class MemorySystem {
 public:
  explicit MemorySystem(const support::MachineConfig& config);

  /// Data access (load or store fill); returns the latency in cycles.
  std::uint32_t accessData(std::uint64_t addr, std::uint64_t timestamp) {
    std::uint32_t latency = config_.l1d.latency_cycles;
    if (l1d_.access(addr, timestamp)) return latency;
    latency += config_.l2.latency_cycles;
    if (l2_.access(addr, timestamp)) return latency;
    latency += config_.l3.latency_cycles;
    if (l3_.access(addr, timestamp)) return latency;
    return latency + config_.memory_latency_cycles;
  }

  /// Instruction fetch; returns the latency in cycles.
  std::uint32_t accessInstr(std::uint64_t addr, std::uint64_t timestamp) {
    std::uint32_t latency = config_.l1i.latency_cycles;
    if (l1i_.access(addr, timestamp)) return latency;
    latency += config_.l2.latency_cycles;
    if (l2_.access(addr, timestamp)) return latency;
    latency += config_.l3.latency_cycles;
    if (l3_.access(addr, timestamp)) return latency;
    return latency + config_.memory_latency_cycles;
  }

  const Cache& l1d() const { return l1d_; }
  const Cache& l1i() const { return l1i_; }
  const Cache& l2() const { return l2_; }
  const Cache& l3() const { return l3_; }

  /// Fault injection: corrupts the metadata of one random line in one
  /// random level (see Cache::corruptLineMeta).
  void corruptMeta(support::Rng& rng);

 private:
  support::MachineConfig config_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  Cache l3_;
};

}  // namespace spt::sim

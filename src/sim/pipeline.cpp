#include "sim/pipeline.h"

#include "support/check.h"

namespace spt::sim {

void CycleBreakdown::add(StallKind kind, std::uint64_t cycles) {
  switch (kind) {
    case StallKind::kExecution:
      execution += cycles;
      break;
    case StallKind::kPipeline:
      pipeline_stall += cycles;
      break;
    case StallKind::kDCache:
      dcache_stall += cycles;
      break;
  }
}

Pipeline::Pipeline(const support::MachineConfig& config, MemorySystem& memory)
    : config_(config),
      memory_(memory),
      predictor_(config.branch_predictor_entries) {}

void Pipeline::bumpCycleTo(std::uint64_t cycle, StallKind kind) {
  if (cycle <= cycle_) return;
  std::uint64_t gap = cycle - cycle_;
  if (cycle_had_issue_) {
    // The partially-filled current cycle counts as execution, the rest of
    // the gap as the given stall kind.
    breakdown_.add(StallKind::kExecution, 1);
    cycle_had_issue_ = false;
    --gap;
  }
  breakdown_.add(kind, gap);
  cycle_ = cycle;
  slots_ = 0;
  replay_slots_ = 0;
}

Pipeline::RegState Pipeline::sourceState(const ExecInstr& instr) const {
  RegState latest;
  for (const std::uint64_t src : instr.srcs) {
    if (src == 0) continue;
    const auto it = scoreboard_.find(src);
    if (it == scoreboard_.end()) continue;
    if (it->second.ready > latest.ready) latest = it->second;
  }
  return latest;
}

void Pipeline::maybePurgeScoreboard() {
  if (scoreboard_.size() < 1u << 16) return;
  // Entries whose value is already available behave exactly like absent
  // entries, so dropping them is lossless.
  for (auto it = scoreboard_.begin(); it != scoreboard_.end();) {
    if (it->second.ready <= cycle_) {
      it = scoreboard_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t Pipeline::execute(const ExecInstr& instr) {
  // Instruction fetch. Instructions occupy 16 synthetic bytes each; an
  // L1I miss stalls the front end for the extra fill latency.
  const std::uint64_t iaddr = static_cast<std::uint64_t>(instr.sid) * 16;
  const std::uint32_t ifetch = memory_.accessInstr(iaddr, cycle_);
  if (ifetch > config_.l1i.latency_cycles) {
    bumpCycleTo(cycle_ + (ifetch - config_.l1i.latency_cycles),
                StallKind::kPipeline);
  }

  // Operand readiness.
  const RegState latest = sourceState(instr);
  if (latest.ready > cycle_) {
    bumpCycleTo(latest.ready,
                latest.from_load ? StallKind::kDCache : StallKind::kPipeline);
  }

  // Issue.
  const std::uint64_t issue_cycle = cycle_;
  cycle_had_issue_ = true;
  ++instrs_issued_;
  ++slots_;
  if (slots_ >= config_.issue_width) {
    breakdown_.add(StallKind::kExecution, 1);
    ++cycle_;
    slots_ = 0;
    replay_slots_ = 0;
    cycle_had_issue_ = false;
  }

  // Result latency.
  std::uint64_t done = issue_cycle + instr.base_latency;
  if (instr.is_load || instr.is_store) {
    const std::uint32_t dlat = memory_.accessData(instr.mem_addr, issue_cycle);
    if (instr.is_load) done = issue_cycle + dlat;
    // Stores retire through the store buffer without stalling the pipe.
  }
  if (instr.dst != 0) {
    scoreboard_[instr.dst] = RegState{done, instr.is_load};
    maybePurgeScoreboard();
  }

  // Branch resolution.
  if (instr.is_cond_branch) {
    const bool correct = predictor_.predictAndUpdate(instr.taken);
    if (!correct) {
      bumpCycleTo(issue_cycle + 1 + config_.branch_mispredict_penalty,
                  StallKind::kPipeline);
    }
  }
  return done;
}

void Pipeline::commitFromBuffer() {
  ++replay_slots_;
  cycle_had_issue_ = true;
  if (replay_slots_ >= config_.replay_issue_width) {
    breakdown_.add(StallKind::kExecution, 1);
    ++cycle_;
    replay_slots_ = 0;
    slots_ = 0;
    cycle_had_issue_ = false;
  }
}

void Pipeline::advanceTo(std::uint64_t cycle, StallKind kind) {
  bumpCycleTo(cycle, kind);
}

void Pipeline::advanceToWithProfile(std::uint64_t cycle,
                                    const CycleBreakdown& profile) {
  if (cycle <= cycle_) return;
  const std::uint64_t gap = cycle - cycle_;
  const std::uint64_t total = profile.total();
  if (total == 0) {
    bumpCycleTo(cycle, StallKind::kPipeline);
    return;
  }
  const std::uint64_t exec = gap * profile.execution / total;
  const std::uint64_t dcache = gap * profile.dcache_stall / total;
  // Remainder (rounding) goes to pipeline stalls.
  bumpCycleTo(cycle_ + exec, StallKind::kExecution);
  bumpCycleTo(cycle_ + dcache, StallKind::kDCache);
  bumpCycleTo(cycle, StallKind::kPipeline);
}

void Pipeline::setRegReady(std::uint64_t key, std::uint64_t cycle,
                           bool from_load) {
  SPT_CHECK(key != 0);
  scoreboard_[key] = RegState{cycle, from_load};
}

void Pipeline::finish() {
  if (cycle_had_issue_) {
    breakdown_.add(StallKind::kExecution, 1);
    ++cycle_;
    cycle_had_issue_ = false;
    slots_ = 0;
    replay_slots_ = 0;
  }
}

}  // namespace spt::sim

#include "sim/pipeline.h"

#include "support/check.h"

namespace spt::sim {

Pipeline::Pipeline(const support::MachineConfig& config, MemorySystem& memory)
    : config_(config),
      memory_(memory),
      predictor_(config.branch_predictor_entries) {}

void Pipeline::commitFromBuffer() {
  ++replay_slots_;
  cycle_had_issue_ = true;
  if (replay_slots_ >= config_.replay_issue_width) {
    breakdown_.add(StallKind::kExecution, 1);
    ++cycle_;
    replay_slots_ = 0;
    slots_ = 0;
    cycle_had_issue_ = false;
  }
}

void Pipeline::advanceTo(std::uint64_t cycle, StallKind kind) {
  bumpCycleTo(cycle, kind);
}

void Pipeline::advanceToWithProfile(std::uint64_t cycle,
                                    const CycleBreakdown& profile) {
  if (cycle <= cycle_) return;
  const std::uint64_t gap = cycle - cycle_;
  const std::uint64_t total = profile.total();
  if (total == 0) {
    bumpCycleTo(cycle, StallKind::kPipeline);
    return;
  }
  const std::uint64_t exec = gap * profile.execution / total;
  const std::uint64_t dcache = gap * profile.dcache_stall / total;
  // Remainder (rounding) goes to pipeline stalls.
  bumpCycleTo(cycle_ + exec, StallKind::kExecution);
  bumpCycleTo(cycle_ + dcache, StallKind::kDCache);
  bumpCycleTo(cycle, StallKind::kPipeline);
}

void Pipeline::setRegReady(std::uint64_t key, std::uint64_t cycle,
                           bool from_load) {
  SPT_CHECK(key != 0);
  scoreboardWrite(key, RegState{cycle, from_load});
}

void Pipeline::finish() {
  if (cycle_had_issue_) {
    breakdown_.add(StallKind::kExecution, 1);
    ++cycle_;
    cycle_had_issue_ = false;
    slots_ = 0;
    replay_slots_ = 0;
  }
}

}  // namespace spt::sim

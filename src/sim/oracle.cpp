#include "sim/oracle.h"

#include "support/error.h"

namespace spt::sim {

Oracle::Oracle(const ir::Module& module, trace::TraceView trace,
               const DecodeTable& decode, support::OracleMode mode)
    : trace_(trace), decode_(decode), mode_(mode), ref_(module) {
  ref_.enableDigest();
}

void Oracle::advanceTo(std::size_t pos) {
  for (; ref_pos_ < pos; ++ref_pos_) {
    const trace::Record& r = trace_[ref_pos_];
    if (r.kind != trace::RecordKind::kInstr) continue;
    ref_.apply(r, *decode_[r.sid].instr);
  }
}

void Oracle::checkAt(std::size_t pos, const ArchState& machine_arch,
                     const char* boundary) {
  advanceTo(pos);
  ++checks_run_;
  if (machine_arch.streamDigest() != ref_.streamDigest()) {
    std::string diff = "(digest mode; re-run with the deep oracle to name "
                       "the first divergent register/address)";
    if (mode_ == support::OracleMode::kDeep) {
      machine_arch.deepEquals(ref_, &diff);
    }
    throw support::SptOracleDivergence(pos, boundary, diff);
  }
  if (mode_ == support::OracleMode::kDeep) {
    std::string diff;
    if (!machine_arch.deepEquals(ref_, &diff)) {
      throw support::SptOracleDivergence(pos, boundary, diff,
                                         /*deep=*/true);
    }
  }
}

std::uint64_t Oracle::sequentialDigest(const ir::Module& module,
                                       trace::TraceView trace) {
  ArchState arch(module);
  arch.enableDigest();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const trace::Record& r = trace[i];
    if (r.kind != trace::RecordKind::kInstr) continue;
    arch.apply(r);
  }
  return arch.streamDigest();
}

}  // namespace spt::sim

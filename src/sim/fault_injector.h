// Deterministic fault injection into the SPT machine's speculative
// structures (the adversarial half of the robustness story).
//
// The paper's safety argument (Sections 3.3–3.4) is that every violated
// speculation is *detected* — by the LAB memory-dependence check, the
// register check at arrival, branch-direction comparison, or fault
// suppression — and recovered by selective replay or squash. The injector
// exercises that net: at seeded points it corrupts exactly the structures
// the net guards —
//
//  * SSB value flip   — a speculative store's buffered value is corrupted,
//                       so later forwarded loads observe a wrong value;
//  * LAB drop         — a speculative load's address record is dropped,
//                       disabling memory-dependence checking for it (the
//                       net's wire is cut: only the commit-time value
//                       validation can catch a resulting divergence);
//  * fork RF flip     — a bit of the fork-time register-context copy is
//                       flipped, corrupting every live-in read of it;
//  * SRB payload flip — a buffered speculative result is corrupted after
//                       execution (models SRB array corruption);
//  * cache meta flip  — a cache line's tag / LRU stamp / valid bit is
//                       corrupted;
//  * BP meta flip     — a branch-predictor PHT counter or history bit is
//                       corrupted.
//
// The last two target *timing metadata*: the simulated caches and
// predictor hold no architectural data, so those faults can shift cycle
// counts but never a committed value. They bypass the per-thread
// detection classification entirely and are counted injected + benign
// directly — the campaign asserts that benign-by-construction claim holds
// (escapes stay zero, oracle digests still match).
//
// The sequential trace remains ground truth, so the campaign can classify
// every injected fault at thread end: detected by the dependence-checking
// net, detected by the commit-time value validation (SptMachine's arrival
// walk, which flags any clean-committed entry whose emulated value
// diverges from the trace), or provably benign (the corruption never
// reached a committed value, or the thread was discarded). Nothing may
// escape — MachineResult::faults.escaped must be zero, and the
// architectural oracle digest must still equal the sequential result.
//
// All decisions come from one seeded xoshiro stream, so a campaign is
// bit-reproducible for a fixed seed at any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/branch_predictor.h"
#include "sim/cache.h"
#include "support/machine_config.h"
#include "support/rng.h"

namespace spt::sim {

class FaultInjector {
 public:
  explicit FaultInjector(const support::FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  // Data faults return true when they fired; the machine charges the fault
  // to the speculative thread it hit (SpecThread::faults_pending) and
  // classifies it when that thread settles. With chained speculation the
  // injector is thread-agnostic: every active thread draws from the same
  // seeded stream in simulation order, so a campaign is bit-reproducible
  // at any spec_threads value.

  /// Maybe flips one bit of one register in the fork-time context copy
  /// (main-forked snapshots and chained cross-thread snapshots alike).
  bool maybeFlipForkReg(std::vector<std::int64_t>& fork_rf) {
    if (!plan_.fork_reg_flip || fork_rf.empty() || !fire()) return false;
    const std::size_t reg = rng_.nextBelow(fork_rf.size());
    fork_rf[reg] ^= std::int64_t{1} << rng_.nextBelow(64);
    return true;
  }

  /// Maybe flips one bit of a speculative store's SSB value. In chained
  /// mode the corrupted copy is also what *successor threads* forward
  /// cross-thread, so the divergence can surface in a different thread
  /// than the one charged — the commit-time exemption check compares the
  /// forwarded value against the trace and flags the consumer.
  bool maybeCorruptSsbValue(std::int64_t& value) {
    if (!plan_.ssb_value_flip || !fire()) return false;
    value ^= std::int64_t{1} << rng_.nextBelow(64);
    return true;
  }

  /// Maybe decides to drop the LAB record a load just registered (own-SSB
  /// misses and cross-thread forwarded loads both register in the LAB, so
  /// chained forwards are droppable targets too).
  bool maybeDropLabRecord() {
    if (!plan_.lab_drop || !fire()) return false;
    return true;
  }

  /// Maybe flips one bit of a buffered SRB result payload.
  bool maybeCorruptSrbPayload(std::int64_t& emu_value) {
    if (!plan_.srb_payload_flip || !fire()) return false;
    emu_value ^= std::int64_t{1} << rng_.nextBelow(64);
    return true;
  }

  // ---- Timing-metadata faults. These are not charged to any thread: the
  // structures they corrupt hold no data values, so the faults cannot be
  // detected (there is nothing to diverge) and must not dilute the
  // detection-net classification. They are tallied separately and folded
  // into the result as injected + benign at end of run.

  /// Maybe corrupts one cache line's tag / LRU stamp / valid bit.
  bool maybeCorruptCacheMeta(MemorySystem& memory) {
    if (!plan_.cache_meta_flip || !fire()) return false;
    memory.corruptMeta(rng_);
    ++metadata_injected_;
    return true;
  }

  /// Maybe corrupts one branch-predictor PHT counter or history bit.
  bool maybeCorruptBpMeta(BranchPredictor& predictor) {
    if (!plan_.bp_meta_flip || !fire()) return false;
    predictor.corruptMeta(rng_);
    ++metadata_injected_;
    return true;
  }

  /// Timing-metadata faults injected over the whole run (benign by
  /// construction; never charged to a thread).
  std::uint64_t metadataInjected() const { return metadata_injected_; }

 private:
  bool fire() {
    return plan_.period <= 1 || rng_.nextBelow(plan_.period) == 0;
  }

  support::FaultPlan plan_;
  support::Rng rng_;
  std::uint64_t metadata_injected_ = 0;
};

}  // namespace spt::sim

#include "ir/printer.h"

#include <sstream>

namespace spt::ir {
namespace {

std::string regName(Reg r) {
  if (!r.valid()) return "_";
  return "r" + std::to_string(r.index);
}

std::string blockName(const Function& f, BlockId b) {
  if (b == kInvalidBlock) return "B?";
  const std::string& label = f.blocks[b].label;
  return label.empty() ? "B" + std::to_string(b) : label;
}

}  // namespace

void printInstr(std::ostream& os, const Module& module, const Instr& i) {
  // The function owning the instruction is only needed for block labels;
  // resolve it lazily through targets when printing inside printFunction.
  (void)module;
  switch (i.op) {
    case Opcode::kConst:
      os << regName(i.dst) << " = const " << i.imm;
      return;
    case Opcode::kMov:
      os << regName(i.dst) << " = mov " << regName(i.a);
      return;
    case Opcode::kLoad:
      os << regName(i.dst) << " = load [" << regName(i.a) << " + " << i.imm
         << "]";
      return;
    case Opcode::kStore:
      os << "store [" << regName(i.a) << " + " << i.imm
         << "] = " << regName(i.b);
      return;
    case Opcode::kBr:
      os << "br B" << i.target0;
      return;
    case Opcode::kCondBr:
      os << "condbr " << regName(i.a) << ", B" << i.target0 << ", B"
         << i.target1;
      return;
    case Opcode::kCall: {
      if (i.dst.valid()) os << regName(i.dst) << " = ";
      os << "call @" << module.function(i.callee).name << "(";
      for (std::size_t k = 0; k < i.args.size(); ++k) {
        if (k != 0) os << ", ";
        os << regName(i.args[k]);
      }
      os << ")";
      return;
    }
    case Opcode::kRet:
      os << "ret";
      if (i.a.valid()) os << ' ' << regName(i.a);
      return;
    case Opcode::kSptFork:
      os << "spt_fork B" << i.target0;
      return;
    case Opcode::kSptKill:
      os << "spt_kill";
      return;
    case Opcode::kHalloc:
      os << regName(i.dst) << " = halloc " << i.imm;
      return;
    case Opcode::kNop:
      os << "nop";
      return;
    default:
      os << regName(i.dst) << " = " << opcodeName(i.op) << ' ' << regName(i.a)
         << ", " << regName(i.b);
      return;
  }
}

void printFunction(std::ostream& os, const Module& module,
                   const Function& func) {
  os << "func @" << func.name << "(params=" << func.param_count
     << ", regs=" << func.reg_count << ")\n";
  for (const auto& block : func.blocks) {
    os << blockName(func, block.id) << ":  ; B" << block.id << "\n";
    for (const auto& instr : block.instrs) {
      os << "  ";
      printInstr(os, module, instr);
      os << '\n';
    }
  }
}

void printModule(std::ostream& os, const Module& module) {
  os << "module " << module.name() << "\n";
  for (FuncId f = 0; f < module.functionCount(); ++f) {
    printFunction(os, module, module.function(f));
    os << '\n';
  }
}

std::string functionToString(const Module& module, const Function& func) {
  std::ostringstream ss;
  printFunction(ss, module, func);
  return ss.str();
}

}  // namespace spt::ir

#include "ir/module.h"

#include "support/check.h"

namespace spt::ir {

std::vector<BlockId> BasicBlock::successors() const {
  SPT_CHECK_MSG(hasTerminator(), "block missing terminator");
  const Instr& t = terminator();
  switch (t.op) {
    case Opcode::kBr:
      return {t.target0};
    case Opcode::kCondBr:
      return {t.target0, t.target1};
    case Opcode::kRet:
      return {};
    default:
      SPT_UNREACHABLE("bad terminator");
  }
}

std::size_t Function::instrCount() const {
  std::size_t n = 0;
  for (const auto& b : blocks) n += b.instrs.size();
  return n;
}

FuncId Module::addFunction(std::string name, std::uint32_t param_count) {
  SPT_CHECK_MSG(findFunction(name) == kInvalidFunc,
                "duplicate function name");
  Function f;
  f.id = static_cast<FuncId>(funcs_.size());
  f.name = std::move(name);
  f.param_count = param_count;
  f.reg_count = param_count;
  funcs_.push_back(std::move(f));
  finalized_ = false;
  return funcs_.back().id;
}

Function& Module::function(FuncId id) {
  // Callers that mutate the function must call finalize() again before
  // tracing or simulating; StaticIds are only valid for the finalized shape.
  SPT_CHECK(id < funcs_.size());
  return funcs_[id];
}

const Function& Module::function(FuncId id) const {
  SPT_CHECK(id < funcs_.size());
  return funcs_[id];
}

FuncId Module::findFunction(const std::string& name) const {
  for (const auto& f : funcs_) {
    if (f.name == name) return f.id;
  }
  return kInvalidFunc;
}

void Module::finalize() {
  locations_.clear();
  StaticId next = 0;
  for (auto& f : funcs_) {
    for (auto& b : f.blocks) {
      for (std::uint32_t i = 0; i < b.instrs.size(); ++i) {
        b.instrs[i].static_id = next++;
        locations_.push_back({f.id, b.id, i});
      }
    }
  }
  static_count_ = next;
  finalized_ = true;
}

void Module::setForkSlice(StaticId fork_sid, std::vector<Instr> slice) {
  SPT_CHECK_MSG(finalized_, "attach slices after the final finalize()");
  SPT_CHECK(instrAt(fork_sid).op == Opcode::kSptFork);
  if (slice.empty()) {
    fork_slices_.erase(fork_sid);
  } else {
    fork_slices_[fork_sid] = std::move(slice);
  }
}

const std::vector<Instr>* Module::forkSlice(StaticId fork_sid) const {
  const auto it = fork_slices_.find(fork_sid);
  return it == fork_slices_.end() ? nullptr : &it->second;
}

std::uint64_t Module::structuralDigest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto byte = [&h](unsigned char b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };
  const auto word = [&byte](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  };
  const auto str = [&](const std::string& s) {
    word(s.size());
    for (const char c : s) byte(static_cast<unsigned char>(c));
  };

  word(funcs_.size());
  word(main_func_);
  for (const Function& f : funcs_) {
    str(f.name);
    word(f.param_count);
    word(f.reg_count);
    word(f.blocks.size());
    for (const BasicBlock& b : f.blocks) {
      str(b.label);
      word(b.instrs.size());
      for (const Instr& in : b.instrs) {
        word(static_cast<std::uint64_t>(in.op));
        word(in.dst.index);
        word(in.a.index);
        word(in.b.index);
        word(static_cast<std::uint64_t>(in.imm));
        word(in.target0);
        word(in.target1);
        word(in.callee);
        word(in.args.size());
        for (const Reg r : in.args) word(r.index);
      }
    }
  }
  return h;
}

const Module::StaticLocation& Module::locate(StaticId id) const {
  SPT_CHECK(finalized_ && id < locations_.size());
  return locations_[id];
}

const Instr& Module::instrAt(StaticId id) const {
  const StaticLocation& loc = locate(id);
  return funcs_[loc.func].blocks[loc.block].instrs[loc.index];
}

}  // namespace spt::ir

// Instruction and register representation of the SPT mini-IR.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/opcode.h"

namespace spt::ir {

/// Virtual register. Functions have an unbounded virtual register file;
/// registers are function-local. Strongly typed to prevent mixing with
/// block/function ids.
struct Reg {
  std::uint32_t index = kInvalidIndex;

  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  constexpr Reg() = default;
  constexpr explicit Reg(std::uint32_t i) : index(i) {}

  constexpr bool valid() const { return index != kInvalidIndex; }
  constexpr bool operator==(const Reg&) const = default;
  constexpr auto operator<=>(const Reg&) const = default;
};

inline constexpr Reg kNoReg{};

using BlockId = std::uint32_t;
using FuncId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = 0xffffffffu;
inline constexpr FuncId kInvalidFunc = 0xffffffffu;

/// Module-wide unique id of a static instruction, assigned by
/// Module::finalize(). Doubles as the basis of the instruction's synthetic
/// code address for I-cache simulation.
using StaticId = std::uint32_t;
inline constexpr StaticId kInvalidStaticId = 0xffffffffu;

/// A single three-address instruction.
///
/// Field usage by opcode family:
///  - arithmetic/compare: dst, a, b (kMov/kConst use a / imm)
///  - kLoad:  dst = mem64[a + imm]
///  - kStore: mem64[a + imm] = b
///  - kBr: target0;   kCondBr: a, target0 (taken), target1 (not taken)
///  - kCall: callee, args, dst (optional)
///  - kRet: a (optional)
///  - kSptFork: target0 (speculative thread start-point)
///  - kHalloc: dst, imm (byte count)
struct Instr {
  Opcode op = Opcode::kNop;
  Reg dst;
  Reg a;
  Reg b;
  std::int64_t imm = 0;
  BlockId target0 = kInvalidBlock;
  BlockId target1 = kInvalidBlock;
  FuncId callee = kInvalidFunc;
  std::vector<Reg> args;

  /// Assigned by Module::finalize(); kInvalidStaticId before that.
  StaticId static_id = kInvalidStaticId;

  /// Collects source registers (a, b, args as applicable) into `out`.
  void appendUses(std::vector<Reg>& out) const;

  /// True if this instruction reads register r.
  bool uses(Reg r) const;
};

}  // namespace spt::ir

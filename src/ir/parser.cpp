#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <vector>

namespace spt::ir {
namespace {

/// Cursor over one line of text with tiny combinators.
class Line {
 public:
  explicit Line(const std::string& s) : s_(s) {}

  void skipSpace() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) ++pos_;
  }

  bool eat(const char* literal) {
    skipSpace();
    const std::size_t n = std::char_traits<char>::length(literal);
    if (s_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  bool atEnd() {
    skipSpace();
    // A trailing comment counts as end of content.
    return pos_ >= s_.size() || s_[pos_] == ';';
  }

  std::optional<std::string> ident() {
    skipSpace();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '_' || s_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    return s_.substr(start, pos_ - start);
  }

  std::optional<std::int64_t> integer() {
    skipSpace();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    // Parse as unsigned first so INT64_MIN round-trips.
    errno = 0;
    const std::string tok = s_.substr(start, pos_ - start);
    return static_cast<std::int64_t>(std::strtoll(tok.c_str(), nullptr, 10));
  }

  std::optional<Reg> reg() {
    skipSpace();
    if (pos_ >= s_.size() || s_[pos_] != 'r') return std::nullopt;
    const std::size_t save = pos_;
    ++pos_;
    const auto n = integer();
    if (!n || *n < 0) {
      pos_ = save;
      return std::nullopt;
    }
    return Reg{static_cast<std::uint32_t>(*n)};
  }

  std::optional<BlockId> blockRef() {
    skipSpace();
    if (pos_ >= s_.size() || s_[pos_] != 'B') return std::nullopt;
    const std::size_t save = pos_;
    ++pos_;
    const auto n = integer();
    if (!n || *n < 0) {
      pos_ = save;
      return std::nullopt;
    }
    return static_cast<BlockId>(*n);
  }

  std::size_t pos() const { return pos_; }
  void advanceTo(std::size_t p) { pos_ = p; }
  const std::string& text() const { return s_; }

  /// 1-based column of the next content (for diagnostics).
  std::size_t column() {
    skipSpace();
    return pos_ + 1;
  }

  /// The next token, for "got '...'" diagnostics: an identifier-like run,
  /// or a single punctuation character; empty at end of content.
  std::string peekToken() {
    skipSpace();
    if (pos_ >= s_.size() || s_[pos_] == ';') return "";
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '_' || s_[end] == '.' || s_[end] == '-')) {
      ++end;
    }
    if (end == pos_) end = pos_ + 1;  // punctuation: one char
    return s_.substr(pos_, end - pos_);
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

struct Parser {
  const std::vector<std::string>& lines;
  Module module;
  ParseError error;
  bool failed = false;

  explicit Parser(const std::vector<std::string>& ls, std::string name)
      : lines(ls), module(std::move(name)) {}

  bool fail(std::size_t line_no, std::string message) {
    return failCol(line_no, 0, std::move(message));
  }

  bool failCol(std::size_t line_no, std::size_t col, std::string message) {
    if (!failed) {
      failed = true;
      error.line = line_no + 1;
      error.column = col;
      error.message = std::move(message);
    }
    return false;
  }

  /// fail() with the position and offending token of `line`'s cursor.
  bool failAt(std::size_t line_no, Line& line, std::string message) {
    if (!failed) {
      const std::string tok = line.peekToken();
      message += tok.empty() ? " (at end of line)" : " (got '" + tok + "')";
      failed = true;
      error.line = line_no + 1;
      error.column = line.column();
      error.message = std::move(message);
    }
    return false;
  }

  /// Parses "func @name(params=N, regs=M)" headers (pass 1).
  bool scanHeaders() {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      Line line(lines[i]);
      if (!line.eat("func")) continue;
      if (!line.eat("@")) return failAt(i, line, "expected @name after func");
      const auto name = line.ident();
      if (!name) return failAt(i, line, "expected function name");
      if (!line.eat("(params=")) return failAt(i, line, "expected (params=");
      const auto params = line.integer();
      if (!params || *params < 0) return failAt(i, line, "bad param count");
      if (!line.eat(", regs=")) return failAt(i, line, "expected , regs=");
      const auto regs = line.integer();
      if (!regs || *regs < *params) return failAt(i, line, "bad reg count");
      if (module.findFunction(*name) != kInvalidFunc) {
        return fail(i, "duplicate function @" + *name);
      }
      const FuncId f =
          module.addFunction(*name, static_cast<std::uint32_t>(*params));
      module.function(f).reg_count = static_cast<std::uint32_t>(*regs);
    }
    if (module.functionCount() == 0) {
      return fail(0, "no functions in module");
    }
    return true;
  }

  std::optional<Reg> expectReg(Line& line, std::size_t line_no,
                               const char* what) {
    const auto r = line.reg();
    if (!r) failAt(line_no, line, std::string("expected register for ") + what);
    return r;
  }

  std::optional<BlockId> expectBlock(Line& line, std::size_t line_no) {
    const auto b = line.blockRef();
    if (!b) failAt(line_no, line, "expected block reference (B<n>)");
    return b;
  }

  /// Parses one instruction line into `instr`. Returns false on error.
  bool parseInstr(Function& func, const std::string& text,
                  std::size_t line_no, Instr& instr) {
    Line line(text);

    // Optional "rN = " destination.
    std::optional<Reg> dst;
    {
      Line probe(text);
      const auto r = probe.reg();
      if (r && probe.eat("=")) {
        dst = r;
        line.advanceTo(probe.pos());
      }
    }

    const std::size_t op_col = line.column();
    const auto op_name = line.ident();
    if (!op_name) return failAt(line_no, line, "expected opcode");
    const std::string& op = *op_name;

    static const std::unordered_map<std::string, Opcode> kBinary = {
        {"add", Opcode::kAdd},     {"sub", Opcode::kSub},
        {"mul", Opcode::kMul},     {"div", Opcode::kDiv},
        {"rem", Opcode::kRem},     {"and", Opcode::kAnd},
        {"or", Opcode::kOr},       {"xor", Opcode::kXor},
        {"shl", Opcode::kShl},     {"shr", Opcode::kShr},
        {"cmpeq", Opcode::kCmpEq}, {"cmpne", Opcode::kCmpNe},
        {"cmplt", Opcode::kCmpLt}, {"cmple", Opcode::kCmpLe},
        {"cmpgt", Opcode::kCmpGt}, {"cmpge", Opcode::kCmpGe},
    };

    if (const auto it = kBinary.find(op); it != kBinary.end()) {
      if (!dst) return failCol(line_no, op_col, op + " needs a destination");
      instr.op = it->second;
      instr.dst = *dst;
      const auto a = expectReg(line, line_no, "lhs");
      if (!a) return false;
      if (!line.eat(",")) return failAt(line_no, line, "expected ','");
      const auto b = expectReg(line, line_no, "rhs");
      if (!b) return false;
      instr.a = *a;
      instr.b = *b;
      return true;
    }
    if (op == "const" || op == "halloc") {
      if (!dst) return failCol(line_no, op_col, op + " needs a destination");
      instr.op = op == "const" ? Opcode::kConst : Opcode::kHalloc;
      instr.dst = *dst;
      const auto imm = line.integer();
      if (!imm) return failAt(line_no, line, "expected immediate");
      instr.imm = *imm;
      return true;
    }
    if (op == "mov") {
      if (!dst) return failCol(line_no, op_col, "mov needs a destination");
      instr.op = Opcode::kMov;
      instr.dst = *dst;
      const auto a = expectReg(line, line_no, "source");
      if (!a) return false;
      instr.a = *a;
      return true;
    }
    if (op == "load") {
      if (!dst) return failCol(line_no, op_col, "load needs a destination");
      instr.op = Opcode::kLoad;
      instr.dst = *dst;
      if (!line.eat("[")) return failAt(line_no, line, "expected '['");
      const auto a = expectReg(line, line_no, "address");
      if (!a) return false;
      if (!line.eat("+")) return failAt(line_no, line, "expected '+'");
      const auto imm = line.integer();
      if (!imm) return failAt(line_no, line, "expected offset");
      if (!line.eat("]")) return failAt(line_no, line, "expected ']'");
      instr.a = *a;
      instr.imm = *imm;
      return true;
    }
    if (op == "store") {
      instr.op = Opcode::kStore;
      if (!line.eat("[")) return failAt(line_no, line, "expected '['");
      const auto a = expectReg(line, line_no, "address");
      if (!a) return false;
      if (!line.eat("+")) return failAt(line_no, line, "expected '+'");
      const auto imm = line.integer();
      if (!imm) return failAt(line_no, line, "expected offset");
      if (!line.eat("]")) return failAt(line_no, line, "expected ']'");
      if (!line.eat("=")) return failAt(line_no, line, "expected '='");
      const auto b = expectReg(line, line_no, "value");
      if (!b) return false;
      instr.a = *a;
      instr.b = *b;
      instr.imm = *imm;
      return true;
    }
    if (op == "br" || op == "spt_fork") {
      instr.op = op == "br" ? Opcode::kBr : Opcode::kSptFork;
      const auto target = expectBlock(line, line_no);
      if (!target) return false;
      instr.target0 = *target;
      return true;
    }
    if (op == "condbr") {
      instr.op = Opcode::kCondBr;
      const auto c = expectReg(line, line_no, "condition");
      if (!c) return false;
      if (!line.eat(",")) return failAt(line_no, line, "expected ','");
      const auto t0 = expectBlock(line, line_no);
      if (!t0) return false;
      if (!line.eat(",")) return failAt(line_no, line, "expected ','");
      const auto t1 = expectBlock(line, line_no);
      if (!t1) return false;
      instr.a = *c;
      instr.target0 = *t0;
      instr.target1 = *t1;
      return true;
    }
    if (op == "call") {
      instr.op = Opcode::kCall;
      if (dst) instr.dst = *dst;
      if (!line.eat("@")) return failAt(line_no, line, "expected @callee");
      const std::size_t callee_col = line.column();
      const auto callee = line.ident();
      if (!callee) return failAt(line_no, line, "expected callee name");
      instr.callee = module.findFunction(*callee);
      if (instr.callee == kInvalidFunc) {
        return failCol(line_no, callee_col, "unknown callee @" + *callee);
      }
      if (!line.eat("(")) return failAt(line_no, line, "expected '('");
      if (!line.eat(")")) {
        for (;;) {
          const auto arg = expectReg(line, line_no, "argument");
          if (!arg) return false;
          instr.args.push_back(*arg);
          if (line.eat(")")) break;
          if (!line.eat(",")) return failAt(line_no, line, "expected ',' or ')'");
        }
      }
      return true;
    }
    if (op == "ret") {
      instr.op = Opcode::kRet;
      if (!line.atEnd()) {
        const auto a = expectReg(line, line_no, "return value");
        if (!a) return false;
        instr.a = *a;
      }
      return true;
    }
    if (op == "spt_kill") {
      instr.op = Opcode::kSptKill;
      return true;
    }
    if (op == "nop") {
      instr.op = Opcode::kNop;
      return true;
    }
    (void)func;
    return failCol(line_no, op_col, "unknown opcode '" + op + "'");
  }

  /// Pass 2: fills function bodies.
  bool parseBodies() {
    Function* func = nullptr;
    for (std::size_t i = 0; i < lines.size() && !failed; ++i) {
      const std::string& raw = lines[i];
      Line line(raw);
      if (line.atEnd()) continue;

      if (Line probe(raw); probe.eat("module")) continue;
      if (Line probe(raw); probe.eat("func")) {
        Line header(raw);
        header.eat("func");
        header.eat("@");
        const auto name = header.ident();
        func = &module.function(module.findFunction(*name));
        continue;
      }

      // Block label: "name:" (content before ':' with no '=' sign).
      const std::size_t colon = raw.find(':');
      const std::size_t eq = raw.find('=');
      if (colon != std::string::npos &&
          (eq == std::string::npos || colon < eq)) {
        if (func == nullptr) return fail(i, "label outside a function");
        Line lbl(raw);
        const auto name = lbl.ident();
        BasicBlock block;
        block.id = static_cast<BlockId>(func->blocks.size());
        block.label = name ? *name : "";
        func->blocks.push_back(std::move(block));
        continue;
      }

      if (func == nullptr || func->blocks.empty()) {
        return fail(i, "instruction outside a block");
      }
      Instr instr;
      if (!parseInstr(*func, raw, i, instr)) return false;
      func->blocks.back().instrs.push_back(std::move(instr));
    }
    return !failed;
  }
};

}  // namespace

std::optional<Module> parseModule(const std::string& text,
                                  ParseError* error) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }

  // Module name from the first "module <name>" line, if present.
  std::string name = "parsed";
  for (const std::string& l : lines) {
    Line line(l);
    if (line.eat("module")) {
      if (const auto n = line.ident()) name = *n;
      break;
    }
  }

  Parser parser(lines, std::move(name));
  if (!parser.scanHeaders() || !parser.parseBodies()) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  const FuncId main_id = parser.module.findFunction("main");
  if (main_id != kInvalidFunc) parser.module.setMainFunc(main_id);
  return std::move(parser.module);
}

}  // namespace spt::ir

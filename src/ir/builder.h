// Fluent construction API for the SPT mini-IR.
//
// Workloads and tests build programs through IrBuilder rather than pushing
// Instr structs by hand; the builder allocates registers, keeps an insert
// point, and fills in the boilerplate.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/module.h"

namespace spt::ir {

class IrBuilder {
 public:
  IrBuilder(Module& module, FuncId func);

  Module& module() { return module_; }
  Function& func();
  FuncId funcId() const { return func_; }

  /// Creates a new empty block; does not move the insert point.
  BlockId createBlock(std::string label);

  /// Subsequent instructions are appended to `block`.
  void setInsertPoint(BlockId block);
  BlockId insertPoint() const { return insert_; }

  /// i-th parameter register (r0..r(param_count-1)).
  Reg param(std::uint32_t i) const;

  /// Fresh unused virtual register.
  Reg newReg();

  // -- Value-producing instructions (return the destination register) --
  Reg iconst(std::int64_t value);
  Reg mov(Reg src);
  Reg add(Reg a, Reg b);
  Reg sub(Reg a, Reg b);
  Reg mul(Reg a, Reg b);
  Reg div(Reg a, Reg b);
  Reg rem(Reg a, Reg b);
  Reg and_(Reg a, Reg b);
  Reg or_(Reg a, Reg b);
  Reg xor_(Reg a, Reg b);
  Reg shl(Reg a, Reg b);
  Reg shr(Reg a, Reg b);
  Reg cmpEq(Reg a, Reg b);
  Reg cmpNe(Reg a, Reg b);
  Reg cmpLt(Reg a, Reg b);
  Reg cmpLe(Reg a, Reg b);
  Reg cmpGt(Reg a, Reg b);
  Reg cmpGe(Reg a, Reg b);
  Reg load(Reg addr, std::int64_t offset = 0);
  Reg halloc(std::int64_t bytes);

  /// addImm/subImm helpers emit a const + add pair (the IR has no
  /// immediate-operand arithmetic on purpose — keeps the DDG uniform).
  Reg addImm(Reg a, std::int64_t imm);

  // -- Instructions writing a caller-chosen destination --
  void movTo(Reg dst, Reg src);
  void constTo(Reg dst, std::int64_t value);
  void loadTo(Reg dst, Reg addr, std::int64_t offset = 0);

  // -- Non-value instructions --
  void store(Reg addr, std::int64_t offset, Reg value);
  void br(BlockId target);
  void condBr(Reg cond, BlockId if_true, BlockId if_false);
  void ret(Reg value = kNoReg);
  Reg call(FuncId callee, std::initializer_list<Reg> args);
  Reg call(FuncId callee, const std::vector<Reg>& args);
  void callVoid(FuncId callee, std::initializer_list<Reg> args);
  void sptFork(BlockId start_point);
  void sptKill();
  void nop();

  /// Appends an arbitrary pre-built instruction at the insert point.
  void append(Instr instr);

 private:
  Instr& emit(Instr instr);
  Reg emitBinary(Opcode op, Reg a, Reg b);

  Module& module_;
  FuncId func_;
  BlockId insert_ = kInvalidBlock;
};

}  // namespace spt::ir

#include "ir/instr.h"

#include <algorithm>

namespace spt::ir {

void Instr::appendUses(std::vector<Reg>& out) const {
  if (a.valid()) out.push_back(a);
  if (b.valid()) out.push_back(b);
  for (const Reg r : args) {
    if (r.valid()) out.push_back(r);
  }
}

bool Instr::uses(Reg r) const {
  if (!r.valid()) return false;
  if (a == r || b == r) return true;
  return std::find(args.begin(), args.end(), r) != args.end();
}

}  // namespace spt::ir

#include "ir/opcode.h"

namespace spt::ir {

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpLe: return "cmple";
    case Opcode::kCmpGt: return "cmpgt";
    case Opcode::kCmpGe: return "cmpge";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kSptFork: return "spt_fork";
    case Opcode::kSptKill: return "spt_kill";
    case Opcode::kHalloc: return "halloc";
    case Opcode::kNop: return "nop";
  }
  return "???";
}

bool isBranch(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr;
}

bool isTerminator(Opcode op) { return isBranch(op) || op == Opcode::kRet; }

bool isMemory(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore;
}

bool producesValue(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
    case Opcode::kSptFork:
    case Opcode::kSptKill:
    case Opcode::kNop:
      return false;
    case Opcode::kCall:  // dst is optional but allowed
    default:
      return true;
  }
}

std::uint32_t baseLatency(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kDiv:
    case Opcode::kRem:
      return 20;
    case Opcode::kLoad:
      return 1;  // plus cache latency, added by the memory model
    default:
      return 1;
  }
}

bool isPureComputation(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
      return true;
    default:
      return false;
  }
}

}  // namespace spt::ir

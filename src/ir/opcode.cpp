#include "ir/opcode.h"

namespace spt::ir {

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::kConst: return "const";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpLe: return "cmple";
    case Opcode::kCmpGt: return "cmpgt";
    case Opcode::kCmpGe: return "cmpge";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kSptFork: return "spt_fork";
    case Opcode::kSptKill: return "spt_kill";
    case Opcode::kHalloc: return "halloc";
    case Opcode::kNop: return "nop";
  }
  return "???";
}

}  // namespace spt::ir

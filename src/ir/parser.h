// Text-format parser for the SPT mini-IR.
//
// Accepts the exact output of ir::printModule / printFunction, so modules
// round-trip through text. Users can author programs as text instead of
// through IrBuilder:
//
//   module demo
//   func @main(params=0, regs=3)
//   entry:  ; B0
//     r0 = const 0
//     r1 = const 10
//     br B1
//   loop:  ; B1
//     r2 = cmplt r0, r1
//     condbr r2, B2, B3
//   ...
//
// Branch targets use block ordinals ("B1" = the function's second block).
#pragma once

#include <optional>
#include <string>

#include "ir/module.h"

namespace spt::ir {

struct ParseError {
  std::size_t line = 0;    // 1-based
  std::size_t column = 0;  // 1-based; 0 when the error has no column
  /// Human-readable diagnostic; includes the offending token when there
  /// is one (e.g. "unknown opcode 'fused_mul'").
  std::string message;
};

/// Parses a whole module. On success the module's main function is the one
/// named "main" when present. Returns std::nullopt and fills `error` on
/// failure.
std::optional<Module> parseModule(const std::string& text,
                                  ParseError* error = nullptr);

}  // namespace spt::ir

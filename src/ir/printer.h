// Textual dump of the SPT mini-IR (diagnostics, golden tests).
#pragma once

#include <ostream>
#include <string>

#include "ir/module.h"

namespace spt::ir {

/// Prints one instruction, e.g. "r5 = add r3, r4" or "condbr r1, B2, B3".
void printInstr(std::ostream& os, const Module& module, const Instr& instr);

/// Prints a whole function with block labels.
void printFunction(std::ostream& os, const Module& module,
                   const Function& func);

/// Prints every function in the module.
void printModule(std::ostream& os, const Module& module);

/// Convenience: printFunction into a string.
std::string functionToString(const Module& module, const Function& func);

}  // namespace spt::ir

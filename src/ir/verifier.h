// Structural verifier for the SPT mini-IR.
//
// The SPT compiler rewrites loops aggressively; the verifier is run after
// every transformation in tests — and, opt-in, between compiler passes —
// to catch malformed output early. It never stops at the first defect:
// every violation is collected with its function/block/instruction
// context, so one inter-pass verification reports the complete damage a
// pass did.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace spt::ir {

/// One structural defect, located as precisely as the defect allows:
/// function-level problems leave `block` at kInvalidBlock; block-level
/// problems leave `at_instr` false.
struct Violation {
  std::string function;                // name ("" while inside verifyFunction)
  BlockId block = kInvalidBlock;
  std::uint32_t instr_index = 0;
  bool at_instr = false;
  std::string message;

  /// "@func B3[2]: message" (omitting the parts that are not set).
  std::string str() const;
};

/// Renders violations one per line (for check messages and CLI output).
std::string formatViolations(const std::vector<Violation>& violations);

/// Verifies structural invariants of a function:
///  - every block has exactly one terminator, at the end;
///  - branch targets are in range; call callees exist with matching arity;
///  - register indices are below reg_count;
///  - instructions have the operands their opcode requires;
///  - spt_fork targets a block of the same function.
/// Returns every violation found (empty means valid).
std::vector<Violation> verifyFunctionDetailed(const Module& module,
                                              const Function& func);

/// Verifies every function; violations carry the function name.
std::vector<Violation> verifyModuleDetailed(const Module& module);

/// String-only conveniences over the detailed API (one formatted line per
/// violation, same content as Violation::str()).
std::vector<std::string> verifyFunction(const Module& module,
                                        const Function& func);
std::vector<std::string> verifyModule(const Module& module);

}  // namespace spt::ir

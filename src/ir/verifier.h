// Structural verifier for the SPT mini-IR.
//
// The SPT compiler rewrites loops aggressively; the verifier is run after
// every transformation in tests to catch malformed output early.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace spt::ir {

/// Verifies structural invariants of a function:
///  - every block has exactly one terminator, at the end;
///  - branch targets are in range; call callees exist with matching arity;
///  - register indices are below reg_count;
///  - instructions have the operands their opcode requires;
///  - spt_fork targets a block of the same function.
/// Returns a list of human-readable problems (empty means valid).
std::vector<std::string> verifyFunction(const Module& module,
                                        const Function& func);

/// Verifies every function; aggregates problems prefixed by function name.
std::vector<std::string> verifyModule(const Module& module);

}  // namespace spt::ir

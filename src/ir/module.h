// Basic blocks, functions, and modules of the SPT mini-IR.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/instr.h"

namespace spt::ir {

/// A basic block: straight-line instructions ending in one terminator.
struct BasicBlock {
  BlockId id = kInvalidBlock;
  std::string label;
  std::vector<Instr> instrs;

  const Instr& terminator() const { return instrs.back(); }
  bool hasTerminator() const {
    return !instrs.empty() && isTerminator(instrs.back().op);
  }

  /// Successor block ids, taken edge first for kCondBr. Empty for kRet.
  std::vector<BlockId> successors() const;
};

/// A function. Parameters arrive in registers r0..r(param_count-1); entry is
/// always block 0.
struct Function {
  FuncId id = kInvalidFunc;
  std::string name;
  std::uint32_t param_count = 0;
  std::uint32_t reg_count = 0;  // virtual registers in use (>= param_count)
  std::vector<BasicBlock> blocks;

  BasicBlock& entry() { return blocks.front(); }
  const BasicBlock& entry() const { return blocks.front(); }

  /// Allocates a fresh virtual register.
  Reg newReg() { return Reg{reg_count++}; }

  /// Total static instruction count.
  std::size_t instrCount() const;
};

/// A module: a set of functions with unique names. `main_func` is the
/// program entry point used by the interpreter.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates an empty function and returns its id.
  FuncId addFunction(std::string name, std::uint32_t param_count);

  Function& function(FuncId id);
  const Function& function(FuncId id) const;
  std::size_t functionCount() const { return funcs_.size(); }

  /// Finds a function by name; returns kInvalidFunc if absent.
  FuncId findFunction(const std::string& name) const;

  FuncId mainFunc() const { return main_func_; }
  void setMainFunc(FuncId id) { main_func_ = id; }

  /// Assigns module-wide StaticIds to every instruction (in function/block/
  /// instruction order) and records the lookup side tables. Must be called
  /// (again) after any structural change before tracing or simulating.
  void finalize();
  bool finalized() const { return finalized_; }
  std::uint32_t staticInstrCount() const { return static_count_; }

  /// Reverse lookup from StaticId (valid after finalize()).
  struct StaticLocation {
    FuncId func = kInvalidFunc;
    BlockId block = kInvalidBlock;
    std::uint32_t index = 0;  // within the block
  };
  const StaticLocation& locate(StaticId id) const;
  const Instr& instrAt(StaticId id) const;

  /// Precomputation slices (docs/MULTIWAY.md): straight-line live-in
  /// predictor code the precomputation-slice pass attaches to a kSptFork
  /// instruction. The interpreter ignores them (they are metadata, not
  /// executed IR); the SPT machine runs them over the fork-time register
  /// snapshot before the chained speculative thread starts. Keys are
  /// finalize()-assigned StaticIds, so slices must be attached after the
  /// pipeline's final finalize() and are invalidated by structural edits.
  void setForkSlice(StaticId fork_sid, std::vector<Instr> slice);
  /// The slice for a fork site, or nullptr when the site uses the plain
  /// register-copy fork.
  const std::vector<Instr>* forkSlice(StaticId fork_sid) const;
  bool hasForkSlices() const { return !fork_slices_.empty(); }

  /// Order-sensitive FNV-1a digest of the module's structure: functions,
  /// blocks, and every instruction field except the finalize-assigned
  /// static_id, so the digest is stable across finalize() calls. Two
  /// modules with equal digests produce identical profiles under the same
  /// runner — the profile cache keys on it.
  std::uint64_t structuralDigest() const;

 private:
  std::string name_;
  std::vector<Function> funcs_;
  FuncId main_func_ = kInvalidFunc;
  bool finalized_ = false;
  std::uint32_t static_count_ = 0;
  std::vector<StaticLocation> locations_;
  std::map<StaticId, std::vector<Instr>> fork_slices_;
};

}  // namespace spt::ir

// Opcode set of the SPT mini-IR.
//
// The IR is a typed (int64-only) three-address representation at the same
// granularity ORC's WOPT statements have in the paper: arithmetic, memory,
// control flow, calls, and the two SPT threading instructions (spt_fork /
// spt_kill, paper Section 3.1).
#pragma once

#include <cstdint>

namespace spt::ir {

enum class Opcode : std::uint8_t {
  kConst,  // dst = imm
  kMov,    // dst = a
  kAdd,    // dst = a + b
  kSub,    // dst = a - b
  kMul,    // dst = a * b
  kDiv,    // dst = a / b   (b != 0 checked by the interpreter)
  kRem,    // dst = a % b   (b != 0 checked by the interpreter)
  kAnd,    // dst = a & b
  kOr,     // dst = a | b
  kXor,    // dst = a ^ b
  kShl,    // dst = a << (b & 63)
  kShr,    // dst = (uint64)a >> (b & 63)
  kCmpEq,  // dst = (a == b)
  kCmpNe,  // dst = (a != b)
  kCmpLt,  // dst = (a < b), signed
  kCmpLe,  // dst = (a <= b), signed
  kCmpGt,  // dst = (a > b), signed
  kCmpGe,  // dst = (a >= b), signed
  kLoad,   // dst = mem64[a + imm]
  kStore,  // mem64[a + imm] = b
  kBr,     // goto target0
  kCondBr, // if (a != 0) goto target0 else goto target1
  kCall,   // dst = callee(args...)   (dst optional)
  kRet,    // return a (a optional; kNoReg returns 0)
  kSptFork,  // fork speculative thread at target0 (no-op on spec pipeline)
  kSptKill,  // kill any running speculative thread
  kHalloc,   // dst = bump-allocate imm bytes from the interpreter heap
  kNop,
};

/// Stable mnemonic for printing and diagnostics.
const char* opcodeName(Opcode op);

// The classification predicates below run per trace record in the
// simulator and interpreter hot paths, so they are defined inline.

/// True for kBr/kCondBr (control transfers that end a block).
inline constexpr bool isBranch(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr;
}

/// True for kBr/kCondBr/kRet (all block terminators).
inline constexpr bool isTerminator(Opcode op) {
  return isBranch(op) || op == Opcode::kRet;
}

/// True for kLoad/kStore.
inline constexpr bool isMemory(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore;
}

/// True if the opcode writes a destination register (when dst is set).
inline constexpr bool producesValue(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
    case Opcode::kSptFork:
    case Opcode::kSptKill:
    case Opcode::kNop:
      return false;
    case Opcode::kCall:  // dst is optional but allowed
    default:
      return true;
  }
}

/// Fixed execution latency in cycles for non-memory opcodes; memory latency
/// comes from the cache model. Mirrors Itanium2-like integer latencies.
inline constexpr std::uint32_t baseLatency(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kDiv:
    case Opcode::kRem:
      return 20;
    case Opcode::kLoad:
      return 1;  // plus cache latency, added by the memory model
    default:
      return 1;
  }
}

/// True for pure register-to-register computations that the speculative
/// value emulator can re-evaluate (everything except memory/control/calls).
inline constexpr bool isPureComputation(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
      return true;
    default:
      return false;
  }
}

}  // namespace spt::ir

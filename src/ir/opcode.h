// Opcode set of the SPT mini-IR.
//
// The IR is a typed (int64-only) three-address representation at the same
// granularity ORC's WOPT statements have in the paper: arithmetic, memory,
// control flow, calls, and the two SPT threading instructions (spt_fork /
// spt_kill, paper Section 3.1).
#pragma once

#include <cstdint>

namespace spt::ir {

enum class Opcode : std::uint8_t {
  kConst,  // dst = imm
  kMov,    // dst = a
  kAdd,    // dst = a + b
  kSub,    // dst = a - b
  kMul,    // dst = a * b
  kDiv,    // dst = a / b   (b != 0 checked by the interpreter)
  kRem,    // dst = a % b   (b != 0 checked by the interpreter)
  kAnd,    // dst = a & b
  kOr,     // dst = a | b
  kXor,    // dst = a ^ b
  kShl,    // dst = a << (b & 63)
  kShr,    // dst = (uint64)a >> (b & 63)
  kCmpEq,  // dst = (a == b)
  kCmpNe,  // dst = (a != b)
  kCmpLt,  // dst = (a < b), signed
  kCmpLe,  // dst = (a <= b), signed
  kCmpGt,  // dst = (a > b), signed
  kCmpGe,  // dst = (a >= b), signed
  kLoad,   // dst = mem64[a + imm]
  kStore,  // mem64[a + imm] = b
  kBr,     // goto target0
  kCondBr, // if (a != 0) goto target0 else goto target1
  kCall,   // dst = callee(args...)   (dst optional)
  kRet,    // return a (a optional; kNoReg returns 0)
  kSptFork,  // fork speculative thread at target0 (no-op on spec pipeline)
  kSptKill,  // kill any running speculative thread
  kHalloc,   // dst = bump-allocate imm bytes from the interpreter heap
  kNop,
};

/// Stable mnemonic for printing and diagnostics.
const char* opcodeName(Opcode op);

/// True for kBr/kCondBr (control transfers that end a block).
bool isBranch(Opcode op);

/// True for kBr/kCondBr/kRet (all block terminators).
bool isTerminator(Opcode op);

/// True for kLoad/kStore.
bool isMemory(Opcode op);

/// True if the opcode writes a destination register (when dst is set).
bool producesValue(Opcode op);

/// Fixed execution latency in cycles for non-memory opcodes; memory latency
/// comes from the cache model. Mirrors Itanium2-like integer latencies.
std::uint32_t baseLatency(Opcode op);

/// True for pure register-to-register computations that the speculative
/// value emulator can re-evaluate (everything except memory/control/calls).
bool isPureComputation(Opcode op);

}  // namespace spt::ir

#include "ir/builder.h"

#include "support/check.h"

namespace spt::ir {

IrBuilder::IrBuilder(Module& module, FuncId func)
    : module_(module), func_(func) {}

Function& IrBuilder::func() { return module_.function(func_); }

BlockId IrBuilder::createBlock(std::string label) {
  Function& f = func();
  BasicBlock block;
  block.id = static_cast<BlockId>(f.blocks.size());
  block.label = std::move(label);
  f.blocks.push_back(std::move(block));
  return f.blocks.back().id;
}

void IrBuilder::setInsertPoint(BlockId block) {
  SPT_CHECK(block < func().blocks.size());
  insert_ = block;
}

Reg IrBuilder::param(std::uint32_t i) const {
  SPT_CHECK(i < module_.function(func_).param_count);
  return Reg{i};
}

Reg IrBuilder::newReg() { return func().newReg(); }

Instr& IrBuilder::emit(Instr instr) {
  SPT_CHECK_MSG(insert_ != kInvalidBlock, "no insert point set");
  BasicBlock& block = func().blocks[insert_];
  SPT_CHECK_MSG(!block.hasTerminator(), "appending after terminator");
  block.instrs.push_back(std::move(instr));
  return block.instrs.back();
}

Reg IrBuilder::emitBinary(Opcode op, Reg a, Reg b) {
  Instr i;
  i.op = op;
  i.dst = newReg();
  i.a = a;
  i.b = b;
  return emit(std::move(i)).dst;
}

Reg IrBuilder::iconst(std::int64_t value) {
  Instr i;
  i.op = Opcode::kConst;
  i.dst = newReg();
  i.imm = value;
  return emit(std::move(i)).dst;
}

Reg IrBuilder::mov(Reg src) {
  Instr i;
  i.op = Opcode::kMov;
  i.dst = newReg();
  i.a = src;
  return emit(std::move(i)).dst;
}

Reg IrBuilder::add(Reg a, Reg b) { return emitBinary(Opcode::kAdd, a, b); }
Reg IrBuilder::sub(Reg a, Reg b) { return emitBinary(Opcode::kSub, a, b); }
Reg IrBuilder::mul(Reg a, Reg b) { return emitBinary(Opcode::kMul, a, b); }
Reg IrBuilder::div(Reg a, Reg b) { return emitBinary(Opcode::kDiv, a, b); }
Reg IrBuilder::rem(Reg a, Reg b) { return emitBinary(Opcode::kRem, a, b); }
Reg IrBuilder::and_(Reg a, Reg b) { return emitBinary(Opcode::kAnd, a, b); }
Reg IrBuilder::or_(Reg a, Reg b) { return emitBinary(Opcode::kOr, a, b); }
Reg IrBuilder::xor_(Reg a, Reg b) { return emitBinary(Opcode::kXor, a, b); }
Reg IrBuilder::shl(Reg a, Reg b) { return emitBinary(Opcode::kShl, a, b); }
Reg IrBuilder::shr(Reg a, Reg b) { return emitBinary(Opcode::kShr, a, b); }
Reg IrBuilder::cmpEq(Reg a, Reg b) { return emitBinary(Opcode::kCmpEq, a, b); }
Reg IrBuilder::cmpNe(Reg a, Reg b) { return emitBinary(Opcode::kCmpNe, a, b); }
Reg IrBuilder::cmpLt(Reg a, Reg b) { return emitBinary(Opcode::kCmpLt, a, b); }
Reg IrBuilder::cmpLe(Reg a, Reg b) { return emitBinary(Opcode::kCmpLe, a, b); }
Reg IrBuilder::cmpGt(Reg a, Reg b) { return emitBinary(Opcode::kCmpGt, a, b); }
Reg IrBuilder::cmpGe(Reg a, Reg b) { return emitBinary(Opcode::kCmpGe, a, b); }

Reg IrBuilder::load(Reg addr, std::int64_t offset) {
  Instr i;
  i.op = Opcode::kLoad;
  i.dst = newReg();
  i.a = addr;
  i.imm = offset;
  return emit(std::move(i)).dst;
}

Reg IrBuilder::halloc(std::int64_t bytes) {
  Instr i;
  i.op = Opcode::kHalloc;
  i.dst = newReg();
  i.imm = bytes;
  return emit(std::move(i)).dst;
}

Reg IrBuilder::addImm(Reg a, std::int64_t imm) {
  return add(a, iconst(imm));
}

void IrBuilder::movTo(Reg dst, Reg src) {
  Instr i;
  i.op = Opcode::kMov;
  i.dst = dst;
  i.a = src;
  emit(std::move(i));
}

void IrBuilder::constTo(Reg dst, std::int64_t value) {
  Instr i;
  i.op = Opcode::kConst;
  i.dst = dst;
  i.imm = value;
  emit(std::move(i));
}

void IrBuilder::loadTo(Reg dst, Reg addr, std::int64_t offset) {
  Instr i;
  i.op = Opcode::kLoad;
  i.dst = dst;
  i.a = addr;
  i.imm = offset;
  emit(std::move(i));
}

void IrBuilder::store(Reg addr, std::int64_t offset, Reg value) {
  Instr i;
  i.op = Opcode::kStore;
  i.a = addr;
  i.b = value;
  i.imm = offset;
  emit(std::move(i));
}

void IrBuilder::br(BlockId target) {
  Instr i;
  i.op = Opcode::kBr;
  i.target0 = target;
  emit(std::move(i));
}

void IrBuilder::condBr(Reg cond, BlockId if_true, BlockId if_false) {
  Instr i;
  i.op = Opcode::kCondBr;
  i.a = cond;
  i.target0 = if_true;
  i.target1 = if_false;
  emit(std::move(i));
}

void IrBuilder::ret(Reg value) {
  Instr i;
  i.op = Opcode::kRet;
  i.a = value;
  emit(std::move(i));
}

Reg IrBuilder::call(FuncId callee, std::initializer_list<Reg> args) {
  return call(callee, std::vector<Reg>(args));
}

Reg IrBuilder::call(FuncId callee, const std::vector<Reg>& args) {
  Instr i;
  i.op = Opcode::kCall;
  i.dst = newReg();
  i.callee = callee;
  i.args = args;
  return emit(std::move(i)).dst;
}

void IrBuilder::callVoid(FuncId callee, std::initializer_list<Reg> args) {
  Instr i;
  i.op = Opcode::kCall;
  i.callee = callee;
  i.args = std::vector<Reg>(args);
  emit(std::move(i));
}

void IrBuilder::sptFork(BlockId start_point) {
  Instr i;
  i.op = Opcode::kSptFork;
  i.target0 = start_point;
  emit(std::move(i));
}

void IrBuilder::sptKill() {
  Instr i;
  i.op = Opcode::kSptKill;
  emit(std::move(i));
}

void IrBuilder::nop() {
  Instr i;
  i.op = Opcode::kNop;
  emit(std::move(i));
}

void IrBuilder::append(Instr instr) { emit(std::move(instr)); }

}  // namespace spt::ir

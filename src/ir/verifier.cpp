#include "ir/verifier.h"

namespace spt::ir {
namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& module, const Function& func)
      : module_(module), func_(func) {}

  std::vector<Violation> run() {
    if (func_.blocks.empty()) {
      report("function has no blocks");
      return problems_;
    }
    if (func_.reg_count < func_.param_count) {
      report("reg_count below param_count");
    }
    for (const auto& block : func_.blocks) {
      checkBlock(block);
    }
    return problems_;
  }

 private:
  void report(std::string msg) {
    Violation v;
    v.message = std::move(msg);
    problems_.push_back(std::move(v));
  }

  void reportBlock(const BasicBlock& block, std::string msg) {
    Violation v;
    v.block = block.id;
    v.message = std::move(msg);
    problems_.push_back(std::move(v));
  }

  void reportAt(const BasicBlock& block, std::size_t index, std::string msg) {
    Violation v;
    v.block = block.id;
    v.instr_index = static_cast<std::uint32_t>(index);
    v.at_instr = true;
    v.message = std::move(msg);
    problems_.push_back(std::move(v));
  }

  void checkReg(const BasicBlock& block, std::size_t index, Reg r,
                const char* role) {
    if (!r.valid()) {
      reportAt(block, index, std::string("missing ") + role + " register");
      return;
    }
    if (r.index >= func_.reg_count) {
      reportAt(block, index,
               std::string(role) + " register r" + std::to_string(r.index) +
                   " out of range");
    }
  }

  void checkTarget(const BasicBlock& block, std::size_t index,
                   BlockId target) {
    if (target == kInvalidBlock || target >= func_.blocks.size()) {
      reportAt(block, index, "branch target out of range");
    }
  }

  void checkBlock(const BasicBlock& block) {
    if (block.instrs.empty()) {
      reportBlock(block, "is empty");
      return;
    }
    if (!isTerminator(block.instrs.back().op)) {
      reportBlock(block, "lacks a terminator");
    }
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      if (isTerminator(instr.op) && i + 1 != block.instrs.size()) {
        reportAt(block, i, "terminator in the middle of a block");
      }
      checkInstr(block, i, instr);
    }
  }

  void checkInstr(const BasicBlock& block, std::size_t i, const Instr& in) {
    switch (in.op) {
      case Opcode::kConst:
      case Opcode::kHalloc:
        checkReg(block, i, in.dst, "dst");
        break;
      case Opcode::kMov:
        checkReg(block, i, in.dst, "dst");
        checkReg(block, i, in.a, "src");
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe:
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpGt:
      case Opcode::kCmpGe:
        checkReg(block, i, in.dst, "dst");
        checkReg(block, i, in.a, "lhs");
        checkReg(block, i, in.b, "rhs");
        break;
      case Opcode::kLoad:
        checkReg(block, i, in.dst, "dst");
        checkReg(block, i, in.a, "address");
        break;
      case Opcode::kStore:
        checkReg(block, i, in.a, "address");
        checkReg(block, i, in.b, "value");
        break;
      case Opcode::kBr:
        checkTarget(block, i, in.target0);
        break;
      case Opcode::kCondBr:
        checkReg(block, i, in.a, "condition");
        checkTarget(block, i, in.target0);
        checkTarget(block, i, in.target1);
        break;
      case Opcode::kCall: {
        if (in.callee == kInvalidFunc ||
            in.callee >= module_.functionCount()) {
          reportAt(block, i, "call to unknown function");
          break;
        }
        const Function& callee = module_.function(in.callee);
        if (in.args.size() != callee.param_count) {
          reportAt(block, i,
                   "call arity " + std::to_string(in.args.size()) +
                       " != param count " +
                       std::to_string(callee.param_count) + " of @" +
                       callee.name);
        }
        for (std::size_t k = 0; k < in.args.size(); ++k) {
          checkReg(block, i, in.args[k], "argument");
        }
        if (in.dst.valid()) checkReg(block, i, in.dst, "dst");
        break;
      }
      case Opcode::kRet:
        if (in.a.valid()) checkReg(block, i, in.a, "return value");
        break;
      case Opcode::kSptFork:
        checkTarget(block, i, in.target0);
        break;
      case Opcode::kSptKill:
      case Opcode::kNop:
        break;
    }
  }

  const Module& module_;
  const Function& func_;
  std::vector<Violation> problems_;
};

}  // namespace

std::string Violation::str() const {
  std::string out;
  if (!function.empty()) out += "@" + function + ": ";
  if (block != kInvalidBlock) {
    out += "B" + std::to_string(block);
    out += at_instr ? "[" + std::to_string(instr_index) + "]: " : " ";
  }
  out += message;
  return out;
}

std::string formatViolations(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    if (!out.empty()) out += '\n';
    out += v.str();
  }
  return out;
}

std::vector<Violation> verifyFunctionDetailed(const Module& module,
                                              const Function& func) {
  return FunctionVerifier(module, func).run();
}

std::vector<Violation> verifyModuleDetailed(const Module& module) {
  std::vector<Violation> all;
  for (FuncId f = 0; f < module.functionCount(); ++f) {
    const Function& func = module.function(f);
    for (Violation& v : verifyFunctionDetailed(module, func)) {
      v.function = func.name;
      all.push_back(std::move(v));
    }
  }
  return all;
}

std::vector<std::string> verifyFunction(const Module& module,
                                        const Function& func) {
  std::vector<std::string> out;
  for (const Violation& v : verifyFunctionDetailed(module, func)) {
    out.push_back(v.str());
  }
  return out;
}

std::vector<std::string> verifyModule(const Module& module) {
  std::vector<std::string> out;
  for (const Violation& v : verifyModuleDetailed(module)) {
    out.push_back(v.str());
  }
  return out;
}

}  // namespace spt::ir

#include "support/json.h"

#include <cmath>
#include <cstdio>

namespace spt::support {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < scopes_.size() * indent_; ++i) os_ << ' ';
}

void JsonWriter::beforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!scopes_.empty()) {
    if (!first_in_scope_) os_ << ',';
    newline();
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  os_ << '{';
  scopes_.push_back(Scope::kObject);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  const bool empty = first_in_scope_;
  scopes_.pop_back();
  if (!empty) newline();
  os_ << '}';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  os_ << '[';
  scopes_.push_back(Scope::kArray);
  first_in_scope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  const bool empty = first_in_scope_;
  scopes_.pop_back();
  if (!empty) newline();
  os_ << ']';
  first_in_scope_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!first_in_scope_) os_ << ',';
  newline();
  first_in_scope_ = false;
  writeEscaped(name);
  os_ << (indent_ > 0 ? ": " : ":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  writeEscaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  beforeValue();
  os_ << "null";
  return *this;
}

void JsonWriter::writeEscaped(std::string_view s) {
  os_ << '"' << jsonEscape(s) << '"';
}

}  // namespace spt::support

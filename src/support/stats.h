// Small statistics helpers shared by the profiler, simulator and benches.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace spt::support {

/// Division with an explicit zero-denominator policy: returns `fallback`
/// (default 0.0, never NaN/Inf) when `denominator` is zero. Every ratio in
/// the repository (percentages, speedups, IPC, commit ratios) routes
/// through this so that empty runs behave identically everywhere.
inline double safeRatio(double numerator, double denominator,
                        double fallback = 0.0) {
  return denominator == 0.0 ? fallback : numerator / denominator;
}

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// Zero-denominator policy: with count() == 0, mean/min/max/variance all
/// return 0.0 (a NaN-free sentinel, consistent with safeRatio); with
/// count() == 1, variance() is 0.0 (sample variance is undefined there).
class RunningStat {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Counting histogram over arbitrary integer keys (e.g. loop body sizes).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);

  std::uint64_t totalWeight() const { return total_; }
  std::uint64_t weightOf(std::int64_t key) const;

  /// Sum of weights for all keys <= `key` (for cumulative-coverage curves).
  std::uint64_t cumulativeWeightUpTo(std::int64_t key) const;

  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Ratio formatted as a percentage string with fixed precision, e.g.
/// "15.6%". A zero denominator formats as 0% (safeRatio's sentinel), never
/// "nan%"/"inf%".
std::string percent(double numerator, double denominator, int decimals = 1);

/// Plain fixed-precision formatting helper (std::to_string prints 6 digits).
std::string fixed(double value, int decimals = 2);

}  // namespace spt::support

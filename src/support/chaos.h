// Deterministic chaos plan for the process-isolation supervisor.
//
// Mirrors support::FaultPlan one layer up: where FaultPlan corrupts the
// *simulated* machine's speculative structures, ChaosPlan makes designated
// supervisor *worker processes* misbehave on demand — crash, abort, hang,
// reply with garbage, truncate the reply mid-frame, or exit without
// replying. Every containment path of harness::Supervisor (watchdog,
// signal reaping, protocol validation, retry/backoff) is therefore
// testable and exercised in CI with bit-reproducible outcomes: a
// directive names a cell index and fires on a deterministic set of
// attempts, never on a clock or a random draw.
//
// The plan targets **(cell, attempt)**, not worker processes: a one-shot
// fork-per-cell worker consults it once at startup, and a warm-pool
// worker consults it before each dispatched request using the attempt
// number carried in the SPTW v2 request frame. Sabotage therefore follows
// the cell wherever it runs, a pooled worker that executes a sabotaged
// cell dies (and is respawned) exactly as a one-shot worker would, and
// both worker models produce the same per-cell outcomes.
//
// The plan is inert unless a directive matches, and chaos only ever runs
// inside a forked worker — the in-process (--no-isolate) path refuses it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spt::support {

/// What a chaos-designated worker does instead of (or after) its real work.
enum class ChaosAction {
  kNone,
  kCrash,    // raise SIGSEGV before producing the cell result
  kAbort,    // std::abort() (SIGABRT)
  kHang,     // sleep forever; only the parent watchdog can end the cell
  kGarbage,  // reply with seeded garbage bytes instead of a frame
  kPartial,  // reply with a truncated prefix of a valid frame
  kExit,     // _exit(3) without writing any reply
};

std::string toString(ChaosAction action);

struct ChaosPlan {
  /// One sabotage order: cell `cell` performs `action` on every attempt
  /// `<= until_attempt` (1-based). The default affects all attempts; a
  /// spec like `4:crash@1` fails only the first attempt, so the retry
  /// succeeds — which is how the retry counters are tested.
  struct Directive {
    std::size_t cell = 0;
    ChaosAction action = ChaosAction::kNone;
    std::uint32_t until_attempt = ~std::uint32_t{0};
  };

  std::vector<Directive> directives;

  bool enabled() const { return !directives.empty(); }

  /// The action cell `cell` performs on (1-based) `attempt`; kNone when no
  /// directive matches. The last matching directive wins.
  ChaosAction actionFor(std::size_t cell, std::uint32_t attempt) const;

  /// Parses a comma-separated spec, `CELL:ACTION[@ATTEMPTS]` per entry,
  /// e.g. "2:crash,5:hang,7:garbage@1" (actions: crash, abort, hang,
  /// garbage, partial, exit). Returns std::nullopt and fills `error` on a
  /// malformed spec.
  static std::optional<ChaosPlan> parse(const std::string& spec,
                                        std::string* error = nullptr);

  /// The canonical spec string (round-trips through parse()).
  std::string toSpec() const;
};

/// Client-side sabotage for the sweep service (docs/ROBUSTNESS.md "Sweep
/// service"). Where ChaosPlan makes *workers* misbehave, ClientChaosPlan
/// makes a `sptc submit` client misbehave against the service — the
/// service-resilience tests and the CI soak drive sabotaged clients
/// alongside healthy ones and assert the healthy clients' results are
/// byte-identical to a non-serve run.
enum class ClientChaosAction {
  kNone,
  kDisconnect,  // close the socket after N result frames
  kGarbage,     // write garbage bytes instead of a frame, then close
  kSlowReader,  // stall before every read, forcing server-side buffering
};

std::string toString(ClientChaosAction action);

struct ClientChaosPlan {
  ClientChaosAction action = ClientChaosAction::kNone;
  /// For disconnect/garbage: result frames to consume before acting
  /// (0 = immediately after the request is sent).
  std::uint64_t after_results = 0;
  /// For slow-reader: stall per read, in milliseconds.
  std::uint64_t delay_ms = 20;

  bool enabled() const { return action != ClientChaosAction::kNone; }

  /// Parses `ACTION[@AFTER]` with ACTION one of disconnect | garbage |
  /// slow-reader (AFTER = result frames before acting; for slow-reader
  /// the suffix sets the per-read delay in ms instead).
  static std::optional<ClientChaosPlan> parse(const std::string& spec,
                                              std::string* error = nullptr);

  /// The canonical spec string (round-trips through parse()).
  std::string toSpec() const;
};

/// Scripted self-destruction for the sweep *service* process. Where
/// ChaosPlan sabotages workers and ClientChaosPlan sabotages clients,
/// ServiceCrashPlan makes `sptc serve` SIGKILL itself at a deterministic
/// point in its own lifecycle — the kill/restart recovery campaign drives
/// a journaled service through every crash point and asserts the final
/// results are byte-identical to an uninterrupted run. Points fire on
/// event counts, never timers, so every run crashes at the same state.
enum class ServiceCrashPoint {
  kNone,
  kAfterAdmit,   // after the admit journal record is fsync'd, before any
                 // cell dispatch or reply
  kAfterSettle,  // after the Nth cell settles (checkpoint + journal
                 // synced) — remaining cells and in-flight workers die
                 // with the process
  kMidFlush,     // after writing only the first `bytes` bytes of a reply
                 // flush to an admitted client
  kMidAppend,    // after appending only the first `bytes` bytes of a
                 // journal record (no newline) — leaves a torn tail
};

std::string toString(ServiceCrashPoint point);

struct ServiceCrashPlan {
  ServiceCrashPoint point = ServiceCrashPoint::kNone;
  /// The 1-based occurrence of the point's event that triggers the crash.
  std::uint64_t at = 1;
  /// For kMidFlush / kMidAppend: bytes written before dying.
  std::uint64_t bytes = 0;

  bool enabled() const { return point != ServiceCrashPoint::kNone; }

  /// Parses `POINT[@AT][:BYTES]` with POINT one of admit | settle | flush
  /// | append, e.g. "admit", "settle@2", "flush@1:7", "append:16".
  static std::optional<ServiceCrashPlan> parse(const std::string& spec,
                                               std::string* error = nullptr);

  /// The canonical spec string (round-trips through parse()).
  std::string toSpec() const;
};

}  // namespace spt::support

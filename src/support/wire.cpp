#include "support/wire.h"

#include <algorithm>
#include <cstring>

#if defined(__unix__) || (defined(__APPLE__) && defined(__MACH__))
#define SPT_WIRE_POSIX 1
#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace spt::support::wire {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

void appendRaw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

std::uint64_t frameChecksum(std::uint8_t kind, std::uint64_t length,
                            const char* payload) {
  std::uint64_t checksum = kFnvOffset;
  checksum = fnv1a(checksum, &kind, sizeof kind);
  checksum = fnv1a(checksum, &length, sizeof length);
  checksum = fnv1a(checksum, payload, static_cast<std::size_t>(length));
  return checksum;
}

}  // namespace

std::string encodeFrame(const char magic[4], std::uint32_t version,
                        std::uint8_t kind, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  appendRaw(out, magic, 4);
  appendRaw(out, &version, sizeof version);
  appendRaw(out, &kind, sizeof kind);
  const std::uint64_t length = payload.size();
  appendRaw(out, &length, sizeof length);
  out.append(payload);
  const std::uint64_t checksum =
      frameChecksum(kind, length, payload.data());
  appendRaw(out, &checksum, sizeof checksum);
  return out;
}

FrameScan scanFrame(const char magic[4], const std::string& buf,
                    std::size_t* frame_bytes, std::string* error) {
  const std::size_t magic_avail = std::min<std::size_t>(buf.size(), 4);
  if (std::memcmp(buf.data(), magic, magic_avail) != 0) {
    if (error) *error = "bad frame magic";
    return FrameScan::kCorrupt;
  }
  if (buf.size() < kFrameHeaderBytes) return FrameScan::kNeedMore;
  std::uint64_t length = 0;
  std::memcpy(&length, buf.data() + 4 + 4 + 1, sizeof length);
  if (length > kMaxFramePayloadBytes) {
    if (error) *error = "frame length " + std::to_string(length) +
                        " exceeds the payload cap";
    return FrameScan::kCorrupt;
  }
  const std::size_t total = kFrameHeaderBytes +
                            static_cast<std::size_t>(length) +
                            kFrameTrailerBytes;
  if (buf.size() < total) return FrameScan::kNeedMore;
  if (frame_bytes) *frame_bytes = total;
  return FrameScan::kFrame;
}

bool decodeFrame(const char magic[4], const std::string& frame,
                 std::uint32_t min_version, std::uint32_t max_version,
                 std::uint8_t max_kind, std::uint32_t* version,
                 std::uint8_t* kind, std::string* payload,
                 std::string* error) {
  if (frame.size() < kFrameHeaderBytes + kFrameTrailerBytes) {
    if (error) *error = "frame too short";
    return false;
  }
  if (std::memcmp(frame.data(), magic, 4) != 0) {
    if (error) *error = "bad frame magic";
    return false;
  }
  std::uint32_t v = 0;
  std::memcpy(&v, frame.data() + 4, sizeof v);
  if (v < min_version || v > max_version) {
    if (error) {
      *error = "unsupported frame version " + std::to_string(v) +
               " (expected " + std::to_string(min_version) + " to " +
               std::to_string(max_version) + ")";
    }
    return false;
  }
  const std::uint8_t k = static_cast<std::uint8_t>(frame[4 + 4]);
  if (k > max_kind) {
    if (error) {
      *error = "frame kind " + std::to_string(k) +
               " is not valid for version " + std::to_string(v);
    }
    return false;
  }
  std::uint64_t length = 0;
  std::memcpy(&length, frame.data() + 4 + 4 + 1, sizeof length);
  if (length > kMaxFramePayloadBytes) {
    if (error) *error = "frame length exceeds the payload cap";
    return false;
  }
  if (frame.size() != kFrameHeaderBytes + length + kFrameTrailerBytes) {
    if (error) {
      *error = "frame length field " + std::to_string(length) +
               " does not match the buffered bytes";
    }
    return false;
  }
  std::uint64_t stored = 0;
  std::memcpy(&stored, frame.data() + kFrameHeaderBytes + length,
              sizeof stored);
  const std::uint64_t checksum =
      frameChecksum(k, length, frame.data() + kFrameHeaderBytes);
  if (stored != checksum) {
    if (error) *error = "frame checksum mismatch";
    return false;
  }
  if (version) *version = v;
  if (kind) *kind = k;
  if (payload) payload->assign(frame, kFrameHeaderBytes,
                               static_cast<std::size_t>(length));
  return true;
}

#if SPT_WIRE_POSIX

bool socketsSupported() { return true; }

int listenUnix(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // A leftover socket file would fail the bind with EADDRINUSE whether
  // its owner is alive or was SIGKILLed, so probe it with a connect: a
  // refused connection means nobody is accepting — a stale file from an
  // unclean crash — and is safe to unlink; an accepted connection means a
  // live service owns the path and this start must refuse rather than
  // steal it. Only a real socket is ever unlinked: a regular file at the
  // path also refuses the connect, and deleting a user's file because it
  // shares a name with our socket would be unforgivable.
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      if (error) {
        *error = "socket path " + path + " exists and is not a socket";
      }
      ::close(fd);
      return -1;
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      int rc;
      do {
        rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr);
      } while (rc != 0 && errno == EINTR);
      const int connect_errno = errno;
      ::close(probe);
      if (rc == 0) {
        if (error) {
          *error = "socket path " + path +
                   " is owned by a live service; refusing to replace it";
        }
        ::close(fd);
        return -1;
      }
      if (connect_errno != ECONNREFUSED && connect_errno != ENOENT) {
        if (error) {
          *error = "probe connect " + path + ": " +
                   std::strerror(connect_errno);
        }
        ::close(fd);
        return -1;
      }
    }
    ::unlink(path.c_str());
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (error) {
      *error = "bind " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    if (error) {
      *error = "listen " + path + ": " + std::strerror(errno);
    }
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    if (error) *error = "socket path too long: " + path;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error) {
      *error = "connect " + path + ": " + std::strerror(errno) +
               (errno == ENOENT || errno == ECONNREFUSED
                    ? " (is the service running?)"
                    : "");
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

bool setNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

bool writeAllFd(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

int readSomeFd(int fd, std::string* buf, std::size_t max_bytes) {
  char chunk[65536];
  const std::size_t want = std::min(max_bytes, sizeof chunk);
  ssize_t n;
  do {
    n = ::read(fd, chunk, want);
  } while (n < 0 && errno == EINTR);
  if (n > 0) {
    buf->append(chunk, static_cast<std::size_t>(n));
    return static_cast<int>(n);
  }
  if (n == 0) return 0;
  if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  return -2;
}

#else  // !SPT_WIRE_POSIX

bool socketsSupported() { return false; }
int listenUnix(const std::string&, int, std::string* error) {
  if (error) *error = "unix sockets are not supported on this platform";
  return -1;
}
int connectUnix(const std::string&, std::string* error) {
  if (error) *error = "unix sockets are not supported on this platform";
  return -1;
}
bool setNonBlocking(int, bool) { return false; }
bool writeAllFd(int, const char*, std::size_t) { return false; }
int readSomeFd(int, std::string*, std::size_t) { return -2; }

#endif  // SPT_WIRE_POSIX

}  // namespace spt::support::wire

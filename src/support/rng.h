// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every randomized component of the repository (workload data, profiling
// inputs, synthetic traces) draws from an explicitly seeded Rng so that all
// benches and tests are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace spt::support {

/// Derives a per-task seed from a base seed and a task index (splitmix64
/// finalizer over their combination). Parallel sweeps hand task i the seed
/// deriveSeed(base, i) so results are bit-identical at any worker count:
/// the seed depends only on the submission index, never on scheduling.
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t task_index);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed). Not cryptographic; fast and high quality
/// for simulation purposes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool nextBool(double p);

  /// Geometric-ish small integer: number of successes before failure with
  /// continue-probability p; capped at `cap` to bound loop trip counts.
  std::uint64_t nextGeometric(double p, std::uint64_t cap);

 private:
  std::uint64_t state_[4];
};

}  // namespace spt::support

// Lightweight runtime checks used across the SPT code base.
//
// SPT_CHECK is always on (simulator and compiler correctness both depend on
// internal invariants; the cost of the checks is negligible next to the
// interpretation/simulation work). SPT_UNREACHABLE marks impossible paths.
//
// By default a failed check prints and aborts. A harness that needs to
// quarantine a poisoned cell instead of dying (harness::runSweep in
// quarantine mode, the fault-injection campaign) can arm the opt-in
// throwing mode, after which a failed check throws support::SptInternalError
// carrying the condition, file, line, and message. The mode is a
// process-global atomic: arming it affects every thread, which is exactly
// what a multi-worker sweep wants.
#pragma once

namespace spt::support {

/// Failure sink for SPT_CHECK / SPT_UNREACHABLE. Aborts, or throws
/// SptInternalError when the throwing mode is armed.
[[noreturn]] void checkFailed(const char* cond, const char* file, int line,
                              const char* msg);

/// Queries / sets the process-global throwing mode for failed checks.
bool checkThrowMode();
void setCheckThrowMode(bool enabled);

/// RAII arm/disarm for the throwing mode (restores the previous value).
class ScopedCheckThrowMode {
 public:
  explicit ScopedCheckThrowMode(bool enabled)
      : previous_(checkThrowMode()) {
    setCheckThrowMode(enabled);
  }
  ~ScopedCheckThrowMode() { setCheckThrowMode(previous_); }
  ScopedCheckThrowMode(const ScopedCheckThrowMode&) = delete;
  ScopedCheckThrowMode& operator=(const ScopedCheckThrowMode&) = delete;

 private:
  bool previous_;
};

}  // namespace spt::support

#define SPT_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::spt::support::checkFailed(#cond, __FILE__, __LINE__, nullptr);  \
    }                                                                   \
  } while (false)

#define SPT_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::spt::support::checkFailed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)

#define SPT_UNREACHABLE(msg) \
  ::spt::support::checkFailed("unreachable", __FILE__, __LINE__, (msg))

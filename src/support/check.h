// Lightweight runtime checks used across the SPT code base.
//
// SPT_CHECK is always on (simulator and compiler correctness both depend on
// internal invariants; the cost of the checks is negligible next to the
// interpretation/simulation work). SPT_UNREACHABLE marks impossible paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace spt::support {

[[noreturn]] inline void checkFailed(const char* cond, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "SPT_CHECK failed: %s\n  at %s:%d\n  %s\n", cond, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace spt::support

#define SPT_CHECK(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::spt::support::checkFailed(#cond, __FILE__, __LINE__, nullptr);  \
    }                                                                   \
  } while (false)

#define SPT_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::spt::support::checkFailed(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)

#define SPT_UNREACHABLE(msg) \
  ::spt::support::checkFailed("unreachable", __FILE__, __LINE__, (msg))

#include "support/table.h"

#include <algorithm>

#include "support/check.h"

namespace spt::support {
namespace {

std::string csvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::setHeader(std::vector<std::string> header) {
  SPT_CHECK_MSG(rows_.empty(), "setHeader must precede addRow");
  header_ = std::move(header);
}

void Table::addRow(std::vector<std::string> row) {
  SPT_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto printRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  const auto printRule = [&] {
    os << "+";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  printRule();
  printRow(header_);
  printRule();
  for (const auto& row : rows_) printRow(row);
  printRule();
}

void Table::printCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csvEscape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace spt::support

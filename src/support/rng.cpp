#include "support/rng.h"

#include "support/check.h"

namespace spt::support {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t task_index) {
  // One splitmix64 step keyed by the index decorrelates neighboring tasks;
  // the xor fold keeps distinct bases distinct for every index.
  std::uint64_t x = base ^ (task_index * 0xbf58476d1ce4e5b9ULL);
  return splitmix64(x);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) {
  SPT_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = span == 0 ? next() : nextBelow(span);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return nextDouble() < p;
}

std::uint64_t Rng::nextGeometric(double p, std::uint64_t cap) {
  std::uint64_t n = 0;
  while (n < cap && nextBool(p)) ++n;
  return n;
}

}  // namespace spt::support

#include "support/stats.h"

#include <cmath>
#include <cstdio>

namespace spt::support {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  bins_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::weightOf(std::int64_t key) const {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

std::uint64_t Histogram::cumulativeWeightUpTo(std::int64_t key) const {
  std::uint64_t acc = 0;
  for (const auto& [k, w] : bins_) {
    if (k > key) break;
    acc += w;
  }
  return acc;
}

std::string percent(double numerator, double denominator, int decimals) {
  const double v = 100.0 * safeRatio(numerator, denominator);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, v);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace spt::support

// Minimal streaming JSON writer for machine-readable bench output.
//
// The benches and `sptc sweep` emit one JSON document next to each ASCII
// table so downstream plotting needs no table scraping. The writer is a
// push API (begin/end object/array, key, value) that handles commas,
// indentation, string escaping, and NaN/Inf sanitization (JSON has no
// non-finite numbers; they are emitted as null).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spt::support {

class JsonWriter {
 public:
  /// Writes to `os`; `indent` spaces per nesting level (0 = compact).
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object member key; must be followed by a value or begin*().
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  enum class Scope { kObject, kArray };

  void beforeValue();
  void newline();
  void writeEscaped(std::string_view s);

  std::ostream& os_;
  int indent_;
  std::vector<Scope> scopes_;
  bool first_in_scope_ = true;
  bool after_key_ = false;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string jsonEscape(std::string_view s);

}  // namespace spt::support

#include "support/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"

namespace spt::support {
namespace {

std::atomic<bool> g_check_throw_mode{false};

}  // namespace

bool checkThrowMode() {
  return g_check_throw_mode.load(std::memory_order_relaxed);
}

void setCheckThrowMode(bool enabled) {
  g_check_throw_mode.store(enabled, std::memory_order_relaxed);
}

void checkFailed(const char* cond, const char* file, int line,
                 const char* msg) {
  if (checkThrowMode()) {
    throw SptInternalError(cond, file, line, msg != nullptr ? msg : "");
  }
  std::fprintf(stderr, "SPT_CHECK failed: %s\n  at %s:%d\n  %s\n", cond, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace spt::support

#include "support/thread_pool.h"

#include <cstdlib>

namespace spt::support {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = defaultWorkerCount();
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

std::size_t ThreadPool::defaultWorkerCount() {
  if (const char* env = std::getenv("SPT_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace spt::support

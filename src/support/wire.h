// Byte-stream plumbing shared by socket protocols.
//
// The supervisor's SPTW pipes and the sweep service's SPTS socket both
// speak the same frame discipline — magic | u32 version | u8 kind |
// u64 length | payload | u64 FNV-1a(kind, length, payload) — so the
// framing lives here once, parameterized by the 4-byte magic and the
// version/kind window a given protocol accepts. (supervisor.h keeps its
// own SPTW entry points for compatibility; the sweep service builds its
// SPTS v1 frames on these.)
//
// The Unix-domain socket helpers are the minimal nonblocking set a
// single-threaded poll() event loop needs: listen/connect/accept with
// errno turned into diagnostics, and EINTR-tolerant read/write wrappers
// that never raise SIGPIPE surprises past the caller (callers still
// ignore SIGPIPE; writes report EPIPE as a clean false).
#pragma once

#include <cstdint>
#include <string>

namespace spt::support::wire {

/// Frame layout constants (identical to the SPTW constants in
/// supervisor.cpp): 4 magic + 4 version + 1 kind + 8 length.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 1 + 8;
inline constexpr std::size_t kFrameTrailerBytes = 8;
inline constexpr std::uint64_t kMaxFramePayloadBytes = 1ull << 28;

/// Encodes one frame under the given 4-byte magic.
std::string encodeFrame(const char magic[4], std::uint32_t version,
                        std::uint8_t kind, const std::string& payload);

/// Incremental scan state for a byte stream of frames.
enum class FrameScan {
  kNeedMore,  // valid but incomplete frame prefix
  kFrame,     // buf[0..*frame_bytes) is one complete frame
  kCorrupt,   // can never become a valid frame (magic/length)
};

/// Scans the front of `buf` for one complete frame without copying.
FrameScan scanFrame(const char magic[4], const std::string& buf,
                    std::size_t* frame_bytes, std::string* error);

/// Decodes one complete frame (as delimited by scanFrame): validates
/// magic, version in [min_version, max_version], checksum, and that
/// `kind <= max_kind`. Returns false with a reason otherwise.
bool decodeFrame(const char magic[4], const std::string& frame,
                 std::uint32_t min_version, std::uint32_t max_version,
                 std::uint8_t max_kind, std::uint32_t* version,
                 std::uint8_t* kind, std::string* payload,
                 std::string* error);

// ---- Unix-domain sockets (POSIX only) -------------------------------------

/// True when this platform has AF_UNIX sockets (same platforms where
/// Supervisor::isolationSupported()).
bool socketsSupported();

/// Binds and listens on `path`. An existing socket file is probed with a
/// connect first: refused (ECONNREFUSED — the stale leftover of a crashed
/// service) is unlinked and replaced; accepted (a live service owns the
/// path) refuses to start; a non-socket file at the path is never
/// touched. Returns the listening fd, or -1 with `error` set.
int listenUnix(const std::string& path, int backlog, std::string* error);

/// Connects to a listening Unix socket. Returns the fd, or -1 with
/// `error` set (ENOENT / ECONNREFUSED read as "service not running").
int connectUnix(const std::string& path, std::string* error);

/// O_NONBLOCK on/off; false on fcntl failure.
bool setNonBlocking(int fd, bool enable);

/// Writes all `n` bytes to a blocking fd, retrying on EINTR. Requires
/// SIGPIPE ignored; a peer hangup surfaces as false, not a signal.
bool writeAllFd(int fd, const char* data, std::size_t n);

/// Reads up to `max_bytes` from `fd`, appending to `*buf`, retrying on
/// EINTR. Returns bytes read (> 0), 0 on EOF, -1 on EAGAIN/EWOULDBLOCK
/// (nonblocking fd, no data), -2 on any other error.
int readSomeFd(int fd, std::string* buf, std::size_t max_bytes);

}  // namespace spt::support::wire

// Fixed-size worker pool for the parallel experiment engine.
//
// Semantics are deliberately minimal: tasks are opaque void() callables,
// submission never blocks, and the destructor drains the queue and joins
// every worker (std::jthread-style join-on-destruction, but portable to
// libstdc++ builds without <stop_token>). Result ordering, seeding, and
// error propagation are the caller's concern — harness::ParallelSweep
// layers all three on top.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spt::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 selects defaultWorkerCount().
  explicit ThreadPool(std::size_t workers = 0);

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const { return workers_.size(); }

  /// Enqueues a task. Never blocks; tasks run in FIFO dequeue order but
  /// complete in any order.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait();

  /// `SPT_JOBS` environment override if set and positive, otherwise
  /// std::thread::hardware_concurrency(), never less than 1.
  static std::size_t defaultWorkerCount();

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable idle_cv_;   // waiters: queue empty and none running
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spt::support

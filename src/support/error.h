// Structured error types for the robustness / quarantine machinery.
//
// Historically every violated invariant aborted the process (SPT_CHECK in
// check.h). That is the right default for a single experiment, but a
// multi-thousand-cell sweep must be able to quarantine one poisoned cell
// and keep going. These exception types carry enough context (file/line
// for internal errors, used/limit for budgets) for a harness to record a
// useful diagnostic in its results instead of dying.
//
// SptInternalError is only ever thrown when the opt-in throwing mode is
// armed (support::ScopedCheckThrowMode, see check.h); the default SPT_CHECK
// behavior is unchanged. SptBudgetExceeded is always thrown: exceeding an
// explicitly configured budget is an expected, recoverable outcome, not a
// broken invariant.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace spt::support {

/// Base class for all SPT-originated errors.
class SptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A violated internal invariant (SPT_CHECK in throwing mode, or an
/// oracle-detected divergence). Carries the failure site so a quarantined
/// cell's diagnostic pinpoints the check that fired.
class SptInternalError : public SptError {
 public:
  SptInternalError(std::string condition, const char* file, int line,
                   std::string context)
      : SptError("SPT_CHECK failed: " + condition + " at " + file + ":" +
                 std::to_string(line) +
                 (context.empty() ? "" : " (" + context + ")")),
        condition_(std::move(condition)),
        file_(file),
        line_(line),
        context_(std::move(context)) {}

  /// Free-form internal error (no specific check site).
  explicit SptInternalError(std::string what)
      : SptError(what), condition_(std::move(what)), file_(""), line_(0) {}

  const std::string& condition() const { return condition_; }
  const char* file() const { return file_; }
  int line() const { return line_; }
  const std::string& context() const { return context_; }

 private:
  std::string condition_;
  const char* file_;
  int line_;
  std::string context_;
};

/// An architectural-oracle divergence (sim::Oracle): the machine's
/// committed state stopped matching the sequential replay of the trace.
/// Beyond the human-readable message, it carries the structured
/// first-divergence report — the trace record index, the recovery boundary
/// the check ran at, and (in deep mode) the first divergent register or
/// memory address — so a campaign row can serialize the report into its
/// JSON instead of flattening it into a string.
class SptOracleDivergence : public SptInternalError {
 public:
  SptOracleDivergence(std::uint64_t trace_pos, std::string boundary,
                      std::string diff, bool deep = false)
      : SptInternalError(std::string("architectural oracle ") +
                         (deep ? "deep divergence" : "divergence") +
                         " at " + boundary + " boundary, trace position " +
                         std::to_string(trace_pos) + ": " + diff),
        trace_pos_(trace_pos),
        boundary_(std::move(boundary)),
        diff_(std::move(diff)) {}

  std::uint64_t tracePos() const { return trace_pos_; }
  const std::string& boundary() const { return boundary_; }
  const std::string& diff() const { return diff_; }

 private:
  std::uint64_t trace_pos_;
  std::string boundary_;
  std::string diff_;
};

/// A configured simulated-record / cycle / instruction budget was exceeded.
/// Thrown by the interpreter and the machines when MachineConfig (or
/// interp::RunLimits) caps are set; harnesses catch it and report the cell
/// as budget_exceeded instead of hanging on a runaway simulation.
class SptBudgetExceeded : public SptError {
 public:
  SptBudgetExceeded(std::string resource, std::uint64_t used,
                    std::uint64_t limit)
      : SptError(resource + " budget exceeded: " + std::to_string(used) +
                 " > " + std::to_string(limit)),
        resource_(std::move(resource)),
        used_(used),
        limit_(limit) {}

  const std::string& resource() const { return resource_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t limit() const { return limit_; }

 private:
  std::string resource_;
  std::uint64_t used_;
  std::uint64_t limit_;
};

}  // namespace spt::support

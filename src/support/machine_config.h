// The SPT machine configuration (paper Table 1).
//
// Both the simulator (timing) and the SPT compiler (cost model, thread
// overheads) consume this structure, so it lives in support rather than sim.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace spt::support {

/// Recovery mechanism used when the main thread reaches the start-point.
enum class RecoveryMechanism {
  /// Selective re-execution with fast commit (paper default, "SRX+FC").
  kSelectiveReplayFastCommit,
  /// Selective re-execution, but even violation-free threads go through the
  /// replay walk (no bulk fast commit).
  kSelectiveReplay,
  /// Conventional TLS recovery: any violation squashes the entire
  /// speculative thread and all its results (ablation baseline).
  kFullSquash,
};

/// Register dependence checking mode (paper Section 3.2).
enum class RegisterCheckMode {
  /// A register written by the main thread after the fork-point is
  /// "updated"; any speculative read of it is a violation.
  kScoreboard,
  /// Only registers whose *value* at the start-point differs from the
  /// fork-point value cause violations (paper default).
  kValueBased,
};

/// Architectural-oracle mode (sim::Oracle). The oracle cross-checks the
/// SPT machine's committed architectural state against an independent
/// sequential replay of the trace at every fast-commit / replay / squash
/// boundary. kOff is the default and leaves the simulation path untouched.
enum class OracleMode {
  kOff,
  /// Cheap always-on-capable mode: compare incrementally folded
  /// architectural digests (O(1) per committed record).
  kDigest,
  /// Digest plus a full materialized-state diff at every boundary that
  /// names the first divergent register / memory address. Expensive;
  /// meant for debugging a digest mismatch.
  kDeep,
};

/// Deterministic fault-injection plan (sim::FaultInjector). When enabled,
/// the SPT machine corrupts its *speculative* structures at seeded points:
/// the sequential trace remains the architectural ground truth, so every
/// injected fault must end as detected misspeculation (replayed /
/// squashed / discarded) or be provably benign — which is exactly what the
/// campaign asserts. Disabled by default: the plan adds zero work to the
/// simulation path.
struct FaultPlan {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Average number of injection opportunities between injections (each
  /// eligible event fires with probability 1/period).
  std::uint32_t period = 32;
  // Fault kinds (paper structures: SSB, LAB, fork-time RF copy, SRB).
  bool ssb_value_flip = true;   // corrupt a speculative store's SSB value
  bool lab_drop = true;         // drop a speculative load's LAB record
  bool fork_reg_flip = true;    // flip a bit in the fork-time register copy
  bool srb_payload_flip = true; // flip a bit in a buffered SRB result
  // Timing-metadata kinds. Caches and the branch predictor hold no
  // architectural data — only tags, LRU stamps, valid bits, and prediction
  // counters — so corrupting them can change *when* things happen but
  // never *what* is computed. The campaign asserts they are benign by
  // construction (they never enter the per-thread detection
  // classification).
  bool cache_meta_flip = true;  // corrupt a cache line's tag/LRU/valid
  bool bp_meta_flip = true;     // corrupt a PHT counter or history bit
};

/// One cache level's geometry and latency.
struct CacheConfig {
  std::uint32_t size_bytes = 0;
  std::uint32_t associativity = 1;
  std::uint32_t block_bytes = 64;
  std::uint32_t latency_cycles = 1;
};

/// Upper bound on `MachineConfig::spec_threads`. Keeps CLI grids and the
/// per-thread slab allocation bounded; the paper's machine is N=1 and the
/// Prophet-style scaling studies top out well below this.
inline constexpr std::uint32_t kMaxSpecThreads = 16;

/// Machine configuration mirroring paper Table 1. Defaults are the paper's
/// default configuration (Itanium2-like cores and memory subsystem).
struct MachineConfig {
  // Itanium2-like in-order cores: one main core plus `spec_threads`
  // speculative cores (paper Table 1 is the spec_threads == 1 machine).
  CacheConfig l1i{16 * 1024, 4, 64, 1};
  CacheConfig l1d{16 * 1024, 4, 64, 1};
  CacheConfig l2{256 * 1024, 8, 64, 5};
  CacheConfig l3{3 * 1024 * 1024, 12, 128, 12};
  std::uint32_t memory_latency_cycles = 150;

  std::uint32_t fetch_width = 6;        // normal / re-execution fetch
  std::uint32_t issue_width = 6;        // normal / re-execution issue
  std::uint32_t replay_fetch_width = 12;
  std::uint32_t replay_issue_width = 12;
  std::uint32_t rf_ports = 12;

  std::uint32_t branch_predictor_entries = 1024;  // GAg
  std::uint32_t branch_mispredict_penalty = 5;

  std::uint32_t rf_copy_overhead = 1;      // cycles, minimum, at fork
  std::uint32_t fast_commit_overhead = 5;  // cycles, minimum

  std::uint32_t speculation_result_buffer_entries = 1024;
  std::uint32_t speculative_store_buffer_entries = 256;
  std::uint32_t load_address_buffer_entries = 256;

  /// Number of speculative thread contexts (cores beyond the main core).
  /// 1 is the paper's 2-core machine and is bit-identical to the
  /// pre-multiway simulator; values up to kMaxSpecThreads chain threads
  /// Prophet-style with cascaded commit/squash (docs/MULTIWAY.md).
  std::uint32_t spec_threads = 1;

  RecoveryMechanism recovery = RecoveryMechanism::kSelectiveReplayFastCommit;
  RegisterCheckMode register_check = RegisterCheckMode::kValueBased;

  // ---- Robustness knobs (all off by default; zero cost when off) ----

  /// Per-cell budgets (0 = unlimited). Exceeding one throws
  /// support::SptBudgetExceeded instead of hanging: max_trace_records
  /// bounds interpretation (dynamic instructions while tracing),
  /// max_simulated_records / max_simulated_cycles bound the machines.
  std::uint64_t max_trace_records = 0;
  std::uint64_t max_simulated_records = 0;
  std::uint64_t max_simulated_cycles = 0;

  OracleMode oracle = OracleMode::kOff;
  FaultPlan fault_plan;

  /// Pretty-prints the configuration in the shape of paper Table 1.
  void print(std::ostream& os) const;
};

std::string toString(RecoveryMechanism mechanism);
std::string toString(RegisterCheckMode mode);
std::string toString(OracleMode mode);

}  // namespace spt::support

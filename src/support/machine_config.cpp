#include "support/machine_config.h"

namespace spt::support {
namespace {

void printCache(std::ostream& os, const char* name, const CacheConfig& c) {
  os << "  " << name << ": " << c.size_bytes / 1024 << "KB, "
     << c.associativity << "-way, " << c.block_bytes << "B-block, "
     << c.latency_cycles << "-cycle latency\n";
}

}  // namespace

std::string toString(RecoveryMechanism mechanism) {
  switch (mechanism) {
    case RecoveryMechanism::kSelectiveReplayFastCommit:
      return "Selective re-execution with fast-commit (SRX+FC)";
    case RecoveryMechanism::kSelectiveReplay:
      return "Selective re-execution (SRX)";
    case RecoveryMechanism::kFullSquash:
      return "Full squash";
  }
  return "unknown";
}

std::string toString(RegisterCheckMode mode) {
  switch (mode) {
    case RegisterCheckMode::kScoreboard:
      return "Scoreboard-based";
    case RegisterCheckMode::kValueBased:
      return "Value-based";
  }
  return "unknown";
}

std::string toString(OracleMode mode) {
  switch (mode) {
    case OracleMode::kOff:
      return "off";
    case OracleMode::kDigest:
      return "digest";
    case OracleMode::kDeep:
      return "deep";
  }
  return "unknown";
}

void MachineConfig::print(std::ostream& os) const {
  os << "Processor cores: " << 1 + spec_threads << " in-order cores (main + "
     << spec_threads << " speculative)\n"
     << "Cache hierarchy:\n";
  printCache(os, "L1I", l1i);
  printCache(os, "L1D", l1d);
  printCache(os, "L2 ", l2);
  printCache(os, "L3 ", l3);
  os << "Memory latency: " << memory_latency_cycles << " cycles\n"
     << "Normal / re-execution fetch width: " << fetch_width << '\n'
     << "Normal / re-execution issue width: " << issue_width << '\n'
     << "Replay fetch width: " << replay_fetch_width << '\n'
     << "Replay issue width: " << replay_issue_width << '\n'
     << "RF read/write ports: " << rf_ports << '\n'
     << "Branch predictor: GAg with " << branch_predictor_entries
     << " entries\n"
     << "Mispredicted branch penalty: " << branch_mispredict_penalty
     << " cycles\n"
     << "RF copy overhead: " << rf_copy_overhead << " cycle minimum\n"
     << "Fast commit overhead: " << fast_commit_overhead << " cycles minimum\n"
     << "Speculation result buffer size: "
     << speculation_result_buffer_entries << " entries\n"
     << "Misspeculation recovery mechanism: " << toString(recovery) << '\n'
     << "Register dependence checking: " << toString(register_check) << '\n';
}

}  // namespace spt::support

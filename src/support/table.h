// ASCII table and CSV emission for bench output.
//
// Every bench binary prints its figure/table as an aligned ASCII table (the
// "rows/series the paper reports") and can optionally dump CSV for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace spt::support {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers. Must be called before addRow.
  void setHeader(std::vector<std::string> header);

  /// Appends a row; the row must have the same arity as the header.
  void addRow(std::vector<std::string> row);

  std::size_t rowCount() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Renders the aligned ASCII form.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (quotes fields containing commas/quotes).
  void printCsv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spt::support

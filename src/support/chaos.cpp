#include "support/chaos.h"

#include <cstdlib>
#include <sstream>

namespace spt::support {

std::string toString(ChaosAction action) {
  switch (action) {
    case ChaosAction::kNone:
      return "none";
    case ChaosAction::kCrash:
      return "crash";
    case ChaosAction::kAbort:
      return "abort";
    case ChaosAction::kHang:
      return "hang";
    case ChaosAction::kGarbage:
      return "garbage";
    case ChaosAction::kPartial:
      return "partial";
    case ChaosAction::kExit:
      return "exit";
  }
  return "none";
}

namespace {

bool actionFromString(const std::string& s, ChaosAction& out) {
  if (s == "crash") {
    out = ChaosAction::kCrash;
  } else if (s == "abort") {
    out = ChaosAction::kAbort;
  } else if (s == "hang") {
    out = ChaosAction::kHang;
  } else if (s == "garbage") {
    out = ChaosAction::kGarbage;
  } else if (s == "partial") {
    out = ChaosAction::kPartial;
  } else if (s == "exit") {
    out = ChaosAction::kExit;
  } else {
    return false;
  }
  return true;
}

bool parseUnsigned(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

ChaosAction ChaosPlan::actionFor(std::size_t cell,
                                 std::uint32_t attempt) const {
  ChaosAction action = ChaosAction::kNone;
  for (const Directive& d : directives) {
    if (d.cell == cell && attempt <= d.until_attempt) action = d.action;
  }
  return action;
}

std::optional<ChaosPlan> ChaosPlan::parse(const std::string& spec,
                                          std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ChaosPlan> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ChaosPlan plan;
  std::istringstream in(spec);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return fail("chaos entry '" + entry +
                  "' is not CELL:ACTION[@ATTEMPTS]");
    }
    Directive d;
    std::uint64_t cell = 0;
    if (!parseUnsigned(entry.substr(0, colon), cell)) {
      return fail("chaos entry '" + entry + "' has a malformed cell index");
    }
    d.cell = static_cast<std::size_t>(cell);
    std::string action = entry.substr(colon + 1);
    const std::size_t at = action.find('@');
    if (at != std::string::npos) {
      std::uint64_t attempts = 0;
      if (!parseUnsigned(action.substr(at + 1), attempts) || attempts == 0) {
        return fail("chaos entry '" + entry +
                    "' has a malformed @ATTEMPTS suffix");
      }
      d.until_attempt = static_cast<std::uint32_t>(attempts);
      action.resize(at);
    }
    if (!actionFromString(action, d.action)) {
      return fail("chaos entry '" + entry + "' names unknown action '" +
                  action +
                  "' (expected crash|abort|hang|garbage|partial|exit)");
    }
    plan.directives.push_back(d);
  }
  return plan;
}

std::string ChaosPlan::toSpec() const {
  std::ostringstream os;
  bool first = true;
  for (const Directive& d : directives) {
    if (!first) os << ',';
    first = false;
    os << d.cell << ':' << toString(d.action);
    if (d.until_attempt != ~std::uint32_t{0}) os << '@' << d.until_attempt;
  }
  return os.str();
}

std::string toString(ClientChaosAction action) {
  switch (action) {
    case ClientChaosAction::kNone:
      return "none";
    case ClientChaosAction::kDisconnect:
      return "disconnect";
    case ClientChaosAction::kGarbage:
      return "garbage";
    case ClientChaosAction::kSlowReader:
      return "slow-reader";
  }
  return "none";
}

std::optional<ClientChaosPlan> ClientChaosPlan::parse(const std::string& spec,
                                                      std::string* error) {
  const auto fail =
      [&](const std::string& why) -> std::optional<ClientChaosPlan> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ClientChaosPlan plan;
  std::string action = spec;
  std::uint64_t suffix = 0;
  bool have_suffix = false;
  const std::size_t at = action.find('@');
  if (at != std::string::npos) {
    if (!parseUnsigned(action.substr(at + 1), suffix)) {
      return fail("client chaos spec '" + spec +
                  "' has a malformed @ suffix");
    }
    have_suffix = true;
    action.resize(at);
  }
  if (action == "disconnect") {
    plan.action = ClientChaosAction::kDisconnect;
    if (have_suffix) plan.after_results = suffix;
  } else if (action == "garbage") {
    plan.action = ClientChaosAction::kGarbage;
    if (have_suffix) plan.after_results = suffix;
  } else if (action == "slow-reader") {
    plan.action = ClientChaosAction::kSlowReader;
    if (have_suffix) plan.delay_ms = suffix;
  } else {
    return fail("client chaos spec '" + spec + "' names unknown action '" +
                action + "' (expected disconnect|garbage|slow-reader)");
  }
  return plan;
}

std::string ClientChaosPlan::toSpec() const {
  if (action == ClientChaosAction::kNone) return "";
  std::string s = toString(action);
  if (action == ClientChaosAction::kSlowReader) {
    s += '@' + std::to_string(delay_ms);
  } else if (after_results != 0) {
    s += '@' + std::to_string(after_results);
  }
  return s;
}

std::string toString(ServiceCrashPoint point) {
  switch (point) {
    case ServiceCrashPoint::kNone:
      return "none";
    case ServiceCrashPoint::kAfterAdmit:
      return "admit";
    case ServiceCrashPoint::kAfterSettle:
      return "settle";
    case ServiceCrashPoint::kMidFlush:
      return "flush";
    case ServiceCrashPoint::kMidAppend:
      return "append";
  }
  return "none";
}

std::optional<ServiceCrashPlan> ServiceCrashPlan::parse(
    const std::string& spec, std::string* error) {
  const auto fail =
      [&](const std::string& why) -> std::optional<ServiceCrashPlan> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ServiceCrashPlan plan;
  if (spec.empty()) return plan;  // inert
  std::string point = spec;
  const std::size_t colon = point.find(':');
  if (colon != std::string::npos) {
    if (!parseUnsigned(point.substr(colon + 1), plan.bytes)) {
      return fail("crash spec '" + spec + "' has a malformed :BYTES suffix");
    }
    point.resize(colon);
  }
  const std::size_t at = point.find('@');
  if (at != std::string::npos) {
    if (!parseUnsigned(point.substr(at + 1), plan.at) || plan.at == 0) {
      return fail("crash spec '" + spec + "' has a malformed @AT suffix");
    }
    point.resize(at);
  }
  if (point == "admit") {
    plan.point = ServiceCrashPoint::kAfterAdmit;
  } else if (point == "settle") {
    plan.point = ServiceCrashPoint::kAfterSettle;
  } else if (point == "flush") {
    plan.point = ServiceCrashPoint::kMidFlush;
  } else if (point == "append") {
    plan.point = ServiceCrashPoint::kMidAppend;
  } else {
    return fail("crash spec '" + spec + "' names unknown point '" + point +
                "' (expected admit|settle|flush|append)");
  }
  return plan;
}

std::string ServiceCrashPlan::toSpec() const {
  if (point == ServiceCrashPoint::kNone) return "";
  std::string s = toString(point);
  if (at != 1) s += '@' + std::to_string(at);
  if (bytes != 0) s += ':' + std::to_string(bytes);
  return s;
}

}  // namespace spt::support

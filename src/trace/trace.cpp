#include "trace/trace.h"

#include "support/check.h"

namespace spt::trace {

std::size_t TraceView::instrCount() const {
  std::size_t n = 0;
  for (const Record& r : *this) {
    if (r.kind == RecordKind::kInstr) ++n;
  }
  return n;
}

std::size_t TraceBuffer::instrCount() const { return view().instrCount(); }

namespace {

struct LoopKey {
  FrameId frame;
  ir::StaticId header_sid;
  bool operator==(const LoopKey&) const = default;
};

struct LoopKeyHash {
  std::size_t operator()(const LoopKey& k) const {
    return (static_cast<std::size_t>(k.frame) << 32) ^ k.header_sid;
  }
};

}  // namespace

LoopIndex::LoopIndex(const ir::Module& module, TraceView trace)
    : module_(module) {
  struct OpenEpisode {
    std::size_t episode_index;
    std::vector<std::size_t> pending_forks;
  };
  std::unordered_map<LoopKey, OpenEpisode, LoopKeyHash> open;
  // Region forks awaiting the next execution of their target instruction
  // in the forking frame.
  std::unordered_map<LoopKey, std::vector<std::size_t>, LoopKeyHash>
      pending_regions;

  const auto resolvePending = [&](OpenEpisode& ep, std::size_t start) {
    for (const std::size_t fork : ep.pending_forks) {
      fork_start_.emplace(fork, start);
    }
    ep.pending_forks.clear();
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Record& r = trace[i];
    switch (r.kind) {
      case RecordKind::kIterBegin: {
        const LoopKey key{r.frame, r.sid};
        auto it = open.find(key);
        if (it == open.end()) {
          LoopEpisode episode;
          episode.header_sid = r.sid;
          episode.frame = r.frame;
          episode.iter_begins.push_back(i);
          episode.exit_index = trace.size();
          episodes_.push_back(std::move(episode));
          open.emplace(key, OpenEpisode{episodes_.size() - 1, {}});
        } else {
          episodes_[it->second.episode_index].iter_begins.push_back(i);
          resolvePending(it->second, i);
        }
        break;
      }
      case RecordKind::kLoopExit: {
        const LoopKey key{r.frame, r.sid};
        auto it = open.find(key);
        if (it != open.end()) {
          episodes_[it->second.episode_index].exit_index = i;
          resolvePending(it->second, kNoStart);
          open.erase(it);
        }
        break;
      }
      case RecordKind::kInstr: {
        if (!pending_regions.empty()) {
          const auto rit = pending_regions.find(LoopKey{r.frame, r.sid});
          if (rit != pending_regions.end()) {
            for (const std::size_t fork : rit->second) {
              fork_start_.emplace(fork, i);
            }
            pending_regions.erase(rit);
          }
        }
        if (r.op != ir::Opcode::kSptFork) break;
        const auto& loc = module.locate(r.sid);
        const ir::Function& func = module.function(loc.func);
        const ir::Instr& fork = func.blocks[loc.block].instrs[loc.index];
        const ir::BlockId target = fork.target0;
        SPT_CHECK(target < func.blocks.size());
        const ir::StaticId target_sid =
            func.blocks[target].instrs.front().static_id;
        auto it = open.find(LoopKey{r.frame, target_sid});
        if (it != open.end()) {
          it->second.pending_forks.push_back(i);
        } else {
          // Region fork: wait for the target's next execution.
          pending_regions[LoopKey{r.frame, target_sid}].push_back(i);
        }
        break;
      }
    }
  }

  for (auto& [key, ep] : open) {
    (void)key;
    resolvePending(ep, kNoStart);
  }
  for (auto& [key, forks] : pending_regions) {
    (void)key;
    for (const std::size_t fork : forks) {
      fork_start_.emplace(fork, kNoStart);
    }
  }
}

std::size_t LoopIndex::startOfFork(std::size_t record_index) const {
  const auto it = fork_start_.find(record_index);
  SPT_CHECK_MSG(it != fork_start_.end(), "record is not an indexed fork");
  return it->second;
}

std::string loopNameOf(const ir::Module& module, ir::StaticId header_sid) {
  const auto& loc = module.locate(header_sid);
  const ir::Function& func = module.function(loc.func);
  const std::string& label = func.blocks[loc.block].label;
  return func.name + "." +
         (label.empty() ? "B" + std::to_string(loc.block) : label);
}

std::string LoopIndex::loopName(ir::StaticId header_sid) const {
  return loopNameOf(module_, header_sid);
}

}  // namespace spt::trace

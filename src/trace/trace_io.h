// Binary trace serialization.
//
// The paper's simulator consumes execution-trace files (Section 5.1); this
// gives the same workflow: trace once, simulate many configurations without
// re-interpreting. The format (v2) is a fixed little-endian record stream
// with a small header (magic, version, record count, FNV-1a checksum of the
// record bytes). Readers validate the checksum and every record's kind and
// opcode ranges, and report corruption with the byte offset and what was
// expected there.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.h"

namespace spt::trace {

/// Writes the buffer to a stream. Returns false on I/O failure.
bool writeTrace(std::ostream& os, const TraceBuffer& trace);

/// Convenience: writes to a file path.
bool writeTraceFile(const std::string& path, const TraceBuffer& trace);

/// Reads a trace written by writeTrace. Returns std::nullopt on a short,
/// corrupt, or version-mismatched stream; `error` (when given) explains.
std::optional<TraceBuffer> readTrace(std::istream& is,
                                     std::string* error = nullptr);

std::optional<TraceBuffer> readTraceFile(const std::string& path,
                                         std::string* error = nullptr);

}  // namespace spt::trace

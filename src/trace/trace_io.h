// Binary trace serialization.
//
// The paper's simulator consumes execution-trace files (Section 5.1); this
// gives the same workflow: trace once, simulate many configurations without
// re-interpreting. Two container formats share the same 40-byte record
// encoding and FNV-1a stream checksum:
//
//  * v2 — the interchange form: a fixed little-endian record stream behind
//    a 28-byte header (magic, version, record count, checksum). Readers
//    copy records into a TraceBuffer, validating every record's kind and
//    opcode ranges and reporting corruption with the byte offset and what
//    was expected there.
//  * v3 — the mmap container: a 48-byte 8-aligned header (magic, version,
//    flags, record count, checksum, two application-defined meta words)
//    followed by the raw trace::Record array. Because Record *is* the disk
//    layout (record.h's static_asserts), MappedTrace maps the file and
//    hands out a zero-copy TraceView over the region — no materialization,
//    and the page cache shares one physical copy across every process
//    simulating the same workload. Validation (checksum, per-record
//    ranges, canonical pad/taken bytes) runs once at open, with the same
//    byte-offset diagnostics as v2.
//
// `sptc trace convert` moves traces between the two forms losslessly; the
// record bytes — and therefore the stream checksum — are identical in both.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.h"

namespace spt::trace {

/// Writes the trace to a stream in v2 (interchange) form. Returns false on
/// I/O failure.
bool writeTrace(std::ostream& os, TraceView trace);

/// Convenience: writes v2 to a file path.
bool writeTraceFile(const std::string& path, TraceView trace);

/// Reads a trace in either container form (v2 record stream or v3 mmap
/// container, distinguished by the header's version field) into an owned
/// TraceBuffer. Returns std::nullopt on a short, corrupt, or unsupported
/// stream; `error` (when given) explains with byte offsets.
std::optional<TraceBuffer> readTrace(std::istream& is,
                                     std::string* error = nullptr);

std::optional<TraceBuffer> readTraceFile(const std::string& path,
                                         std::string* error = nullptr);

/// Peeks `path`'s container version from the header (2 or 3) without
/// validating the payload. Returns 0 for unreadable files or foreign
/// magic. `sptc trace convert` uses this to pick the default direction.
int traceFileVersion(const std::string& path);

/// Application-defined words stored in the v3 header (zero when unused).
/// The harness's shared-trace cache stores the traced run's return value
/// and memory hash here so cached simulations can re-assert the
/// baseline-vs-SPT execution equivalence without re-interpreting.
struct TraceFileMeta {
  std::uint64_t word0 = 0;
  std::uint64_t word1 = 0;
};

/// Writes the trace in v3 (mmap container) form. Returns false on I/O
/// failure.
bool writeTraceV3(std::ostream& os, TraceView trace,
                  const TraceFileMeta& meta = {});
bool writeTraceV3File(const std::string& path, TraceView trace,
                      const TraceFileMeta& meta = {});

/// A v3 trace file mapped (or, where mmap is unavailable, read) into
/// memory. The whole file is validated at open — magic, version, size,
/// checksum, and every record's kind/opcode/pad/taken bytes — so view()
/// needs no further checks.
///
/// Ownership & lifetime rules (docs/PERF.md "Trace v3"):
///  * MappedTrace owns the mapping; view() is non-owning and must not
///    outlive the MappedTrace it came from (nor any machine/LoopIndex
///    holding that view).
///  * The mapping is read-only and MAP_SHARED-equivalent: concurrent
///    opens of one file — including across supervised worker processes —
///    share a single page-cache copy, never a private writable clone.
///  * Move-only; moving transfers the mapping, invalidating nothing (views
///    point at the mapping, which does not relocate).
class MappedTrace {
 public:
  /// Opens and validates `path`. Returns std::nullopt on any validation
  /// failure; `error` (when given) explains with byte offsets.
  static std::optional<MappedTrace> open(const std::string& path,
                                         std::string* error = nullptr);

  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;
  ~MappedTrace();

  TraceView view() const { return {records_, count_}; }
  operator TraceView() const { return view(); }  // NOLINT
  std::size_t size() const { return count_; }
  const TraceFileMeta& meta() const { return meta_; }

 private:
  MappedTrace() = default;
  void release();

  const Record* records_ = nullptr;  // points into map_base_ past the header
  std::size_t count_ = 0;
  TraceFileMeta meta_;
  void* map_base_ = nullptr;   // mmap base (nullptr when heap-backed)
  std::size_t map_len_ = 0;    // mmap length in bytes
  char* heap_copy_ = nullptr;  // fallback buffer when mmap is unavailable
};

}  // namespace spt::trace

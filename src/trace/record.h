// Dynamic trace records.
//
// The interpreter executes a program *sequentially* and emits one record per
// dynamic instruction plus loop markers. The SPT simulator is trace-driven
// exactly as the paper's is (Section 5.1): it replays this sequential trace
// on two pipelines. Records carry enough information (result values, memory
// addresses, overwritten memory values, branch outcomes) for the simulator
// to emulate speculative execution exactly.
#pragma once

#include <cstdint>

#include "ir/instr.h"

namespace spt::trace {

enum class RecordKind : std::uint8_t {
  kInstr,      // a dynamic instruction (including spt_fork / spt_kill)
  kIterBegin,  // control reached a loop header (entry or back edge)
  kLoopExit,   // control left a loop (exit edge or frame return)
};

/// Dynamic frame id; frames are numbered in call order, starting at 0 for
/// the main function's frame. Registers are frame-local.
using FrameId = std::uint32_t;

struct Record {
  RecordKind kind = RecordKind::kInstr;
  ir::Opcode op = ir::Opcode::kNop;
  /// kCondBr: true if target0 (the "taken" side) was followed.
  bool taken = false;

  /// kInstr: static id of the instruction.
  /// kIterBegin/kLoopExit: static id of the first instruction of the loop
  /// header block (the loop's stable identity within a module).
  ir::StaticId sid = ir::kInvalidStaticId;

  /// Frame the instruction executed in (for markers: the frame the loop
  /// runs in).
  FrameId frame = 0;

  /// kInstr with a destination: the architectural result value.
  /// kIterBegin: the 0-based iteration index within this loop episode.
  std::int64_t value = 0;

  /// kLoad/kStore: the effective byte address.
  std::uint64_t mem_addr = 0;

  /// kStore: the value overwritten in memory (enables reconstruction of the
  /// fork-time memory image during speculative emulation).
  std::int64_t mem_old = 0;

  /// kCall: the callee's new frame id.
  FrameId callee_frame = 0;
};

}  // namespace spt::trace

// Dynamic trace records.
//
// The interpreter executes a program *sequentially* and emits one record per
// dynamic instruction plus loop markers. The SPT simulator is trace-driven
// exactly as the paper's is (Section 5.1): it replays this sequential trace
// on two pipelines. Records carry enough information (result values, memory
// addresses, overwritten memory values, branch outcomes) for the simulator
// to emulate speculative execution exactly.
//
// Layout contract: Record is the on-disk v3 record. The field order below
// packs to exactly 40 bytes with no padding holes, little-endian on every
// supported target, and matches trace_io's v2 DiskRecord byte for byte —
// so a v3 trace file is mmap-able as a raw Record array (zero-copy), the
// v2 and v3 stream checksums agree, and `sptc trace convert` is lossless
// both ways. The static_asserts below pin the contract; do not reorder
// fields without bumping the trace format version.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "ir/instr.h"

namespace spt::trace {

enum class RecordKind : std::uint8_t {
  kInstr,      // a dynamic instruction (including spt_fork / spt_kill)
  kIterBegin,  // control reached a loop header (entry or back edge)
  kLoopExit,   // control left a loop (exit edge or frame return)
};

/// Dynamic frame id; frames are numbered in call order, starting at 0 for
/// the main function's frame. Registers are frame-local.
using FrameId = std::uint32_t;

struct Record {
  RecordKind kind = RecordKind::kInstr;
  ir::Opcode op = ir::Opcode::kNop;
  /// kCondBr: true if target0 (the "taken" side) was followed.
  bool taken = false;

  /// Reserved; always zero (keeps the struct hole-free and the v3 byte
  /// stream canonical — readers reject a nonzero pad).
  std::uint8_t pad = 0;

  /// kInstr: static id of the instruction.
  /// kIterBegin/kLoopExit: static id of the first instruction of the loop
  /// header block (the loop's stable identity within a module).
  ir::StaticId sid = ir::kInvalidStaticId;

  /// Frame the instruction executed in (for markers: the frame the loop
  /// runs in).
  FrameId frame = 0;

  /// kCall: the callee's new frame id.
  FrameId callee_frame = 0;

  /// kInstr with a destination: the architectural result value.
  /// kIterBegin: the 0-based iteration index within this loop episode.
  std::int64_t value = 0;

  /// kLoad/kStore: the effective byte address.
  std::uint64_t mem_addr = 0;

  /// kStore: the value overwritten in memory (enables reconstruction of the
  /// fork-time memory image during speculative emulation).
  std::int64_t mem_old = 0;
};

// The zero-copy contract (see header comment).
static_assert(sizeof(Record) == 40, "Record must be the 40-byte v3 layout");
static_assert(std::is_trivially_copyable_v<Record>);
static_assert(offsetof(Record, kind) == 0);
static_assert(offsetof(Record, op) == 1);
static_assert(offsetof(Record, taken) == 2);
static_assert(offsetof(Record, pad) == 3);
static_assert(offsetof(Record, sid) == 4);
static_assert(offsetof(Record, frame) == 8);
static_assert(offsetof(Record, callee_frame) == 12);
static_assert(offsetof(Record, value) == 16);
static_assert(offsetof(Record, mem_addr) == 24);
static_assert(offsetof(Record, mem_old) == 32);

}  // namespace spt::trace
